# Empty compiler generated dependencies file for extra-cli.
# This may be replaced when dependencies are built.
