file(REMOVE_RECURSE
  "CMakeFiles/extra-cli.dir/extra-cli.cpp.o"
  "CMakeFiles/extra-cli.dir/extra-cli.cpp.o.d"
  "extra-cli"
  "extra-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
