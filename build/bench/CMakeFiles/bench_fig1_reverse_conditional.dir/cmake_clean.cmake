file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_reverse_conditional.dir/bench_fig1_reverse_conditional.cpp.o"
  "CMakeFiles/bench_fig1_reverse_conditional.dir/bench_fig1_reverse_conditional.cpp.o.d"
  "bench_fig1_reverse_conditional"
  "bench_fig1_reverse_conditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_reverse_conditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
