# Empty compiler generated dependencies file for bench_fig1_reverse_conditional.
# This may be replaced when dependencies are built.
