file(REMOVE_RECURSE
  "CMakeFiles/bench_exotic_speedup.dir/bench_exotic_speedup.cpp.o"
  "CMakeFiles/bench_exotic_speedup.dir/bench_exotic_speedup.cpp.o.d"
  "bench_exotic_speedup"
  "bench_exotic_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exotic_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
