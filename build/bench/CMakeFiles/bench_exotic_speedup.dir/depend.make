# Empty dependencies file for bench_exotic_speedup.
# This may be replaced when dependencies are built.
