# Empty dependencies file for bench_table2_analyses.
# This may be replaced when dependencies are built.
