file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_analyses.dir/bench_table2_analyses.cpp.o"
  "CMakeFiles/bench_table2_analyses.dir/bench_table2_analyses.cpp.o.d"
  "bench_table2_analyses"
  "bench_table2_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
