# Empty compiler generated dependencies file for bench_fig2to5_descriptions.
# This may be replaced when dependencies are built.
