file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2to5_descriptions.dir/bench_fig2to5_descriptions.cpp.o"
  "CMakeFiles/bench_fig2to5_descriptions.dir/bench_fig2to5_descriptions.cpp.o.d"
  "bench_fig2to5_descriptions"
  "bench_fig2to5_descriptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2to5_descriptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
