# Empty compiler generated dependencies file for bench_sec43_movc3.
# This may be replaced when dependencies are built.
