file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_movc3.dir/bench_sec43_movc3.cpp.o"
  "CMakeFiles/bench_sec43_movc3.dir/bench_sec43_movc3.cpp.o.d"
  "bench_sec43_movc3"
  "bench_sec43_movc3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_movc3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
