file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_codegen.dir/bench_sec41_codegen.cpp.o"
  "CMakeFiles/bench_sec41_codegen.dir/bench_sec41_codegen.cpp.o.d"
  "bench_sec41_codegen"
  "bench_sec41_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
