# Empty dependencies file for bench_sec41_codegen.
# This may be replaced when dependencies are built.
