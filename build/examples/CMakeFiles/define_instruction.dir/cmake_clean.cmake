file(REMOVE_RECURSE
  "CMakeFiles/define_instruction.dir/define_instruction.cpp.o"
  "CMakeFiles/define_instruction.dir/define_instruction.cpp.o.d"
  "define_instruction"
  "define_instruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/define_instruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
