# Empty compiler generated dependencies file for define_instruction.
# This may be replaced when dependencies are built.
