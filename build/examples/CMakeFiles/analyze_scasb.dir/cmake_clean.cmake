file(REMOVE_RECURSE
  "CMakeFiles/analyze_scasb.dir/analyze_scasb.cpp.o"
  "CMakeFiles/analyze_scasb.dir/analyze_scasb.cpp.o.d"
  "analyze_scasb"
  "analyze_scasb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_scasb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
