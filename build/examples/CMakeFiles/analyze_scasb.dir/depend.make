# Empty dependencies file for analyze_scasb.
# This may be replaced when dependencies are built.
