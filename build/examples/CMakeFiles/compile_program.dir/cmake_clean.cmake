file(REMOVE_RECURSE
  "CMakeFiles/compile_program.dir/compile_program.cpp.o"
  "CMakeFiles/compile_program.dir/compile_program.cpp.o.d"
  "compile_program"
  "compile_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
