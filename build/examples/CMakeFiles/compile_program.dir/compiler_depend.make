# Empty compiler generated dependencies file for compile_program.
# This may be replaced when dependencies are built.
