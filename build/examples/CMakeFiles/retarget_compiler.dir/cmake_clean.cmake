file(REMOVE_RECURSE
  "CMakeFiles/retarget_compiler.dir/retarget_compiler.cpp.o"
  "CMakeFiles/retarget_compiler.dir/retarget_compiler.cpp.o.d"
  "retarget_compiler"
  "retarget_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
