# Empty dependencies file for retarget_compiler.
# This may be replaced when dependencies are built.
