# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_scasb "/root/repo/build/examples/analyze_scasb")
set_tests_properties(example_analyze_scasb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_retarget_compiler "/root/repo/build/examples/retarget_compiler")
set_tests_properties(example_retarget_compiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_define_instruction "/root/repo/build/examples/define_instruction")
set_tests_properties(example_define_instruction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compile_program "/root/repo/build/examples/compile_program")
set_tests_properties(example_compile_program PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
