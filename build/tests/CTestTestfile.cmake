# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isdl_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/isdl_parser_test[1]_include.cmake")
include("/root/repo/build/tests/isdl_printer_test[1]_include.cmake")
include("/root/repo/build/tests/isdl_ast_test[1]_include.cmake")
include("/root/repo/build/tests/isdl_equiv_test[1]_include.cmake")
include("/root/repo/build/tests/isdl_validate_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/transform_composite_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/eclipse_failure_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/transform_rules_test[1]_include.cmake")
include("/root/repo/build/tests/descriptions_test[1]_include.cmake")
include("/root/repo/build/tests/scriptio_test[1]_include.cmake")
include("/root/repo/build/tests/scripts_files_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
