
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/extra_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/extra_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/extra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/extra_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/extra_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptions/CMakeFiles/extra_descriptions.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/extra_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/extra_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/isdl/CMakeFiles/extra_isdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/extra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
