# Empty dependencies file for scripts_files_test.
# This may be replaced when dependencies are built.
