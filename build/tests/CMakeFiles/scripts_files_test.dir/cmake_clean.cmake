file(REMOVE_RECURSE
  "CMakeFiles/scripts_files_test.dir/scripts_files_test.cpp.o"
  "CMakeFiles/scripts_files_test.dir/scripts_files_test.cpp.o.d"
  "scripts_files_test"
  "scripts_files_test.pdb"
  "scripts_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripts_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
