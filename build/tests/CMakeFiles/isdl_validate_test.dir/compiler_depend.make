# Empty compiler generated dependencies file for isdl_validate_test.
# This may be replaced when dependencies are built.
