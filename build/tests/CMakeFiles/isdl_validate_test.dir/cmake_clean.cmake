file(REMOVE_RECURSE
  "CMakeFiles/isdl_validate_test.dir/isdl_validate_test.cpp.o"
  "CMakeFiles/isdl_validate_test.dir/isdl_validate_test.cpp.o.d"
  "isdl_validate_test"
  "isdl_validate_test.pdb"
  "isdl_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
