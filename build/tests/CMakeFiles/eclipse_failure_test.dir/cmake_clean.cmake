file(REMOVE_RECURSE
  "CMakeFiles/eclipse_failure_test.dir/eclipse_failure_test.cpp.o"
  "CMakeFiles/eclipse_failure_test.dir/eclipse_failure_test.cpp.o.d"
  "eclipse_failure_test"
  "eclipse_failure_test.pdb"
  "eclipse_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
