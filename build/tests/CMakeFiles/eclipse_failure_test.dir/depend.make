# Empty dependencies file for eclipse_failure_test.
# This may be replaced when dependencies are built.
