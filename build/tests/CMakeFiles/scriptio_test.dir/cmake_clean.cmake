file(REMOVE_RECURSE
  "CMakeFiles/scriptio_test.dir/scriptio_test.cpp.o"
  "CMakeFiles/scriptio_test.dir/scriptio_test.cpp.o.d"
  "scriptio_test"
  "scriptio_test.pdb"
  "scriptio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scriptio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
