# Empty compiler generated dependencies file for scriptio_test.
# This may be replaced when dependencies are built.
