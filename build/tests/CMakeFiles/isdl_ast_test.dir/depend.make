# Empty dependencies file for isdl_ast_test.
# This may be replaced when dependencies are built.
