file(REMOVE_RECURSE
  "CMakeFiles/isdl_ast_test.dir/isdl_ast_test.cpp.o"
  "CMakeFiles/isdl_ast_test.dir/isdl_ast_test.cpp.o.d"
  "isdl_ast_test"
  "isdl_ast_test.pdb"
  "isdl_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
