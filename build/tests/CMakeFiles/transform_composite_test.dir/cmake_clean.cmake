file(REMOVE_RECURSE
  "CMakeFiles/transform_composite_test.dir/transform_composite_test.cpp.o"
  "CMakeFiles/transform_composite_test.dir/transform_composite_test.cpp.o.d"
  "transform_composite_test"
  "transform_composite_test.pdb"
  "transform_composite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_composite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
