# Empty dependencies file for transform_composite_test.
# This may be replaced when dependencies are built.
