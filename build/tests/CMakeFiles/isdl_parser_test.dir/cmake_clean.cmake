file(REMOVE_RECURSE
  "CMakeFiles/isdl_parser_test.dir/isdl_parser_test.cpp.o"
  "CMakeFiles/isdl_parser_test.dir/isdl_parser_test.cpp.o.d"
  "isdl_parser_test"
  "isdl_parser_test.pdb"
  "isdl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
