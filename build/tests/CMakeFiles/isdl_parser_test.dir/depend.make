# Empty dependencies file for isdl_parser_test.
# This may be replaced when dependencies are built.
