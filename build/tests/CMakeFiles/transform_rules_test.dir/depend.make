# Empty dependencies file for transform_rules_test.
# This may be replaced when dependencies are built.
