file(REMOVE_RECURSE
  "CMakeFiles/transform_rules_test.dir/transform_rules_test.cpp.o"
  "CMakeFiles/transform_rules_test.dir/transform_rules_test.cpp.o.d"
  "transform_rules_test"
  "transform_rules_test.pdb"
  "transform_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
