file(REMOVE_RECURSE
  "CMakeFiles/isdl_lexer_test.dir/isdl_lexer_test.cpp.o"
  "CMakeFiles/isdl_lexer_test.dir/isdl_lexer_test.cpp.o.d"
  "isdl_lexer_test"
  "isdl_lexer_test.pdb"
  "isdl_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
