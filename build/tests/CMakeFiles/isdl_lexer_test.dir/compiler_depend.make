# Empty compiler generated dependencies file for isdl_lexer_test.
# This may be replaced when dependencies are built.
