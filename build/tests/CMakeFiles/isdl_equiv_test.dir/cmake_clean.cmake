file(REMOVE_RECURSE
  "CMakeFiles/isdl_equiv_test.dir/isdl_equiv_test.cpp.o"
  "CMakeFiles/isdl_equiv_test.dir/isdl_equiv_test.cpp.o.d"
  "isdl_equiv_test"
  "isdl_equiv_test.pdb"
  "isdl_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
