# Empty dependencies file for isdl_equiv_test.
# This may be replaced when dependencies are built.
