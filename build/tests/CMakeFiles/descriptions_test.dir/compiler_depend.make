# Empty compiler generated dependencies file for descriptions_test.
# This may be replaced when dependencies are built.
