file(REMOVE_RECURSE
  "CMakeFiles/descriptions_test.dir/descriptions_test.cpp.o"
  "CMakeFiles/descriptions_test.dir/descriptions_test.cpp.o.d"
  "descriptions_test"
  "descriptions_test.pdb"
  "descriptions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
