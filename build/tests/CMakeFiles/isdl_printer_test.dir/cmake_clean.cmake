file(REMOVE_RECURSE
  "CMakeFiles/isdl_printer_test.dir/isdl_printer_test.cpp.o"
  "CMakeFiles/isdl_printer_test.dir/isdl_printer_test.cpp.o.d"
  "isdl_printer_test"
  "isdl_printer_test.pdb"
  "isdl_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
