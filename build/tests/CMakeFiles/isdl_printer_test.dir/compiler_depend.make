# Empty compiler generated dependencies file for isdl_printer_test.
# This may be replaced when dependencies are built.
