add_test([=[ScriptFilesTest.AllShippedScriptsMatchTheBuiltInDerivations]=]  /root/repo/build/tests/scripts_files_test [==[--gtest_filter=ScriptFilesTest.AllShippedScriptsMatchTheBuiltInDerivations]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ScriptFilesTest.AllShippedScriptsMatchTheBuiltInDerivations]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  scripts_files_test_TESTS ScriptFilesTest.AllShippedScriptsMatchTheBuiltInDerivations)
