file(REMOVE_RECURSE
  "libextra_sim.a"
)
