file(REMOVE_RECURSE
  "CMakeFiles/extra_sim.dir/Sim370.cpp.o"
  "CMakeFiles/extra_sim.dir/Sim370.cpp.o.d"
  "CMakeFiles/extra_sim.dir/Sim8086.cpp.o"
  "CMakeFiles/extra_sim.dir/Sim8086.cpp.o.d"
  "CMakeFiles/extra_sim.dir/SimCommon.cpp.o"
  "CMakeFiles/extra_sim.dir/SimCommon.cpp.o.d"
  "CMakeFiles/extra_sim.dir/SimVax.cpp.o"
  "CMakeFiles/extra_sim.dir/SimVax.cpp.o.d"
  "libextra_sim.a"
  "libextra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
