# Empty compiler generated dependencies file for extra_sim.
# This may be replaced when dependencies are built.
