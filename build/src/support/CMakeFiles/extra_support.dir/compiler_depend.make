# Empty compiler generated dependencies file for extra_support.
# This may be replaced when dependencies are built.
