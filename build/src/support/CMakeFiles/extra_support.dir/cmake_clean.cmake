file(REMOVE_RECURSE
  "CMakeFiles/extra_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/extra_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/extra_support.dir/StringUtil.cpp.o"
  "CMakeFiles/extra_support.dir/StringUtil.cpp.o.d"
  "libextra_support.a"
  "libextra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
