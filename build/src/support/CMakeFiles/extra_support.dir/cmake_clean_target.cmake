file(REMOVE_RECURSE
  "libextra_support.a"
)
