# Empty compiler generated dependencies file for extra_transform.
# This may be replaced when dependencies are built.
