
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/AugmentTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/AugmentTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/AugmentTransforms.cpp.o.d"
  "/root/repo/src/transform/CodeMotionTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/CodeMotionTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/CodeMotionTransforms.cpp.o.d"
  "/root/repo/src/transform/ConstraintTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/ConstraintTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/ConstraintTransforms.cpp.o.d"
  "/root/repo/src/transform/GlobalTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/GlobalTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/GlobalTransforms.cpp.o.d"
  "/root/repo/src/transform/LocalTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/LocalTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/LocalTransforms.cpp.o.d"
  "/root/repo/src/transform/LoopTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/LoopTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/LoopTransforms.cpp.o.d"
  "/root/repo/src/transform/RoutineTransforms.cpp" "src/transform/CMakeFiles/extra_transform.dir/RoutineTransforms.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/RoutineTransforms.cpp.o.d"
  "/root/repo/src/transform/RuleHelpers.cpp" "src/transform/CMakeFiles/extra_transform.dir/RuleHelpers.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/RuleHelpers.cpp.o.d"
  "/root/repo/src/transform/ScriptIO.cpp" "src/transform/CMakeFiles/extra_transform.dir/ScriptIO.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/ScriptIO.cpp.o.d"
  "/root/repo/src/transform/Transform.cpp" "src/transform/CMakeFiles/extra_transform.dir/Transform.cpp.o" "gcc" "src/transform/CMakeFiles/extra_transform.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isdl/CMakeFiles/extra_isdl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/extra_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/extra_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/extra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
