file(REMOVE_RECURSE
  "libextra_transform.a"
)
