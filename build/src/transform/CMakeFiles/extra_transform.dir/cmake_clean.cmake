file(REMOVE_RECURSE
  "CMakeFiles/extra_transform.dir/AugmentTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/AugmentTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/CodeMotionTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/CodeMotionTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/ConstraintTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/ConstraintTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/GlobalTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/GlobalTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/LocalTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/LocalTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/LoopTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/LoopTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/RoutineTransforms.cpp.o"
  "CMakeFiles/extra_transform.dir/RoutineTransforms.cpp.o.d"
  "CMakeFiles/extra_transform.dir/RuleHelpers.cpp.o"
  "CMakeFiles/extra_transform.dir/RuleHelpers.cpp.o.d"
  "CMakeFiles/extra_transform.dir/ScriptIO.cpp.o"
  "CMakeFiles/extra_transform.dir/ScriptIO.cpp.o.d"
  "CMakeFiles/extra_transform.dir/Transform.cpp.o"
  "CMakeFiles/extra_transform.dir/Transform.cpp.o.d"
  "libextra_transform.a"
  "libextra_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
