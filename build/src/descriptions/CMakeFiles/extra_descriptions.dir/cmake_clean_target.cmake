file(REMOVE_RECURSE
  "libextra_descriptions.a"
)
