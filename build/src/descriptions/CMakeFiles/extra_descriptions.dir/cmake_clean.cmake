file(REMOVE_RECURSE
  "CMakeFiles/extra_descriptions.dir/Descriptions.cpp.o"
  "CMakeFiles/extra_descriptions.dir/Descriptions.cpp.o.d"
  "libextra_descriptions.a"
  "libextra_descriptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_descriptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
