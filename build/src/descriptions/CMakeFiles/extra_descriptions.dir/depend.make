# Empty dependencies file for extra_descriptions.
# This may be replaced when dependencies are built.
