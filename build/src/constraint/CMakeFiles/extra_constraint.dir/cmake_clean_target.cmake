file(REMOVE_RECURSE
  "libextra_constraint.a"
)
