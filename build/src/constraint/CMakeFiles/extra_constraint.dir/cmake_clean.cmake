file(REMOVE_RECURSE
  "CMakeFiles/extra_constraint.dir/Constraint.cpp.o"
  "CMakeFiles/extra_constraint.dir/Constraint.cpp.o.d"
  "libextra_constraint.a"
  "libextra_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
