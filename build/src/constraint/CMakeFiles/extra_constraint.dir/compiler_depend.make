# Empty compiler generated dependencies file for extra_constraint.
# This may be replaced when dependencies are built.
