# Empty compiler generated dependencies file for extra_analysis.
# This may be replaced when dependencies are built.
