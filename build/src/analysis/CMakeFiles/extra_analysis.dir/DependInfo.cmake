
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Advisor.cpp" "src/analysis/CMakeFiles/extra_analysis.dir/Advisor.cpp.o" "gcc" "src/analysis/CMakeFiles/extra_analysis.dir/Advisor.cpp.o.d"
  "/root/repo/src/analysis/Analysis.cpp" "src/analysis/CMakeFiles/extra_analysis.dir/Analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/extra_analysis.dir/Analysis.cpp.o.d"
  "/root/repo/src/analysis/Derivations.cpp" "src/analysis/CMakeFiles/extra_analysis.dir/Derivations.cpp.o" "gcc" "src/analysis/CMakeFiles/extra_analysis.dir/Derivations.cpp.o.d"
  "/root/repo/src/analysis/DiffCheck.cpp" "src/analysis/CMakeFiles/extra_analysis.dir/DiffCheck.cpp.o" "gcc" "src/analysis/CMakeFiles/extra_analysis.dir/DiffCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/extra_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/extra_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptions/CMakeFiles/extra_descriptions.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/extra_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/extra_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/isdl/CMakeFiles/extra_isdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/extra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
