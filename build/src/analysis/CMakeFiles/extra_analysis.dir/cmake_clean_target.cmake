file(REMOVE_RECURSE
  "libextra_analysis.a"
)
