file(REMOVE_RECURSE
  "CMakeFiles/extra_analysis.dir/Advisor.cpp.o"
  "CMakeFiles/extra_analysis.dir/Advisor.cpp.o.d"
  "CMakeFiles/extra_analysis.dir/Analysis.cpp.o"
  "CMakeFiles/extra_analysis.dir/Analysis.cpp.o.d"
  "CMakeFiles/extra_analysis.dir/Derivations.cpp.o"
  "CMakeFiles/extra_analysis.dir/Derivations.cpp.o.d"
  "CMakeFiles/extra_analysis.dir/DiffCheck.cpp.o"
  "CMakeFiles/extra_analysis.dir/DiffCheck.cpp.o.d"
  "libextra_analysis.a"
  "libextra_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
