# Empty dependencies file for extra_dataflow.
# This may be replaced when dependencies are built.
