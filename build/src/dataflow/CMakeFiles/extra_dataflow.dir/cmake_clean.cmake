file(REMOVE_RECURSE
  "CMakeFiles/extra_dataflow.dir/CFG.cpp.o"
  "CMakeFiles/extra_dataflow.dir/CFG.cpp.o.d"
  "CMakeFiles/extra_dataflow.dir/Liveness.cpp.o"
  "CMakeFiles/extra_dataflow.dir/Liveness.cpp.o.d"
  "CMakeFiles/extra_dataflow.dir/ReachingDefs.cpp.o"
  "CMakeFiles/extra_dataflow.dir/ReachingDefs.cpp.o.d"
  "libextra_dataflow.a"
  "libextra_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
