
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/CFG.cpp" "src/dataflow/CMakeFiles/extra_dataflow.dir/CFG.cpp.o" "gcc" "src/dataflow/CMakeFiles/extra_dataflow.dir/CFG.cpp.o.d"
  "/root/repo/src/dataflow/Liveness.cpp" "src/dataflow/CMakeFiles/extra_dataflow.dir/Liveness.cpp.o" "gcc" "src/dataflow/CMakeFiles/extra_dataflow.dir/Liveness.cpp.o.d"
  "/root/repo/src/dataflow/ReachingDefs.cpp" "src/dataflow/CMakeFiles/extra_dataflow.dir/ReachingDefs.cpp.o" "gcc" "src/dataflow/CMakeFiles/extra_dataflow.dir/ReachingDefs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isdl/CMakeFiles/extra_isdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/extra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
