file(REMOVE_RECURSE
  "libextra_dataflow.a"
)
