file(REMOVE_RECURSE
  "libextra_codegen.a"
)
