file(REMOVE_RECURSE
  "CMakeFiles/extra_codegen.dir/Frontend.cpp.o"
  "CMakeFiles/extra_codegen.dir/Frontend.cpp.o.d"
  "CMakeFiles/extra_codegen.dir/I8086Target.cpp.o"
  "CMakeFiles/extra_codegen.dir/I8086Target.cpp.o.d"
  "CMakeFiles/extra_codegen.dir/Ibm370Target.cpp.o"
  "CMakeFiles/extra_codegen.dir/Ibm370Target.cpp.o.d"
  "CMakeFiles/extra_codegen.dir/Target.cpp.o"
  "CMakeFiles/extra_codegen.dir/Target.cpp.o.d"
  "CMakeFiles/extra_codegen.dir/VaxTarget.cpp.o"
  "CMakeFiles/extra_codegen.dir/VaxTarget.cpp.o.d"
  "libextra_codegen.a"
  "libextra_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
