# Empty compiler generated dependencies file for extra_codegen.
# This may be replaced when dependencies are built.
