file(REMOVE_RECURSE
  "libextra_isdl.a"
)
