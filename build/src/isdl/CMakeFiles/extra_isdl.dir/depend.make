# Empty dependencies file for extra_isdl.
# This may be replaced when dependencies are built.
