file(REMOVE_RECURSE
  "CMakeFiles/extra_isdl.dir/AST.cpp.o"
  "CMakeFiles/extra_isdl.dir/AST.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Equiv.cpp.o"
  "CMakeFiles/extra_isdl.dir/Equiv.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Lexer.cpp.o"
  "CMakeFiles/extra_isdl.dir/Lexer.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Parser.cpp.o"
  "CMakeFiles/extra_isdl.dir/Parser.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Printer.cpp.o"
  "CMakeFiles/extra_isdl.dir/Printer.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Traverse.cpp.o"
  "CMakeFiles/extra_isdl.dir/Traverse.cpp.o.d"
  "CMakeFiles/extra_isdl.dir/Validate.cpp.o"
  "CMakeFiles/extra_isdl.dir/Validate.cpp.o.d"
  "libextra_isdl.a"
  "libextra_isdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_isdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
