
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isdl/AST.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/AST.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/AST.cpp.o.d"
  "/root/repo/src/isdl/Equiv.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Equiv.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Equiv.cpp.o.d"
  "/root/repo/src/isdl/Lexer.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Lexer.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Lexer.cpp.o.d"
  "/root/repo/src/isdl/Parser.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Parser.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Parser.cpp.o.d"
  "/root/repo/src/isdl/Printer.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Printer.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Printer.cpp.o.d"
  "/root/repo/src/isdl/Traverse.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Traverse.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Traverse.cpp.o.d"
  "/root/repo/src/isdl/Validate.cpp" "src/isdl/CMakeFiles/extra_isdl.dir/Validate.cpp.o" "gcc" "src/isdl/CMakeFiles/extra_isdl.dir/Validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/extra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
