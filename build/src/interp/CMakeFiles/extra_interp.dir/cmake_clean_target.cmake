file(REMOVE_RECURSE
  "libextra_interp.a"
)
