file(REMOVE_RECURSE
  "CMakeFiles/extra_interp.dir/Interp.cpp.o"
  "CMakeFiles/extra_interp.dir/Interp.cpp.o.d"
  "libextra_interp.a"
  "libextra_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
