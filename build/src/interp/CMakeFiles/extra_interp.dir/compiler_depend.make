# Empty compiler generated dependencies file for extra_interp.
# This may be replaced when dependencies are built.
