//===- extra-cli.cpp - Command-line front end for EXTRA ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//   extra-cli rules [category]         list the transformation library
//   extra-cli catalog                  print the Table 1 survey
//   extra-cli descriptions             list the description library
//   extra-cli show <id>                print one description
//   extra-cli cases                    list the recorded analyses
//   extra-cli analyze <case-id> [-x]   run an analysis (-x: extension mode)
//   extra-cli suggest <cur-id> <tgt-id> propose next derivation steps
//   extra-cli export-script <case-id> <operator|instruction>
//   extra-cli replay <desc-id> <script-file>
//   extra-cli search --case <id> | <op-id> <inst-id> | --all
//                                      discover derivation scripts
//   extra-cli trace <case-id> [--out trace.jsonl]
//                                      traced single-case discovery
//   extra-cli postmortem <trace.jsonl> --against <case-id>
//                                      why the beam lost the recorded line
//   extra-cli serve --socket S --store F
//                                      run the persistent discovery service
//   extra-cli client --socket S <submit|query|suite|status|drain|shutdown>
//                                      talk to a running service
//   extra-cli client --socket S export <path>
//                                      dump the live store as a registry
//   extra-cli client --socket S metrics [--prom]
//                                      scrape the live metrics registry
//   extra-cli client --socket S watch (<job-id> | --case <id>)
//                                      stream a running job's progress
//   extra-cli profile <trace.jsonl>    self/total-time rollups from a trace
//   extra-cli benchdiff <old> <new>    attribute movement between bench runs
//   extra-cli registry build --out F   build a binding registry
//   extra-cli registry inspect <file>  list a registry's entries
//   extra-cli compile --registry <file>
//                                      differential compile-and-execute
//
//===----------------------------------------------------------------------===//

#include "analysis/Advisor.h"
#include "analysis/Derivations.h"
#include "obs/BenchDiff.h"
#include "obs/Exposition.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "obs/TraceFile.h"
#include "registry/Harness.h"
#include "registry/RegistryBuilder.h"
#include "search/BatchDriver.h"
#include "search/Checkpoint.h"
#include "search/Postmortem.h"
#include "server/Chaos.h"
#include "server/Client.h"
#include "server/MemoStore.h"
#include "server/Service.h"
#include "server/Socket.h"
#include "transform/ScriptIO.h"
#include "descriptions/Descriptions.h"
#include "isdl/Printer.h"
#include "support/FaultInjection.h"
#include "support/StringUtil.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>
#include <unistd.h>

using namespace extra;
using namespace extra::analysis;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: extra-cli <command> [args]\n"
               "  rules [category]        list the 75 transformations\n"
               "  catalog                 the Table 1 instruction survey\n"
               "  descriptions            list the description library\n"
               "  show <id>               print one description\n"
               "  cases                   list the recorded analyses\n"
               "  analyze <case-id> [-x]  run an analysis (-x extension)\n"
               "  suggest <cur> <target>  propose next derivation steps\n"
               "  export-script <case-id> <operator|instruction>\n"
               "                          dump a recorded derivation script\n"
               "  replay <desc-id> <file> apply a script file to a "
               "description\n"
               "  search --case <case-id> | <operator-id> <instruction-id>\n"
               "         | --all          autonomously discover derivation\n"
               "                          scripts (no recorded script used)\n"
               "    options: -x (extension mode), --threads N, --beam W,\n"
               "             --depth D, --nodes N, --time-ms T,\n"
               "             --trace FILE (JSONL span/event trace),\n"
               "             --trace-cap-bytes N (rotate the trace past N\n"
               "             bytes into FILE.1, FILE.2, ...; default 64\n"
               "             MiB, 0 disables rotation),\n"
               "             --metrics FILE (counter/histogram JSON),\n"
               "             --min-verified N (fail below N verified),\n"
               "             --checkpoint FILE (JSONL record per case),\n"
               "             --resume (skip cases already checkpointed),\n"
               "             --inject site=rate[,...] (seeded fault\n"
               "             injection; also env EXTRA_INJECT),\n"
               "             --inject-seed N, --no-retry (disable the\n"
               "             degraded retry of timed-out/faulted cases)\n"
               "  trace <case-id> [--out trace.jsonl]\n"
               "                          run one traced discovery (search\n"
               "                          options above apply); succeeds\n"
               "                          even when discovery fails — the\n"
               "                          trace is the product\n"
               "  postmortem <trace.jsonl> --against <case-id>\n"
               "                          replay the recorded derivation\n"
               "                          against a trace: first depth the\n"
               "                          line left the beam, the rule it\n"
               "                          needed, that rule's priors rank\n"
               "  postmortem <trace.jsonl> --partial\n"
               "                          summarize the anytime results of\n"
               "                          every failed search in the trace\n"
               "                          (closest state, script prefix,\n"
               "                          divergence) — no recorded script\n"
               "                          needed\n"
               "  serve (--socket S | --listen HOST:PORT | both) --store F\n"
               "                          run the persistent discovery\n"
               "                          service: answers repeat queries\n"
               "                          from the cross-run memo store in\n"
               "                          O(lookup), searches misses on a\n"
               "                          worker pool; --listen adds a TCP\n"
               "                          listener (port 0 = ephemeral)\n"
               "    options: --workers N, --beam/--depth/--nodes/--time-ms,\n"
               "             --no-retry, --no-watchdog, --no-compact,\n"
               "             --inject/--inject-seed, --metrics FILE,\n"
               "             --max-queued N (admission bound; overflow gets\n"
               "             a typed overloaded reply), --max-conns N,\n"
               "             --line-deadline-ms/--idle-timeout-ms/\n"
               "             --write-deadline-ms N (slow-peer eviction),\n"
               "             --max-line-bytes N\n"
               "  client (--socket S | --connect HOST:PORT) <verb> ...\n"
               "    options: --retries N, --deadline-ms N (per-request\n"
               "             budget; retries reuse the request id so a\n"
               "             resent submit never double-enqueues)\n"
               "  client ... submit <op-id> <inst-id> [-x] [--wait]\n"
               "                          [--priority N]\n"
               "  client ... submit --case <case-id> [--wait]\n"
               "  client ... query (<op-id> <inst-id> [-x] |\n"
               "                          --case <case-id>)\n"
               "  client ... suite [--min-verified N] [--expect-hits N]\n"
               "                          submit all recorded pairings and\n"
               "                          wait for verdicts\n"
               "  client ... status|shutdown|health|ready\n"
               "                          (ready exits 0 only while the\n"
               "                          server accepts new work)\n"
               "  client ... drain [--deadline MS]\n"
               "                          wait until idle; with --deadline,\n"
               "                          stop admission, finish or cancel\n"
               "                          in-flight jobs by the deadline,\n"
               "                          compact, and exit the server\n"
               "  client ... export <path>\n"
               "                          dump the live store's verified\n"
               "                          pairings as a binding-registry\n"
               "                          file at a server-side path\n"
               "  client ... metrics [--prom]\n"
               "                          [--require name[,name...]]\n"
               "                          scrape the live metrics registry\n"
               "                          (JSON, or the Prometheus text\n"
               "                          exposition with --prom; --require\n"
               "                          fails unless the named counters\n"
               "                          are nonzero)\n"
               "  client ... watch (<job-id> | --case <case-id>)\n"
               "                          stream a running job's progress:\n"
               "                          one line per tick (depth,\n"
               "                          frontier, expansions/sec, best\n"
               "                          partial distance), then the final\n"
               "                          verdict\n"
               "  chaos-proxy --listen EP --target EP [--seed N]\n"
               "              [--torn/--partial/--stall/--disconnect/\n"
               "              --garbage PER-MILLE | --all PER-MILLE]\n"
               "              [--stall-ms N]\n"
               "                          deterministic fault-injecting\n"
               "                          proxy between a protocol client\n"
               "                          and the server: tears lines,\n"
               "                          dribbles partial writes, stalls,\n"
               "                          cuts connections mid-line, and\n"
               "                          injects garbage, all seeded;\n"
               "                          SIGINT/SIGTERM prints the fired\n"
               "                          counts and exits\n"
               "  profile <trace.jsonl> [--collapsed FILE]\n"
               "                          roll a (possibly rotated) JSONL\n"
               "                          trace into self/total-time tables\n"
               "                          per span label, rule, and depth;\n"
               "                          --collapsed writes flamegraph\n"
               "                          collapsed-stack lines\n"
               "  benchdiff <old.json> <new.json> [--threshold PCT]\n"
               "                          join two BENCH_*.json files and\n"
               "                          name which benchmark and which\n"
               "                          counter moved (default threshold\n"
               "                          10%%)\n"
               "  registry build --out FILE [--recorded]\n"
               "                 [--from-scripts DIR] [--from-memo FILE]\n"
               "                 [--from-checkpoint FILE]\n"
               "                          build a binding registry from\n"
               "                          discovery artifacts (default: the\n"
               "                          recorded corpus); later sources\n"
               "                          supersede earlier by pairing key\n"
               "  registry inspect <file> list a registry file's entries\n"
               "  compile --registry <file> [--machine i8086|vax|ibm370]\n"
               "                          compile the demo program twice\n"
               "                          (registry bindings on vs\n"
               "                          decomposition-only), execute both\n"
               "                          on the simulator, require\n"
               "                          identical final state and report\n"
               "                          the cost deltas; exit 1 on any\n"
               "                          divergence\n");
  return 2;
}

int cmdRules(int argc, char **argv) {
  const transform::Registry &R = transform::Registry::instance();
  const char *Filter = argc > 2 ? argv[2] : nullptr;
  unsigned N = 0;
  for (const transform::Transformation *T : R.all()) {
    const char *Cat = transform::categoryName(T->category());
    if (Filter && std::strcmp(Filter, Cat) != 0)
      continue;
    std::printf("%-26s [%s]\n    %s\n", T->name().c_str(), Cat,
                T->description().c_str());
    ++N;
  }
  std::printf("\n%u transformation(s)%s%s\n", N,
              Filter ? " in category " : "", Filter ? Filter : "");
  return 0;
}

int cmdCatalog() {
  std::string Current;
  for (const descriptions::CatalogEntry &E : descriptions::catalog()) {
    if (E.Machine != Current) {
      Current = E.Machine;
      std::printf("\n%s (%u):\n", Current.c_str(),
                  descriptions::catalogCount(Current));
    }
    std::printf("  %-8s %s%s\n", E.Mnemonic.c_str(), E.Role.c_str(),
                E.FromManual ? "" : "   (reconstructed)");
  }
  return 0;
}

int cmdDescriptions() {
  for (const descriptions::Entry &E : descriptions::allEntries())
    std::printf("%-16s %-12s %s\n", E.Id.c_str(), E.Machine.c_str(),
                E.Title.c_str());
  return 0;
}

int cmdShow(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const char *Src = descriptions::sourceFor(argv[2]);
  if (!Src) {
    std::fprintf(stderr, "unknown description '%s' (try `extra-cli "
                         "descriptions`)\n",
                 argv[2]);
    return 1;
  }
  std::fputs(Src, stdout);
  return 0;
}

int cmdCases() {
  for (const AnalysisCase &C : table2Cases())
    std::printf("%-28s %-12s %-10s %-16s paper: %u steps\n", C.Id.c_str(),
                C.Machine.c_str(), C.Language.c_str(), C.Operation.c_str(),
                C.PaperSteps);
  for (const AnalysisCase &C : extendedCases())
    std::printf("%-28s %-12s %-10s %-16s beyond Table 2\n", C.Id.c_str(),
                C.Machine.c_str(), C.Language.c_str(),
                C.Operation.c_str());
  const AnalysisCase &M = movc3SassignCase();
  std::printf("%-28s %-12s %-10s %-16s extension mode only (§4.3)\n",
              M.Id.c_str(), M.Machine.c_str(), M.Language.c_str(),
              M.Operation.c_str());
  return 0;
}

int cmdAnalyze(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const AnalysisCase *Case = findCase(argv[2]);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s' (try `extra-cli cases`)\n",
                 argv[2]);
    return 1;
  }
  Mode M = (argc > 3 && std::strcmp(argv[3], "-x") == 0) ? Mode::Extension
                                                         : Mode::Base;
  AnalysisResult R = runAnalysis(*Case, M);
  if (!R.Succeeded) {
    std::printf("analysis FAILED after %u step(s): %s\n", R.StepsApplied,
                R.FailureReason.c_str());
    return 1;
  }
  std::printf("analysis succeeded: %u steps (operator %u + instruction "
              "%u)\n\n",
              R.StepsApplied, R.OperatorSteps, R.InstructionSteps);
  std::printf("binding:\n%s\n", R.Binding.str().c_str());
  std::printf("constraints:\n%s\n", R.Constraints.str().c_str());
  std::printf("augmented instruction:\n%s", R.AugmentedInstruction.c_str());
  return 0;
}

int cmdSuggest(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const char *CurSrc = descriptions::sourceFor(argv[2]);
  const char *TgtSrc = descriptions::sourceFor(argv[3]);
  if (!CurSrc || !TgtSrc) {
    std::fprintf(stderr, "unknown description id\n");
    return 1;
  }
  auto Current = descriptions::load(argv[2]);
  auto Target = descriptions::load(argv[3]);
  std::printf("structural distance %s -> %s: %u\n\n", argv[2], argv[3],
              structuralDistance(*Current, *Target));
  for (const Suggestion &S : suggestSteps(*Current, *Target, 10)) {
    std::printf("  %-60s (distance after: %u)\n", S.S.str().c_str(),
                S.DistanceAfter);
    // Synthesized proposals are multi-step: the distance holds only if
    // the follow-up steps are applied too.
    for (const transform::Step &F : S.Follow)
      std::printf("    then: %s\n", F.str().c_str());
  }
  return 0;
}

int cmdExportScript(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const AnalysisCase *Case = findCase(argv[2]);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s'\n", argv[2]);
    return 1;
  }
  bool Operator = !std::strcmp(argv[3], "operator");
  if (!Operator && std::strcmp(argv[3], "instruction") != 0)
    return usage();
  std::printf("# %s side of %s (paper: %u steps)\n",
              Operator ? "operator" : "instruction", Case->Id.c_str(),
              Case->PaperSteps);
  std::fputs(transform::printScript(Operator ? Case->OperatorScript
                                             : Case->InstructionScript)
                 .c_str(),
             stdout);
  return 0;
}

int cmdReplay(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const char *Src = descriptions::sourceFor(argv[2]);
  if (!Src) {
    std::fprintf(stderr, "unknown description '%s'\n", argv[2]);
    return 1;
  }
  FILE *F = std::fopen(argv[3], "rb");
  if (!F) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[3]);
    return 1;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);

  DiagnosticEngine Diags;
  auto Script = transform::parseScript(Text, Diags);
  if (!Script) {
    std::fprintf(stderr, "bad script:\n%s", Diags.str().c_str());
    return 1;
  }
  auto D = descriptions::load(argv[2]);
  transform::Engine E(std::move(*D));
  E.setVerifier(analysis::makeStepVerifier(E.constraints()));
  std::string Error;
  size_t Applied = E.applyScript(*Script, &Error);
  if (Applied != Script->size()) {
    std::fprintf(stderr, "replay stopped after %zu step(s): %s\n", Applied,
                 Error.c_str());
    return 1;
  }
  std::printf("%zu step(s) applied and differentially verified.\n\n",
              Applied);
  std::printf("%s", isdl::printDescription(E.current()).c_str());
  if (!E.constraints().empty())
    std::printf("\nconstraints:\n%s", E.constraints().str().c_str());
  return 0;
}

void printSearchStats(const extra::search::SearchStats &St) {
  std::printf("search stats: %llu nodes expanded (%.0f nodes/s), %llu "
              "generated, %llu hash hits (%.1f%% hit rate), %llu dead ends, "
              "%u round(s), %.1f ms%s\n",
              static_cast<unsigned long long>(St.NodesExpanded),
              St.nodesPerSec(),
              static_cast<unsigned long long>(St.NodesGenerated),
              static_cast<unsigned long long>(St.HashHits),
              100.0 * St.hashHitRate(),
              static_cast<unsigned long long>(St.DeadEnds), St.Rounds,
              St.WallMs, St.BudgetExhausted ? " (budget exhausted)" : "");
}

int reportDiscovery(const std::string &Label,
                    const extra::search::DiscoveryResult &R, bool Verbose,
                    double WallMs = -1) {
  const extra::search::SearchOutcome &O = R.Outcome;
  std::string Timed = Label;
  if (WallMs >= 0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " [%.1f ms]", WallMs);
    Timed += Buf;
  }
  if (!O.Found) {
    std::printf("%s: NOT FOUND — %s\n", Timed.c_str(),
                O.FailureReason.c_str());
    printSearchStats(O.Stats);
    return 1;
  }
  std::printf("%s: discovered %zu operator + %zu instruction step(s); "
              "end-to-end replay %s\n",
              Timed.c_str(), O.OperatorScript.size(),
              O.InstructionScript.size(),
              R.Verified ? "VERIFIED"
                         : ("FAILED: " + R.Replay.FailureReason).c_str());
  printSearchStats(O.Stats);
  if (Verbose) {
    std::printf("\noperator script:\n%s",
                transform::printScript(O.OperatorScript).c_str());
    std::printf("\ninstruction script:\n%s",
                transform::printScript(O.InstructionScript).c_str());
    std::printf("\nbinding:\n%s", O.Binding.str().c_str());
    if (!O.Constraints.empty())
      std::printf("\nconstraints:\n%s", O.Constraints.str().c_str());
  }
  return R.Verified ? 0 : 1;
}

int cmdSearch(int argc, char **argv) {
  extra::search::BatchOptions Opts;
  std::vector<extra::search::BatchCase> Cases;
  analysis::Mode M = Mode::Base;
  bool All = false;
  std::string CaseId, OperatorId, InstructionId;
  std::string TracePath, MetricsPath;
  uint64_t TraceCapBytes = obs::RotatingTraceSink::DefaultMaxBytes;
  uint64_t MinVerified = 0;
  bool HaveMinVerified = false;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto IntOpt = [&](uint64_t &Slot) {
      if (I + 1 >= argc)
        return false;
      Slot = std::strtoull(argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (Arg == "--case" && I + 1 < argc)
      CaseId = argv[++I];
    else if (Arg == "--all")
      All = true;
    else if (Arg == "-x")
      M = Mode::Extension;
    else if (Arg == "--threads" && IntOpt(V))
      Opts.Threads = static_cast<unsigned>(V);
    else if (Arg == "--beam" && IntOpt(V))
      Opts.Limits.BeamWidth = static_cast<unsigned>(V);
    else if (Arg == "--depth" && IntOpt(V))
      Opts.Limits.MaxDepth = static_cast<unsigned>(V);
    else if (Arg == "--nodes" && IntOpt(V))
      Opts.Limits.MaxNodes = V;
    else if (Arg == "--time-ms" && IntOpt(V))
      Opts.Limits.TimeBudgetMs = V;
    else if (Arg == "--trace" && I + 1 < argc)
      TracePath = argv[++I];
    else if (Arg == "--trace-cap-bytes" && IntOpt(V))
      TraceCapBytes = V;
    else if (Arg == "--metrics" && I + 1 < argc)
      MetricsPath = argv[++I];
    else if (Arg == "--min-verified" && IntOpt(V)) {
      MinVerified = V;
      HaveMinVerified = true;
    } else if (Arg == "--checkpoint" && I + 1 < argc)
      Opts.CheckpointPath = argv[++I];
    else if (Arg == "--resume")
      Opts.Resume = true;
    else if (Arg == "--no-retry")
      Opts.DegradedRetry = false;
    else if (Arg == "--inject" && I + 1 < argc) {
      std::string Err;
      if (!FaultInjector::instance().configure(argv[++I], &Err)) {
        std::fprintf(stderr, "bad --inject spec: %s\n", Err.c_str());
        return 2;
      }
    } else if (Arg == "--inject-seed" && IntOpt(V))
      FaultInjector::instance().setSeed(V);
    else if (Arg[0] != '-' && OperatorId.empty())
      OperatorId = Arg;
    else if (Arg[0] != '-' && InstructionId.empty())
      InstructionId = Arg;
    else
      return usage();
  }

  if (All) {
    Cases = extra::search::libraryCases();
  } else if (!CaseId.empty()) {
    const AnalysisCase *Case = findCase(CaseId);
    if (!Case) {
      std::fprintf(stderr, "unknown case '%s' (try `extra-cli cases`)\n",
                   CaseId.c_str());
      return 1;
    }
    extra::search::BatchCase B;
    B.Id = Case->Id;
    B.OperatorId = Case->OperatorId;
    B.InstructionId = Case->InstructionId;
    B.M = Case->RequiresExtension ? Mode::Extension : M;
    Cases.push_back(std::move(B));
  } else if (!OperatorId.empty() && !InstructionId.empty()) {
    extra::search::BatchCase B;
    B.Id = InstructionId + "/" + OperatorId;
    B.OperatorId = OperatorId;
    B.InstructionId = InstructionId;
    B.M = M;
    Cases.push_back(std::move(B));
  } else {
    return usage();
  }

  std::unique_ptr<obs::RotatingTraceSink> Sink;
  if (!TracePath.empty()) {
    obs::RotatingTraceSink::Options SinkOpts;
    SinkOpts.MaxBytes = TraceCapBytes;
    Sink = std::make_unique<obs::RotatingTraceSink>(TracePath, SinkOpts);
    if (!Sink->ok()) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   TracePath.c_str());
      return 1;
    }
    Opts.Limits.Trace = Sink.get();
  }
  obs::Metrics Met;
  if (!MetricsPath.empty())
    Opts.Limits.Metrics = &Met;

  if (Opts.Resume && !Opts.CheckpointPath.empty()) {
    // Surface a future-version or foreign checkpoint file as an error
    // here; the tolerant reader inside runBatch would resume from
    // nothing and silently redo the whole batch.
    auto Prior = extra::search::readCheckpointsChecked(Opts.CheckpointPath);
    if (!Prior) {
      std::fprintf(stderr, "cannot resume from '%s': %s\n",
                   Opts.CheckpointPath.c_str(),
                   Prior.fault().Message.c_str());
      return 1;
    }
  }

  extra::search::BatchStats Stats;
  std::vector<extra::search::BatchResult> Results =
      extra::search::runBatch(Cases, Opts, &Stats);

  int Rc = 0;
  for (const extra::search::BatchResult &R : Results) {
    if (Results.size() > 1)
      std::printf("----\n");
    if (R.FromCheckpoint) {
      std::printf("%s: resumed from checkpoint (%s)\n", R.Case.Id.c_str(),
                  extra::search::caseOutcomeName(R.Record.Outcome));
      Rc |= R.Record.Outcome == extra::search::CaseOutcome::Verified ? 0 : 1;
      continue;
    }
    Rc |= reportDiscovery(R.Case.Id, R.Discovery,
                          /*Verbose=*/Results.size() == 1, R.WallMs);
  }
  if (Results.size() > 1) {
    std::printf("----\n%s",
                extra::search::batchReportText(Results).c_str());
    std::printf("batch: %u/%u discovered, %u verified, %u retried, "
                "%u resumed, %u thread(s), "
                "%llu nodes, %llu hash hits, %.1f ms wall "
                "(%.1f ms summed over cases; slowest %s at %.1f ms)\n",
                Stats.Discovered, Stats.Cases, Stats.Verified, Stats.Retried,
                Stats.Resumed, Stats.ThreadsUsed,
                static_cast<unsigned long long>(Stats.NodesExpanded),
                static_cast<unsigned long long>(Stats.HashHits),
                Stats.WallMs, Stats.CaseWallMs, Stats.SlowestCase.c_str(),
                Stats.SlowestCaseMs);
  }
  if (FaultInjector::instance().armed()) {
    std::string Fired;
    for (const auto &[Site, Count] : FaultInjector::instance().firedBySite())
      Fired += " " + Site + "=" + std::to_string(Count);
    std::printf("injected faults: %llu total;%s\n",
                static_cast<unsigned long long>(
                    FaultInjector::instance().injectedTotal()),
                Fired.c_str());
  }

  if (Sink) {
    unsigned Rotations = Sink->rotations();
    std::printf("trace: %llu record(s) -> %s%s\n",
                static_cast<unsigned long long>(Sink->recordCount()),
                TracePath.c_str(),
                Rotations ? " (rotated)" : "");
    Sink.reset(); // Flush open spans before the stream closes.
  }
  if (!MetricsPath.empty()) {
    std::ofstream MO(MetricsPath);
    if (!MO) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   MetricsPath.c_str());
      return 1;
    }
    MO << Met.json() << "\n";
    std::printf("metrics: %s\n", MetricsPath.c_str());
  }
  if (HaveMinVerified && Stats.Verified < MinVerified) {
    std::fprintf(stderr,
                 "FAIL: %u verified discoveries, below the --min-verified "
                 "floor of %llu\n",
                 Stats.Verified,
                 static_cast<unsigned long long>(MinVerified));
    return 1;
  }
  return All ? 0 : Rc; // --all is a survey, not an assertion.
}

int cmdTrace(int argc, char **argv) {
  if (argc < 3 || argv[2][0] == '-')
    return usage();
  const AnalysisCase *Case = findCase(argv[2]);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s' (try `extra-cli cases`)\n",
                 argv[2]);
    return 1;
  }
  std::string Out = "trace.jsonl";
  uint64_t TraceCapBytes = obs::RotatingTraceSink::DefaultMaxBytes;
  extra::search::SearchLimits Limits;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    auto IntOpt = [&](uint64_t &Slot) {
      if (I + 1 >= argc)
        return false;
      Slot = std::strtoull(argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (Arg == "--out" && I + 1 < argc)
      Out = argv[++I];
    else if (Arg == "--trace-cap-bytes" && IntOpt(V))
      TraceCapBytes = V;
    else if (Arg == "--beam" && IntOpt(V))
      Limits.BeamWidth = static_cast<unsigned>(V);
    else if (Arg == "--depth" && IntOpt(V))
      Limits.MaxDepth = static_cast<unsigned>(V);
    else if (Arg == "--nodes" && IntOpt(V))
      Limits.MaxNodes = V;
    else if (Arg == "--time-ms" && IntOpt(V))
      Limits.TimeBudgetMs = V;
    else
      return usage();
  }

  obs::RotatingTraceSink::Options SinkOpts;
  SinkOpts.MaxBytes = TraceCapBytes;
  obs::RotatingTraceSink Sink(Out, SinkOpts);
  if (!Sink.ok()) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", Out.c_str());
    return 1;
  }
  Limits.Trace = &Sink;
  Limits.TraceLabel = Case->Id;
  extra::search::DiscoveryResult R = extra::search::discoverAndVerify(
      Case->OperatorId, Case->InstructionId, Limits,
      Case->RequiresExtension ? Mode::Extension : Mode::Base);
  // A failed discovery is the expected use of this command — the trace
  // is the product, so only I/O failures change the exit code.
  reportDiscovery(Case->Id, R, /*Verbose=*/false);
  std::printf("trace: %llu record(s) -> %s%s\n",
              static_cast<unsigned long long>(Sink.recordCount()),
              Out.c_str(), Sink.rotations() ? " (rotated)" : "");
  return Sink.ok() ? 0 : 1;
}

int cmdPostmortem(int argc, char **argv) {
  if (argc < 3 || argv[2][0] == '-')
    return usage();
  std::string TracePath = argv[2];
  std::string Against;
  bool Partial = false;
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--against") && I + 1 < argc)
      Against = argv[++I];
    else if (!std::strcmp(argv[I], "--partial"))
      Partial = true;
    else
      return usage();
  }
  if (Against.empty() && !Partial)
    return usage();
  if (Partial) {
    std::string Err;
    auto Trace = obs::readTraceSet(TracePath, &Err);
    if (!Trace) {
      std::fprintf(stderr, "bad trace: %s\n", Err.c_str());
      return 1;
    }
    std::fputs(extra::search::summarizePartial(*Trace).str().c_str(),
               stdout);
    if (Against.empty())
      return 0;
  }
  const AnalysisCase *Case = findCase(Against);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s' (try `extra-cli cases`)\n",
                 Against.c_str());
    return 1;
  }
  std::string Err;
  auto Trace = obs::readTraceSet(TracePath, &Err);
  if (!Trace) {
    std::fprintf(stderr, "bad trace: %s\n", Err.c_str());
    return 1;
  }
  extra::search::PostmortemOptions PO;
  PO.CaseFilter = Case->Id;
  extra::search::PostmortemReport Rep =
      extra::search::postmortem(*Trace, *Case, PO);
  if (!Rep.Ok && Rep.Error.find("no search span matches") == 0) {
    // The trace may predate case labels; retry unfiltered (unambiguous
    // only when the trace holds a single search).
    PO.CaseFilter.clear();
    Rep = extra::search::postmortem(*Trace, *Case, PO);
  }
  std::fputs(Rep.str().c_str(), stdout);
  return Rep.Ok ? 0 : 1;
}

int cmdServe(int argc, char **argv) {
  std::string SocketPath, ListenSpec, StorePath, MetricsPath;
  extra::server::ServiceOptions Opts;
  extra::server::ServeOptions SOpts;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto IntOpt = [&](uint64_t &Slot) {
      if (I + 1 >= argc)
        return false;
      Slot = std::strtoull(argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (Arg == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (Arg == "--listen" && I + 1 < argc)
      ListenSpec = argv[++I];
    else if (Arg == "--store" && I + 1 < argc)
      StorePath = argv[++I];
    else if (Arg == "--workers" && IntOpt(V))
      Opts.Workers = static_cast<unsigned>(V);
    else if (Arg == "--beam" && IntOpt(V))
      Opts.Limits.BeamWidth = static_cast<unsigned>(V);
    else if (Arg == "--depth" && IntOpt(V))
      Opts.Limits.MaxDepth = static_cast<unsigned>(V);
    else if (Arg == "--nodes" && IntOpt(V))
      Opts.Limits.MaxNodes = V;
    else if (Arg == "--time-ms" && IntOpt(V))
      Opts.Limits.TimeBudgetMs = V;
    else if (Arg == "--max-queued" && IntOpt(V))
      Opts.MaxQueued = V;
    else if (Arg == "--max-conns" && IntOpt(V))
      SOpts.MaxConnections = static_cast<unsigned>(V);
    else if (Arg == "--line-deadline-ms" && IntOpt(V))
      SOpts.LineDeadlineMs = static_cast<int>(V);
    else if (Arg == "--idle-timeout-ms" && IntOpt(V))
      SOpts.IdleTimeoutMs = static_cast<int>(V);
    else if (Arg == "--write-deadline-ms" && IntOpt(V))
      SOpts.WriteDeadlineMs = static_cast<int>(V);
    else if (Arg == "--max-line-bytes" && IntOpt(V))
      SOpts.MaxLineBytes = V;
    else if (Arg == "--no-retry")
      Opts.DegradedRetry = false;
    else if (Arg == "--no-watchdog")
      Opts.Watchdog = false;
    else if (Arg == "--no-compact")
      Opts.CompactOnShutdown = false;
    else if (Arg == "--metrics" && I + 1 < argc)
      MetricsPath = argv[++I];
    else if (Arg == "--inject" && I + 1 < argc) {
      std::string Err;
      if (!FaultInjector::instance().configure(argv[++I], &Err)) {
        std::fprintf(stderr, "bad --inject spec: %s\n", Err.c_str());
        return 2;
      }
    } else if (Arg == "--inject-seed" && IntOpt(V))
      FaultInjector::instance().setSeed(V);
    else
      return usage();
  }
  if ((SocketPath.empty() && ListenSpec.empty()) || StorePath.empty())
    return usage();

  Opts.StorePath = StorePath;
  auto Service = extra::server::Service::create(std::move(Opts));
  if (!Service) {
    std::fprintf(stderr, "cannot start service: %s\n",
                 Service.fault().Message.c_str());
    return 1;
  }
  std::vector<extra::server::Listener> Listeners;
  auto FailListen = [&](const std::string &Message) {
    std::fprintf(stderr, "%s\n", Message.c_str());
    for (const extra::server::Listener &L : Listeners)
      ::close(L.Fd);
    (*Service)->stop();
    return 1;
  };
  if (!SocketPath.empty()) {
    auto Fd = extra::server::listenUnix(SocketPath);
    if (!Fd)
      return FailListen(Fd.fault().Message);
    Listeners.push_back({*Fd, SocketPath});
    std::printf("listening on unix %s\n", SocketPath.c_str());
  }
  if (!ListenSpec.empty()) {
    auto Ep = extra::server::parseEndpoint(ListenSpec);
    if (!Ep)
      return FailListen(Ep.fault().Message);
    auto Fd = extra::server::listenEndpoint(*Ep);
    if (!Fd)
      return FailListen(Fd.fault().Message);
    Listeners.push_back({*Fd, Ep->Tcp ? std::string() : Ep->Path});
    if (Ep->Tcp)
      std::printf("listening on tcp %s:%u\n", Ep->Host.c_str(),
                  extra::server::localPort(*Fd));
    else
      std::printf("listening on unix %s\n", Ep->Path.c_str());
  }
  std::printf("serving (store %s, %zu cached entr%s)\n", StorePath.c_str(),
              (*Service)->store().size(),
              (*Service)->store().size() == 1 ? "y" : "ies");
  std::fflush(stdout);
  extra::server::serveLoop(Listeners, **Service, SOpts);
  (*Service)->stop();
  if (!MetricsPath.empty()) {
    std::ofstream MO(MetricsPath);
    if (MO)
      MO << (*Service)->metrics().json() << "\n";
  }
  std::printf("service stopped (%zu cached entries)\n",
              (*Service)->store().size());
  return 0;
}

void printResponse(const extra::server::Response &R) {
  std::printf("%s\n", R.Raw.c_str());
}

int cmdClient(int argc, char **argv) {
  std::string Spec, Sub;
  extra::server::ClientOptions COpts;
  std::vector<std::string> Rest;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if ((Arg == "--socket" || Arg == "--connect") && I + 1 < argc)
      Spec = argv[++I];
    else if (Arg == "--retries" && I + 1 < argc)
      COpts.MaxAttempts = static_cast<unsigned>(
          std::strtoul(argv[++I], nullptr, 10));
    else if (Arg == "--deadline-ms" && I + 1 < argc)
      COpts.RequestDeadlineMs =
          static_cast<int>(std::strtol(argv[++I], nullptr, 10));
    else if (Sub.empty() && Arg[0] != '-')
      Sub = Arg;
    else
      Rest.push_back(Arg);
  }
  if (Spec.empty() || Sub.empty())
    return usage();

  // A deadline-bounded drain can legitimately take its whole deadline;
  // give the request budget headroom past it so the client does not
  // retry a drain that is simply still draining.
  if (Sub == "drain")
    for (size_t I = 0; I + 1 < Rest.size(); ++I)
      if (Rest[I] == "--deadline") {
        int64_t D = std::strtoll(Rest[I + 1].c_str(), nullptr, 10);
        if (COpts.RequestDeadlineMs > 0 &&
            D + 30000 > COpts.RequestDeadlineMs)
          COpts.RequestDeadlineMs = static_cast<int>(D + 30000);
      }

  auto Client = extra::server::Client::connect(Spec, COpts);
  if (!Client) {
    std::fprintf(stderr, "%s\n", Client.fault().Message.c_str());
    return 1;
  }
  auto Ask = [&](const std::string &Line)
      -> std::optional<extra::server::Response> {
    auto R = (*Client)->request(Line);
    if (!R) {
      std::fprintf(stderr, "%s\n", R.fault().Message.c_str());
      return std::nullopt;
    }
    return *R;
  };

  if (Sub == "status" || Sub == "drain" || Sub == "shutdown" ||
      Sub == "health" || Sub == "ready") {
    obs::Payload P;
    P.add("cmd", Sub);
    if (Sub == "drain") {
      for (size_t I = 0; I < Rest.size(); ++I) {
        if (Rest[I] == "--deadline" && I + 1 < Rest.size())
          P.add("deadline_ms", static_cast<uint64_t>(std::strtoull(
                                   Rest[++I].c_str(), nullptr, 10)));
        else
          return usage();
      }
    } else if (!Rest.empty()) {
      return usage();
    }
    auto R = Ask("{" + P.rendered().substr(1) + "}");
    if (!R)
      return 1;
    printResponse(*R);
    if (Sub == "ready")
      return R->ok() && R->get("ready") == "true" ? 0 : 1;
    return R->ok() ? 0 : 1;
  }

  if (Sub == "export") {
    if (Rest.size() != 1)
      return usage();
    obs::Payload P;
    P.add("cmd", "export");
    P.add("path", Rest[0]);
    auto R = Ask("{" + P.rendered().substr(1) + "}");
    if (!R)
      return 1;
    printResponse(*R);
    return R->ok() ? 0 : 1;
  }

  if (Sub == "submit" || Sub == "query") {
    obs::Payload P;
    P.add("cmd", Sub);
    std::string CaseId, OperatorId, InstructionId;
    bool Wait = false;
    int Priority = 0;
    bool Extension = false;
    for (size_t I = 0; I < Rest.size(); ++I) {
      const std::string &Arg = Rest[I];
      if (Arg == "--case" && I + 1 < Rest.size())
        CaseId = Rest[++I];
      else if (Arg == "--wait")
        Wait = true;
      else if (Arg == "--priority" && I + 1 < Rest.size())
        Priority = std::atoi(Rest[++I].c_str());
      else if (Arg == "-x")
        Extension = true;
      else if (Arg[0] != '-' && OperatorId.empty())
        OperatorId = Arg;
      else if (Arg[0] != '-' && InstructionId.empty())
        InstructionId = Arg;
      else
        return usage();
    }
    if (!CaseId.empty()) {
      P.add("case", CaseId);
    } else if (!OperatorId.empty() && !InstructionId.empty()) {
      P.add("operator", OperatorId);
      P.add("instruction", InstructionId);
      if (Extension)
        P.add("mode", "extension");
    } else {
      return usage();
    }
    if (Wait)
      P.add("wait", true);
    if (Priority)
      P.add("priority", Priority);
    auto R = Ask("{" + P.rendered().substr(1) + "}");
    if (!R)
      return 1;
    printResponse(*R);
    return R->ok() ? 0 : 1;
  }

  if (Sub == "metrics") {
    bool Prom = false;
    std::string Require;
    for (size_t I = 0; I < Rest.size(); ++I) {
      if (Rest[I] == "--prom")
        Prom = true;
      else if (Rest[I] == "--require" && I + 1 < Rest.size())
        Require = Rest[++I];
      else
        return usage();
    }
    obs::Payload P;
    P.add("cmd", "metrics");
    P.add("format", Prom ? "prom" : "json");
    auto R = Ask("{" + P.rendered().substr(1) + "}");
    if (!R)
      return 1;
    if (!R->ok()) {
      printResponse(*R);
      return 1;
    }
    std::string Body = R->get("metrics");
    std::fputs(Body.c_str(), stdout);
    if (!Body.empty() && Body.back() != '\n')
      std::fputs("\n", stdout);
    if (Prom) {
      // Self-check the exposition grammar on the way through — a scrape
      // that does not parse is a CI failure, not a display problem.
      std::map<std::string, double> Samples;
      std::string Err;
      if (!obs::validateExposition(Body, Samples, &Err)) {
        std::fprintf(stderr, "FAIL: exposition does not parse: %s\n",
                     Err.c_str());
        return 1;
      }
    }
    if (!Require.empty()) {
      // Assert on the prom exposition: its samples carry the original
      // registry name as a `name` label, so requires match exactly.
      std::map<std::string, double> Samples;
      std::string PromBody = Body;
      if (!Prom) {
        obs::Payload P2;
        P2.add("cmd", "metrics");
        P2.add("format", "prom");
        auto R2 = Ask("{" + P2.rendered().substr(1) + "}");
        if (!R2 || !R2->ok())
          return 1;
        PromBody = R2->get("metrics");
      }
      std::string Err;
      if (!obs::validateExposition(PromBody, Samples, &Err)) {
        std::fprintf(stderr, "FAIL: exposition does not parse: %s\n",
                     Err.c_str());
        return 1;
      }
      for (const std::string &Name : extra::split(Require, ',')) {
        if (Name.empty())
          continue;
        std::string Tag = "name=\"" + Name + "\"";
        bool Nonzero = false;
        for (const auto &[Key, Value] : Samples)
          if (Key.find(Tag) != std::string::npos && Value > 0) {
            Nonzero = true;
            break;
          }
        if (!Nonzero) {
          std::fprintf(stderr,
                       "FAIL: required metric '%s' is missing or zero\n",
                       Name.c_str());
          return 1;
        }
      }
    }
    return 0;
  }

  if (Sub == "watch") {
    std::string CaseId, JobId;
    for (size_t I = 0; I < Rest.size(); ++I) {
      if (Rest[I] == "--case" && I + 1 < Rest.size())
        CaseId = Rest[++I];
      else if (Rest[I][0] != '-' && JobId.empty())
        JobId = Rest[I];
      else
        return usage();
    }
    if (CaseId.empty() && JobId.empty())
      return usage();
    obs::Payload P;
    P.add("cmd", "watch");
    if (!JobId.empty())
      P.add("job", static_cast<uint64_t>(
                       std::strtoull(JobId.c_str(), nullptr, 10)));
    else
      P.add("case", CaseId);
    auto R = (*Client)->requestStream(
        "{" + P.rendered().substr(1) + "}",
        [](const extra::server::Response &Tick) {
          std::printf("tick %s  depth %s  frontier %s  expanded %s  "
                      "%s exp/s  hash-hit %s  best %s\n",
                      Tick.get("tick").c_str(), Tick.get("depth").c_str(),
                      Tick.get("frontier").c_str(),
                      Tick.get("expanded").c_str(),
                      Tick.get("expansions_per_sec").c_str(),
                      Tick.get("hash_hit_rate").c_str(),
                      Tick.get("best_distance").empty()
                          ? "-"
                          : Tick.get("best_distance").c_str());
          std::fflush(stdout);
          return true;
        });
    if (!R) {
      std::fprintf(stderr, "%s\n", R.fault().Message.c_str());
      return 1;
    }
    printResponse(*R);
    return R->ok() ? 0 : 1;
  }

  if (Sub == "suite") {
    uint64_t MinVerified = 0;
    bool HaveMinVerified = false;
    int64_t ExpectHits = -1;
    for (size_t I = 0; I < Rest.size(); ++I) {
      if (Rest[I] == "--min-verified" && I + 1 < Rest.size()) {
        MinVerified = std::strtoull(Rest[++I].c_str(), nullptr, 10);
        HaveMinVerified = true;
      } else if (Rest[I] == "--expect-hits" && I + 1 < Rest.size()) {
        ExpectHits = std::strtoll(Rest[++I].c_str(), nullptr, 10);
      } else {
        return usage();
      }
    }
    unsigned Verified = 0, Cached = 0, Total = 0;
    for (const extra::search::BatchCase &C : extra::search::libraryCases()) {
      obs::Payload P;
      P.add("cmd", "submit");
      P.add("case", C.Id);
      P.add("wait", true);
      auto R = Ask("{" + P.rendered().substr(1) + "}");
      if (!R)
        return 1;
      ++Total;
      if (!R->ok()) {
        std::printf("%-28s ERROR %s\n", C.Id.c_str(),
                    R->get("error").c_str());
        continue;
      }
      bool Hit = R->get("cached") == "true";
      Cached += Hit;
      Verified += R->get("verified") == "true";
      std::printf("%-28s %-12s%s\n", C.Id.c_str(),
                  R->get("outcome").c_str(), Hit ? " (cached)" : "");
    }
    std::printf("suite: %u/%u verified, %u answered from cache\n", Verified,
                Total, Cached);
    if (HaveMinVerified && Verified < MinVerified) {
      std::fprintf(stderr,
                   "FAIL: %u verified, below the --min-verified floor of "
                   "%llu\n",
                   Verified, static_cast<unsigned long long>(MinVerified));
      return 1;
    }
    if (ExpectHits >= 0 && Cached != static_cast<uint64_t>(ExpectHits)) {
      std::fprintf(stderr,
                   "FAIL: %u cache hits, expected exactly %lld\n", Cached,
                   static_cast<long long>(ExpectHits));
      return 1;
    }
    return 0;
  }

  return usage();
}

volatile std::sig_atomic_t ChaosSignal = 0;
void onChaosSignal(int Sig) { ChaosSignal = Sig; }

int cmdChaosProxy(int argc, char **argv) {
  std::string ListenSpec, TargetSpec;
  extra::server::ChaosOptions COpts;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto IntOpt = [&](uint64_t &Slot) {
      if (I + 1 >= argc)
        return false;
      Slot = std::strtoull(argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (Arg == "--listen" && I + 1 < argc)
      ListenSpec = argv[++I];
    else if (Arg == "--target" && I + 1 < argc)
      TargetSpec = argv[++I];
    else if (Arg == "--seed" && IntOpt(V))
      COpts.Seed = V;
    else if (Arg == "--torn" && IntOpt(V))
      COpts.TornPerMille = static_cast<unsigned>(V);
    else if (Arg == "--partial" && IntOpt(V))
      COpts.PartialPerMille = static_cast<unsigned>(V);
    else if (Arg == "--stall" && IntOpt(V))
      COpts.StallPerMille = static_cast<unsigned>(V);
    else if (Arg == "--disconnect" && IntOpt(V))
      COpts.DisconnectPerMille = static_cast<unsigned>(V);
    else if (Arg == "--garbage" && IntOpt(V))
      COpts.GarbagePerMille = static_cast<unsigned>(V);
    else if (Arg == "--all" && IntOpt(V)) {
      COpts.TornPerMille = COpts.PartialPerMille = COpts.StallPerMille =
          COpts.DisconnectPerMille = COpts.GarbagePerMille =
              static_cast<unsigned>(V);
    } else if (Arg == "--stall-ms" && IntOpt(V))
      COpts.StallMs = static_cast<unsigned>(V);
    else
      return usage();
  }
  if (ListenSpec.empty() || TargetSpec.empty())
    return usage();
  auto Listen = extra::server::parseEndpoint(ListenSpec);
  auto Target = extra::server::parseEndpoint(TargetSpec);
  if (!Listen || !Target) {
    std::fprintf(stderr, "%s\n",
                 (!Listen ? Listen.fault() : Target.fault()).Message.c_str());
    return 1;
  }
  auto Proxy =
      extra::server::ChaosProxy::start(*Listen, std::move(*Target), COpts);
  if (!Proxy) {
    std::fprintf(stderr, "cannot start chaos proxy: %s\n",
                 Proxy.fault().Message.c_str());
    return 1;
  }
  if (Listen->Tcp)
    std::printf("chaos proxy on tcp %s:%u -> %s (seed %llu)\n",
                Listen->Host.c_str(), (*Proxy)->port(), TargetSpec.c_str(),
                static_cast<unsigned long long>(COpts.Seed));
  else
    std::printf("chaos proxy on unix %s -> %s (seed %llu)\n",
                Listen->Path.c_str(), TargetSpec.c_str(),
                static_cast<unsigned long long>(COpts.Seed));
  std::fflush(stdout);

  std::signal(SIGINT, onChaosSignal);
  std::signal(SIGTERM, onChaosSignal);
  while (!ChaosSignal)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  extra::server::ChaosCounts C = (*Proxy)->counts();
  (*Proxy)->stop();
  std::printf("chaos proxy stopped: %llu connections, %llu lines, "
              "%llu faults fired (torn %llu, partial %llu, stall %llu, "
              "disconnect %llu, garbage %llu)\n",
              static_cast<unsigned long long>(C.Connections),
              static_cast<unsigned long long>(C.Lines),
              static_cast<unsigned long long>(C.fired()),
              static_cast<unsigned long long>(C.Torn),
              static_cast<unsigned long long>(C.Partial),
              static_cast<unsigned long long>(C.Stalls),
              static_cast<unsigned long long>(C.Disconnects),
              static_cast<unsigned long long>(C.Garbage));
  return 0;
}

int cmdProfile(int argc, char **argv) {
  if (argc < 3 || argv[2][0] == '-')
    return usage();
  std::string TracePath = argv[2];
  std::string CollapsedPath;
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--collapsed") && I + 1 < argc)
      CollapsedPath = argv[++I];
    else
      return usage();
  }
  std::string Err;
  auto Trace = obs::readTraceSet(TracePath, &Err);
  if (!Trace) {
    std::fprintf(stderr, "bad trace: %s\n", Err.c_str());
    return 1;
  }
  obs::ProfileReport Rep = obs::profileTrace(*Trace);
  std::fputs(Rep.str().c_str(), stdout);
  if (!CollapsedPath.empty()) {
    std::ofstream OS(CollapsedPath);
    if (!OS) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   CollapsedPath.c_str());
      return 1;
    }
    OS << obs::collapsedStacks(*Trace);
    std::printf("collapsed stacks -> %s\n", CollapsedPath.c_str());
  }
  return 0;
}

int cmdBenchdiff(int argc, char **argv) {
  if (argc < 4 || argv[2][0] == '-' || argv[3][0] == '-')
    return usage();
  double Threshold = 0.10;
  for (int I = 4; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--threshold") && I + 1 < argc)
      Threshold = std::strtod(argv[++I], nullptr) / 100.0;
    else
      return usage();
  }
  auto ReadSide = [](const char *Path)
      -> std::optional<std::vector<obs::BenchRecord>> {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Path);
      return std::nullopt;
    }
    std::string Err;
    auto R = obs::readBenchFile(In, &Err);
    if (!R)
      std::fprintf(stderr, "%s: %s\n", Path, Err.c_str());
    return R;
  };
  auto Old = ReadSide(argv[2]);
  if (!Old)
    return 2;
  auto New = ReadSide(argv[3]);
  if (!New)
    return 2;
  obs::BenchDiffReport Rep = obs::diffBenches(*Old, *New, Threshold);
  std::fputs(Rep.str().c_str(), stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// registry build | inspect, compile --registry
//===----------------------------------------------------------------------===//

void printBuildNotes(const std::vector<extra::registry::BuildNote> &Notes) {
  for (const auto &N : Notes)
    std::fprintf(stderr, "note: %s: %s\n", N.CaseId.c_str(),
                 N.Detail.c_str());
}

int cmdRegistry(int argc, char **argv) {
  using namespace extra::registry;
  if (argc < 3)
    return usage();
  std::string Sub = argv[2];

  if (Sub == "build") {
    std::string Out;
    bool Recorded = false;
    // (kind, path) in command-line order: later imports supersede
    // earlier ones per pairing key.
    std::vector<std::pair<std::string, std::string>> Sources;
    for (int I = 3; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--out" && I + 1 < argc)
        Out = argv[++I];
      else if (Arg == "--recorded")
        Recorded = true;
      else if (Arg == "--from-scripts" && I + 1 < argc)
        Sources.push_back({"scripts", argv[++I]});
      else if (Arg == "--from-memo" && I + 1 < argc)
        Sources.push_back({"memo", argv[++I]});
      else if (Arg == "--from-checkpoint" && I + 1 < argc)
        Sources.push_back({"checkpoint", argv[++I]});
      else
        return usage();
    }
    if (Out.empty())
      return usage();
    if (Sources.empty())
      Recorded = true; // No artifact named: the built-in corpus.

    RegistryBuilder B;
    auto Report = [&](const char *Kind, const Expected<unsigned> &N) {
      if (!N) {
        std::fprintf(stderr, "%s import failed: %s\n", Kind,
                     N.fault().Message.c_str());
        return false;
      }
      std::printf("%-12s %u pairings admitted\n", Kind, *N);
      return true;
    };
    if (Recorded && !Report("recorded", B.addRecordedCases()))
      return 1;
    for (const auto &[Kind, Path] : Sources) {
      Expected<unsigned> N =
          Kind == "scripts"
              ? B.importScriptsDir(Path)
              : Kind == "memo" ? B.importMemoFile(Path)
                               : B.importCheckpoint(Path);
      if (!Report(Kind.c_str(), N))
        return 1;
    }
    printBuildNotes(B.notes());
    auto Saved = B.registry().save(Out);
    if (!Saved) {
      std::fprintf(stderr, "%s\n", Saved.fault().Message.c_str());
      return 1;
    }
    std::printf("wrote %zu entries to %s\n", B.registry().size(),
                Out.c_str());
    return 0;
  }

  if (Sub == "inspect") {
    if (argc < 4)
      return usage();
    auto R = Registry::load(argv[3]);
    if (!R) {
      std::fprintf(stderr, "%s\n", R.fault().Message.c_str());
      return 1;
    }
    std::printf("%zu entries in %s\n", R->size(), argv[3]);
    for (const RegistryEntry *E : R->entries()) {
      std::printf("%s  %-30s %-7s %-10s %-10s %s\n", E->Key.c_str(),
                  E->AnalysisId.c_str(), E->Machine.c_str(),
                  E->Op.empty() ? "(no-op)" : E->Op.c_str(),
                  E->Source.c_str(), analysis::modeName(E->M));
      for (const std::string &Line : extra::split(E->Constraints, '\n'))
        if (!Line.empty())
          std::printf("    %s\n", Line.c_str());
    }
    return 0;
  }

  return usage();
}

int cmdCompile(int argc, char **argv) {
  using namespace extra::registry;
  std::string RegPath, MachineFilter;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--registry" && I + 1 < argc)
      RegPath = argv[++I];
    else if (Arg == "--machine" && I + 1 < argc)
      MachineFilter = argv[++I];
    else
      return usage();
  }
  if (RegPath.empty())
    return usage();
  if (!MachineFilter.empty() && !machineFromName(MachineFilter)) {
    std::fprintf(stderr, "unknown machine '%s'\n", MachineFilter.c_str());
    return usage();
  }
  auto R = Registry::load(RegPath);
  if (!R) {
    std::fprintf(stderr, "%s\n", R.fault().Message.c_str());
    return 1;
  }

  bool AllPass = true;
  for (MachineKind MK : allMachines()) {
    if (!MachineFilter.empty() && MachineFilter != machineName(MK))
      continue;
    std::vector<CompileNote> Notes;
    DifferentialReport Rep =
        runDifferential(MK, *R, demoProgram(), demoMemory(), &Notes);
    std::printf("%s", formatReport(Rep).c_str());
    for (const CompileNote &N : Notes)
      std::printf("  note: %s: %s\n", N.CaseId.c_str(), N.Detail.c_str());
    if (!Rep.passes()) {
      AllPass = false;
      std::printf("  FAIL: %s\n",
                  !Rep.StatesMatch
                      ? "states diverged"
                      : (Rep.WithRegistry.Exotic == 0
                             ? "no exotic emission from the registry"
                             : "not strictly fewer instruction "
                               "dispatches"));
    }
  }
  return AllPass ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  // Arm the fault injector from the environment before any command runs
  // (the `search --inject` flag layers on top of this).
  std::string InjectErr;
  if (!FaultInjector::instance().configureFromEnv(&InjectErr)) {
    std::fprintf(stderr, "bad EXTRA_INJECT: %s\n", InjectErr.c_str());
    return 2;
  }
  const char *Cmd = argv[1];
  if (!std::strcmp(Cmd, "rules"))
    return cmdRules(argc, argv);
  if (!std::strcmp(Cmd, "catalog"))
    return cmdCatalog();
  if (!std::strcmp(Cmd, "descriptions"))
    return cmdDescriptions();
  if (!std::strcmp(Cmd, "show"))
    return cmdShow(argc, argv);
  if (!std::strcmp(Cmd, "cases"))
    return cmdCases();
  if (!std::strcmp(Cmd, "analyze"))
    return cmdAnalyze(argc, argv);
  if (!std::strcmp(Cmd, "suggest"))
    return cmdSuggest(argc, argv);
  if (!std::strcmp(Cmd, "export-script"))
    return cmdExportScript(argc, argv);
  if (!std::strcmp(Cmd, "replay"))
    return cmdReplay(argc, argv);
  if (!std::strcmp(Cmd, "search"))
    return cmdSearch(argc, argv);
  if (!std::strcmp(Cmd, "trace"))
    return cmdTrace(argc, argv);
  if (!std::strcmp(Cmd, "postmortem"))
    return cmdPostmortem(argc, argv);
  if (!std::strcmp(Cmd, "profile"))
    return cmdProfile(argc, argv);
  if (!std::strcmp(Cmd, "benchdiff"))
    return cmdBenchdiff(argc, argv);
  if (!std::strcmp(Cmd, "serve"))
    return cmdServe(argc, argv);
  if (!std::strcmp(Cmd, "client"))
    return cmdClient(argc, argv);
  if (!std::strcmp(Cmd, "chaos-proxy"))
    return cmdChaosProxy(argc, argv);
  if (!std::strcmp(Cmd, "registry"))
    return cmdRegistry(argc, argv);
  if (!std::strcmp(Cmd, "compile"))
    return cmdCompile(argc, argv);
  return usage();
}
