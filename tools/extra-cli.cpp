//===- extra-cli.cpp - Command-line front end for EXTRA ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//   extra-cli rules [category]         list the transformation library
//   extra-cli catalog                  print the Table 1 survey
//   extra-cli descriptions             list the description library
//   extra-cli show <id>                print one description
//   extra-cli cases                    list the recorded analyses
//   extra-cli analyze <case-id> [-x]   run an analysis (-x: extension mode)
//   extra-cli suggest <cur-id> <tgt-id> propose next derivation steps
//   extra-cli export-script <case-id> <operator|instruction>
//   extra-cli replay <desc-id> <script-file>
//
//===----------------------------------------------------------------------===//

#include "analysis/Advisor.h"
#include "analysis/Derivations.h"
#include "transform/ScriptIO.h"
#include "descriptions/Descriptions.h"
#include "isdl/Printer.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <cstring>

using namespace extra;
using namespace extra::analysis;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: extra-cli <command> [args]\n"
               "  rules [category]        list the 75 transformations\n"
               "  catalog                 the Table 1 instruction survey\n"
               "  descriptions            list the description library\n"
               "  show <id>               print one description\n"
               "  cases                   list the recorded analyses\n"
               "  analyze <case-id> [-x]  run an analysis (-x extension)\n"
               "  suggest <cur> <target>  propose next derivation steps\n"
               "  export-script <case-id> <operator|instruction>\n"
               "                          dump a recorded derivation script\n"
               "  replay <desc-id> <file> apply a script file to a "
               "description\n");
  return 2;
}

int cmdRules(int argc, char **argv) {
  const transform::Registry &R = transform::Registry::instance();
  const char *Filter = argc > 2 ? argv[2] : nullptr;
  unsigned N = 0;
  for (const transform::Transformation *T : R.all()) {
    const char *Cat = transform::categoryName(T->category());
    if (Filter && std::strcmp(Filter, Cat) != 0)
      continue;
    std::printf("%-26s [%s]\n    %s\n", T->name().c_str(), Cat,
                T->description().c_str());
    ++N;
  }
  std::printf("\n%u transformation(s)%s%s\n", N,
              Filter ? " in category " : "", Filter ? Filter : "");
  return 0;
}

int cmdCatalog() {
  std::string Current;
  for (const descriptions::CatalogEntry &E : descriptions::catalog()) {
    if (E.Machine != Current) {
      Current = E.Machine;
      std::printf("\n%s (%u):\n", Current.c_str(),
                  descriptions::catalogCount(Current));
    }
    std::printf("  %-8s %s%s\n", E.Mnemonic.c_str(), E.Role.c_str(),
                E.FromManual ? "" : "   (reconstructed)");
  }
  return 0;
}

int cmdDescriptions() {
  for (const descriptions::Entry &E : descriptions::allEntries())
    std::printf("%-16s %-12s %s\n", E.Id.c_str(), E.Machine.c_str(),
                E.Title.c_str());
  return 0;
}

int cmdShow(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const char *Src = descriptions::sourceFor(argv[2]);
  if (!Src) {
    std::fprintf(stderr, "unknown description '%s' (try `extra-cli "
                         "descriptions`)\n",
                 argv[2]);
    return 1;
  }
  std::fputs(Src, stdout);
  return 0;
}

int cmdCases() {
  for (const AnalysisCase &C : table2Cases())
    std::printf("%-28s %-12s %-10s %-16s paper: %u steps\n", C.Id.c_str(),
                C.Machine.c_str(), C.Language.c_str(), C.Operation.c_str(),
                C.PaperSteps);
  for (const AnalysisCase &C : extendedCases())
    std::printf("%-28s %-12s %-10s %-16s beyond Table 2\n", C.Id.c_str(),
                C.Machine.c_str(), C.Language.c_str(),
                C.Operation.c_str());
  const AnalysisCase &M = movc3SassignCase();
  std::printf("%-28s %-12s %-10s %-16s extension mode only (§4.3)\n",
              M.Id.c_str(), M.Machine.c_str(), M.Language.c_str(),
              M.Operation.c_str());
  return 0;
}

int cmdAnalyze(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const AnalysisCase *Case = findCase(argv[2]);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s' (try `extra-cli cases`)\n",
                 argv[2]);
    return 1;
  }
  Mode M = (argc > 3 && std::strcmp(argv[3], "-x") == 0) ? Mode::Extension
                                                         : Mode::Base;
  AnalysisResult R = runAnalysis(*Case, M);
  if (!R.Succeeded) {
    std::printf("analysis FAILED after %u step(s): %s\n", R.StepsApplied,
                R.FailureReason.c_str());
    return 1;
  }
  std::printf("analysis succeeded: %u steps (operator %u + instruction "
              "%u)\n\n",
              R.StepsApplied, R.OperatorSteps, R.InstructionSteps);
  std::printf("binding:\n%s\n", R.Binding.str().c_str());
  std::printf("constraints:\n%s\n", R.Constraints.str().c_str());
  std::printf("augmented instruction:\n%s", R.AugmentedInstruction.c_str());
  return 0;
}

int cmdSuggest(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const char *CurSrc = descriptions::sourceFor(argv[2]);
  const char *TgtSrc = descriptions::sourceFor(argv[3]);
  if (!CurSrc || !TgtSrc) {
    std::fprintf(stderr, "unknown description id\n");
    return 1;
  }
  auto Current = descriptions::load(argv[2]);
  auto Target = descriptions::load(argv[3]);
  std::printf("structural distance %s -> %s: %u\n\n", argv[2], argv[3],
              structuralDistance(*Current, *Target));
  for (const Suggestion &S : suggestSteps(*Current, *Target, 10))
    std::printf("  %-60s (distance after: %u)\n", S.S.str().c_str(),
                S.DistanceAfter);
  return 0;
}

int cmdExportScript(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const AnalysisCase *Case = findCase(argv[2]);
  if (!Case) {
    std::fprintf(stderr, "unknown case '%s'\n", argv[2]);
    return 1;
  }
  bool Operator = !std::strcmp(argv[3], "operator");
  if (!Operator && std::strcmp(argv[3], "instruction") != 0)
    return usage();
  std::printf("# %s side of %s (paper: %u steps)\n",
              Operator ? "operator" : "instruction", Case->Id.c_str(),
              Case->PaperSteps);
  std::fputs(transform::printScript(Operator ? Case->OperatorScript
                                             : Case->InstructionScript)
                 .c_str(),
             stdout);
  return 0;
}

int cmdReplay(int argc, char **argv) {
  if (argc < 4)
    return usage();
  const char *Src = descriptions::sourceFor(argv[2]);
  if (!Src) {
    std::fprintf(stderr, "unknown description '%s'\n", argv[2]);
    return 1;
  }
  FILE *F = std::fopen(argv[3], "rb");
  if (!F) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[3]);
    return 1;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);

  DiagnosticEngine Diags;
  auto Script = transform::parseScript(Text, Diags);
  if (!Script) {
    std::fprintf(stderr, "bad script:\n%s", Diags.str().c_str());
    return 1;
  }
  auto D = descriptions::load(argv[2]);
  transform::Engine E(std::move(*D));
  E.setVerifier(analysis::makeStepVerifier(E.constraints()));
  std::string Error;
  size_t Applied = E.applyScript(*Script, &Error);
  if (Applied != Script->size()) {
    std::fprintf(stderr, "replay stopped after %zu step(s): %s\n", Applied,
                 Error.c_str());
    return 1;
  }
  std::printf("%zu step(s) applied and differentially verified.\n\n",
              Applied);
  std::printf("%s", isdl::printDescription(E.current()).c_str());
  if (!E.constraints().empty())
    std::printf("\nconstraints:\n%s", E.constraints().str().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  const char *Cmd = argv[1];
  if (!std::strcmp(Cmd, "rules"))
    return cmdRules(argc, argv);
  if (!std::strcmp(Cmd, "catalog"))
    return cmdCatalog();
  if (!std::strcmp(Cmd, "descriptions"))
    return cmdDescriptions();
  if (!std::strcmp(Cmd, "show"))
    return cmdShow(argc, argv);
  if (!std::strcmp(Cmd, "cases"))
    return cmdCases();
  if (!std::strcmp(Cmd, "analyze"))
    return cmdAnalyze(argc, argv);
  if (!std::strcmp(Cmd, "suggest"))
    return cmdSuggest(argc, argv);
  if (!std::strcmp(Cmd, "export-script"))
    return cmdExportScript(argc, argv);
  if (!std::strcmp(Cmd, "replay"))
    return cmdReplay(argc, argv);
  return usage();
}
