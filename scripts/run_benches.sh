#!/usr/bin/env bash
# Runs every bench_* binary and collects the BENCH_JSON summary lines
# (bench/BenchSupport.h) into one JSONL file.
#
# usage: scripts/run_benches.sh [build-dir] [out-file]
#   build-dir  defaults to ./build
#   out-file   defaults to <build-dir>/bench-summary.jsonl
#
# The full console output of each suite still goes to stdout; the JSONL
# file holds one object per benchmark run:
#   {"bench":"<binary>","name":"<benchmark>","iterations":N,
#    "ns_per_op":X,"counters":{...}}
# A crashed or failing suite contributes an error record instead:
#   {"bench":"<binary>","error":"exited <code>"}
# and fails the script, so CI cannot mistake a partial sweep for a full
# one.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-${BUILD_DIR}/bench-summary.jsonl}"

if [ ! -d "${BUILD_DIR}" ]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  exit 2
fi

BENCHES=$(find "${BUILD_DIR}" -maxdepth 2 -name 'bench_*' -type f -perm -u+x |
          sort)
if [ -z "${BENCHES}" ]; then
  echo "error: no bench_* binaries under '${BUILD_DIR}' (build first)" >&2
  exit 2
fi

TMP=$(mktemp)
trap 'rm -f "${TMP}" "${TMP}.lines"' EXIT

: > "${OUT}"
STATUS=0
for B in ${BENCHES}; do
  NAME=$(basename "${B}")
  echo "==== ${NAME} ===="
  # Run to a temp file first: the exit code must be the binary's own,
  # never a pipeline stage's, and a crash mid-output must not leave torn
  # BENCH_JSON lines in the summary.
  RC=0
  "${B}" > "${TMP}" 2>&1 || RC=$?
  cat "${TMP}"
  if [ "${RC}" -ne 0 ]; then
    echo "error: ${NAME} exited ${RC}" >&2
    printf '{"bench":"%s","error":"exited %d"}\n' "${NAME}" "${RC}" \
      >> "${OUT}"
    STATUS=1
    continue
  fi
  # grep exits 1 on a suite that emits no summaries; that is not an
  # error (some suites are report-only).
  grep '^BENCH_JSON ' "${TMP}" | sed 's/^BENCH_JSON //' > "${TMP}.lines" ||
    true
  # Schema check before admission: every summary line must be a one-line
  # JSON object carrying the four required keys with numeric iterations
  # and ns_per_op. A malformed line names its binary and fails the
  # script — a torn or drifted emitter must not poison the summary that
  # benchdiff and the perf gate consume.
  LINENO_IN_BENCH=0
  while IFS= read -r LINE; do
    LINENO_IN_BENCH=$((LINENO_IN_BENCH + 1))
    [ -z "${LINE}" ] && continue
    OK=1
    case "${LINE}" in
      \{*\}) ;;
      *) OK=0 ;;
    esac
    echo "${LINE}" | grep -q '"bench":"[^"]*"' || OK=0
    echo "${LINE}" | grep -q '"name":"[^"]*"' || OK=0
    echo "${LINE}" | grep -Eq '"iterations":[0-9]+' || OK=0
    echo "${LINE}" | grep -Eq '"ns_per_op":[0-9]+(\.[0-9eE+-]+)?' || OK=0
    if [ "${OK}" -ne 1 ]; then
      echo "error: ${NAME}: BENCH_JSON line ${LINENO_IN_BENCH} fails the" \
           "schema (bench/name/iterations/ns_per_op): ${LINE}" >&2
      STATUS=1
    fi
  done < "${TMP}.lines"
  cat "${TMP}.lines" >> "${OUT}"
  rm -f "${TMP}.lines"
done

echo "collected $(wc -l < "${OUT}") benchmark summaries -> ${OUT}"
exit "${STATUS}"
