#!/usr/bin/env bash
# Runs every bench_* binary and collects the BENCH_JSON summary lines
# (bench/BenchSupport.h) into one JSONL file.
#
# usage: scripts/run_benches.sh [build-dir] [out-file]
#   build-dir  defaults to ./build
#   out-file   defaults to <build-dir>/bench-summary.jsonl
#
# The full console output of each suite still goes to stdout; the JSONL
# file holds one object per benchmark run:
#   {"bench":"<binary>","name":"<benchmark>","iterations":N,
#    "ns_per_op":X,"counters":{...}}
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-${BUILD_DIR}/bench-summary.jsonl}"

if [ ! -d "${BUILD_DIR}" ]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  exit 2
fi

BENCHES=$(find "${BUILD_DIR}" -maxdepth 2 -name 'bench_*' -type f -perm -u+x |
          sort)
if [ -z "${BENCHES}" ]; then
  echo "error: no bench_* binaries under '${BUILD_DIR}' (build first)" >&2
  exit 2
fi

: > "${OUT}"
STATUS=0
for B in ${BENCHES}; do
  echo "==== $(basename "${B}") ===="
  # tee keeps the human-readable report visible while the grep peels off
  # the machine-readable lines; `sed` strips the prefix so the file is
  # plain JSONL.
  if ! "${B}" | tee /dev/stderr |
      grep '^BENCH_JSON ' | sed 's/^BENCH_JSON //' >> "${OUT}"; then
    # grep finding no lines is only fatal if the binary itself failed.
    RC=${PIPESTATUS[0]}
    if [ "${RC}" -ne 0 ]; then
      echo "error: $(basename "${B}") exited ${RC}" >&2
      STATUS=1
    fi
  fi
done

echo "collected $(wc -l < "${OUT}") benchmark summaries -> ${OUT}"
exit "${STATUS}"
