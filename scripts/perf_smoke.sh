#!/usr/bin/env bash
# CI perf-smoke gate for the searcher hot path.
#
# Runs the 14-pairing discovery report (bench_search_discovery) and
# compares its suite-level `search.expansions_per_sec` against the
# committed pre-COW baseline (bench/baselines/search-suite-pre-cow.json,
# measured before the hash-consed copy-on-write AST layer landed). The
# gate fails below MIN_RATIO x the stored baseline — default 3, while
# the PR landed at ~8x, so a CI runner more than twice as slow as the
# baseline machine still passes and a real regression still fails.
#
# The same run also prints the benchExpansionThroughput/{cow,legacy}
# in-binary A/B (reported informationally): LegacyHotPath reproduces the
# pre-COW *decision-path* costs — per-attempt and per-child clones,
# re-walked fingerprints, map-based distances, no caches, inline
# pre-table verification — but cannot opt out of the arena-allocated
# node representation itself, so its ratio understates the end-to-end
# speedup and is not gated.
#
# usage: scripts/perf_smoke.sh [build-dir] [min-ratio]
set -euo pipefail

BUILD_DIR="${1:-build}"
MIN_RATIO="${2:-3}"
BIN="${BUILD_DIR}/bench/bench_search_discovery"
BASELINE="$(dirname "$0")/../bench/baselines/search-suite-pre-cow.json"

if [ ! -x "${BIN}" ]; then
  echo "error: ${BIN} not found (build first)" >&2
  exit 2
fi
if [ ! -f "${BASELINE}" ]; then
  echo "error: baseline ${BASELINE} not found" >&2
  exit 2
fi

TMP=$(mktemp)
trap 'rm -f "${TMP}"' EXIT

"${BIN}" --benchmark_filter='benchExpansionThroughput' > "${TMP}" 2>&1 ||
  { cat "${TMP}"; echo "error: bench binary failed" >&2; exit 2; }

counter() { # counter <file-or-grep-source> <name-filter> <counter-key>
  grep "^BENCH_JSON " "$1" | grep "\"$2\"" |
    sed "s/.*\"$3\":\([0-9.eE+-]*\).*/\1/" | head -1
}

FRESH=$(counter "${TMP}" "discoveryReport/suite" "search.expansions_per_sec")
BASE=$(sed -n 's/.*"search.expansions_per_sec": *\([0-9.]*\).*/\1/p' \
  "${BASELINE}" | head -1)
COW=$(counter "${TMP}" "benchExpansionThroughput/cow" \
  "search.expansions_per_sec")
LEGACY=$(counter "${TMP}" "benchExpansionThroughput/legacy" \
  "search.expansions_per_sec")

if [ -z "${FRESH}" ] || [ -z "${BASE}" ]; then
  cat "${TMP}"
  echo "error: missing search.expansions_per_sec (suite or baseline)" >&2
  exit 2
fi

if [ -n "${COW}" ] && [ -n "${LEGACY}" ]; then
  awk -v c="${COW}" -v l="${LEGACY}" 'BEGIN {
    printf "perf-smoke: in-binary A/B cow=%.1f legacy=%.1f exp/s (%.2fx, informational)\n",
           c, l, (l > 0) ? c / l : 0; }'
fi

echo "perf-smoke: suite=${FRESH} exp/s, pre-COW baseline=${BASE} exp/s"
awk -v f="${FRESH}" -v b="${BASE}" -v m="${MIN_RATIO}" 'BEGIN {
  r = (b > 0) ? f / b : 0;
  printf "perf-smoke: ratio %.2fx (gate: >= %sx)\n", r, m;
  exit (r >= m) ? 0 : 1;
}' || {
  echo "error: searcher hot path regressed below ${MIN_RATIO}x baseline" >&2
  # Attribution: name which benchmark and which phase counter moved,
  # not just the one gated ratio. The committed BENCH_*.json is the old
  # side; this run's summary lines are the new side.
  CLI="${BUILD_DIR}/tools/extra-cli"
  COMMITTED=$(ls "$(dirname "$0")"/../BENCH_*.json 2>/dev/null | head -1)
  if [ -x "${CLI}" ] && [ -n "${COMMITTED}" ]; then
    grep '^BENCH_JSON ' "${TMP}" | sed 's/^BENCH_JSON //' > "${TMP}.new" ||
      true
    echo "perf-smoke: regression attribution vs $(basename "${COMMITTED}"):"
    "${CLI}" benchdiff "${COMMITTED}" "${TMP}.new" || true
    rm -f "${TMP}.new"
  fi
  exit 1
}
