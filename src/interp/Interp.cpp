//===- Interp.cpp - Concrete interpreter for ISDL descriptions --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "isdl/Printer.h"
#include "support/FaultInjection.h"

using namespace extra;
using namespace extra::interp;
using namespace extra::isdl;

namespace {

/// Applies the declared width of \p T to \p V (no-op for unbounded types).
int64_t maskToType(int64_t V, const TypeRef &T) {
  unsigned W = T.widthInBits();
  if (W == 0 || W >= 64)
    return V;
  return V & ((int64_t(1) << W) - 1);
}

class Evaluator {
public:
  Evaluator(const Description &D, const std::vector<int64_t> &Inputs,
            const Memory &InitialMemory, const ExecOptions &Opts)
      : D(D), Inputs(Inputs), Opts(Opts) {
    Result.FinalMemory = InitialMemory;
  }

  ExecResult run() {
    const Routine *Entry = D.entryRoutine();
    if (!Entry) {
      fail("description has no entry routine");
      return std::move(Result);
    }
    // Every declared register/variable starts at zero.
    for (const Decl *Dl : D.decls())
      Vars[Dl->Name] = 0;

    int64_t Unused = 0;
    execRoutine(*Entry, Unused);
    if (Result.Error.empty())
      Result.Ok = true;
    return std::move(Result);
  }

private:
  enum class Flow { Next, Exit };

  void fail(const std::string &Message,
            FaultCategory C = FaultCategory::None) {
    if (Result.Error.empty()) {
      Result.Error = Message;
      Result.Category = C;
    }
  }
  bool failed() const { return !Result.Error.empty(); }

  void execRoutine(const Routine &R, int64_t &ReturnValue) {
    // Fresh return accumulator per invocation; the routine's own name is
    // bound to it while the body runs.
    auto Saved = Vars.find(R.Name);
    bool HadSaved = Saved != Vars.end();
    int64_t SavedValue = HadSaved ? Saved->second : 0;
    Vars[R.Name] = 0;

    Flow F = execStmts(R.Body);
    if (F == Flow::Exit)
      fail("exit_when escaped routine '" + R.Name + "'");
    ReturnValue = maskToType(Vars[R.Name], R.ResultType);

    if (HadSaved)
      Vars[R.Name] = SavedValue;
    else
      Vars.erase(R.Name);
  }

  Flow execStmts(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts) {
      Flow F = execStmt(*S);
      if (failed())
        return Flow::Next;
      if (F == Flow::Exit)
        return Flow::Exit;
    }
    return Flow::Next;
  }

  Flow execStmt(const Stmt &S) {
    if (++Result.Steps > Opts.MaxSteps) {
      fail("step limit exceeded (possible non-terminating loop)",
           FaultCategory::InterpBudget);
      return Flow::Next;
    }
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      int64_t V = eval(*A->getValue());
      if (failed())
        return Flow::Next;
      if (const auto *M = dyn_cast<MemRef>(A->getTarget())) {
        int64_t Addr = eval(*M->getAddress());
        if (failed())
          return Flow::Next;
        Result.FinalMemory[static_cast<uint64_t>(Addr)] =
            static_cast<uint8_t>(V & 0xFF);
      } else {
        storeVar(cast<VarRef>(A->getTarget())->getName(), V);
      }
      return Flow::Next;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      int64_t C = eval(*I->getCond());
      if (failed())
        return Flow::Next;
      return execStmts(C != 0 ? I->getThen() : I->getElse());
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(&S);
      for (;;) {
        Flow F = execStmts(R->getBody());
        if (failed())
          return Flow::Next;
        if (F == Flow::Exit)
          return Flow::Next; // exit_when leaves only this loop.
      }
    }
    case Stmt::Kind::ExitWhen: {
      int64_t C = eval(*cast<ExitWhenStmt>(&S)->getCond());
      if (failed())
        return Flow::Next;
      return C != 0 ? Flow::Exit : Flow::Next;
    }
    case Stmt::Kind::Input: {
      const auto *In = cast<InputStmt>(&S);
      for (const std::string &T : In->getTargets()) {
        if (NextInput >= Inputs.size()) {
          fail("input exhausted: operand '" + T + "' has no value");
          return Flow::Next;
        }
        storeVar(T, Inputs[NextInput++]);
      }
      return Flow::Next;
    }
    case Stmt::Kind::Output: {
      const auto *O = cast<OutputStmt>(&S);
      for (const ExprPtr &V : O->getValues()) {
        int64_t X = eval(*V);
        if (failed())
          return Flow::Next;
        Result.Outputs.push_back(X);
      }
      return Flow::Next;
    }
    case Stmt::Kind::Constrain:
      return Flow::Next; // Compile-time annotation.
    case Stmt::Kind::Assert: {
      const auto *A = cast<AssertStmt>(&S);
      int64_t C = eval(*A->getPred());
      if (!failed() && C == 0)
        fail("assertion failed: " + printExpr(*A->getPred()));
      return Flow::Next;
    }
    }
    return Flow::Next;
  }

  void storeVar(const std::string &Name, int64_t V) {
    const Decl *Dl = D.findDecl(Name);
    if (Dl)
      V = maskToType(V, Dl->Type);
    Vars[Name] = V;
  }

  int64_t eval(const Expr &E) {
    if (failed())
      return 0;
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return cast<IntLit>(&E)->getValue();
    case Expr::Kind::CharLit:
      return cast<CharLit>(&E)->getValue();
    case Expr::Kind::VarRef: {
      const std::string &N = cast<VarRef>(&E)->getName();
      auto It = Vars.find(N);
      if (It == Vars.end()) {
        fail("read of unknown variable '" + N + "'");
        return 0;
      }
      return It->second;
    }
    case Expr::Kind::MemRef: {
      int64_t Addr = eval(*cast<MemRef>(&E)->getAddress());
      if (failed())
        return 0;
      auto It = Result.FinalMemory.find(static_cast<uint64_t>(Addr));
      return It == Result.FinalMemory.end() ? 0 : It->second;
    }
    case Expr::Kind::Call: {
      const Routine *R = D.findRoutine(cast<CallExpr>(&E)->getCallee());
      if (!R) {
        fail("call of unknown routine '" + cast<CallExpr>(&E)->getCallee() +
             "'");
        return 0;
      }
      int64_t V = 0;
      execRoutine(*R, V);
      return V;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      int64_t V = eval(*U->getOperand());
      if (failed())
        return 0;
      return U->getOp() == UnaryOp::Not ? (V == 0 ? 1 : 0) : -V;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      int64_t L = eval(*B->getLHS());
      if (failed())
        return 0;
      // `and`/`or` are evaluated strictly; ISDL expressions are
      // side-effect-free except for calls, and descriptions in the paper
      // do not rely on short-circuiting.
      int64_t R = eval(*B->getRHS());
      if (failed())
        return 0;
      switch (B->getOp()) {
      case BinaryOp::Add:
        return L + R;
      case BinaryOp::Sub:
        return L - R;
      case BinaryOp::Mul:
        return L * R;
      case BinaryOp::Div:
        if (R == 0) {
          fail("division by zero");
          return 0;
        }
        return L / R;
      case BinaryOp::And:
        return (L != 0 && R != 0) ? 1 : 0;
      case BinaryOp::Or:
        return (L != 0 || R != 0) ? 1 : 0;
      case BinaryOp::Eq:
        return L == R;
      case BinaryOp::Ne:
        return L != R;
      case BinaryOp::Lt:
        return L < R;
      case BinaryOp::Le:
        return L <= R;
      case BinaryOp::Gt:
        return L > R;
      case BinaryOp::Ge:
        return L >= R;
      }
      return 0;
    }
    }
    return 0;
  }

  const Description &D;
  const std::vector<int64_t> &Inputs;
  const ExecOptions &Opts;
  size_t NextInput = 0;
  std::map<std::string, int64_t> Vars;
  ExecResult Result;
};

} // namespace

ExecResult interp::run(const Description &D, const std::vector<int64_t> &Inputs,
                       const Memory &InitialMemory, const ExecOptions &Opts) {
  // Fault-injection site: a synthetic execution failure, surfaced as a
  // failed ExecResult value like any genuine one.
  if (FaultInjector::instance().shouldFail("interp")) {
    ExecResult R;
    R.Error = "injected fault: interp";
    R.Category = FaultCategory::Internal;
    return R;
  }
  Evaluator E(D, Inputs, InitialMemory, Opts);
  return E.run();
}

unsigned interp::inputWidth(const Description &D, const std::string &Name) {
  const Decl *Dl = D.findDecl(Name);
  return Dl ? Dl->Type.widthInBits() : 0;
}

std::vector<std::string> interp::inputOperands(const Description &D) {
  const Routine *Entry = D.entryRoutine();
  if (!Entry || Entry->Body.empty())
    return {};
  for (const StmtPtr &S : Entry->Body)
    if (const auto *In = dyn_cast<InputStmt>(S.get()))
      return In->getTargets();
  return {};
}

void interp::storeBytes(Memory &M, uint64_t Base, const std::string &Bytes) {
  for (size_t I = 0; I < Bytes.size(); ++I)
    M[Base + I] = static_cast<uint8_t>(Bytes[I]);
}

std::string interp::loadBytes(const Memory &M, uint64_t Base, size_t Len) {
  std::string Out;
  Out.reserve(Len);
  for (size_t I = 0; I < Len; ++I) {
    auto It = M.find(Base + I);
    Out.push_back(It == M.end() ? '\0' : static_cast<char>(It->second));
  }
  return Out;
}
