//===- Interp.h - Concrete interpreter for ISDL descriptions ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a description against concrete inputs and a byte memory. The
/// 1982 system relied on hand proofs that each transformation preserves
/// semantics; this reproduction additionally *runs* both sides of every
/// transformation step on randomized inputs and compares results
/// (outputs, final memory, termination) — see analysis/DiffCheck.h.
///
/// Semantics:
///  * registers hold values masked to their declared width; `integer`
///    variables are unbounded 64-bit; `character` is one byte;
///  * `input (a, b, c)` consumes the next three values of the input
///    vector (masked on intake); running out of inputs is an error;
///  * `output (e)` appends to the output vector;
///  * `Mb[addr]` reads/writes one byte of a sparse memory;
///  * a routine returns the final value of the variable named after
///    itself, masked to the declared result width; each invocation gets a
///    fresh return accumulator;
///  * `and`/`or`/`not` are logical (nonzero test, producing 0/1);
///    relational operators produce 0/1;
///  * a violated `assert` aborts execution with an error; `constrain` is
///    a compile-time annotation and a run-time no-op.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_INTERP_INTERP_H
#define EXTRA_INTERP_INTERP_H

#include "isdl/AST.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace extra {
namespace interp {

/// Sparse byte memory keyed by address.
using Memory = std::map<uint64_t, uint8_t>;

/// Limits and switches for one execution.
struct ExecOptions {
  /// Abort after this many evaluated statements (runaway-loop guard).
  uint64_t MaxSteps = 1000000;
};

/// Outcome of one execution.
struct ExecResult {
  bool Ok = false;
  std::string Error;            ///< Failure reason when !Ok.
  /// Typed classification of the failure: InterpBudget for a step-limit
  /// overrun, Internal for injected faults, None for clean runs and for
  /// ordinary semantic errors (input exhaustion, assertion failures —
  /// those are properties of the description, not faults of the system).
  FaultCategory Category = FaultCategory::None;
  std::vector<int64_t> Outputs; ///< Values emitted by `output`.
  Memory FinalMemory;           ///< Memory after execution.
  uint64_t Steps = 0;           ///< Statements executed.

  /// True when two runs are observationally equal (status, outputs, and
  /// final memory).
  bool sameObservable(const ExecResult &O) const {
    return Ok == O.Ok && Outputs == O.Outputs && FinalMemory == O.FinalMemory;
  }
};

/// Runs the entry routine of \p D with \p Inputs and \p InitialMemory.
ExecResult run(const isdl::Description &D, const std::vector<int64_t> &Inputs,
               const Memory &InitialMemory = {}, const ExecOptions &Opts = {});

/// The declared bit width of input operand \p Name in \p D (0 when
/// unbounded). Random-input generators use this to stay in range.
unsigned inputWidth(const isdl::Description &D, const std::string &Name);

/// Operand names of the entry routine's first `input` statement, in
/// order. Empty when the entry routine does not start with `input`.
std::vector<std::string> inputOperands(const isdl::Description &D);

/// Writes \p Bytes into \p M starting at \p Base.
void storeBytes(Memory &M, uint64_t Base, const std::string &Bytes);

/// Reads \p Len bytes starting at \p Base (absent bytes read as 0).
std::string loadBytes(const Memory &M, uint64_t Base, size_t Len);

} // namespace interp
} // namespace extra

#endif // EXTRA_INTERP_INTERP_H
