//===- Chaos.cpp - Deterministic protocol chaos proxy -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Chaos.h"

#include <chrono>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace extra;
using namespace extra::server;

namespace {

uint64_t fnv1a(const char *S) {
  uint64_t H = 1469598103934665603ULL;
  for (; *S; ++S) {
    H ^= static_cast<unsigned char>(*S);
    H *= 1099511628211ULL;
  }
  return H;
}

uint64_t splitmix64(uint64_t X) {
  uint64_t Z = X + 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void sleepMs(unsigned Ms) {
  if (Ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// Send of the whole span, working on blocking and non-blocking fds
/// alike (EAGAIN waits on writability); MSG_NOSIGNAL so a vanished
/// peer is a false return, never SIGPIPE.
bool sendAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd P{Fd, POLLOUT, 0};
      int R;
      do {
        R = ::poll(&P, 1, -1);
      } while (R < 0 && errno == EINTR);
      if (R <= 0 || (P.revents & (POLLERR | POLLNVAL)))
        return false;
      continue;
    }
    return false;
  }
  return true;
}

} // namespace

bool ChaosProxy::fire(const char *Site, std::atomic<uint64_t> &Counter,
                      unsigned PerMille) {
  if (!PerMille)
    return false;
  uint64_t N = Counter.fetch_add(1, std::memory_order_relaxed);
  // Pure in (seed, site, counter): replaying the same traffic order
  // under the same seed replays the same faults.
  uint64_t H = splitmix64(Opts.Seed ^ fnv1a(Site) ^
                          N * 0x9e3779b97f4a7c15ULL);
  return H % 1000 < PerMille;
}

Expected<std::unique_ptr<ChaosProxy>>
ChaosProxy::start(const Endpoint &Listen, Endpoint Target,
                  ChaosOptions Opts) {
  std::unique_ptr<ChaosProxy> P(new ChaosProxy());
  P->Target = std::move(Target);
  P->Opts = Opts;
  auto Fd = listenEndpoint(Listen);
  if (!Fd)
    return Fd.fault();
  P->ListenFd = *Fd;
  if (Listen.Tcp)
    P->ListenPort = localPort(P->ListenFd);
  else
    P->UnlinkPath = Listen.Path;
  P->Acceptor = std::thread([Raw = P.get()] { Raw->acceptLoop(); });
  return P;
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    int R = ::poll(&Pfd, 1, 100);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      continue;
    int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    auto Upstream = connectEndpoint(Target);
    if (!Upstream) {
      ::close(Client);
      continue;
    }
    Connections.fetch_add(1, std::memory_order_relaxed);
    // Both pumps share a cut flag: a disconnect injection (or a real
    // close) on either side tears down the pair.
    auto Cut = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> Lock(ConnMu);
    LiveFds.push_back(Client);
    LiveFds.push_back(*Upstream);
    int Server = *Upstream;
    Pumps.emplace_back([this, Client, Server, Cut] {
      pump(Client, Server, /*ToServer=*/true, Cut);
    });
    Pumps.emplace_back([this, Client, Server, Cut] {
      pump(Server, Client, /*ToServer=*/false, Cut);
    });
  }
}

void ChaosProxy::pump(int Src, int Dst, bool ToServer,
                      std::shared_ptr<std::atomic<bool>> Cut) {
  std::string Buf;
  auto Sever = [&] {
    if (!Cut->exchange(true)) {
      ::shutdown(Src, SHUT_RDWR);
      ::shutdown(Dst, SHUT_RDWR);
    }
  };
  while (!Stopping.load(std::memory_order_acquire) && !Cut->load()) {
    std::optional<std::string> Line = readLine(Src, Buf);
    if (!Line) {
      Sever();
      return;
    }
    Lines.fetch_add(1, std::memory_order_relaxed);
    std::string Wire = *Line + "\n";

    if (fire(ToServer ? "c2s/torn" : "s2c/torn",
             ToServer ? CntTornC2s : CntTornS2c, Opts.TornPerMille)) {
      Torn.fetch_add(1, std::memory_order_relaxed);
      size_t Half = Wire.size() / 2;
      if (!sendAll(Dst, Wire.data(), Half)) {
        Sever();
        return;
      }
      sleepMs(Opts.StallMs);
      if (!sendAll(Dst, Wire.data() + Half, Wire.size() - Half)) {
        Sever();
        return;
      }
      continue;
    }

    if (fire(ToServer ? "c2s/partial" : "s2c/partial",
             ToServer ? CntPartialC2s : CntPartialS2c,
             Opts.PartialPerMille)) {
      Partial.fetch_add(1, std::memory_order_relaxed);
      // Dribble in 1..7-byte chunks (sized by the line's own bytes so
      // the pattern is deterministic), forcing short reads downstream.
      size_t Off = 0;
      while (Off < Wire.size()) {
        size_t Chunk = 1 + static_cast<unsigned char>(Wire[Off]) % 7;
        if (Chunk > Wire.size() - Off)
          Chunk = Wire.size() - Off;
        if (!sendAll(Dst, Wire.data() + Off, Chunk)) {
          Sever();
          return;
        }
        Off += Chunk;
        sleepMs(1);
      }
      continue;
    }

    if (fire(ToServer ? "c2s/stall" : "s2c/stall",
             ToServer ? CntStallC2s : CntStallS2c, Opts.StallPerMille)) {
      Stalls.fetch_add(1, std::memory_order_relaxed);
      sleepMs(Opts.StallMs);
      // Falls through to the intact forward below.
    }

    if (fire(ToServer ? "c2s/drop" : "s2c/drop",
             ToServer ? CntDiscC2s : CntDiscS2c,
             Opts.DisconnectPerMille)) {
      Disconnects.fetch_add(1, std::memory_order_relaxed);
      // Half a line, then the wire goes away: the reader sees a torn
      // final line and EOF. Dropping a response is the double-enqueue
      // trap — the client must resend and the server must coalesce.
      (void)sendAll(Dst, Wire.data(), Wire.size() / 2);
      Sever();
      return;
    }

    if (fire(ToServer ? "c2s/garbage" : "s2c/garbage",
             ToServer ? CntGarbC2s : CntGarbS2c, Opts.GarbagePerMille)) {
      Garbage.fetch_add(1, std::memory_order_relaxed);
      std::string Junk = "@@chaos-noise " +
                         std::to_string(Lines.load()) + "@@\n";
      if (!sendAll(Dst, Junk.data(), Junk.size())) {
        Sever();
        return;
      }
    }

    if (!sendAll(Dst, Wire.data(), Wire.size())) {
      Sever();
      return;
    }
  }
  Sever();
}

void ChaosProxy::stop() {
  if (Stopped.exchange(true))
    return;
  Stopping.store(true, std::memory_order_release);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0)
    ::close(ListenFd);
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  // Pumps observe Stopping / the shutdowns and exit; joining outside
  // the lock would race new entries, but the acceptor is already gone.
  std::lock_guard<std::mutex> Lock(ConnMu);
  for (std::thread &T : Pumps)
    if (T.joinable())
      T.join();
  for (int Fd : LiveFds)
    ::close(Fd);
  LiveFds.clear();
  Pumps.clear();
  if (!UnlinkPath.empty())
    ::unlink(UnlinkPath.c_str());
}

ChaosCounts ChaosProxy::counts() const {
  ChaosCounts C;
  C.Connections = Connections.load();
  C.Lines = Lines.load();
  C.Torn = Torn.load();
  C.Partial = Partial.load();
  C.Stalls = Stalls.load();
  C.Disconnects = Disconnects.load();
  C.Garbage = Garbage.load();
  return C;
}
