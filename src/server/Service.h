//===- Service.h - The discovery service loop -------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discovery service: a MemoStore, a WorkQueue, and a worker pool,
/// glued by `handle()` — one request line in, one response line out.
/// The transport (Socket.h) is deliberately a separate layer: `handle`
/// is a pure in-process API, so every protocol and caching behavior is
/// testable without a socket, and the socket server is a thin loop.
///
/// The request flow:
///
///  * `submit` first consults the MemoStore. A Verified entry always
///    answers (`"cached":true`); a non-verified terminal verdict
///    (exhausted/timed-out/faulted/discovered-unverified) answers only
///    when it was computed under limits that cover the service's current
///    limits — otherwise the pairing deserves the bigger budget and is
///    queued. Misses enqueue a job (deduplicated by canonical pairing
///    key) and either return the ticket or, with `"wait":true`, block
///    until the verdict lands in the store.
///  * `query` is read-only: cache hit or `"hit":false`, never a search.
///  * `drain` blocks until the queue is idle; with `"deadline_ms"` it
///    is the graceful-exit verb: admission stops, in-flight jobs get
///    the deadline to finish (stragglers are cancelled and their
///    partial verdicts still checkpointed to the store), and the owner
///    loop is asked to stop — compaction happens in stop().
///  * `status` reports counters; `health`/`ready` are the supervision
///    probes; `shutdown` asks the owner loop to stop (running jobs get
///    their cooperative cancel raised, queued jobs complete as
///    cancelled).
///
/// Idempotent resubmission: a submit carrying a `"rid"` lands in a
/// bounded dedup window (rid -> pairing key + job id). A retried
/// submit with the same rid — a client that lost the response, not the
/// request — is coalesced with the original admission: answered from
/// the store if the job finished, attached to the live job if not,
/// never enqueued twice. The window is FIFO-bounded (RidWindowSize) so
/// a hostile client cannot grow it without bound; eviction of a rid
/// merely restores at-most-once *per window*, which the fingerprint
/// dedup and memo cache still back up.
///
/// Admission control: new work is rejected with the typed overloaded
/// reply when the queue backlog is at MaxQueued or the service is
/// draining. Joining existing work (cache hit, live-job dedup, rid
/// dedup) always succeeds — backpressure gates cost, not answers.
///
/// Workers execute jobs through search::executeJob — the same contained
/// path as the batch driver (watchdog, degraded retry, deterministic
/// fault scopes) — then write the verdict to the store and complete the
/// queue entry.
///
/// Metrics (obs naming taxonomy):
///
///   server.cache.hit / server.cache.miss   submit cache consults
///   server.job_wall_ms                     per-job discovery wall time
///   server.store.put_fault                 appends lost to store faults
///   server.progress.watchers               watch requests accepted
///   server.progress.ticks                  progress tick lines pushed
///   server.progress.disconnects            watchers gone mid-stream
///   server.admission.enqueued              new jobs admitted
///   server.admission.rejected              submits refused (queue full)
///   server.admission.draining              submits refused while draining
///   server.admission.rid_dedup             retried submits coalesced by
///                                          request id
///   server.admission.rid_evict             rids aged out of the window
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_SERVICE_H
#define EXTRA_SERVER_SERVICE_H

#include "obs/Metrics.h"
#include "search/JobRunner.h"
#include "server/MemoStore.h"
#include "server/Protocol.h"
#include "server/WorkQueue.h"
#include "support/Error.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace extra {
namespace server {

struct ServiceOptions {
  /// Memo store path (required).
  std::string StorePath;
  /// Search budgets jobs run under (Metrics/Trace ride along as in the
  /// batch driver; Metrics defaults to the service's own registry).
  search::SearchLimits Limits;
  /// Worker threads; 0 selects 2.
  unsigned Workers = 2;
  bool Watchdog = true;
  bool DegradedRetry = true;
  /// Compact the store on stop() (one line per key, superseded records
  /// dropped).
  bool CompactOnShutdown = true;
  /// Backlog bound for new-work admission; 0 = unbounded.
  size_t MaxQueued = 256;
  /// Request-id dedup window capacity (FIFO eviction).
  size_t RidWindowSize = 256;
};

class Service {
public:
  /// Opens the store (taking its lock) and starts the worker pool.
  static Expected<std::unique_ptr<Service>> create(ServiceOptions Opts);

  ~Service(); ///< stop() if not already stopped.

  /// A transport's push hook for streaming verbs: delivers one line to
  /// the client mid-request, returning false once the client is gone.
  using PushFn = std::function<bool(const std::string &)>;

  /// Handles one request line, returning one response line (no trailing
  /// newline). Never throws: every failure is an `"ok":false` response.
  /// Safe to call from many transport threads concurrently.
  std::string handle(const std::string &Line) { return handle(Line, nullptr); }

  /// The streaming-aware overload: a non-null \p Push lets streaming
  /// verbs (`watch`) deliver intermediate tick lines before the final
  /// response; a push returning false means the client disconnected —
  /// streaming stops, the request still completes, and the service stays
  /// healthy. Non-streaming verbs never call \p Push.
  std::string handle(const std::string &Line, const PushFn *Push);

  /// True once a shutdown request was handled; the owning loop should
  /// then call stop() and exit.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// Cancels running jobs, joins the workers, optionally compacts, and
  /// closes the store (releasing its lock). Idempotent.
  void stop();

  MemoStore &store() { return *Store; }
  obs::Metrics &metrics() { return *EffectiveMetrics; }

private:
  Service() = default;

  void workerLoop();

  /// Resolves the pairing a request addresses (recorded case id or
  /// explicit operator/instruction) and its canonical store key.
  Expected<std::pair<search::BatchCase, std::string>>
  resolvePairing(const Request &R);

  /// The cache-reuse decision (see file comment).
  bool entryAnswers(const MemoEntry &E) const;

  std::string handleSubmit(const Request &R);
  std::string handleQuery(const Request &R);
  std::string handleStatus();
  std::string handleDrain(const Request &R);
  std::string handleShutdown();
  std::string handleHealth();
  std::string handleReady();
  std::string handleExport(const Request &R);
  std::string handleMetrics(const Request &R);
  std::string handleWatch(const Request &R, const PushFn *Push);

  /// One admitted request id: enough to re-answer a retried submit
  /// without re-running it.
  struct RidRecord {
    std::string Key;
    uint64_t JobId = 0;
  };

  /// The rid the window remembers (hit bumps nothing — FIFO by
  /// admission order, not LRU: retries of old rids should age out).
  std::optional<RidRecord> ridLookup(const std::string &Rid);
  void ridInsert(const std::string &Rid, RidRecord R);

  /// Waits on a submitted/deduped job and renders the final verdict
  /// response (shared by fresh admissions and rid-coalesced retries).
  std::string waitAndRender(const std::string &Key, uint64_t JobId);

  ServiceOptions Opts;
  std::unique_ptr<MemoStore> Store;
  std::unique_ptr<WorkQueue> Queue;
  std::vector<std::thread> Workers;
  /// Owned registry used when Opts.Limits.Metrics is null.
  std::unique_ptr<obs::Metrics> OwnMetrics;
  obs::Metrics *EffectiveMetrics = nullptr;
  std::atomic<bool> Shutdown{false};
  std::atomic<bool> Stopped{false};
  std::atomic<bool> Draining{false};
  std::chrono::steady_clock::time_point StartedAt;

  std::mutex RidMu;
  std::map<std::string, RidRecord> RidByKey;
  std::deque<std::string> RidOrder;
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_SERVICE_H
