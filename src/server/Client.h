//===- Client.h - Retrying discovery-service client -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: connect to a service endpoint
/// (Unix socket or TCP), send one request line, read one response line.
/// Response parsing (flat JSON via obs::parseJsonObjectLine) is bundled
/// so CLI commands and tests share one decoder.
///
/// The client is where protocol robustness earns its keep. Every
/// request is sent under a deadline budget with bounded retries:
///
///  * Connects retry with exponential backoff plus jitter, so a server
///    mid-restart is ridden out instead of failed.
///  * Every request carries a client-generated `"rid"` unless the
///    caller supplied one. A response is accepted only when it echoes
///    the rid — lines that do not parse, or parse to a different (or
///    missing) rid, are *skipped*, which is what makes the client safe
///    on a stream polluted by torn lines, stale replies, or injected
///    garbage.
///  * A dropped connection or read timeout closes the socket,
///    reconnects, and resends the same line with the same rid. For
///    `submit` the server's rid dedup window turns that resend into the
///    original admission — a retry never double-enqueues work.
///  * A typed overloaded reply (`"overloaded":true`) is not a failure:
///    the client honors `retry_after_ms` (bounded by its own backoff
///    cap) and tries again within the budget.
///
/// When the budget or the attempt bound is exhausted the request fails
/// with a Transport fault naming the last underlying error.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_CLIENT_H
#define EXTRA_SERVER_CLIENT_H

#include "server/Socket.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace extra {
namespace server {

/// A parsed response line: the raw text plus its flat fields.
struct Response {
  std::string Raw;
  std::map<std::string, std::string> Fields;

  bool ok() const {
    auto It = Fields.find("ok");
    return It != Fields.end() && It->second == "true";
  }
  bool overloaded() const {
    auto It = Fields.find("overloaded");
    return It != Fields.end() && It->second == "true";
  }
  std::string get(const std::string &Key) const {
    auto It = Fields.find(Key);
    return It == Fields.end() ? std::string() : It->second;
  }
};

/// Resilience knobs; the defaults suit an interactive CLI against a
/// local server.
struct ClientOptions {
  /// TCP connect timeout (Unix-socket connects are local and fast).
  int ConnectTimeoutMs = 5000;
  /// Total per-request budget across all attempts, including waits on
  /// `"wait":true` submits. <= 0 disables the budget (block forever,
  /// still bounded by MaxAttempts for transport errors).
  int RequestDeadlineMs = 120000;
  /// Attempt bound per request (connects + sends + rereads).
  unsigned MaxAttempts = 5;
  /// Exponential backoff between attempts: base doubles per attempt,
  /// capped, then jittered to half-to-full of the computed delay.
  uint64_t BackoffBaseMs = 50;
  uint64_t BackoffMaxMs = 2000;
  /// Jitter PRNG seed; 0 derives one from the pid so concurrent
  /// clients do not thunder in lockstep.
  uint64_t JitterSeed = 0;
  /// Response lines longer than this are a Transport fault.
  size_t MaxLineBytes = 1 << 20;
  /// Idle bound while waiting for the next line of a `watch` stream
  /// (the server heartbeats every second; this rides out long stalls).
  int StreamIdleMs = 60000;
};

class Client {
public:
  /// Connects to \p Spec — a Unix socket path, `unix:/path`,
  /// `host:port`, or `tcp:host:port` (parseEndpoint's grammar) — with
  /// connect retries under \p Opts.
  static Expected<std::unique_ptr<Client>>
  connect(const std::string &Spec, ClientOptions Opts = ClientOptions());

  ~Client(); ///< Closes the connection.

  /// Sends one request line and reads the matching response line,
  /// retrying per the options above. \p Line must be a flat JSON
  /// object; a `"rid"` is injected when absent. Transport fault once
  /// the deadline budget or the attempt bound is exhausted.
  Expected<Response> request(const std::string &Line);

  /// The streaming variant for `watch`: sends one request line, then
  /// invokes \p OnTick for every intermediate line (those without an
  /// "ok" field) until the final response arrives, which is returned.
  /// OnTick returning false stops reading early (the caller is done
  /// watching) and closes the connection. Garbage lines mid-stream are
  /// skipped; a lost connection is a Transport fault (a watch is not
  /// idempotent — the caller decides whether to re-attach).
  Expected<Response>
  requestStream(const std::string &Line,
                const std::function<bool(const Response &)> &OnTick);

  const Endpoint &endpoint() const { return Ep; }

private:
  Client() = default;

  /// Ensures Fd is a live connection, dialing if needed.
  Expected<bool> ensureConnected();
  void disconnect();
  /// Sleeps the jittered exponential delay for \p Attempt (bounded by
  /// the remaining budget); \p HintMs overrides the base when the
  /// server suggested retry_after_ms.
  void backoff(unsigned Attempt, uint64_t HintMs, int64_t BudgetLeftMs);
  std::string nextRid();

  Endpoint Ep;
  ClientOptions Opts;
  int Fd = -1;
  std::string Buf;
  uint64_t JitterState = 0;
  uint64_t RidCounter = 0;
  /// Fixed per-instance prefix keeping rids unique across processes
  /// and client instances (pid + time + instance counter, hashed).
  std::string RidPrefix;
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_CLIENT_H
