//===- Client.h - Thin discovery-service client -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: connect to a service socket,
/// send one request line, read one response line. Response parsing
/// (flat JSON via obs::parseJsonObjectLine) is bundled so CLI commands
/// and tests share one decoder.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_CLIENT_H
#define EXTRA_SERVER_CLIENT_H

#include "support/Error.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace extra {
namespace server {

/// A parsed response line: the raw text plus its flat fields.
struct Response {
  std::string Raw;
  std::map<std::string, std::string> Fields;

  bool ok() const {
    auto It = Fields.find("ok");
    return It != Fields.end() && It->second == "true";
  }
  std::string get(const std::string &Key) const {
    auto It = Fields.find(Key);
    return It == Fields.end() ? std::string() : It->second;
  }
};

class Client {
public:
  /// Connects to the service socket at \p Path.
  static Expected<std::unique_ptr<Client>> connect(const std::string &Path);

  ~Client(); ///< Closes the connection.

  /// Sends one request line and reads one response line. Protocol fault
  /// when the connection drops or the response is not a flat JSON
  /// object.
  Expected<Response> request(const std::string &Line);

  /// The streaming variant for `watch`: sends one request line, then
  /// invokes \p OnTick for every intermediate line (those without an
  /// "ok" field) until the final response arrives, which is returned.
  /// OnTick returning false stops reading early (the caller is done
  /// watching) and closes the connection.
  Expected<Response>
  requestStream(const std::string &Line,
                const std::function<bool(const Response &)> &OnTick);

private:
  explicit Client(int Fd) : Fd(Fd) {}

  int Fd = -1;
  std::string Buf;
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_CLIENT_H
