//===- Service.cpp - The discovery service loop -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Service.h"

#include "descriptions/Descriptions.h"
#include "obs/Exposition.h"
#include "registry/Registry.h"
#include "search/BatchDriver.h"
#include "search/Canon.h"
#include "support/FaultInjection.h"
#include "transform/ScriptIO.h"

#include <chrono>

using namespace extra;
using namespace extra::server;

Expected<std::unique_ptr<Service>> Service::create(ServiceOptions Opts) {
  if (Opts.StorePath.empty())
    return makeFault(FaultCategory::Store, "service needs a store path");
  std::unique_ptr<Service> S(new Service());
  S->Opts = std::move(Opts);
  auto Store = MemoStore::open(S->Opts.StorePath);
  if (!Store)
    return Store.fault();
  S->Store = std::move(*Store);
  if (S->Opts.Limits.Metrics) {
    S->EffectiveMetrics = S->Opts.Limits.Metrics;
  } else {
    S->OwnMetrics = std::make_unique<obs::Metrics>();
    S->EffectiveMetrics = S->OwnMetrics.get();
    S->Opts.Limits.Metrics = S->EffectiveMetrics;
  }
  unsigned Workers = S->Opts.Workers ? S->Opts.Workers : 2;
  S->StartedAt = std::chrono::steady_clock::now();
  S->Queue = std::make_unique<WorkQueue>(Workers, S->Opts.MaxQueued);
  S->Workers.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    S->Workers.emplace_back([Raw = S.get()] { Raw->workerLoop(); });
  return S;
}

Service::~Service() { stop(); }

void Service::stop() {
  if (Stopped.exchange(true))
    return;
  Queue->cancelAll();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  if (Opts.CompactOnShutdown)
    (void)Store->compact(); // Best effort; the append log is already durable.
  Store->close();
}

namespace {

/// Reduces a finished execution to its memo entry: the checkpoint record
/// plus the verified payload (or the partial-frontier summary).
MemoEntry makeEntry(const search::BatchCase &C, const std::string &Key,
                    const search::JobExecution &E,
                    const search::SearchLimits &L) {
  MemoEntry M;
  M.Key = Key;
  M.OperatorId = C.OperatorId;
  M.InstructionId = C.InstructionId;
  M.M = C.M;
  M.Record = search::executionRecord(C, E);
  M.Limits = MemoLimits::fromSearchLimits(L);
  const search::SearchOutcome &O = E.Discovery.Outcome;
  if (O.Found) {
    M.OpScript = transform::printScript(O.OperatorScript);
    M.InstScript = transform::printScript(O.InstructionScript);
    M.Binding = O.Binding.str();
    M.Constraints = O.Constraints.str();
  } else if (O.Partial.Valid) {
    M.OpScript = transform::printScript(O.Partial.OperatorScript);
    M.InstScript = transform::printScript(O.Partial.InstructionScript);
    M.FpOp = O.Partial.FpOp;
    M.FpInst = O.Partial.FpInst;
  }
  return M;
}

} // namespace

void Service::workerLoop() {
  for (;;) {
    std::optional<ClaimedJob> Job = Queue->pop();
    if (!Job)
      return;
    search::JobPolicy Policy;
    Policy.Limits = Opts.Limits;
    Policy.Watchdog = Opts.Watchdog;
    Policy.DegradedRetry = Opts.DegradedRetry;
    Policy.ExternalCancel = Job->Cancel.get();
    // Wire the job's live-progress publisher into the search so watchers
    // attached to this job id see the beam advance depth by depth.
    Policy.Limits.Progress = Job->Progress.get();
    search::JobExecution E = search::executeJob(Job->Case, Policy);
    EffectiveMetrics->histogram("server.job_wall_ms")
        .record(static_cast<uint64_t>(E.WallMs));
    MemoEntry Entry = makeEntry(Job->Case, Job->Key, E, Opts.Limits);
    {
      // Scope the injectable append by case id so whether this put
      // faults depends only on (seed, case), never on which worker ran
      // it or how many workers there are.
      FaultScope Scope(Job->Case.Id + "#store");
      if (!Store->put(Entry))
        EffectiveMetrics->counter("server.store.put_fault").add();
    }
    Queue->complete(Job->Id, Entry.Record);
  }
}

Expected<std::pair<search::BatchCase, std::string>>
Service::resolvePairing(const Request &R) {
  search::BatchCase C;
  if (!R.CaseId.empty()) {
    bool Known = false;
    for (const search::BatchCase &L : search::libraryCases())
      if (L.Id == R.CaseId) {
        C = L;
        Known = true;
        break;
      }
    if (!Known)
      return makeFault(FaultCategory::Protocol,
                       "unknown recorded case '" + R.CaseId + "'");
  } else {
    C.OperatorId = R.OperatorId;
    C.InstructionId = R.InstructionId;
    C.M = R.M;
    C.Id = R.InstructionId + "/" + R.OperatorId;
    if (C.M == analysis::Mode::Extension)
      C.Id += "+ext";
  }
  auto Key = pairingKey(C.OperatorId, C.InstructionId, C.M);
  if (!Key)
    return Key.fault();
  return std::make_pair(std::move(C), std::move(*Key));
}

bool Service::entryAnswers(const MemoEntry &E) const {
  // A verified binding is proven forever ("once found, hard-wired").
  if (E.Record.Outcome == search::CaseOutcome::Verified)
    return true;
  // Any other terminal verdict holds only for the budgets it was
  // computed under: a bigger current budget deserves a fresh search.
  return E.Limits.covers(MemoLimits::fromSearchLimits(Opts.Limits));
}

std::string Service::handle(const std::string &Line, const PushFn *Push) {
  auto R = parseRequest(Line);
  if (!R)
    return faultResponse(R.fault());
  // Every response echoes the request's rid (parse failures cannot —
  // there is no rid to echo — which is exactly how the retrying client
  // tells a reply to *its* request from a reply to injected garbage).
  auto Respond = [&](std::string Resp) {
    return withRid(std::move(Resp), R->Rid);
  };
  try {
    switch (R->C) {
    case Request::Cmd::Submit:
      return Respond(handleSubmit(*R));
    case Request::Cmd::Query:
      return Respond(handleQuery(*R));
    case Request::Cmd::Status:
      return Respond(handleStatus());
    case Request::Cmd::Drain:
      return Respond(handleDrain(*R));
    case Request::Cmd::Shutdown:
      return Respond(handleShutdown());
    case Request::Cmd::Health:
      return Respond(handleHealth());
    case Request::Cmd::Ready:
      return Respond(handleReady());
    case Request::Cmd::Export:
      return Respond(handleExport(*R));
    case Request::Cmd::Metrics:
      return Respond(handleMetrics(*R));
    case Request::Cmd::Watch:
      return Respond(handleWatch(*R, Push));
    }
    return Respond(faultResponse(
        makeFault(FaultCategory::Protocol, "unhandled command")));
  } catch (const FaultError &FE) {
    return Respond(faultResponse(FE.fault()));
  } catch (const std::exception &E) {
    return Respond(faultResponse(makeFault(FaultCategory::Internal, E.what())));
  }
}

std::optional<Service::RidRecord> Service::ridLookup(const std::string &Rid) {
  std::lock_guard<std::mutex> Lock(RidMu);
  auto It = RidByKey.find(Rid);
  if (It == RidByKey.end())
    return std::nullopt;
  return It->second;
}

void Service::ridInsert(const std::string &Rid, RidRecord R) {
  std::lock_guard<std::mutex> Lock(RidMu);
  if (!RidByKey.emplace(Rid, std::move(R)).second)
    return; // Raced with another thread carrying the same rid.
  RidOrder.push_back(Rid);
  while (Opts.RidWindowSize && RidOrder.size() > Opts.RidWindowSize) {
    RidByKey.erase(RidOrder.front());
    RidOrder.pop_front();
    EffectiveMetrics->counter("server.admission.rid_evict").add();
  }
}

std::string Service::waitAndRender(const std::string &Key, uint64_t JobId) {
  std::optional<search::CheckpointRecord> Record = Queue->wait(JobId);
  obs::Payload P;
  P.add("cached", false);
  P.add("job", JobId);
  if (!Record) {
    // The queue no longer knows the job (cancelled, or a rid retry
    // outliving the job table); the store is the durable answer.
    if (auto Entry = Store->lookup(Key)) {
      addEntryPayload(P, *Entry);
      return okResponse(P);
    }
    return faultResponse(makeFault(
        FaultCategory::Protocol, "job cancelled before completion"));
  }
  if (auto Entry = Store->lookup(Key)) {
    addEntryPayload(P, *Entry);
  } else {
    // Store append faulted; answer from the in-queue record.
    P.add("case", Record->Case);
    P.add("outcome", search::caseOutcomeName(Record->Outcome));
    P.add("verified", Record->Verified);
  }
  return okResponse(P);
}

std::string Service::handleSubmit(const Request &R) {
  auto Resolved = resolvePairing(R);
  if (!Resolved)
    return faultResponse(Resolved.fault());
  auto &[C, Key] = *Resolved;

  // A resent rid is the same admission coming back: the client sent the
  // request, lost the response, and retried. Coalesce with the original
  // job instead of double-enqueueing.
  if (!R.Rid.empty()) {
    if (auto Prior = ridLookup(R.Rid)) {
      EffectiveMetrics->counter("server.admission.rid_dedup").add();
      if (R.Wait)
        return waitAndRender(Prior->Key, Prior->JobId);
      obs::Payload P;
      P.add("cached", false);
      P.add("job", Prior->JobId);
      P.add("deduped", true);
      P.add("resubmitted", true);
      P.add("key", Prior->Key);
      return okResponse(P);
    }
  }

  if (auto Hit = Store->lookup(Key); Hit && entryAnswers(*Hit)) {
    EffectiveMetrics->counter("server.cache.hit").add();
    obs::Payload P;
    P.add("cached", true);
    addEntryPayload(P, *Hit);
    return okResponse(P);
  }
  EffectiveMetrics->counter("server.cache.miss").add();

  if (Shutdown.load(std::memory_order_acquire))
    return faultResponse(
        makeFault(FaultCategory::Protocol, "service is shutting down"));
  if (Draining.load(std::memory_order_acquire)) {
    EffectiveMetrics->counter("server.admission.draining").add();
    obs::Payload P;
    P.add("error", "service is draining");
    P.add("category", faultCategoryName(FaultCategory::Protocol));
    P.add("overloaded", true);
    P.add("draining", true);
    P.add("retry_after_ms", static_cast<uint64_t>(1000));
    return "{\"ok\":false" + P.rendered() + "}";
  }

  JobTicket T = Queue->submit(C, Key, R.Priority);
  if (T.Rejected) {
    EffectiveMetrics->counter("server.admission.rejected").add();
    return overloadedResponse("work queue backlog at capacity", 250);
  }
  if (!T.Deduped)
    EffectiveMetrics->counter("server.admission.enqueued").add();
  // Remember the admission under its rid *before* answering, so a retry
  // racing the response still coalesces.
  if (!R.Rid.empty())
    ridInsert(R.Rid, RidRecord{Key, T.Id});

  if (!R.Wait) {
    obs::Payload P;
    P.add("cached", false);
    P.add("job", T.Id);
    P.add("deduped", T.Deduped);
    P.add("key", Key);
    return okResponse(P);
  }
  return waitAndRender(Key, T.Id);
}

std::string Service::handleQuery(const Request &R) {
  auto Resolved = resolvePairing(R);
  if (!Resolved)
    return faultResponse(Resolved.fault());
  auto Hit = Store->lookup(Resolved->second);
  obs::Payload P;
  if (!Hit) {
    P.add("hit", false);
    P.add("key", Resolved->second);
    return okResponse(P);
  }
  P.add("hit", true);
  addEntryPayload(P, *Hit);
  return okResponse(P);
}

std::string Service::handleStatus() {
  obs::Payload P;
  P.add("store", Store->path());
  P.add("entries", static_cast<uint64_t>(Store->size()));
  P.add("queued", static_cast<uint64_t>(Queue->queuedCount()));
  P.add("running", static_cast<uint64_t>(Queue->runningCount()));
  P.add("completed", Queue->completedCount());
  P.add("workers", static_cast<uint64_t>(Workers.size()));
  P.add("cache_hits", EffectiveMetrics->counter("server.cache.hit").value());
  P.add("cache_misses",
        EffectiveMetrics->counter("server.cache.miss").value());
  return okResponse(P);
}

std::string Service::handleDrain(const Request &R) {
  if (R.DeadlineMs < 0) {
    // The PR 5 drain: block until idle, reply, keep serving.
    Queue->waitIdle();
    obs::Payload P;
    P.add("drained", true);
    P.add("completed", Queue->completedCount());
    P.add("entries", static_cast<uint64_t>(Store->size()));
    return okResponse(P);
  }

  // Graceful exit. Admission stops first (submits get the overloaded
  // reply with "draining":true), then in-flight jobs get the deadline.
  // Stragglers are cooperatively cancelled — their workers still
  // checkpoint partial verdicts to the store before stop() joins them —
  // and the owner loop is asked to stop, which compacts and exits.
  Draining.store(true, std::memory_order_release);
  Queue->beginDrain();
  bool Idle = Queue->waitIdleFor(static_cast<uint64_t>(R.DeadlineMs));
  uint64_t Cancelled = 0;
  if (!Idle) {
    Cancelled = Queue->queuedCount() + Queue->runningCount();
    Queue->cancelAll();
  }
  obs::Payload P;
  P.add("drained", Idle);
  P.add("cancelled", Cancelled);
  P.add("completed", Queue->completedCount());
  P.add("entries", static_cast<uint64_t>(Store->size()));
  P.add("stopping", true);
  Shutdown.store(true, std::memory_order_release);
  return okResponse(P);
}

std::string Service::handleShutdown() {
  Shutdown.store(true, std::memory_order_release);
  obs::Payload P;
  P.add("stopping", true);
  return okResponse(P);
}

std::string Service::handleHealth() {
  // Liveness: a live process always answers. Uptime lets a supervisor
  // distinguish a flapping restart loop from a stable server.
  auto Uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - StartedAt);
  obs::Payload P;
  P.add("healthy", true);
  P.add("uptime_ms", static_cast<uint64_t>(Uptime.count()));
  P.add("store", Store->path());
  P.add("workers", static_cast<uint64_t>(Workers.size()));
  return okResponse(P);
}

std::string Service::handleReady() {
  // Readiness: false once draining or shutting down, so a supervisor
  // stops routing new work while the exit is still in flight.
  bool Ready = !Draining.load(std::memory_order_acquire) &&
               !Shutdown.load(std::memory_order_acquire) && !Stopped.load();
  obs::Payload P;
  P.add("ready", Ready);
  if (!Ready)
    P.add("reason", Draining.load() ? "draining" : "shutting down");
  P.add("queued", static_cast<uint64_t>(Queue->queuedCount()));
  P.add("running", static_cast<uint64_t>(Queue->runningCount()));
  return okResponse(P);
}

std::string Service::handleExport(const Request &R) {
  // Dump the store's proven pairings as a deployable binding registry.
  // Only verified entries carry a replayable derivation; everything else
  // (exhausted/timed-out verdicts, partial frontiers) is cache state,
  // not a binding, and is counted as skipped.
  registry::Registry Reg;
  uint64_t Skipped = 0;
  for (const MemoEntry &E : Store->entries()) {
    if (E.Record.Outcome != search::CaseOutcome::Verified ||
        E.Binding.empty()) {
      ++Skipped;
      continue;
    }
    registry::RegistryEntry RE;
    RE.Key = E.Key;
    RE.AnalysisId = E.Record.Case;
    RE.OperatorId = E.OperatorId;
    RE.InstructionId = E.InstructionId;
    RE.M = E.M;
    // A verified memo entry's fp fields are 0 (they carry the partial
    // frontier of *failed* searches); recompute the canonical
    // fingerprints from the descriptions.
    if (auto Op = descriptions::loadChecked(E.OperatorId))
      RE.FpOp = search::fingerprint(**Op);
    if (auto Inst = descriptions::loadChecked(E.InstructionId))
      RE.FpInst = search::fingerprint(**Inst);
    RE.Machine = registry::machineOfInstruction(E.InstructionId);
    RE.Mnemonic = registry::mnemonicOfInstruction(E.InstructionId);
    RE.Op = registry::opKindOfOperator(E.OperatorId);
    RE.Constraints = E.Constraints;
    RE.OpScript = E.OpScript;
    RE.InstScript = E.InstScript;
    RE.Binding = E.Binding;
    RE.Source = "memo";
    RE.BeamWidth = E.Limits.BeamWidth;
    RE.MaxDepth = E.Limits.MaxDepth;
    RE.Widenings = E.Limits.Widenings;
    RE.MaxNodes = E.Limits.MaxNodes;
    RE.TimeBudgetMs = E.Limits.TimeBudgetMs;
    RE.WallMs = E.Record.WallMs;
    Reg.upsert(std::move(RE));
  }
  auto Saved = Reg.save(R.Path);
  if (!Saved)
    return faultResponse(Saved.fault());
  obs::Payload P;
  P.add("path", R.Path);
  P.add("exported", static_cast<uint64_t>(Reg.size()));
  P.add("skipped", Skipped);
  return okResponse(P);
}

std::string Service::handleMetrics(const Request &R) {
  // The full live registry in one response. The body is nested JSON (or
  // Prometheus text), which the flat wire grammar cannot carry inline —
  // so it travels as an escaped text block, exactly like scripts and
  // bindings.
  bool Prom = R.Format == "prom";
  obs::Payload P;
  P.add("format", Prom ? "prom" : "json");
  P.add("metrics", Prom ? obs::prometheusText(*EffectiveMetrics)
                        : EffectiveMetrics->json());
  return okResponse(P);
}

namespace {

/// One flat tick line for a watch stream: `"done":false` marks it as
/// intermediate, everything else is the job's latest ProgressSnapshot.
std::string renderTick(uint64_t JobId, uint64_t Tick,
                       const obs::ProgressSnapshot &S) {
  obs::Payload P;
  P.add("job", JobId);
  P.add("tick", Tick);
  P.add("depth", S.Depth);
  P.add("round", S.Round);
  P.add("frontier", S.Frontier);
  P.add("expanded", S.Expanded);
  P.add("generated", S.Generated);
  P.add("hash_hit_rate", S.hashHitRate());
  P.add("memo_hits", S.MemoHits);
  P.add("reopened", S.Reopened);
  if (S.BestDistance != UINT64_MAX)
    P.add("best_distance", S.BestDistance);
  P.add("expansions_per_sec", S.ExpansionsPerSec);
  return "{\"done\":false" + P.rendered() + "}";
}

} // namespace

std::string Service::handleWatch(const Request &R, const PushFn *Push) {
  using Clock = std::chrono::steady_clock;

  uint64_t JobId = R.JobId;
  if (JobId == 0) {
    auto Resolved = resolvePairing(R);
    if (!Resolved)
      return faultResponse(Resolved.fault());
    JobId = Queue->liveJobFor(Resolved->second);
    if (JobId == 0)
      return faultResponse(makeFault(
          FaultCategory::Protocol,
          "no live job for case '" + R.CaseId +
              "' (completed pairings are answered by query)"));
  }
  std::shared_ptr<obs::ProgressPublisher> Progress =
      Queue->progressOf(JobId);
  JobView V = Queue->peek(JobId);
  if (!V.Known || !Progress)
    return faultResponse(
        makeFault(FaultCategory::Protocol,
                  "unknown job " + std::to_string(JobId)));
  EffectiveMetrics->counter("server.progress.watchers").add();

  uint64_t Ticks = 0;
  bool Streaming = Push != nullptr;
  auto PushTick = [&](const obs::ProgressSnapshot &S) {
    if (!Streaming)
      return;
    if ((*Push)(renderTick(JobId, ++Ticks, S))) {
      EffectiveMetrics->counter("server.progress.ticks").add();
    } else {
      // Client gone mid-stream: stop pushing, keep the service healthy,
      // and still return the final line (the transport drops it).
      EffectiveMetrics->counter("server.progress.disconnects").add();
      Streaming = false;
    }
  };

  obs::ProgressSnapshot Last;
  if (auto S = Progress->read())
    Last = *S;
  if (!V.Done)
    PushTick(Last); // Immediate first tick: a watch always sees >= 1.

  // Push-less transports degrade to one snapshot (Streaming starts
  // false); a disconnect mid-stream exits the same way — the final line
  // is returned either way and the transport drops it if nobody reads.
  Clock::time_point LastEmit = Clock::now();
  while (Streaming && !V.Done &&
         !Shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    V = Queue->peek(JobId);
    Clock::time_point Now = Clock::now();
    bool Changed = Progress->seq() != Last.Seq;
    bool Heartbeat = Now - LastEmit >= std::chrono::seconds(1);
    if (!V.Done && (Changed || Heartbeat)) {
      if (auto S = Progress->read())
        Last = *S;
      PushTick(Last);
      LastEmit = Now;
    }
  }

  obs::Payload P;
  P.add("job", JobId);
  P.add("ticks", Ticks);
  P.add("done", V.Done);
  if (auto S = Progress->read())
    Last = *S;
  P.add("depth", Last.Depth);
  P.add("expanded", Last.Expanded);
  P.add("expansions_per_sec", Last.ExpansionsPerSec);
  if (V.Done) {
    P.add("case", V.Record.Case);
    P.add("outcome", search::caseOutcomeName(V.Record.Outcome));
    P.add("found", V.Record.Found);
    P.add("verified", V.Record.Verified);
    P.add("nodes", V.Record.Nodes);
  }
  return okResponse(P);
}
