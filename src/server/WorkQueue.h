//===- WorkQueue.h - Sharded, deduplicated discovery job queue --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling half of the discovery service: a sharded,
/// priority-ordered queue of pairing jobs with dedup-by-fingerprint.
/// Submitting a pairing whose canonical key is already queued or running
/// returns the existing job's ticket instead of enqueueing a duplicate —
/// two clients asking for the same discovery share one search.
///
/// Jobs live in shards selected by key hash; each shard holds its own
/// mutex, priority heap (higher priority first, submission order within
/// a priority), and dedup index, so submit contention distributes.
/// Workers pop the best-priority head across shards; completion signals
/// a process-wide condition variable on which `wait` (a client blocked
/// on a submitted job) and `waitIdle` (the drain request) sleep.
///
/// Cancellation is cooperative: every claimed job carries a shared
/// cancel flag that the job runner wires into the searcher (and its
/// watchdog); `cancelAll` raises the flag of every running job and
/// closes the queue, which is how service shutdown bounds in-flight
/// searches.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_WORKQUEUE_H
#define EXTRA_SERVER_WORKQUEUE_H

#include "obs/Progress.h"
#include "search/JobRunner.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace extra {
namespace server {

/// The receipt a submit returns.
struct JobTicket {
  uint64_t Id = 0;
  /// True when an existing queued/running job for the same key was
  /// returned instead of a new one.
  bool Deduped = false;
  /// True when admission refused the job (backlog bound hit, or the
  /// queue is draining/closed). Id is 0; the caller owes the client a
  /// typed overloaded reply, never silence.
  bool Rejected = false;
};

/// A job claimed by a worker.
struct ClaimedJob {
  uint64_t Id = 0;
  std::string Key;
  search::BatchCase Case;
  /// Cooperative cancel shared with cancelAll(); wire into JobPolicy.
  std::shared_ptr<std::atomic<bool>> Cancel;
  /// Live-progress publisher created at submit (so a `watch` can attach
  /// before the job is claimed); wire into JobPolicy's SearchLimits.
  std::shared_ptr<obs::ProgressPublisher> Progress;
};

/// A non-blocking view of one job's lifecycle, for streaming watchers.
struct JobView {
  bool Known = false;
  bool Running = false;
  bool Done = false;
  /// Valid when Done.
  search::CheckpointRecord Record;
};

class WorkQueue {
public:
  /// \p MaxQueued bounds the backlog (queued, not running): a submit
  /// past the bound is Rejected, never silently dropped or unboundedly
  /// buffered. 0 = unbounded (the PR 5 behavior, kept for tests).
  explicit WorkQueue(unsigned ShardCount = 4, size_t MaxQueued = 0);

  /// Enqueues \p C under the canonical \p Key, or returns the live
  /// job already covering that key (dedup). Higher \p Priority pops
  /// first; ties pop in submission order. Rejected when the backlog
  /// bound is hit or admission is closed (dedup to a live job still
  /// succeeds while draining — the work already exists).
  JobTicket submit(search::BatchCase C, std::string Key, int Priority = 0);

  /// Blocks until a job is available and claims the best one; nullopt
  /// once the queue is closed and empty.
  std::optional<ClaimedJob> pop();

  /// Marks \p Id done with its canonical record and wakes waiters. The
  /// key becomes submittable again (the memo store, not the queue,
  /// answers repeats).
  void complete(uint64_t Id, search::CheckpointRecord R);

  /// Blocks until \p Id completes; nullopt for an unknown id or when
  /// the queue closes before completion.
  std::optional<search::CheckpointRecord> wait(uint64_t Id);

  /// Blocks until nothing is queued or running (the drain request).
  void waitIdle();

  /// waitIdle with a deadline: true when idle was reached, false when
  /// \p Ms elapsed first (the graceful-drain caller then cancels).
  bool waitIdleFor(uint64_t Ms);

  /// Stops admission (submits are Rejected) without cancelling or
  /// closing anything — the first step of a graceful drain. Dedup hits
  /// on live jobs still succeed.
  void beginDrain();
  bool draining() const { return Draining.load(); }

  /// Raises every running job's cancel flag and closes the queue: pop()
  /// returns nullopt once the backlog is empty (immediately — closing
  /// discards queued jobs, completing them as cancelled).
  void cancelAll();

  /// Closes the queue without cancelling running jobs: workers drain
  /// the backlog first (graceful shutdown path is cancelAll).
  void close();

  size_t queuedCount() const;
  size_t runningCount() const;
  uint64_t completedCount() const;

  /// The live-progress publisher of \p Id; null for unknown jobs. Valid
  /// for the job's whole lifetime (jobs stay in the table after Done).
  std::shared_ptr<obs::ProgressPublisher> progressOf(uint64_t Id) const;

  /// A non-blocking state snapshot of \p Id — the polling half of a
  /// streaming watcher (wait() is the blocking half).
  JobView peek(uint64_t Id) const;

  /// The id of the queued/running job covering \p Key, or 0 when none
  /// is live (completed jobs are answered by the memo store instead).
  uint64_t liveJobFor(const std::string &Key) const;

private:
  enum class State { Queued, Running, Done };

  struct Job {
    uint64_t Id = 0;
    std::string Key;
    search::BatchCase Case;
    int Priority = 0;
    uint64_t Seq = 0;
    State St = State::Queued;
    std::shared_ptr<std::atomic<bool>> Cancel;
    std::shared_ptr<obs::ProgressPublisher> Progress;
    search::CheckpointRecord Record;
  };

  struct Shard {
    mutable std::mutex Mu;
    /// Job storage (id -> job) and the dedup index (key -> live job id).
    std::map<uint64_t, Job> Jobs;
    std::map<std::string, uint64_t> LiveByKey;
    /// Queued job ids (heap order recomputed on pop; shard backlogs are
    /// small — the scan is the simple, obviously-correct choice).
    std::vector<uint64_t> Backlog;
  };

  Shard &shardFor(const std::string &Key);
  Shard &shardOf(uint64_t Id) { return Shards[Id & (Shards.size() - 1)]; }
  const Shard &shardOf(uint64_t Id) const {
    return Shards[Id & (Shards.size() - 1)];
  }

  std::vector<Shard> Shards;
  size_t MaxQueued = 0;
  std::atomic<bool> Draining{false};
  std::atomic<uint64_t> NextSeq{1};
  std::atomic<size_t> Queued{0};
  std::atomic<size_t> Running{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<bool> Closed{false};

  /// Process-wide wakeup for pop/wait/waitIdle.
  mutable std::mutex SignalMu;
  std::condition_variable Signal;
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_WORKQUEUE_H
