//===- MemoStore.h - Persistent cross-run discovery cache -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable memory of the discovery service: a versioned, append-only
/// JSONL store of finished pairing verdicts keyed by *canonical pairing
/// fingerprints* (search/Canon.h), so a result survives renames of the
/// case label and — because the fingerprint hashes the description
/// structure itself — follows the descriptions, not their ids. This is
/// the paper's workflow made literal: analyze an exotic instruction
/// once, then reuse the discovered binding forever ("once found,
/// hard-wired").
///
/// One MemoEntry extends the PR 4 CheckpointRecord with:
///
///  * the pairing key and the description ids + mode it was computed
///    from;
///  * the search limits the verdict was obtained under, so a later
///    query can distinguish "exhausted at beam 8" from "exhausted at
///    beam 128" and re-search only when it brings a bigger budget;
///  * the verified payload — both derivation scripts, the name binding,
///    and the constraint set — so a warm query returns the full proven
///    result in O(lookup) with zero search nodes;
///  * the partial-frontier summary of a failed search (best-line
///    fingerprints + script prefixes already carried by the record), so
///    accumulated near-misses remain inspectable across runs.
///
/// Durability contract (inherited from Checkpoint and extended):
///
///  * One complete JSON object per line, appended open-append-close, so
///    a killed server loses at most the line in flight; the reader
///    skips torn trailing lines.
///  * First line is a schema-version header (`{"format":"extra-memo",
///    "version":1}`); files stamped with a higher version are rejected
///    with a typed Store fault, never misparsed.
///  * Later records win: re-searching a pairing (bigger budget, new
///    build) appends a superseding line. compact() rewrites the file to
///    one line per key — the in-memory view and the compacted file are
///    byte-equivalent inputs.
///  * A sidecar lock file (`<path>.lock`, O_EXCL, holding the owner's
///    pid) makes double-serving one store a typed Store fault instead
///    of interleaved appends; the lock is removed on close, including
///    destructor-driven shutdown. A lock whose pid is dead (or, when
///    unreadable, whose file is old) is stale and taken over on open —
///    a crashed server never wedges its successor.
///
/// Writes run under the "store" fault-injection site.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_MEMOSTORE_H
#define EXTRA_SERVER_MEMOSTORE_H

#include "analysis/Analysis.h"
#include "search/Checkpoint.h"
#include "search/Searcher.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace extra {
namespace server {

/// Format tag and highest version this build reads and writes. The memo
/// format is the checkpoint record format plus the fields below, under
/// its own header tag so the two file kinds cannot be confused.
inline constexpr const char *kMemoFormat = "extra-memo";
inline constexpr uint32_t kMemoVersion = 1;

/// Spelled mode name ("base"/"extension") — part of the wire format.
/// (The canonical definitions live with Mode itself in analysis; these
/// aliases keep the wire-format vocabulary visible here.)
using analysis::modeFromName;
using analysis::modeName;

/// The canonical cache key of one pairing: pairKey over the two
/// rename-invariant description fingerprints, mixed with the analysis
/// mode, rendered as "0x..." hex (64-bit values do not survive JSON
/// number parsers). Loading either description can fault (unknown id,
/// injected parse fault) — that becomes the caller's typed fault.
Expected<std::string> pairingKey(const std::string &OperatorId,
                                 const std::string &InstructionId,
                                 analysis::Mode M);

/// The budgets a verdict was computed under — the reuse decision input.
struct MemoLimits {
  unsigned BeamWidth = 0;
  unsigned MaxDepth = 0;
  unsigned Widenings = 0;
  uint64_t MaxNodes = 0;
  uint64_t TimeBudgetMs = 0;

  static MemoLimits fromSearchLimits(const search::SearchLimits &L);
  /// True when these limits are at least as large as \p Other on every
  /// axis — a verdict computed under them answers a query at \p Other.
  bool covers(const MemoLimits &Other) const;
};

/// One cached pairing verdict: the checkpoint record plus identity,
/// limits, and the verified/partial payloads.
struct MemoEntry {
  std::string Key; ///< pairingKey output ("0x...").
  std::string OperatorId;
  std::string InstructionId;
  analysis::Mode M = analysis::Mode::Base;
  /// The canonical per-case outcome data (case label, outcome, fault,
  /// step counts, nodes, partial distance).
  search::CheckpointRecord Record;
  /// Budgets the verdict was computed under.
  MemoLimits Limits;
  /// Verified payload (scripts as printScript text, binding and
  /// constraints in their report renderings); empty unless
  /// Record.Found. For a failed search the script fields instead carry
  /// the best partial line's prefixes — the reusable frontier summary.
  std::string OpScript;
  std::string InstScript;
  std::string Binding;
  std::string Constraints;
  /// Partial-frontier fingerprints (0 unless a failed search preserved
  /// a best line).
  uint64_t FpOp = 0;
  uint64_t FpInst = 0;

  /// One complete JSON object line (no trailing newline). A superset of
  /// CheckpointRecord::toJsonLine's fields.
  std::string toJsonLine() const;
  /// Parses a memo line; nullopt on malformed or foreign input.
  static std::optional<MemoEntry> fromJsonLine(std::string_view Line);
};

/// The persistent store: an in-memory key -> entry map backed by an
/// append-only JSONL file. All members are thread-safe.
class MemoStore {
public:
  /// Opens (creating if absent) the store at \p Path and takes the
  /// sidecar lock (taking over a stale one — dead pid or aged-out
  /// unreadable lock). Faults: unreadable/foreign/future-version file,
  /// lock held by a live process, injected "store" faults during load.
  static Expected<std::unique_ptr<MemoStore>> open(const std::string &Path);

  ~MemoStore(); ///< Releases the lock (close() if not already called).

  /// Inserts or supersedes the entry for \p E.Key: updates the in-memory
  /// map and appends one line. The in-memory view is updated even when
  /// the append faults (the server keeps answering; durability of this
  /// one entry is lost), and the fault is returned for accounting.
  Expected<bool> put(const MemoEntry &E);

  /// The current verdict for \p Key, if any. O(lookup), no I/O.
  std::optional<MemoEntry> lookup(const std::string &Key) const;

  /// Every live entry, sorted by key (compaction order).
  std::vector<MemoEntry> entries() const;
  size_t size() const;
  const std::string &path() const { return Path; }

  /// Rewrites the file as header + one line per key, dropping
  /// superseded records. The rewrite goes through a temp file + rename,
  /// so a crash mid-compaction leaves the old file intact.
  Expected<bool> compact();

  /// Flushes nothing (appends are already durable), releases the lock
  /// and stops accepting writes. Idempotent.
  void close();

private:
  MemoStore() = default;

  std::string Path;
  std::string LockPath;
  bool Locked = false;
  bool Closed = false;
  mutable std::mutex Mu;
  std::map<std::string, MemoEntry> ByKey;
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_MEMOSTORE_H
