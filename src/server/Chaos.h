//===- Chaos.h - Deterministic protocol chaos proxy -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fault-injecting TCP/Unix proxy that sits between a protocol client
/// and the discovery server and mangles the byte stream in the ways
/// real networks do:
///
///   torn lines      — a line is forwarded in two writes with a stall
///                     between them (exercises mid-line deadlines);
///   partial writes  — a line dribbles through in tiny chunks
///                     (exercises partial-read/short-write loops);
///   stalls          — forwarding pauses before an intact line;
///   disconnects     — the connection is cut mid-line, taking the
///                     request or the response with it (exercises
///                     reconnect + idempotent resubmission);
///   garbage         — a non-protocol line is injected ahead of the
///                     real one (exercises response/rid filtering).
///
/// Every decision is pure in (seed, site, per-site counter) — the same
/// design as support/FaultInjection, but self-contained so the proxy
/// perturbs the *wire*, never the server's own injection state. Same
/// seed + same traffic order = same mangling, which is what lets CI
/// assert that a chaos run converges to the same memo store as a clean
/// one.
///
/// Sites are named `<direction>/<kind>`, e.g. `c2s/torn` (client to
/// server) and `s2c/drop` (server to client); each direction counts
/// independently, so request and response faults do not mask each
/// other.
///
/// Usable in-process (tests) and via `extra-cli chaos-proxy` (CI).
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_CHAOS_H
#define EXTRA_SERVER_CHAOS_H

#include "server/Socket.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace extra {
namespace server {

/// Injection rates are per-mille per forwarded line (0 = off); a single
/// line suffers at most one injection, checked in the order torn,
/// partial, stall, disconnect, garbage.
struct ChaosOptions {
  uint64_t Seed = 1;
  unsigned TornPerMille = 0;
  unsigned PartialPerMille = 0;
  unsigned StallPerMille = 0;
  unsigned DisconnectPerMille = 0;
  unsigned GarbagePerMille = 0;
  /// Pause length for torn lines and stalls (keep well under the
  /// server's LineDeadlineMs unless eviction is the point).
  unsigned StallMs = 150;
};

/// What actually fired, for post-run reporting and CI assertions.
struct ChaosCounts {
  uint64_t Connections = 0;
  uint64_t Lines = 0;
  uint64_t Torn = 0;
  uint64_t Partial = 0;
  uint64_t Stalls = 0;
  uint64_t Disconnects = 0;
  uint64_t Garbage = 0;

  uint64_t fired() const {
    return Torn + Partial + Stalls + Disconnects + Garbage;
  }
};

class ChaosProxy {
public:
  /// Binds \p Listen (TCP port 0 = ephemeral, read back with port())
  /// and forwards every accepted connection to \p Target through the
  /// manglers. The accept loop runs on its own thread.
  static Expected<std::unique_ptr<ChaosProxy>>
  start(const Endpoint &Listen, Endpoint Target, ChaosOptions Opts);

  ~ChaosProxy(); ///< stop() if still running.

  /// Closes the listener and every live connection, joins all pump
  /// threads. Idempotent.
  void stop();

  /// The bound listen port (TCP with port 0), for tests.
  uint16_t port() const { return ListenPort; }

  ChaosCounts counts() const;

private:
  ChaosProxy() = default;

  void acceptLoop();
  void pump(int Src, int Dst, bool ToServer, std::shared_ptr<std::atomic<bool>> Cut);
  /// The deterministic decider: fires iff the per-site counter's hash
  /// under the seed lands below the rate.
  bool fire(const char *Site, std::atomic<uint64_t> &Counter,
            unsigned PerMille);

  Endpoint Target;
  ChaosOptions Opts;
  int ListenFd = -1;
  uint16_t ListenPort = 0;
  std::string UnlinkPath;
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Stopped{false};

  std::mutex ConnMu;
  std::vector<int> LiveFds;
  std::vector<std::thread> Pumps;

  // Per-site decision counters (index: direction-specific site).
  std::atomic<uint64_t> CntTornC2s{0}, CntTornS2c{0};
  std::atomic<uint64_t> CntPartialC2s{0}, CntPartialS2c{0};
  std::atomic<uint64_t> CntStallC2s{0}, CntStallS2c{0};
  std::atomic<uint64_t> CntDiscC2s{0}, CntDiscS2c{0};
  std::atomic<uint64_t> CntGarbC2s{0}, CntGarbS2c{0};

  // Fired tallies.
  std::atomic<uint64_t> Connections{0}, Lines{0};
  std::atomic<uint64_t> Torn{0}, Partial{0}, Stalls{0}, Disconnects{0},
      Garbage{0};
};

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_CHAOS_H
