//===- Protocol.h - Line-delimited JSON service protocol --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the discovery service: one flat JSON object per
/// line in each direction, parsed with the same dependency-free reader
/// as traces and checkpoints (obs::parseJsonObjectLine). The requests:
///
///   {"cmd":"submit","operator":ID,"instruction":ID[,"mode":"base"|
///    "extension"]["case":LABEL]["wait":true]["priority":N]}
///   {"cmd":"submit","case":RECORDED-CASE-ID[,"wait":true]...}
///   {"cmd":"query","operator":ID,"instruction":ID[,"mode":...]}
///   {"cmd":"query","case":RECORDED-CASE-ID}
///   {"cmd":"status"}   {"cmd":"drain"[,"deadline_ms":N]}
///   {"cmd":"shutdown"}   {"cmd":"health"}   {"cmd":"ready"}
///   {"cmd":"export","path":FILE}
///   {"cmd":"metrics"[,"format":"json"|"prom"]}
///   {"cmd":"watch","job":ID}   {"cmd":"watch","case":CASE-ID}
///
/// Every request may carry a client-generated `"rid"` (request id,
/// any string up to 64 bytes). The response echoes it verbatim, which
/// gives a retrying client two guarantees: it can match responses to
/// requests on a stream polluted by chaos (lines without the expected
/// rid are skipped), and a `submit` resent after a dropped response is
/// coalesced with the original admission instead of double-enqueued —
/// the server keeps a bounded dedup window keyed by rid (distinct from
/// the queue's fingerprint dedup, which only covers *live* jobs).
///
/// `drain` without a deadline keeps the PR 5 semantics: block until
/// the queue is idle, reply, keep serving. With `"deadline_ms"` it is
/// the graceful-exit verb: admission stops (submits are answered with
/// the overloaded reply, `"draining":true`), in-flight jobs get the
/// deadline to finish — stragglers are cooperatively cancelled and
/// their partial verdicts checkpointed to the store — the store is
/// compacted, and the server exits cleanly.
///
/// `health` always answers `{"ok":true,"healthy":true,...}` from a
/// live process; `ready` reports `"ready":false` once draining or
/// shutting down — the two supervision probes.
///
/// Overload is a *typed* reply, not a dropped connection:
/// `{"ok":false,"error":...,"category":"protocol","overloaded":true,
/// "retry_after_ms":N}` — sent when the work queue's admission bound
/// or the transport's connection cap is hit, or when a submit arrives
/// while draining. Clients back off and retry within their deadline
/// budget.
///
/// `export` dumps the store's verified pairings as a binding-registry
/// file (src/registry format) at a server-side path, answering
/// `{"ok":true,"path":...,"exported":N,"skipped":M}` — the bridge from
/// the discovery service to a deployable code-generator registry.
///
/// `metrics` serializes the live registry — every counter and histogram
/// snapshot — as an escaped text block: `{"ok":true,"format":"json",
/// "metrics":"<escaped Metrics::json()>"}`, or the Prometheus text
/// exposition (obs/Exposition.h) when `"format":"prom"`.
///
/// `watch` is the one *streaming* verb: the server pushes one flat JSON
/// tick line per progress sample (`"done":false`) and finishes with a
/// normal `"ok"` response carrying the job's record. A transport that
/// cannot push (the in-process handle() without a callback) degrades to
/// answering one snapshot.
///
/// Responses always carry `"ok":true|false`; failures add `"error"` and
/// `"category"` (the spelled FaultCategory — protocol violations are
/// `"protocol"`, store failures `"store"`). A submit answered from the
/// MemoStore carries `"cached":true` and the full cached verdict; a
/// queued submit carries `"job":<id>` (and blocks for the result when
/// `"wait":true`). `query` never searches: it answers `"hit":true` with
/// the verdict or `"hit":false`.
///
/// The grammar is deliberately flat (string/number/bool values, no
/// nesting): scripts and bindings travel as escaped text blocks, exactly
/// like trace payloads, so every layer shares one JSON reader.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_PROTOCOL_H
#define EXTRA_SERVER_PROTOCOL_H

#include "analysis/Analysis.h"
#include "obs/Trace.h"
#include "server/MemoStore.h"
#include "support/Error.h"

#include <map>
#include <string>

namespace extra {
namespace server {

/// A parsed request line.
struct Request {
  enum class Cmd {
    Submit,
    Query,
    Status,
    Drain,
    Shutdown,
    Export,
    Metrics,
    Watch,
    Health,
    Ready
  };
  Cmd C = Cmd::Status;
  /// Client-generated request id; echoed in the response and used for
  /// idempotent submit resubmission. Empty = none.
  std::string Rid;
  /// Drain: graceful-exit deadline for in-flight jobs (<0 = the PR 5
  /// wait-until-idle drain that keeps serving).
  int64_t DeadlineMs = -1;
  /// Export: server-side destination file for the registry dump.
  std::string Path;
  /// Pairing addressing: either a recorded case id, or explicit
  /// operator + instruction ids (mode defaults to base).
  std::string CaseId;
  std::string OperatorId;
  std::string InstructionId;
  analysis::Mode M = analysis::Mode::Base;
  bool Wait = false;
  int Priority = 0;
  /// Metrics: exposition format ("json" default, or "prom").
  std::string Format;
  /// Watch: the job id to stream (0 = resolve via CaseId).
  uint64_t JobId = 0;
};

/// Spelled command name ("submit", ...), the wire format.
const char *cmdName(Request::Cmd C);

/// Parses one request line; Protocol faults for malformed JSON, unknown
/// commands, bad modes, or a submit/query with neither a case id nor an
/// operator/instruction pair.
Expected<Request> parseRequest(const std::string &Line);

/// `{"ok":true<payload>}` — payload rendered by obs::Payload (leading
/// comma included by Payload::rendered()).
std::string okResponse(const obs::Payload &P);

/// `{"ok":false,"error":...,"category":...}`.
std::string faultResponse(const Fault &F);

/// The typed backpressure reply: `{"ok":false,"error":...,
/// "category":"protocol","overloaded":true,"retry_after_ms":N}`.
std::string overloadedResponse(const std::string &Why, uint64_t RetryAfterMs);

/// Echoes \p Rid into an already-rendered response line (no-op when
/// \p Rid is empty). The response stays one flat JSON object.
std::string withRid(std::string Response, const std::string &Rid);

/// Renders a cached verdict into a response payload: outcome and record
/// counters plus the verified scripts/binding/constraints.
void addEntryPayload(obs::Payload &P, const MemoEntry &E);

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_PROTOCOL_H
