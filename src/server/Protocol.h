//===- Protocol.h - Line-delimited JSON service protocol --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the discovery service: one flat JSON object per
/// line in each direction, parsed with the same dependency-free reader
/// as traces and checkpoints (obs::parseJsonObjectLine). The requests:
///
///   {"cmd":"submit","operator":ID,"instruction":ID[,"mode":"base"|
///    "extension"]["case":LABEL]["wait":true]["priority":N]}
///   {"cmd":"submit","case":RECORDED-CASE-ID[,"wait":true]...}
///   {"cmd":"query","operator":ID,"instruction":ID[,"mode":...]}
///   {"cmd":"query","case":RECORDED-CASE-ID}
///   {"cmd":"status"}   {"cmd":"drain"}   {"cmd":"shutdown"}
///   {"cmd":"export","path":FILE}
///   {"cmd":"metrics"[,"format":"json"|"prom"]}
///   {"cmd":"watch","job":ID}   {"cmd":"watch","case":CASE-ID}
///
/// `export` dumps the store's verified pairings as a binding-registry
/// file (src/registry format) at a server-side path, answering
/// `{"ok":true,"path":...,"exported":N,"skipped":M}` — the bridge from
/// the discovery service to a deployable code-generator registry.
///
/// `metrics` serializes the live registry — every counter and histogram
/// snapshot — as an escaped text block: `{"ok":true,"format":"json",
/// "metrics":"<escaped Metrics::json()>"}`, or the Prometheus text
/// exposition (obs/Exposition.h) when `"format":"prom"`.
///
/// `watch` is the one *streaming* verb: the server pushes one flat JSON
/// tick line per progress sample (`"done":false`) and finishes with a
/// normal `"ok"` response carrying the job's record. A transport that
/// cannot push (the in-process handle() without a callback) degrades to
/// answering one snapshot.
///
/// Responses always carry `"ok":true|false`; failures add `"error"` and
/// `"category"` (the spelled FaultCategory — protocol violations are
/// `"protocol"`, store failures `"store"`). A submit answered from the
/// MemoStore carries `"cached":true` and the full cached verdict; a
/// queued submit carries `"job":<id>` (and blocks for the result when
/// `"wait":true`). `query` never searches: it answers `"hit":true` with
/// the verdict or `"hit":false`.
///
/// The grammar is deliberately flat (string/number/bool values, no
/// nesting): scripts and bindings travel as escaped text blocks, exactly
/// like trace payloads, so every layer shares one JSON reader.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_PROTOCOL_H
#define EXTRA_SERVER_PROTOCOL_H

#include "analysis/Analysis.h"
#include "obs/Trace.h"
#include "server/MemoStore.h"
#include "support/Error.h"

#include <map>
#include <string>

namespace extra {
namespace server {

/// A parsed request line.
struct Request {
  enum class Cmd {
    Submit,
    Query,
    Status,
    Drain,
    Shutdown,
    Export,
    Metrics,
    Watch
  };
  Cmd C = Cmd::Status;
  /// Export: server-side destination file for the registry dump.
  std::string Path;
  /// Pairing addressing: either a recorded case id, or explicit
  /// operator + instruction ids (mode defaults to base).
  std::string CaseId;
  std::string OperatorId;
  std::string InstructionId;
  analysis::Mode M = analysis::Mode::Base;
  bool Wait = false;
  int Priority = 0;
  /// Metrics: exposition format ("json" default, or "prom").
  std::string Format;
  /// Watch: the job id to stream (0 = resolve via CaseId).
  uint64_t JobId = 0;
};

/// Spelled command name ("submit", ...), the wire format.
const char *cmdName(Request::Cmd C);

/// Parses one request line; Protocol faults for malformed JSON, unknown
/// commands, bad modes, or a submit/query with neither a case id nor an
/// operator/instruction pair.
Expected<Request> parseRequest(const std::string &Line);

/// `{"ok":true<payload>}` — payload rendered by obs::Payload (leading
/// comma included by Payload::rendered()).
std::string okResponse(const obs::Payload &P);

/// `{"ok":false,"error":...,"category":...}`.
std::string faultResponse(const Fault &F);

/// Renders a cached verdict into a response payload: outcome and record
/// counters plus the verified scripts/binding/constraints.
void addEntryPayload(obs::Payload &P, const MemoEntry &E);

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_PROTOCOL_H
