//===- Socket.h - Unix-domain socket transport ------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport of the discovery service: line-delimited JSON over a
/// Unix-domain stream socket. Deliberately thin — all request semantics
/// live in Service::handle — so this layer is only listen/accept/read a
/// line/write a line, plus the serve loop that gives each connection its
/// own thread and stops when the service has handled a shutdown request.
///
/// A stale socket file (left by a crashed server) is detected by a probe
/// connect: refused means no server is behind it and the file is
/// replaced; accepted means another server is live and listening faults.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SERVER_SOCKET_H
#define EXTRA_SERVER_SOCKET_H

#include "support/Error.h"

#include <optional>
#include <string>

namespace extra {
namespace server {

class Service;

/// Binds and listens on \p Path (replacing a stale socket file; faults
/// with Protocol when a live server already listens there). Returns the
/// listening fd.
Expected<int> listenUnix(const std::string &Path);

/// Connects to the server at \p Path. Returns the connected fd.
Expected<int> connectUnix(const std::string &Path);

/// Writes \p Line plus a newline, handling short writes. False on error.
bool writeLine(int Fd, const std::string &Line);

/// Reads one newline-terminated line (the newline is stripped), using
/// \p Buf as the connection's carry-over buffer. nullopt on EOF with an
/// empty buffer.
std::optional<std::string> readLine(int Fd, std::string &Buf);

/// Accepts connections on \p ListenFd, a thread per connection, each
/// running read-line / Service::handle / write-line until client EOF.
/// Returns once the service has handled a shutdown request (polling
/// between accepts): live connections are shut down and joined, the
/// listen fd closed, and the socket file at \p Path unlinked.
void serveLoop(int ListenFd, const std::string &Path, Service &S);

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_SOCKET_H
