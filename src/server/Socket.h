//===- Socket.h - Unix-domain and TCP stream transport ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport of the discovery service: line-delimited JSON over a
/// stream socket — Unix-domain for same-host clients, TCP for real
/// multi-process fan-out. Deliberately thin — all request semantics
/// live in Service::handle — so this layer is listen/accept/read a
/// line/write a line, plus the serve loop that gives each connection
/// its own thread and stops when the service has handled a shutdown.
///
/// Unlike the PR 5 loop, the serve loop no longer assumes a
/// cooperative local peer:
///
///  * every read and write carries a deadline (poll-based, EINTR-safe,
///    partial reads/writes looped to completion on non-blocking fds);
///  * lines are capped (MaxLineBytes) so one peer cannot balloon the
///    carry-over buffer — an oversized line earns a typed Transport
///    fault reply and eviction;
///  * a peer that starts a line and stalls (LineDeadlineMs), or that
///    stops draining its responses (WriteDeadlineMs), is evicted —
///    eviction closes the connection and reaps its thread promptly but
///    never touches jobs the peer submitted (the queue owns those);
///  * connections beyond MaxConnections are answered with the typed
///    overloaded reply and closed before they get a handler thread.
///
/// Endpoints are spelled `host:port` (TCP) or a filesystem path (Unix
/// socket); `tcp:` and `unix:` prefixes force the reading. A stale
/// socket file (left by a crashed server) is detected by a probe
/// connect: refused means no server is behind it and the file is
/// replaced; accepted means another server is live and listening
/// faults.
///
//======---------------------------------------------------------------===//

#ifndef EXTRA_SERVER_SOCKET_H
#define EXTRA_SERVER_SOCKET_H

#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace extra {
namespace server {

class Service;

/// Where a server listens or a client connects: one of the two stream
/// transports.
struct Endpoint {
  bool Tcp = false;
  std::string Path; ///< Unix-socket path (when !Tcp).
  std::string Host; ///< TCP host (when Tcp).
  uint16_t Port = 0;

  /// "host:port" or the path — the spelling parseEndpoint accepts.
  std::string str() const;
};

/// Parses an endpoint spec: `tcp:host:port`, `unix:/path`, a bare
/// `host:port` (all-digit port), or a bare path. Protocol fault on a
/// malformed port.
Expected<Endpoint> parseEndpoint(const std::string &Spec);

/// Binds and listens on \p Path (replacing a stale socket file; faults
/// with Transport when a live server already listens there). Returns
/// the listening fd.
Expected<int> listenUnix(const std::string &Path);

/// Connects to the server at \p Path. Returns the connected fd.
Expected<int> connectUnix(const std::string &Path);

/// Binds and listens on \p Host:\p Port (port 0 picks an ephemeral
/// port; read it back with localPort). Returns the listening fd.
Expected<int> listenTcp(const std::string &Host, uint16_t Port);

/// Connects to \p Host:\p Port with a bounded connect timeout.
Expected<int> connectTcp(const std::string &Host, uint16_t Port,
                         int TimeoutMs = 5000);

/// Listen/connect on either transport.
Expected<int> listenEndpoint(const Endpoint &E);
Expected<int> connectEndpoint(const Endpoint &E, int TimeoutMs = 5000);

/// The bound port of a listening TCP fd (after listenTcp with port 0).
uint16_t localPort(int Fd);

/// How one deadline-bounded line I/O ended.
enum class IoStatus {
  Ok,
  Eof,       ///< Orderly close from the peer.
  Timeout,   ///< The deadline elapsed first.
  Oversized, ///< The line exceeded the byte cap (read side only).
  Error,     ///< errno-style failure (reset, bad fd, ...).
};

/// A deadline-bounded line read.
struct LineIo {
  IoStatus St = IoStatus::Error;
  std::string Line; ///< Valid when St == Ok (newline stripped).
};

/// Marks \p Fd non-blocking — the deadline I/O below requires it.
bool setNonBlocking(int Fd);

/// Reads one newline-terminated line from a non-blocking \p Fd using
/// \p Buf as the connection's carry-over buffer. \p IdleMs bounds the
/// wait for the *first* byte of a line (<0 waits forever); \p LineMs
/// bounds the time from first byte to newline — a peer that stalls
/// mid-line times out. \p MaxBytes caps the line (0 = uncapped);
/// exceeding it drains nothing further and reports Oversized. All
/// polls and reads loop on EINTR.
LineIo readLineDeadline(int Fd, std::string &Buf, int IdleMs, int LineMs,
                        size_t MaxBytes);

/// Writes \p Line plus a newline to a non-blocking \p Fd, looping
/// partial writes (tiny send buffers included) and EINTR until done or
/// \p DeadlineMs elapses (<0 waits forever). Writes use MSG_NOSIGNAL:
/// a vanished peer is IoStatus::Error, never SIGPIPE.
IoStatus writeLineDeadline(int Fd, const std::string &Line, int DeadlineMs);

/// Blocking-fd compatibility wrappers (no deadline, no cap) kept for
/// callers that own simple cooperative fds — e.g. tests pumping a
/// socketpair. Both loop on EINTR and partial transfers.
bool writeLine(int Fd, const std::string &Line);
std::optional<std::string> readLine(int Fd, std::string &Buf);

/// One listener the serve loop accepts from. UnlinkPath is removed at
/// loop exit (the Unix socket file; empty for TCP).
struct Listener {
  int Fd = -1;
  std::string UnlinkPath;
};

/// The peer-protection knobs of the serve loop.
struct ServeOptions {
  /// Max time a peer may take to finish a line it started; stalled
  /// peers are evicted. <0 disables.
  int LineDeadlineMs = 10000;
  /// Max idle time between requests; <0 (default) lets clients sit
  /// idle forever (a watcher waiting on a long job is idle by design).
  int IdleTimeoutMs = -1;
  /// Max time a response or push line may take to drain to the peer;
  /// slower peers are evicted (their jobs keep running).
  int WriteDeadlineMs = 10000;
  /// Request line cap; longer lines earn a Transport fault + eviction.
  size_t MaxLineBytes = 1 << 20;
  /// Connection cap; accepts beyond it are answered with the typed
  /// overloaded reply and closed.
  unsigned MaxConnections = 64;
};

/// Accepts connections on every listener, a thread per connection,
/// each running read-line / Service::handle / write-line until client
/// EOF, eviction, or shutdown. Finished handler threads are reaped
/// between accepts (a disconnected watcher never lingers as a zombie
/// until exit). Returns once the service has handled a shutdown
/// request: live connections are shut down and joined, listen fds
/// closed, and Unix socket files unlinked.
void serveLoop(const std::vector<Listener> &Listeners, Service &S,
               const ServeOptions &Opts = ServeOptions());

/// Single-listener convenience (the PR 5 signature, kept for tests).
void serveLoop(int ListenFd, const std::string &Path, Service &S);

} // namespace server
} // namespace extra

#endif // EXTRA_SERVER_SOCKET_H
