//===- WorkQueue.cpp - Sharded, deduplicated discovery job queue -*- C++ -===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Lock discipline: a thread never holds a shard mutex and SignalMu at
// the same time *except* inside a Signal.wait predicate, which may take
// a shard mutex because no other thread ever sleeps on a shard mutex
// while holding SignalMu. All notifications are issued after shard
// locks are released (taking SignalMu briefly first, so a waiter
// between its predicate check and its sleep cannot miss the wakeup).
//
//===----------------------------------------------------------------------===//

#include "server/WorkQueue.h"

#include <chrono>
#include <functional>

using namespace extra;
using namespace extra::server;

namespace {

unsigned roundDownPow2(unsigned N) {
  unsigned P = 1;
  while (P * 2 <= N && P * 2 <= 16)
    P *= 2;
  return P;
}

} // namespace

WorkQueue::WorkQueue(unsigned ShardCount, size_t MaxQueued)
    : Shards(roundDownPow2(ShardCount ? ShardCount : 1)),
      MaxQueued(MaxQueued) {}

WorkQueue::Shard &WorkQueue::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) & (Shards.size() - 1)];
}

JobTicket WorkQueue::submit(search::BatchCase C, std::string Key,
                            int Priority) {
  JobTicket T;
  {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto Live = S.LiveByKey.find(Key);
    if (Live != S.LiveByKey.end()) {
      T.Id = Live->second;
      T.Deduped = true;
      return T;
    }
    // Admission control after the dedup check: joining existing work
    // is free, *new* work is what the bound and the drain gate.
    if (Draining.load() || Closed.load() ||
        (MaxQueued && Queued.load() >= MaxQueued)) {
      T.Rejected = true;
      return T;
    }
    uint64_t Seq = NextSeq.fetch_add(1);
    uint64_t ShardIdx = std::hash<std::string>{}(Key) & (Shards.size() - 1);
    Job J;
    J.Id = (Seq << 4) | ShardIdx;
    J.Key = Key;
    J.Case = std::move(C);
    J.Priority = Priority;
    J.Seq = Seq;
    J.Cancel = std::make_shared<std::atomic<bool>>(false);
    J.Progress = std::make_shared<obs::ProgressPublisher>();
    T.Id = J.Id;
    S.LiveByKey[Key] = J.Id;
    S.Backlog.push_back(J.Id);
    S.Jobs[J.Id] = std::move(J);
    Queued.fetch_add(1);
  }
  {
    std::lock_guard<std::mutex> Lock(SignalMu);
  }
  Signal.notify_all();
  return T;
}

std::optional<ClaimedJob> WorkQueue::pop() {
  for (;;) {
    // Phase 1: find the best queued job across shards (priority desc,
    // then submission order).
    uint64_t BestId = 0;
    int BestPriority = 0;
    uint64_t BestSeq = 0;
    bool Found = false;
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (uint64_t Id : S.Backlog) {
        const Job &J = S.Jobs.at(Id);
        if (!Found || J.Priority > BestPriority ||
            (J.Priority == BestPriority && J.Seq < BestSeq)) {
          Found = true;
          BestId = Id;
          BestPriority = J.Priority;
          BestSeq = J.Seq;
        }
      }
    }

    // Phase 2: claim it (another worker may have won the race — rescan).
    if (Found) {
      Shard &S = shardOf(BestId);
      std::lock_guard<std::mutex> Lock(S.Mu);
      auto It = S.Jobs.find(BestId);
      if (It == S.Jobs.end() || It->second.St != State::Queued)
        continue;
      It->second.St = State::Running;
      for (size_t I = 0; I < S.Backlog.size(); ++I)
        if (S.Backlog[I] == BestId) {
          S.Backlog.erase(S.Backlog.begin() + I);
          break;
        }
      Queued.fetch_sub(1);
      Running.fetch_add(1);
      ClaimedJob Out;
      Out.Id = BestId;
      Out.Key = It->second.Key;
      Out.Case = It->second.Case;
      Out.Cancel = It->second.Cancel;
      Out.Progress = It->second.Progress;
      return Out;
    }

    if (Closed.load())
      return std::nullopt;
    std::unique_lock<std::mutex> Lock(SignalMu);
    Signal.wait(Lock,
                [this] { return Queued.load() > 0 || Closed.load(); });
  }
}

void WorkQueue::complete(uint64_t Id, search::CheckpointRecord R) {
  {
    Shard &S = shardOf(Id);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Jobs.find(Id);
    if (It == S.Jobs.end() || It->second.St != State::Running)
      return;
    It->second.St = State::Done;
    It->second.Record = std::move(R);
    auto Live = S.LiveByKey.find(It->second.Key);
    if (Live != S.LiveByKey.end() && Live->second == Id)
      S.LiveByKey.erase(Live);
    Running.fetch_sub(1);
    Completed.fetch_add(1);
  }
  {
    std::lock_guard<std::mutex> Lock(SignalMu);
  }
  Signal.notify_all();
}

std::optional<search::CheckpointRecord> WorkQueue::wait(uint64_t Id) {
  Shard &S = shardOf(Id);
  auto Done = [&]() -> std::optional<search::CheckpointRecord> {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Jobs.find(Id);
    if (It == S.Jobs.end())
      return std::nullopt;
    if (It->second.St == State::Done)
      return It->second.Record;
    return std::nullopt;
  };
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Jobs.find(Id) == S.Jobs.end())
      return std::nullopt;
  }
  for (;;) {
    if (auto R = Done())
      return R;
    if (Closed.load()) {
      // Closed queues complete their backlog as cancelled (cancelAll) —
      // one more check, then give up on jobs that will never finish.
      return Done();
    }
    std::unique_lock<std::mutex> Lock(SignalMu);
    Signal.wait(Lock, [&] {
      if (Closed.load())
        return true;
      std::lock_guard<std::mutex> SL(S.Mu);
      auto It = S.Jobs.find(Id);
      return It == S.Jobs.end() || It->second.St == State::Done;
    });
  }
}

void WorkQueue::waitIdle() {
  std::unique_lock<std::mutex> Lock(SignalMu);
  Signal.wait(Lock, [this] {
    return (Queued.load() == 0 && Running.load() == 0) || Closed.load();
  });
}

bool WorkQueue::waitIdleFor(uint64_t Ms) {
  std::unique_lock<std::mutex> Lock(SignalMu);
  return Signal.wait_for(Lock, std::chrono::milliseconds(Ms), [this] {
    return (Queued.load() == 0 && Running.load() == 0) || Closed.load();
  });
}

void WorkQueue::beginDrain() { Draining.store(true); }

void WorkQueue::cancelAll() {
  Closed.store(true);
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    // Queued jobs will never run: complete them as cancelled so waiters
    // get a typed record instead of blocking forever.
    for (uint64_t Id : S.Backlog) {
      Job &J = S.Jobs[Id];
      J.St = State::Done;
      J.Record.Case = J.Case.Id;
      J.Record.Outcome = search::CaseOutcome::TimedOut;
      J.Record.FaultMessage = "cancelled at shutdown";
      auto Live = S.LiveByKey.find(J.Key);
      if (Live != S.LiveByKey.end() && Live->second == Id)
        S.LiveByKey.erase(Live);
      Queued.fetch_sub(1);
      Completed.fetch_add(1);
    }
    S.Backlog.clear();
    // Running jobs get their cooperative flag raised; their workers
    // complete() them with real (cancelled-search) records.
    for (auto &[Id, J] : S.Jobs)
      if (J.St == State::Running)
        J.Cancel->store(true, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> Lock(SignalMu);
  }
  Signal.notify_all();
}

void WorkQueue::close() {
  Closed.store(true);
  {
    std::lock_guard<std::mutex> Lock(SignalMu);
  }
  Signal.notify_all();
}

size_t WorkQueue::queuedCount() const { return Queued.load(); }
size_t WorkQueue::runningCount() const { return Running.load(); }
uint64_t WorkQueue::completedCount() const { return Completed.load(); }

std::shared_ptr<obs::ProgressPublisher>
WorkQueue::progressOf(uint64_t Id) const {
  const Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Jobs.find(Id);
  return It == S.Jobs.end() ? nullptr : It->second.Progress;
}

JobView WorkQueue::peek(uint64_t Id) const {
  JobView V;
  const Shard &S = shardOf(Id);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Jobs.find(Id);
  if (It == S.Jobs.end())
    return V;
  V.Known = true;
  V.Running = It->second.St == State::Running;
  V.Done = It->second.St == State::Done;
  if (V.Done)
    V.Record = It->second.Record;
  return V;
}

uint64_t WorkQueue::liveJobFor(const std::string &Key) const {
  const Shard &S =
      Shards[std::hash<std::string>{}(Key) & (Shards.size() - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.LiveByKey.find(Key);
  return It == S.LiveByKey.end() ? 0 : It->second;
}
