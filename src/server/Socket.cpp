//===- Socket.cpp - Unix-domain and TCP stream transport --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Socket.h"

#include "obs/Metrics.h"
#include "server/Protocol.h"
#include "server/Service.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace extra;
using namespace extra::server;

namespace {

Fault transportFault(std::string Message) {
  return makeFault(FaultCategory::Transport, std::move(Message));
}

bool fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

using Clock = std::chrono::steady_clock;

/// Remaining budget of a deadline in ms for poll(); -1 when unbounded,
/// 0 when already expired.
int remainingMs(int DeadlineMs, Clock::time_point Start) {
  if (DeadlineMs < 0)
    return -1;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - Start)
                     .count();
  if (Elapsed >= DeadlineMs)
    return 0;
  return static_cast<int>(DeadlineMs - Elapsed);
}

/// poll() one fd for \p Events, looping EINTR, honoring \p TimeoutMs
/// (<0 = forever). Returns >0 ready, 0 timeout, <0 error.
int pollOne(int Fd, short Events, int TimeoutMs) {
  for (;;) {
    pollfd P{Fd, Events, 0};
    int R = ::poll(&P, 1, TimeoutMs);
    if (R < 0 && errno == EINTR)
      continue;
    if (R > 0 && (P.revents & (POLLERR | POLLNVAL)))
      return -1;
    return R;
  }
}

} // namespace

std::string Endpoint::str() const {
  if (Tcp)
    return Host + ":" + std::to_string(Port);
  return Path;
}

Expected<Endpoint> server::parseEndpoint(const std::string &Spec) {
  auto Protocol = [](std::string Message) {
    return makeFault(FaultCategory::Protocol, std::move(Message));
  };
  Endpoint E;
  std::string Body = Spec;
  bool ForceTcp = false, ForceUnix = false;
  if (Body.rfind("tcp:", 0) == 0) {
    ForceTcp = true;
    Body = Body.substr(4);
  } else if (Body.rfind("unix:", 0) == 0) {
    ForceUnix = true;
    Body = Body.substr(5);
  }
  size_t Colon = Body.rfind(':');
  bool LooksTcp = Colon != std::string::npos && Colon + 1 < Body.size() &&
                  Body.find('/') == std::string::npos;
  if (LooksTcp)
    for (size_t I = Colon + 1; I < Body.size(); ++I)
      LooksTcp = LooksTcp && Body[I] >= '0' && Body[I] <= '9';
  if (ForceTcp || (LooksTcp && !ForceUnix)) {
    if (Colon == std::string::npos || Colon + 1 >= Body.size())
      return Protocol("TCP endpoint '" + Spec + "' needs host:port");
    for (size_t I = Colon + 1; I < Body.size(); ++I)
      if (Body[I] < '0' || Body[I] > '9')
        return Protocol("bad port in endpoint '" + Spec + "'");
    unsigned long Port = std::strtoul(Body.c_str() + Colon + 1, nullptr, 10);
    if (Port > 65535)
      return Protocol("bad port in endpoint '" + Spec + "'");
    E.Tcp = true;
    E.Host = Body.substr(0, Colon);
    if (E.Host.empty())
      E.Host = "127.0.0.1";
    E.Port = static_cast<uint16_t>(Port);
    return E;
  }
  if (Body.empty())
    return Protocol("empty endpoint");
  E.Path = Body;
  return E;
}

Expected<int> server::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr))
    return transportFault("socket path '" + Path + "' is too long");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return transportFault("cannot create socket: " +
                          std::string(std::strerror(errno)));
  int R;
  do {
    R = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (R != 0 && errno == EINTR);
  if (R != 0) {
    int E = errno;
    ::close(Fd);
    return transportFault("cannot connect to '" + Path +
                          "': " + std::strerror(E));
  }
  return Fd;
}

Expected<int> server::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr))
    return transportFault("socket path '" + Path + "' is too long");

  // A socket file already on disk is either a live server or a crash
  // leftover; a probe connect tells them apart.
  if (::access(Path.c_str(), F_OK) == 0) {
    auto Probe = connectUnix(Path);
    if (Probe) {
      ::close(*Probe);
      return transportFault("a server is already listening on '" + Path +
                            "'");
    }
    ::unlink(Path.c_str());
  }

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return transportFault("cannot create socket: " +
                          std::string(std::strerror(errno)));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int E = errno;
    ::close(Fd);
    return transportFault("cannot bind '" + Path +
                          "': " + std::strerror(E));
  }
  if (::listen(Fd, 64) != 0) {
    int E = errno;
    ::close(Fd);
    ::unlink(Path.c_str());
    return transportFault("cannot listen on '" + Path +
                          "': " + std::strerror(E));
  }
  return Fd;
}

Expected<int> server::listenTcp(const std::string &Host, uint16_t Port) {
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  int GA = ::getaddrinfo(Host.empty() ? nullptr : Host.c_str(),
                         std::to_string(Port).c_str(), &Hints, &Res);
  if (GA != 0)
    return transportFault("cannot resolve '" + Host +
                          "': " + gai_strerror(GA));
  int Fd = ::socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
  if (Fd < 0) {
    ::freeaddrinfo(Res);
    return transportFault("cannot create socket: " +
                          std::string(std::strerror(errno)));
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, Res->ai_addr, Res->ai_addrlen) != 0) {
    int E = errno;
    ::close(Fd);
    ::freeaddrinfo(Res);
    return transportFault("cannot bind " + Host + ":" +
                          std::to_string(Port) + ": " + std::strerror(E));
  }
  ::freeaddrinfo(Res);
  if (::listen(Fd, 64) != 0) {
    int E = errno;
    ::close(Fd);
    return transportFault("cannot listen on " + Host + ":" +
                          std::to_string(Port) + ": " + std::strerror(E));
  }
  return Fd;
}

uint16_t server::localPort(int Fd) {
  sockaddr_in Addr{};
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return 0;
  return ntohs(Addr.sin_port);
}

Expected<int> server::connectTcp(const std::string &Host, uint16_t Port,
                                 int TimeoutMs) {
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int GA = ::getaddrinfo(Host.c_str(), std::to_string(Port).c_str(), &Hints,
                         &Res);
  if (GA != 0)
    return transportFault("cannot resolve '" + Host +
                          "': " + gai_strerror(GA));
  int Fd = ::socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
  if (Fd < 0) {
    ::freeaddrinfo(Res);
    return transportFault("cannot create socket: " +
                          std::string(std::strerror(errno)));
  }
  setNonBlocking(Fd);
  int R = ::connect(Fd, Res->ai_addr, Res->ai_addrlen);
  ::freeaddrinfo(Res);
  if (R != 0 && errno != EINPROGRESS && errno != EINTR) {
    int E = errno;
    ::close(Fd);
    return transportFault("cannot connect to " + Host + ":" +
                          std::to_string(Port) + ": " + std::strerror(E));
  }
  if (R != 0) {
    // Non-blocking connect completes (or fails) when the fd turns
    // writable; SO_ERROR carries the verdict.
    if (pollOne(Fd, POLLOUT, TimeoutMs) <= 0) {
      ::close(Fd);
      return transportFault("connect to " + Host + ":" +
                            std::to_string(Port) + " timed out");
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0 || Err != 0) {
      ::close(Fd);
      return transportFault("cannot connect to " + Host + ":" +
                            std::to_string(Port) + ": " +
                            std::strerror(Err ? Err : errno));
    }
  }
  return Fd;
}

Expected<int> server::listenEndpoint(const Endpoint &E) {
  return E.Tcp ? listenTcp(E.Host, E.Port) : listenUnix(E.Path);
}

Expected<int> server::connectEndpoint(const Endpoint &E, int TimeoutMs) {
  if (E.Tcp)
    return connectTcp(E.Host, E.Port, TimeoutMs);
  return connectUnix(E.Path);
}

bool server::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

LineIo server::readLineDeadline(int Fd, std::string &Buf, int IdleMs,
                                int LineMs, size_t MaxBytes) {
  Clock::time_point LineStart = Clock::now();
  bool MidLine = !Buf.empty();
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      if (MaxBytes && NL > MaxBytes) {
        // The oversized payload is already buffered; drop it whole so
        // the caller can still send a typed reply before evicting.
        Buf.erase(0, NL + 1);
        return {IoStatus::Oversized, {}};
      }
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return {IoStatus::Ok, std::move(Line)};
    }
    if (MaxBytes && Buf.size() > MaxBytes)
      return {IoStatus::Oversized, {}};

    // Idle (no partial line) waits under IdleMs; a started line must
    // finish under LineMs — that distinction is the slow-peer rule.
    int Budget = MidLine ? remainingMs(LineMs, LineStart) : IdleMs;
    if (MidLine && LineMs >= 0 && Budget == 0)
      return {IoStatus::Timeout, {}};
    int Ready = pollOne(Fd, POLLIN, Budget);
    if (Ready < 0)
      return {IoStatus::Error, {}};
    if (Ready == 0)
      return {IoStatus::Timeout, {}};

    char Chunk[4096];
    ssize_t N;
    do {
      N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    } while (N < 0 && errno == EINTR);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        continue; // Spurious wakeup; re-poll under the same budget.
      return {IoStatus::Error, {}};
    }
    if (N == 0) {
      if (Buf.empty())
        return {IoStatus::Eof, {}};
      std::string Line = std::move(Buf); // Unterminated final line.
      Buf.clear();
      return {IoStatus::Ok, std::move(Line)};
    }
    if (!MidLine) {
      MidLine = true;
      LineStart = Clock::now();
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

IoStatus server::writeLineDeadline(int Fd, const std::string &Line,
                                   int DeadlineMs) {
  std::string Out = Line + "\n";
  size_t Off = 0;
  Clock::time_point Start = Clock::now();
  while (Off < Out.size()) {
    ssize_t N;
    do {
      N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    } while (N < 0 && errno == EINTR);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      return IoStatus::Error;
    int Budget = remainingMs(DeadlineMs, Start);
    if (DeadlineMs >= 0 && Budget == 0)
      return IoStatus::Timeout;
    int Ready = pollOne(Fd, POLLOUT, Budget);
    if (Ready < 0)
      return IoStatus::Error;
    if (Ready == 0)
      return IoStatus::Timeout;
  }
  return IoStatus::Ok;
}

bool server::writeLine(int Fd, const std::string &Line) {
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (pollOne(Fd, POLLOUT, -1) <= 0)
          return false;
        continue;
      }
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::optional<std::string> server::readLine(int Fd, std::string &Buf) {
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return Line;
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (pollOne(Fd, POLLIN, -1) <= 0)
          return std::nullopt;
        continue;
      }
      return std::nullopt;
    }
    if (N == 0) {
      if (Buf.empty())
        return std::nullopt;
      std::string Line = std::move(Buf); // Unterminated final line.
      Buf.clear();
      return Line;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

namespace {

/// Shared connection bookkeeping between the accept loop and handler
/// threads: live fds (for shutdown), finished handler ids (for prompt
/// reaping), and the live-connection count (for the cap).
struct ConnTable {
  std::mutex Mu;
  std::map<uint64_t, int> LiveFds;
  std::vector<uint64_t> Finished;
  unsigned Live = 0;
};

void handleConnection(uint64_t ConnId, int Client, Service &S,
                      const ServeOptions &Opts, ConnTable &Conns) {
  obs::Metrics &M = S.metrics();
  std::string Buf;
  // A push that cannot drain within the write deadline marks the
  // connection dead: the service stops streaming to it, and the
  // handler closes it instead of replying into the void.
  bool Dead = false;
  Service::PushFn Push = [&](const std::string &Line) {
    IoStatus St = writeLineDeadline(Client, Line, Opts.WriteDeadlineMs);
    if (St == IoStatus::Timeout) {
      M.counter("server.net.write_timeout").add();
      M.counter("server.net.evicted").add();
    }
    Dead = Dead || St != IoStatus::Ok;
    return !Dead;
  };

  for (;;) {
    LineIo In = readLineDeadline(Client, Buf, Opts.IdleTimeoutMs,
                                 Opts.LineDeadlineMs, Opts.MaxLineBytes);
    if (In.St == IoStatus::Eof || In.St == IoStatus::Error)
      break;
    if (In.St == IoStatus::Timeout) {
      M.counter("server.net.read_timeout").add();
      M.counter("server.net.evicted").add();
      break;
    }
    if (In.St == IoStatus::Oversized) {
      M.counter("server.net.oversized_line").add();
      M.counter("server.net.evicted").add();
      (void)writeLineDeadline(
          Client,
          faultResponse(makeFault(
              FaultCategory::Transport,
              "request line exceeds " +
                  std::to_string(Opts.MaxLineBytes) + " bytes")),
          Opts.WriteDeadlineMs);
      break;
    }
    // Empty and whitespace-only lines are keep-alive noise, not
    // requests.
    if (In.Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::string Reply = S.handle(In.Line, &Push);
    if (Dead)
      break;
    IoStatus St = writeLineDeadline(Client, Reply, Opts.WriteDeadlineMs);
    if (St != IoStatus::Ok) {
      if (St == IoStatus::Timeout) {
        M.counter("server.net.write_timeout").add();
        M.counter("server.net.evicted").add();
      }
      break;
    }
  }

  std::lock_guard<std::mutex> Lock(Conns.Mu);
  Conns.LiveFds.erase(ConnId);
  --Conns.Live;
  ::close(Client);
  Conns.Finished.push_back(ConnId);
}

} // namespace

void server::serveLoop(const std::vector<Listener> &Listeners, Service &S,
                       const ServeOptions &Opts) {
  obs::Metrics &M = S.metrics();
  ConnTable Conns;
  std::map<uint64_t, std::thread> Handlers;
  uint64_t NextConn = 1;

  auto reapFinished = [&] {
    std::vector<uint64_t> Done;
    {
      std::lock_guard<std::mutex> Lock(Conns.Mu);
      Done.swap(Conns.Finished);
    }
    for (uint64_t Id : Done) {
      auto It = Handlers.find(Id);
      if (It != Handlers.end()) {
        It->second.join();
        Handlers.erase(It);
      }
    }
  };

  std::vector<pollfd> Polls;
  Polls.reserve(Listeners.size());
  for (const Listener &L : Listeners)
    Polls.push_back({L.Fd, POLLIN, 0});

  while (!S.shutdownRequested()) {
    for (pollfd &P : Polls)
      P.revents = 0;
    int Ready = ::poll(Polls.data(), Polls.size(), /*TimeoutMs=*/100);
    if (Ready < 0 && errno != EINTR)
      break;
    reapFinished();
    if (Ready <= 0)
      continue;
    for (pollfd &P : Polls) {
      if (!(P.revents & POLLIN))
        continue;
      int Client;
      do {
        Client = ::accept(P.fd, nullptr, nullptr);
      } while (Client < 0 && errno == EINTR);
      if (Client < 0)
        continue;
      setNonBlocking(Client);
      bool Overloaded;
      uint64_t ConnId = NextConn++;
      {
        std::lock_guard<std::mutex> Lock(Conns.Mu);
        Overloaded = Conns.Live >= Opts.MaxConnections;
        if (!Overloaded) {
          ++Conns.Live;
          Conns.LiveFds[ConnId] = Client;
        }
      }
      if (Overloaded) {
        // Over the cap: a typed reply, then the door. No handler
        // thread is spent on the peer.
        M.counter("server.net.rejected").add();
        (void)writeLineDeadline(
            Client, overloadedResponse("connection limit reached", 250),
            Opts.WriteDeadlineMs);
        ::close(Client);
        continue;
      }
      M.counter("server.net.accepted").add();
      Handlers.emplace(ConnId, std::thread([ConnId, Client, &S, &Opts,
                                            &Conns] {
        handleConnection(ConnId, Client, S, Opts, Conns);
      }));
    }
  }

  // Stop accepting, then unblock any connection thread sitting in read.
  for (const Listener &L : Listeners)
    ::close(L.Fd);
  {
    std::lock_guard<std::mutex> Lock(Conns.Mu);
    for (auto &[Id, Fd] : Conns.LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (auto &[Id, T] : Handlers)
    if (T.joinable())
      T.join();
  for (const Listener &L : Listeners)
    if (!L.UnlinkPath.empty())
      ::unlink(L.UnlinkPath.c_str());
}

void server::serveLoop(int ListenFd, const std::string &Path, Service &S) {
  serveLoop({Listener{ListenFd, Path}}, S);
}
