//===- Socket.cpp - Unix-domain socket transport ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Socket.h"

#include "server/Service.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <poll.h>
#include <set>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace extra;
using namespace extra::server;

namespace {

Fault protocolFault(std::string Message) {
  return makeFault(FaultCategory::Protocol, std::move(Message));
}

bool fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

Expected<int> server::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr))
    return protocolFault("socket path '" + Path + "' is too long");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return protocolFault("cannot create socket: " +
                         std::string(std::strerror(errno)));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int E = errno;
    ::close(Fd);
    return protocolFault("cannot connect to '" + Path +
                         "': " + std::strerror(E));
  }
  return Fd;
}

Expected<int> server::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr))
    return protocolFault("socket path '" + Path + "' is too long");

  // A socket file already on disk is either a live server or a crash
  // leftover; a probe connect tells them apart.
  if (::access(Path.c_str(), F_OK) == 0) {
    auto Probe = connectUnix(Path);
    if (Probe) {
      ::close(*Probe);
      return protocolFault("a server is already listening on '" + Path +
                           "'");
    }
    ::unlink(Path.c_str());
  }

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return protocolFault("cannot create socket: " +
                         std::string(std::strerror(errno)));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int E = errno;
    ::close(Fd);
    return protocolFault("cannot bind '" + Path +
                         "': " + std::strerror(E));
  }
  if (::listen(Fd, 16) != 0) {
    int E = errno;
    ::close(Fd);
    ::unlink(Path.c_str());
    return protocolFault("cannot listen on '" + Path +
                         "': " + std::strerror(E));
  }
  return Fd;
}

bool server::writeLine(int Fd, const std::string &Line) {
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::optional<std::string> server::readLine(int Fd, std::string &Buf) {
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return Line;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return std::nullopt;
    }
    if (N == 0) {
      if (Buf.empty())
        return std::nullopt;
      std::string Line = std::move(Buf); // Unterminated final line.
      Buf.clear();
      return Line;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

void server::serveLoop(int ListenFd, const std::string &Path, Service &S) {
  std::mutex ClientsMu;
  std::set<int> ClientFds;
  std::vector<std::thread> Handlers;

  while (!S.shutdownRequested()) {
    pollfd P{ListenFd, POLLIN, 0};
    int Ready = ::poll(&P, 1, /*TimeoutMs=*/100);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0 || !(P.revents & POLLIN))
      continue;
    int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    {
      std::lock_guard<std::mutex> Lock(ClientsMu);
      ClientFds.insert(Client);
    }
    Handlers.emplace_back([Client, &S, &ClientsMu, &ClientFds] {
      std::string Buf;
      // Streaming verbs push intermediate lines through this hook; a
      // failed push tells the service the client hung up mid-stream.
      Service::PushFn Push = [Client](const std::string &Line) {
        return writeLine(Client, Line);
      };
      while (auto Line = readLine(Client, Buf)) {
        if (Line->empty())
          continue;
        if (!writeLine(Client, S.handle(*Line, &Push)))
          break;
      }
      std::lock_guard<std::mutex> Lock(ClientsMu);
      ClientFds.erase(Client);
      ::close(Client);
    });
  }

  // Stop accepting, then unblock any connection thread sitting in read.
  ::close(ListenFd);
  {
    std::lock_guard<std::mutex> Lock(ClientsMu);
    for (int Fd : ClientFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (std::thread &T : Handlers)
    if (T.joinable())
      T.join();
  ::unlink(Path.c_str());
}
