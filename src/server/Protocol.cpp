//===- Protocol.cpp - Line-delimited JSON service protocol ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "obs/TraceFile.h"
#include "search/Checkpoint.h"

#include <cstdlib>

using namespace extra;
using namespace extra::server;

const char *server::cmdName(Request::Cmd C) {
  switch (C) {
  case Request::Cmd::Submit:
    return "submit";
  case Request::Cmd::Query:
    return "query";
  case Request::Cmd::Status:
    return "status";
  case Request::Cmd::Drain:
    return "drain";
  case Request::Cmd::Shutdown:
    return "shutdown";
  case Request::Cmd::Export:
    return "export";
  case Request::Cmd::Metrics:
    return "metrics";
  case Request::Cmd::Watch:
    return "watch";
  case Request::Cmd::Health:
    return "health";
  case Request::Cmd::Ready:
    return "ready";
  }
  return "?";
}

Expected<Request> server::parseRequest(const std::string &Line) {
  auto Protocol = [](std::string Message) {
    return makeFault(FaultCategory::Protocol, std::move(Message));
  };
  auto Fields = obs::parseJsonObjectLine(Line);
  if (!Fields)
    return Protocol("malformed request line (one flat JSON object "
                    "expected)");
  auto Get = [&](const char *Key) -> std::string {
    auto It = Fields->find(Key);
    return It == Fields->end() ? std::string() : It->second;
  };

  Request R;
  std::string Cmd = Get("cmd");
  if (Cmd == "submit")
    R.C = Request::Cmd::Submit;
  else if (Cmd == "query")
    R.C = Request::Cmd::Query;
  else if (Cmd == "status")
    R.C = Request::Cmd::Status;
  else if (Cmd == "drain")
    R.C = Request::Cmd::Drain;
  else if (Cmd == "shutdown")
    R.C = Request::Cmd::Shutdown;
  else if (Cmd == "export")
    R.C = Request::Cmd::Export;
  else if (Cmd == "metrics")
    R.C = Request::Cmd::Metrics;
  else if (Cmd == "watch")
    R.C = Request::Cmd::Watch;
  else if (Cmd == "health")
    R.C = Request::Cmd::Health;
  else if (Cmd == "ready")
    R.C = Request::Cmd::Ready;
  else if (Cmd.empty())
    return Protocol("request carries no \"cmd\"");
  else
    return Protocol("unknown command '" + Cmd + "'");

  R.CaseId = Get("case");
  R.OperatorId = Get("operator");
  R.InstructionId = Get("instruction");
  std::string Mode = Get("mode");
  if (!Mode.empty()) {
    auto M = modeFromName(Mode);
    if (!M)
      return Protocol("unknown mode '" + Mode +
                      "' (\"base\" or \"extension\")");
    R.M = *M;
  }
  R.Wait = Get("wait") == "true";
  std::string Priority = Get("priority");
  if (!Priority.empty())
    R.Priority = static_cast<int>(std::strtol(Priority.c_str(), nullptr, 10));

  R.Rid = Get("rid");
  if (R.Rid.size() > 64)
    return Protocol("request id longer than 64 bytes");
  std::string Deadline = Get("deadline_ms");
  if (!Deadline.empty())
    R.DeadlineMs = std::strtoll(Deadline.c_str(), nullptr, 10);

  R.Path = Get("path");
  if (R.C == Request::Cmd::Export && R.Path.empty())
    return Protocol("export needs a \"path\"");

  if (R.C == Request::Cmd::Submit || R.C == Request::Cmd::Query) {
    bool HasPair = !R.OperatorId.empty() && !R.InstructionId.empty();
    if (R.CaseId.empty() && !HasPair)
      return Protocol(std::string(cmdName(R.C)) +
                      " needs \"case\" or \"operator\"+\"instruction\"");
  }

  R.Format = Get("format");
  if (R.C == Request::Cmd::Metrics && !R.Format.empty() &&
      R.Format != "json" && R.Format != "prom")
    return Protocol("unknown metrics format '" + R.Format +
                    "' (\"json\" or \"prom\")");

  std::string Job = Get("job");
  if (!Job.empty())
    R.JobId = std::strtoull(Job.c_str(), nullptr, 10);
  if (R.C == Request::Cmd::Watch && R.JobId == 0 && R.CaseId.empty())
    return Protocol("watch needs a \"job\" id or a \"case\"");
  return R;
}

std::string server::okResponse(const obs::Payload &P) {
  return "{\"ok\":true" + P.rendered() + "}";
}

std::string server::faultResponse(const Fault &F) {
  obs::Payload P;
  P.add("error", F.Message);
  P.add("category", faultCategoryName(F.Category));
  return "{\"ok\":false" + P.rendered() + "}";
}

std::string server::overloadedResponse(const std::string &Why,
                                       uint64_t RetryAfterMs) {
  obs::Payload P;
  P.add("error", Why);
  P.add("category", faultCategoryName(FaultCategory::Protocol));
  P.add("overloaded", true);
  P.add("retry_after_ms", RetryAfterMs);
  return "{\"ok\":false" + P.rendered() + "}";
}

std::string server::withRid(std::string Response, const std::string &Rid) {
  if (Rid.empty() || Response.empty() || Response.back() != '}')
    return Response;
  Response.pop_back();
  Response += ",\"rid\":\"" + obs::jsonEscape(Rid) + "\"}";
  return Response;
}

void server::addEntryPayload(obs::Payload &P, const MemoEntry &E) {
  const search::CheckpointRecord &R = E.Record;
  P.add("key", E.Key);
  P.add("case", R.Case);
  P.add("operator", E.OperatorId);
  P.add("instruction", E.InstructionId);
  P.add("mode", modeName(E.M));
  P.add("outcome", search::caseOutcomeName(R.Outcome));
  P.add("found", R.Found);
  P.add("verified", R.Verified);
  P.add("op_steps", R.OpSteps);
  P.add("inst_steps", R.InstSteps);
  P.add("nodes", R.Nodes);
  P.add("partial_distance", R.PartialDistance);
  if (R.Category != FaultCategory::None) {
    P.add("fault_category", faultCategoryName(R.Category));
    P.add("fault_message", R.FaultMessage);
  }
  if (!E.OpScript.empty())
    P.add("op_script", E.OpScript);
  if (!E.InstScript.empty())
    P.add("inst_script", E.InstScript);
  if (!E.Binding.empty())
    P.add("binding", E.Binding);
  if (!E.Constraints.empty())
    P.add("constraints", E.Constraints);
}
