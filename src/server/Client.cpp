//===- Client.cpp - Retrying discovery-service client -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "obs/TraceFile.h"
#include "server/Protocol.h"

#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unistd.h>

using namespace extra;
using namespace extra::server;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

int64_t elapsedMs(Clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               Start)
      .count();
}

uint64_t parseU64(const std::string &S, uint64_t Default) {
  if (S.empty())
    return Default;
  return std::strtoull(S.c_str(), nullptr, 10);
}

Response makeResponse(std::string Raw,
                      std::map<std::string, std::string> Fields) {
  Response R;
  R.Raw = std::move(Raw);
  R.Fields = std::move(Fields);
  return R;
}

} // namespace

Expected<std::unique_ptr<Client>> Client::connect(const std::string &Spec,
                                                  ClientOptions Opts) {
  auto Ep = parseEndpoint(Spec);
  if (!Ep)
    return Ep.fault();
  std::unique_ptr<Client> C(new Client());
  C->Ep = std::move(*Ep);
  C->Opts = Opts;
  uint64_t Seed = Opts.JitterSeed;
  if (!Seed)
    Seed = static_cast<uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ULL +
           static_cast<uint64_t>(
               Clock::now().time_since_epoch().count());
  C->JitterState = Seed;
  // Fixed-width prefix so rids are unique across processes and client
  // instances without varying line lengths run to run.
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "c%016llx",
                static_cast<unsigned long long>(splitmix64(Seed)));
  C->RidPrefix = Prefix;

  // Dial eagerly with the same retry discipline requests use, so a
  // server mid-restart does not fail the construction.
  std::string LastErr = "never attempted";
  for (unsigned Attempt = 0; Attempt < Opts.MaxAttempts; ++Attempt) {
    if (Attempt)
      C->backoff(Attempt, 0, Opts.RequestDeadlineMs);
    auto Ok = C->ensureConnected();
    if (Ok)
      return C;
    LastErr = Ok.fault().Message;
  }
  return makeFault(FaultCategory::Transport,
                   "cannot connect to " + C->Ep.str() + ": " + LastErr);
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Buf.clear();
}

Expected<bool> Client::ensureConnected() {
  if (Fd >= 0)
    return true;
  auto NewFd = connectEndpoint(Ep, Opts.ConnectTimeoutMs);
  if (!NewFd)
    return NewFd.fault();
  Fd = *NewFd;
  if (!setNonBlocking(Fd)) {
    disconnect();
    return makeFault(FaultCategory::Transport,
                     "cannot mark connection non-blocking");
  }
  Buf.clear();
  return true;
}

void Client::backoff(unsigned Attempt, uint64_t HintMs,
                     int64_t BudgetLeftMs) {
  uint64_t Delay = Opts.BackoffBaseMs << (Attempt > 6 ? 6 : Attempt);
  if (Delay > Opts.BackoffMaxMs)
    Delay = Opts.BackoffMaxMs;
  if (HintMs)
    Delay = HintMs > Opts.BackoffMaxMs ? Opts.BackoffMaxMs : HintMs;
  // Half-to-full jitter: concurrent retriers spread out instead of
  // re-colliding in lockstep.
  if (Delay > 1)
    Delay = Delay / 2 + splitmix64(JitterState) % (Delay / 2 + 1);
  if (BudgetLeftMs >= 0 && Delay > static_cast<uint64_t>(BudgetLeftMs))
    Delay = static_cast<uint64_t>(BudgetLeftMs);
  if (Delay)
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
}

std::string Client::nextRid() {
  char Out[48];
  std::snprintf(Out, sizeof(Out), "%s-%08llx", RidPrefix.c_str(),
                static_cast<unsigned long long>(++RidCounter));
  return Out;
}

Expected<Response> Client::request(const std::string &Line) {
  // Reuse the caller's rid when the line already carries one (tests pin
  // rids to exercise the server's dedup window); inject one otherwise.
  std::string Rid;
  if (auto Fields = obs::parseJsonObjectLine(Line)) {
    auto It = Fields->find("rid");
    if (It != Fields->end())
      Rid = It->second;
  }
  std::string Wire = Line;
  if (Rid.empty()) {
    Rid = nextRid();
    Wire = withRid(Line, Rid);
    if (Wire == Line)
      Rid.clear(); // Not an object line; nothing to echo — accept the
                   // first parsed reply instead of filtering by rid.
  }

  Clock::time_point Start = Clock::now();
  auto BudgetLeft = [&]() -> int64_t {
    if (Opts.RequestDeadlineMs <= 0)
      return INT_MAX;
    return static_cast<int64_t>(Opts.RequestDeadlineMs) - elapsedMs(Start);
  };

  std::string LastErr = "never attempted";
  uint64_t Hint = 0;
  unsigned Attempt = 0;
  for (; Attempt < Opts.MaxAttempts; ++Attempt) {
    if (BudgetLeft() <= 0)
      break;
    if (Attempt) {
      backoff(Attempt, Hint, BudgetLeft());
      Hint = 0;
      if (BudgetLeft() <= 0)
        break;
    }

    auto Conn = ensureConnected();
    if (!Conn) {
      LastErr = Conn.fault().Message;
      continue;
    }

    int64_t Left = BudgetLeft();
    int SendMs = Left > 10000 ? 10000 : static_cast<int>(Left);
    if (writeLineDeadline(Fd, Wire, SendMs) != IoStatus::Ok) {
      LastErr = "request send failed or timed out";
      disconnect();
      continue;
    }

    // Read until *our* response arrives: the resend-safe part is that
    // everything not carrying our rid — garbage, stale replies from a
    // previous attempt, fault lines for injected noise — is skipped,
    // never mistaken for the answer.
    for (;;) {
      Left = BudgetLeft();
      if (Left <= 0) {
        LastErr = "deadline elapsed awaiting the response";
        disconnect();
        break;
      }
      int ReadMs = Left > INT_MAX ? INT_MAX : static_cast<int>(Left);
      LineIo In = readLineDeadline(Fd, Buf, ReadMs, ReadMs,
                                   Opts.MaxLineBytes);
      if (In.St != IoStatus::Ok) {
        LastErr = In.St == IoStatus::Timeout
                      ? "response read timed out"
                      : In.St == IoStatus::Eof
                            ? "connection closed before a response arrived"
                            : In.St == IoStatus::Oversized
                                  ? "oversized response line"
                                  : "connection error reading response";
        disconnect();
        break;
      }
      auto Fields = obs::parseJsonObjectLine(In.Line);
      if (!Fields)
        continue; // Not a protocol line; skip.
      Response R = makeResponse(std::move(In.Line), std::move(*Fields));
      std::string GotRid = R.get("rid");
      if (!Rid.empty() && GotRid != Rid) {
        // The transport's connection-cap rejection is the one
        // legitimate rid-less reply addressed to us: honor its backoff
        // hint. Anything else off-rid is noise.
        if (R.overloaded() && GotRid.empty()) {
          Hint = parseU64(R.get("retry_after_ms"), 250);
          LastErr = "server overloaded: " + R.get("error");
          disconnect();
          break;
        }
        continue;
      }
      if (R.overloaded()) {
        Hint = parseU64(R.get("retry_after_ms"), 250);
        LastErr = "server overloaded: " + R.get("error");
        disconnect();
        break;
      }
      return R;
    }
  }
  return makeFault(FaultCategory::Transport,
                   "request to " + Ep.str() + " failed after " +
                       std::to_string(Attempt) + " attempt(s): " + LastErr);
}

Expected<Response> Client::requestStream(
    const std::string &Line,
    const std::function<bool(const Response &)> &OnTick) {
  // A watch is not idempotent mid-stream (replayed ticks would double),
  // so only the connect is retried; a lost stream is a Transport fault
  // and the caller decides whether to re-attach.
  std::string Rid;
  if (auto Fields = obs::parseJsonObjectLine(Line)) {
    auto It = Fields->find("rid");
    if (It != Fields->end())
      Rid = It->second;
  }
  std::string Wire = Line;
  if (Rid.empty()) {
    Rid = nextRid();
    Wire = withRid(Line, Rid);
    if (Wire == Line)
      Rid.clear();
  }

  auto Conn = ensureConnected();
  if (!Conn)
    return Conn.fault();
  if (writeLineDeadline(Fd, Wire, 10000) != IoStatus::Ok) {
    disconnect();
    return makeFault(FaultCategory::Transport,
                     "connection lost while sending request");
  }
  for (;;) {
    LineIo In =
        readLineDeadline(Fd, Buf, Opts.StreamIdleMs, Opts.StreamIdleMs,
                         Opts.MaxLineBytes);
    if (In.St != IoStatus::Ok) {
      disconnect();
      return makeFault(FaultCategory::Transport,
                       In.St == IoStatus::Timeout
                           ? "stream stalled past the idle bound"
                           : "connection closed mid-stream");
    }
    auto Fields = obs::parseJsonObjectLine(In.Line);
    if (!Fields)
      continue; // Noise between ticks; skip.
    Response R = makeResponse(std::move(In.Line), std::move(*Fields));
    // Tick lines carry "done":false and no "ok"; the final response is
    // a normal ok/fault line echoing our rid.
    if (R.Fields.count("ok")) {
      std::string GotRid = R.get("rid");
      if (!GotRid.empty() && GotRid != Rid)
        continue; // A stale final line from another request.
      return R;
    }
    if (!OnTick(R)) {
      disconnect();
      return makeFault(FaultCategory::Protocol,
                       "watch abandoned by the caller");
    }
  }
}
