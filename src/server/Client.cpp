//===- Client.cpp - Thin discovery-service client ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "obs/TraceFile.h"
#include "server/Socket.h"

#include <unistd.h>

using namespace extra;
using namespace extra::server;

Expected<std::unique_ptr<Client>> Client::connect(const std::string &Path) {
  auto Fd = connectUnix(Path);
  if (!Fd)
    return Fd.fault();
  return std::unique_ptr<Client>(new Client(*Fd));
}

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

Expected<Response> Client::request(const std::string &Line) {
  if (!writeLine(Fd, Line))
    return makeFault(FaultCategory::Protocol,
                     "connection lost while sending request");
  auto Raw = readLine(Fd, Buf);
  if (!Raw)
    return makeFault(FaultCategory::Protocol,
                     "connection closed before a response arrived");
  auto Fields = obs::parseJsonObjectLine(*Raw);
  if (!Fields)
    return makeFault(FaultCategory::Protocol,
                     "malformed response line: " + *Raw);
  Response R;
  R.Raw = std::move(*Raw);
  R.Fields = std::move(*Fields);
  return R;
}

Expected<Response> Client::requestStream(
    const std::string &Line,
    const std::function<bool(const Response &)> &OnTick) {
  if (!writeLine(Fd, Line))
    return makeFault(FaultCategory::Protocol,
                     "connection lost while sending request");
  for (;;) {
    auto Raw = readLine(Fd, Buf);
    if (!Raw)
      return makeFault(FaultCategory::Protocol,
                       "connection closed mid-stream");
    auto Fields = obs::parseJsonObjectLine(*Raw);
    if (!Fields)
      return makeFault(FaultCategory::Protocol,
                       "malformed stream line: " + *Raw);
    Response R;
    R.Raw = std::move(*Raw);
    R.Fields = std::move(*Fields);
    // Tick lines carry "done":false and no "ok"; the final response is
    // a normal ok/fault line.
    if (R.Fields.count("ok"))
      return R;
    if (!OnTick(R)) {
      ::close(Fd);
      Fd = -1;
      return makeFault(FaultCategory::Protocol,
                       "watch abandoned by the caller");
    }
  }
}
