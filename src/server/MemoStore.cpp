//===- MemoStore.cpp - Persistent cross-run discovery cache -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "server/MemoStore.h"

#include "descriptions/Descriptions.h"
#include "obs/Trace.h"
#include "obs/TraceFile.h"
#include "search/Canon.h"
#include "support/FaultInjection.h"
#include "support/VersionedFile.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fcntl.h>
#include <fstream>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace extra;
using namespace extra::server;

Expected<std::string> server::pairingKey(const std::string &OperatorId,
                                         const std::string &InstructionId,
                                         analysis::Mode M) {
  return search::pairingKeyHex(OperatorId, InstructionId, M);
}

MemoLimits MemoLimits::fromSearchLimits(const search::SearchLimits &L) {
  MemoLimits M;
  M.BeamWidth = L.BeamWidth;
  M.MaxDepth = L.MaxDepth;
  M.Widenings = L.Widenings;
  M.MaxNodes = L.MaxNodes;
  M.TimeBudgetMs = L.TimeBudgetMs;
  return M;
}

bool MemoLimits::covers(const MemoLimits &Other) const {
  return BeamWidth >= Other.BeamWidth && MaxDepth >= Other.MaxDepth &&
         Widenings >= Other.Widenings && MaxNodes >= Other.MaxNodes &&
         TimeBudgetMs >= Other.TimeBudgetMs;
}

std::string MemoEntry::toJsonLine() const {
  // The checkpoint record renders first so a memo line is readable by
  // the same eyes (and tools) as a checkpoint line; the memo fields are
  // appended before the closing brace.
  std::string Out = Record.toJsonLine();
  Out.pop_back(); // Drop the closing '}'.
  Out += ",\"key\":\"" + obs::jsonEscape(Key) + "\"";
  Out += ",\"operator\":\"" + obs::jsonEscape(OperatorId) + "\"";
  Out += ",\"instruction\":\"" + obs::jsonEscape(InstructionId) + "\"";
  Out += ",\"mode\":\"" + std::string(modeName(M)) + "\"";
  Out += ",\"beam\":" + std::to_string(Limits.BeamWidth);
  Out += ",\"depth\":" + std::to_string(Limits.MaxDepth);
  Out += ",\"widenings\":" + std::to_string(Limits.Widenings);
  Out += ",\"max_nodes\":" + std::to_string(Limits.MaxNodes);
  Out += ",\"time_budget_ms\":" + std::to_string(Limits.TimeBudgetMs);
  Out += ",\"op_script\":\"" + obs::jsonEscape(OpScript) + "\"";
  Out += ",\"inst_script\":\"" + obs::jsonEscape(InstScript) + "\"";
  Out += ",\"binding\":\"" + obs::jsonEscape(Binding) + "\"";
  Out += ",\"constraints\":\"" + obs::jsonEscape(Constraints) + "\"";
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(FpOp));
  Out += ",\"fp_op\":\"" + std::string(Buf) + "\"";
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(FpInst));
  Out += ",\"fp_inst\":\"" + std::string(Buf) + "\"";
  Out += "}";
  return Out;
}

std::optional<MemoEntry> MemoEntry::fromJsonLine(std::string_view Line) {
  auto Record = search::CheckpointRecord::fromJsonLine(Line);
  if (!Record)
    return std::nullopt;
  auto Fields = obs::parseJsonObjectLine(Line);
  if (!Fields)
    return std::nullopt;
  auto Get = [&](const char *Key) -> std::string {
    auto It = Fields->find(Key);
    return It == Fields->end() ? std::string() : It->second;
  };
  MemoEntry E;
  E.Record = std::move(*Record);
  E.Key = Get("key");
  if (E.Key.empty())
    return std::nullopt; // A plain checkpoint line, not a memo entry.
  E.OperatorId = Get("operator");
  E.InstructionId = Get("instruction");
  auto M = modeFromName(Get("mode"));
  if (!M)
    return std::nullopt;
  E.M = *M;
  E.Limits.BeamWidth =
      static_cast<unsigned>(std::strtoul(Get("beam").c_str(), nullptr, 10));
  E.Limits.MaxDepth =
      static_cast<unsigned>(std::strtoul(Get("depth").c_str(), nullptr, 10));
  E.Limits.Widenings = static_cast<unsigned>(
      std::strtoul(Get("widenings").c_str(), nullptr, 10));
  E.Limits.MaxNodes = std::strtoull(Get("max_nodes").c_str(), nullptr, 10);
  E.Limits.TimeBudgetMs =
      std::strtoull(Get("time_budget_ms").c_str(), nullptr, 10);
  E.OpScript = Get("op_script");
  E.InstScript = Get("inst_script");
  E.Binding = Get("binding");
  E.Constraints = Get("constraints");
  E.FpOp = std::strtoull(Get("fp_op").c_str(), nullptr, 16);
  E.FpInst = std::strtoull(Get("fp_inst").c_str(), nullptr, 16);
  return E;
}

namespace {

Fault storeFault(std::string Message) {
  return makeFault(FaultCategory::Store, std::move(Message));
}

/// The injectable failure point of every store write path.
bool injectedStoreFault(Fault *F, const char *What) {
  if (!FaultInjector::instance().shouldFail("store"))
    return false;
  *F = storeFault(std::string("injected store fault in ") + What);
  return true;
}

/// The memo file format, as the shared versioned-file layer sees it.
support::FileFormat memoFormat() {
  return {kMemoFormat, kMemoVersion, "memo store"};
}

/// A lock whose recorded pid no longer names a process is stale.
const long kStaleLockAgeSec = 300;

/// True when the lock at \p LockPath was abandoned: its pid is dead
/// (kill 0 -> ESRCH), or — when the pid is unreadable — the file is
/// older than kStaleLockAgeSec. A live or merely unsignallable (EPERM)
/// owner is never stale.
bool staleLock(const std::string &LockPath) {
  std::ifstream In(LockPath);
  long Pid = 0;
  if (In && (In >> Pid) && Pid > 0) {
    if (::kill(static_cast<pid_t>(Pid), 0) == 0)
      return false; // Owner is alive.
    return errno == ESRCH;
  }
  // No readable pid (torn write, pre-liveness lock): age decides.
  struct stat St;
  if (::stat(LockPath.c_str(), &St) != 0)
    return true; // Vanished under us — the O_EXCL retry will decide.
  return ::time(nullptr) - St.st_mtime > kStaleLockAgeSec;
}

} // namespace

Expected<std::unique_ptr<MemoStore>> MemoStore::open(const std::string &Path) {
  std::unique_ptr<MemoStore> S(new MemoStore());
  S->Path = Path;
  S->LockPath = Path + ".lock";

  {
    Fault F;
    if (injectedStoreFault(&F, "open"))
      return F;
  }

  // O_EXCL lock: exactly one server may own a store. The file holds the
  // owner's pid, which doubles as the liveness probe: when the O_EXCL
  // create loses, the recorded pid is signalled with kill(pid, 0) — a
  // dead owner (ESRCH) means a crashed server left the lock behind, and
  // it is taken over instead of failing, so a supervised restart needs
  // no manual cleanup. An unreadable pid falls back to the lock file's
  // age (older than kStaleLockAgeSec = abandoned). A *live* owner still
  // faults: two servers must never share an append log.
  //
  // The takeover window is bounded: unlink-then-recreate can race
  // another restarting server, so the create is retried a few times and
  // only ever after a stale verdict.
  bool TookOver = false;
  int LockFd = -1;
  for (int Tries = 0; Tries < 4; ++Tries) {
    LockFd = ::open(S->LockPath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (LockFd >= 0)
      break;
    if (!staleLock(S->LockPath))
      return storeFault("store lock '" + S->LockPath +
                        "' held by a live process (remove it only if no "
                        "server is running)");
    TookOver = true;
    ::unlink(S->LockPath.c_str());
  }
  if (LockFd < 0)
    return storeFault("store lock '" + S->LockPath +
                      "' could not be taken over (restart race)");
  (void)TookOver;
  std::string Pid = std::to_string(static_cast<long>(::getpid())) + "\n";
  (void)!::write(LockFd, Pid.c_str(), Pid.size());
  ::close(LockFd);
  S->Locked = true;

  // Tolerated-if-absent header, like the checkpoint header: a headerless
  // file is read as the current version.
  auto Lines = support::readVersionedLines(Path, memoFormat());
  if (!Lines) {
    S->close();
    return Lines.fault();
  }
  for (const std::string &Line : *Lines) {
    auto E = MemoEntry::fromJsonLine(Line);
    if (!E)
      continue; // Torn trailing write from a killed server — skip.
    S->ByKey[E->Key] = std::move(*E); // Later records win.
  }
  return S;
}

MemoStore::~MemoStore() { close(); }

Expected<bool> MemoStore::put(const MemoEntry &E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Closed)
    return storeFault("put on a closed store");
  ByKey[E.Key] = E;

  Fault F;
  if (injectedStoreFault(&F, "append"))
    return F;

  return support::appendVersionedLine(Path, memoFormat(), E.toJsonLine());
}

std::optional<MemoEntry> MemoStore::lookup(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByKey.find(Key);
  if (It == ByKey.end())
    return std::nullopt;
  return It->second;
}

std::vector<MemoEntry> MemoStore::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<MemoEntry> Out;
  Out.reserve(ByKey.size());
  for (const auto &[Key, E] : ByKey)
    Out.push_back(E);
  return Out;
}

size_t MemoStore::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ByKey.size();
}

Expected<bool> MemoStore::compact() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Closed)
    return storeFault("compact on a closed store");

  Fault F;
  if (injectedStoreFault(&F, "compact"))
    return F;

  std::vector<std::string> Lines;
  Lines.reserve(ByKey.size());
  for (const auto &[Key, E] : ByKey)
    Lines.push_back(E.toJsonLine());
  return support::writeVersionedFile(Path, memoFormat(), Lines);
}

void MemoStore::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  Closed = true;
  if (Locked) {
    std::remove(LockPath.c_str());
    Locked = false;
  }
}
