//===- Target.cpp - Retargetable code generation core -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "support/StringUtil.h"

using namespace extra;
using namespace extra::codegen;
using constraint::CompileTimeFacts;
using constraint::Constraint;
using constraint::ConstraintKind;
using constraint::SatResult;

const char *codegen::opKindName(OpKind K) {
  switch (K) {
  case OpKind::StrIndex:
    return "StrIndex";
  case OpKind::StrMove:
    return "StrMove";
  case OpKind::StrEqual:
    return "StrEqual";
  case OpKind::BlockCopy:
    return "BlockCopy";
  case OpKind::BlockClear:
    return "BlockClear";
  }
  return "?";
}

std::string HLOp::str() const {
  std::string Out = opKindName(K);
  Out += "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Args[I].str();
  }
  Out += ")";
  if (!Result.empty())
    Out = Result + " <- " + Out;
  return Out;
}

HLOp codegen::strIndex(std::string Result, Value Str, Value Len, Value Ch) {
  return HLOp{OpKind::StrIndex, {Str, Len, Ch}, std::move(Result)};
}
HLOp codegen::strMove(Value Dst, Value Src, Value Len) {
  return HLOp{OpKind::StrMove, {Dst, Src, Len}, ""};
}
HLOp codegen::strEqual(std::string Result, Value A, Value B, Value Len) {
  return HLOp{OpKind::StrEqual, {A, B, Len}, std::move(Result)};
}
HLOp codegen::blockCopy(Value Dst, Value Src, Value Len) {
  return HLOp{OpKind::BlockCopy, {Dst, Src, Len}, ""};
}
HLOp codegen::blockClear(Value Dst, Value Len) {
  return HLOp{OpKind::BlockClear, {Dst, Len}, ""};
}

//===----------------------------------------------------------------------===//
// CodeGenContext
//===----------------------------------------------------------------------===//

std::string CodeGenContext::freshLabel(const std::string &Stem) {
  return Stem + std::to_string(NextLabel++);
}

bool CodeGenContext::registerHolds(const std::string &Reg,
                                   const std::string &What) const {
  auto It = RegContents.find(Reg);
  return It != RegContents.end() && It->second == What && !What.empty();
}

void CodeGenContext::setRegister(const std::string &Reg,
                                 const std::string &What) {
  RegContents[Reg] = What;
}

void CodeGenContext::clobberRegister(const std::string &Reg) {
  RegContents.erase(Reg);
}

void CodeGenContext::clobberAllRegisters() { RegContents.clear(); }

void CodeGenContext::emit(std::string Line) {
  Lines.push_back(std::move(Line));
}

void CodeGenContext::load(const std::string &Reg, const Value &V,
                          const std::string &MovMnemonic) {
  std::string What = V.str();
  if (registerHolds(Reg, What))
    return; // §6: cascaded instructions reuse dedicated registers.
  emit("  " + MovMnemonic + " " + Reg + ", " + What);
  setRegister(Reg, What);
}

//===----------------------------------------------------------------------===//
// Code generation driver
//===----------------------------------------------------------------------===//

Target::~Target() = default;

namespace {

/// Explains a constraint-check outcome for the selection notes.
std::string satName(SatResult R) {
  switch (R) {
  case SatResult::Satisfied:
    return "constraints satisfied by compile-time facts";
  case SatResult::Satisfiable:
    return "constraints satisfiable by setup/rewriting code";
  case SatResult::Violated:
    return "a constraint is violated";
  case SatResult::Unknown:
    return "a constraint cannot be decided at compile time";
  }
  return "?";
}

/// Position of the length operand for each operator kind.
size_t lengthArgIndex(OpKind K) {
  switch (K) {
  case OpKind::StrIndex:
    return 1;
  case OpKind::BlockClear:
    return 1;
  case OpKind::StrMove:
  case OpKind::StrEqual:
  case OpKind::BlockCopy:
    return 2;
  }
  return 0;
}

/// Facts for checking \p B against \p O: the base facts plus, when the
/// length operand is a literal, that literal seeded as the known value of
/// every range-constrained operand (the length is the only operand whose
/// magnitude the bindings bound tightly; address ranges are 2^16+ wide,
/// so the seeding is safely conservative for them).
CompileTimeFacts bindingFacts(const InstructionBinding &B, const HLOp &O,
                              const CompileTimeFacts &BaseFacts,
                              int64_t WordMax) {
  CompileTimeFacts Facts = BaseFacts;
  const Value &Len = O.Args[lengthArgIndex(O.K)];
  for (const Constraint &C : B.Constraints.items()) {
    if (C.kind() != ConstraintKind::Range)
      continue;
    // Word-wide ranges are trivially satisfied: every front-end operand
    // fits in a machine word.
    if (C.hi() >= WordMax) {
      Facts.KnownRanges.emplace(C.operand(), std::make_pair(C.lo(), C.hi()));
      continue;
    }
    // Narrow ranges bound the length operand; transfer what the front
    // end knows about it onto the constraint's (operator-side) name.
    if (Len.isLiteral()) {
      Facts.KnownValues.emplace(C.operand(), Len.Lit);
    } else {
      auto ItV = BaseFacts.KnownValues.find(Len.Name);
      if (ItV != BaseFacts.KnownValues.end())
        Facts.KnownValues.emplace(C.operand(), ItV->second);
      auto ItR = BaseFacts.KnownRanges.find(Len.Name);
      if (ItR != BaseFacts.KnownRanges.end())
        Facts.KnownRanges.emplace(C.operand(), ItR->second);
    }
  }
  return Facts;
}

} // namespace

namespace {

/// §6 constant-value optimization: operands whose symbols the front end
/// knows as constants are propagated into the operation before
/// selection, so emitters load immediates instead of dead symbols.
HLOp propagateConstants(const HLOp &O, const CompileTimeFacts &Facts) {
  HLOp Out = O;
  for (Value &V : Out.Args) {
    if (V.isLiteral())
      continue;
    auto It = Facts.KnownValues.find(V.Name);
    if (It != Facts.KnownValues.end())
      V = Value::literal(It->second);
  }
  return Out;
}

} // namespace

CodeGenResult Target::generate(const Program &P) const {
  CodeGenResult Result;
  CodeGenContext Ctx;

  for (size_t I = 0; I < P.Ops.size(); ++I) {
    const HLOp O = propagateConstants(P.Ops[I], P.Facts);
    SelectionNote Note;
    Note.OpIndex = I;
    Note.Operator = opKindName(O.K);

    const InstructionBinding *Chosen = nullptr;
    SatResult Outcome = SatResult::Unknown;
    bool NeedRewrite = false;
    for (const InstructionBinding &B : Bindings) {
      if (B.Op != O.K)
        continue;
      CompileTimeFacts BF = bindingFacts(B, O, P.Facts, wordMax());
      SatResult R = B.Constraints.checkAll(BF, /*AllowRewriting=*/true);
      if (R == SatResult::Violated)
        continue;
      // Range constraints that only a rewriting rule can force need the
      // binding to actually have one.
      SatResult Strict =
          B.Constraints.checkAll(BF, /*AllowRewriting=*/false);
      if (Strict == SatResult::Violated || Strict == SatResult::Unknown) {
        if (!B.RewriteEmit)
          continue;
        NeedRewrite = true;
      }
      Chosen = &B;
      Outcome = R;
      break;
    }

    Ctx.emit("; " + O.str());
    if (Chosen && NeedRewrite) {
      if (Chosen->RewriteEmit(O, P.Facts, Ctx)) {
        Note.Chosen = Chosen->Mnemonic + " (rewritten)";
        Note.Reason = "range forced by a §6 rewriting rule (chunked uses)";
        ++Result.ExoticCount;
      } else {
        decompose(O, Ctx);
        Ctx.clobberAllRegisters();
        Note.Chosen = "decomposed";
        Note.Reason = "rewriting rule declined; primitive loop emitted";
        ++Result.DecomposedCount;
      }
    } else if (Chosen) {
      Chosen->Emit(O, P.Facts, Ctx);
      Note.Chosen = Chosen->Mnemonic;
      Note.Reason = satName(Outcome) + " [" + Chosen->AnalysisId + "]";
      ++Result.ExoticCount;
    } else {
      decompose(O, Ctx);
      Ctx.clobberAllRegisters();
      Note.Chosen = "decomposed";
      Note.Reason = "no usable exotic binding; primitive loop emitted";
      ++Result.DecomposedCount;
    }
    Result.Notes.push_back(std::move(Note));
  }

  Result.Asm = peephole(Ctx.takeLines());
  return Result;
}

//===----------------------------------------------------------------------===//
// Peephole (§6 augment/rewrite integration)
//===----------------------------------------------------------------------===//

std::vector<std::string> codegen::peephole(std::vector<std::string> Asm) {
  std::vector<std::string> Out;
  Out.reserve(Asm.size());
  std::string LastSetup;
  for (std::string &Line : Asm) {
    std::string_view T = trim(Line);
    // Delete self-moves produced by stitching augment and rewrite code.
    if (startsWith(T, "mov ") || startsWith(T, "movl ")) {
      size_t Sp = T.find(' ');
      std::string_view Rest = trim(T.substr(Sp));
      size_t Comma = Rest.find(',');
      if (Comma != std::string_view::npos) {
        std::string_view A = trim(Rest.substr(0, Comma));
        std::string_view B = trim(Rest.substr(Comma + 1));
        if (A == B)
          continue;
      }
    }
    // Collapse immediately repeated direction/flag setup (cld; cld).
    if (T == "cld" || T == "std") {
      if (LastSetup == T)
        continue;
      LastSetup = std::string(T);
    } else if (!T.empty() && T[0] != ';') {
      LastSetup.clear();
    }
    Out.push_back(std::move(Line));
  }
  return Out;
}
