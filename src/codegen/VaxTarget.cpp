//===- VaxTarget.cpp - VAX-11 back end --------------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VAX-11 binding table. Two bindings showcase §4.3: BlockCopy uses
/// movc3 unconditionally (PC2's bcopy matches movc3's overlap handling
/// exactly — 21 steps, the easiest analysis), while StrMove uses movc3
/// only under the Pascal no-overlap axiom, i.e. only when the program's
/// compile-time facts vouch for `pascal.no-overlap` — the relational
/// constraint the 1982 system could not represent.
///
/// The dialect: string instructions take explicit operands and leave
/// their results in the architecturally dedicated registers (r0 = 0 or
/// remaining count, r1/r3 = final addresses), which the §6
/// register-preference optimization exploits across cascaded uses.
///
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "analysis/Derivations.h"

using namespace extra;
using namespace extra::codegen;
using constraint::CompileTimeFacts;

namespace {

/// §6's exact rewriting-rule example: "a string move operator that is
/// constrained to move strings of at most 65K bytes can be rewritten to
/// move consecutive substrings of size less than or equal to 65K."
/// Emits forward chunks, which is only sound when the operands cannot
/// overlap — the caller guarantees that (Pascal axiom, or literal
/// operands checked disjoint).
void emitChunkedMovc3(int64_t Dst, int64_t Src, int64_t Len,
                      codegen::CodeGenContext &Ctx) {
  int64_t Done = 0;
  while (Done < Len) {
    int64_t Chunk = std::min<int64_t>(Len - Done, 0xFFFF);
    Ctx.emit("  movl r0, " + std::to_string(Chunk));
    Ctx.emit("  movl r1, " + std::to_string(Src + Done));
    Ctx.emit("  movl r3, " + std::to_string(Dst + Done));
    Ctx.emit("  movc3 r0, r1, r3  ; " + std::to_string(Chunk) +
             "-byte substring");
    Done += Chunk;
  }
  Ctx.clobberRegister("r1");
  Ctx.clobberRegister("r3");
  Ctx.setRegister("r0", "0");
}

/// Resolves a length operand to a compile-time value when possible.
std::optional<int64_t> literalOf(const codegen::Value &V,
                                 const CompileTimeFacts &Facts) {
  if (V.isLiteral())
    return V.Lit;
  auto It = Facts.KnownValues.find(V.Name);
  if (It == Facts.KnownValues.end())
    return std::nullopt;
  return It->second;
}

const constraint::ConstraintSet &constraintsOf(const std::string &CaseId) {
  static std::map<std::string, constraint::ConstraintSet> Cache;
  auto It = Cache.find(CaseId);
  if (It != Cache.end())
    return It->second;
  const analysis::AnalysisCase *Case = analysis::findCase(CaseId);
  assert(Case && "unknown analysis case");
  analysis::DiffOptions Opts;
  Opts.Trials = 4;
  analysis::AnalysisResult R =
      analysis::runAnalysis(*Case, analysis::Mode::Extension, Opts);
  assert(R.Succeeded && "analysis behind a binding failed");
  return Cache.emplace(CaseId, std::move(R.Constraints)).first->second;
}

class VaxTarget : public Target {
public:
  VaxTarget() : Target("VAX-11", 0xFFFFFFFFLL) {
    // locc <- Rigel/CLU string search.
    InstructionBinding Locc;
    Locc.Op = OpKind::StrIndex;
    Locc.Mnemonic = "locc";
    Locc.AnalysisId = "vax.locc/rigel.index";
    Locc.Constraints = constraintsOf("vax.locc/rigel.index");
    Locc.Emit = [](const HLOp &O, const CompileTimeFacts &,
                   CodeGenContext &Ctx) {
      Ctx.load("r1", O.Args[0], "movl"); // string address
      Ctx.load("r0", O.Args[1], "movl"); // length (16-bit constraint)
      Ctx.load("r2", O.Args[2], "movl"); // character
      Ctx.emit("  movl r4, r1       ; save initial address");
      Ctx.emit("  locc r2, r0, r1   ; locate character");
      std::string NotFound = Ctx.freshLabel("nf");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + NotFound + "          ; r0 = 0: not found");
      Ctx.emit("  subl r1, r4       ; offset of located byte");
      Ctx.emit("  incl r1           ; 1-based index");
      Ctx.emit("  brb " + Done);
      Ctx.emit(NotFound + ":");
      Ctx.emit("  movl r1, 0");
      Ctx.emit(Done + ":");
      Ctx.emit("  movl " + O.Result + ", r1");
      Ctx.clobberRegister("r1");
      Ctx.clobberRegister("r4");
      Ctx.setRegister("r0", ""); // 0 or remaining count
      Ctx.setRegister(O.Result, "");
    };
    addBinding(std::move(Locc));

    // movc3 <- PC2 block copy: both guard overlap, no constraints beyond
    // the 16-bit length.
    InstructionBinding Movc3Copy;
    Movc3Copy.Op = OpKind::BlockCopy;
    Movc3Copy.Mnemonic = "movc3";
    Movc3Copy.AnalysisId = "vax.movc3/pc2.copy";
    Movc3Copy.Constraints = constraintsOf("vax.movc3/pc2.copy");
    Movc3Copy.Emit = [](const HLOp &O, const CompileTimeFacts &,
                        CodeGenContext &Ctx) {
      Ctx.load("r0", O.Args[2], "movl"); // length
      Ctx.load("r1", O.Args[1], "movl"); // source
      Ctx.load("r3", O.Args[0], "movl"); // destination
      Ctx.emit("  movc3 r0, r1, r3  ; overlap-safe block move");
      Ctx.clobberRegister("r1");
      Ctx.clobberRegister("r3");
      Ctx.setRegister("r0", "0"); // movc3 leaves r0 = 0
    };
    Movc3Copy.RewriteEmit = [](const HLOp &O, const CompileTimeFacts &Facts,
                               CodeGenContext &Ctx) {
      // Chunking is forward, so it is only sound when the compiler can
      // *prove* the operands disjoint — all three literal and
      // non-overlapping. Otherwise decompose.
      auto Len = literalOf(O.Args[2], Facts);
      auto Dst = literalOf(O.Args[0], Facts);
      auto Src = literalOf(O.Args[1], Facts);
      if (!Len || !Dst || !Src || *Len <= 0)
        return false;
      bool Disjoint = *Src + *Len <= *Dst || *Dst + *Len <= *Src;
      if (!Disjoint)
        return false;
      emitChunkedMovc3(*Dst, *Src, *Len, Ctx);
      return true;
    };
    addBinding(std::move(Movc3Copy));

    // movc3 <- Pascal string assignment (§4.3): only valid under the
    // source-language no-overlap guarantee, recorded as a relational
    // constraint during the extension-mode analysis. The constraint
    // check requires Facts.Axioms to contain "pascal.no-overlap".
    InstructionBinding Movc3Move;
    Movc3Move.Op = OpKind::StrMove;
    Movc3Move.Mnemonic = "movc3";
    Movc3Move.AnalysisId = "vax.movc3/pascal.sassign";
    Movc3Move.Constraints = constraintsOf("vax.movc3/pascal.sassign");
    Movc3Move.Emit = [](const HLOp &O, const CompileTimeFacts &,
                        CodeGenContext &Ctx) {
      Ctx.load("r0", O.Args[2], "movl");
      Ctx.load("r1", O.Args[1], "movl");
      Ctx.load("r3", O.Args[0], "movl");
      Ctx.emit("  movc3 r0, r1, r3  ; string assignment (no overlap "
               "by Pascal semantics)");
      Ctx.clobberRegister("r1");
      Ctx.clobberRegister("r3");
      Ctx.setRegister("r0", "0");
    };
    Movc3Move.RewriteEmit = [](const HLOp &O, const CompileTimeFacts &Facts,
                               CodeGenContext &Ctx) {
      // Under the Pascal no-overlap axiom, forward 65K chunks are sound
      // for any compile-time-known length.
      if (!Facts.Axioms.count("pascal.no-overlap"))
        return false;
      auto Len = literalOf(O.Args[2], Facts);
      auto Dst = literalOf(O.Args[0], Facts);
      auto Src = literalOf(O.Args[1], Facts);
      if (!Len || !Dst || !Src || *Len <= 0)
        return false;
      emitChunkedMovc3(*Dst, *Src, *Len, Ctx);
      return true;
    };
    addBinding(std::move(Movc3Move));

    // cmpc3 <- Pascal string comparison.
    InstructionBinding Cmpc3;
    Cmpc3.Op = OpKind::StrEqual;
    Cmpc3.Mnemonic = "cmpc3";
    Cmpc3.AnalysisId = "vax.cmpc3/pascal.sequal";
    Cmpc3.Constraints = constraintsOf("vax.cmpc3/pascal.sequal");
    Cmpc3.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("r0", O.Args[2], "movl");
      Ctx.load("r1", O.Args[0], "movl");
      Ctx.load("r3", O.Args[1], "movl");
      Ctx.emit("  cmpc3 r0, r1, r3  ; compare characters");
      std::string Eq = Ctx.freshLabel("eq");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + Eq + "          ; r0 = 0: all equal");
      Ctx.emit("  movl " + O.Result + ", 0");
      Ctx.emit("  brb " + Done);
      Ctx.emit(Eq + ":");
      Ctx.emit("  movl " + O.Result + ", 1");
      Ctx.emit(Done + ":");
      Ctx.clobberRegister("r1");
      Ctx.clobberRegister("r3");
      Ctx.setRegister("r0", "");
      Ctx.setRegister(O.Result, "");
    };
    addBinding(std::move(Cmpc3));

    // movc5 <- PC2 block clear: srclen and fill pinned to 0 (the value
    // constraints of the movc5 analysis), srcaddr immaterial.
    InstructionBinding Movc5;
    Movc5.Op = OpKind::BlockClear;
    Movc5.Mnemonic = "movc5";
    Movc5.AnalysisId = "vax.movc5/pc2.clear";
    Movc5.Constraints = constraintsOf("vax.movc5/pc2.clear");
    Movc5.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("r0", Value::literal(0), "movl"); // srclen = 0 (pinned)
      Ctx.load("r1", Value::literal(0), "movl"); // srcaddr (unused)
      Ctx.load("r2", Value::literal(0), "movl"); // fill = 0 (pinned)
      Ctx.load("r4", O.Args[1], "movl");         // dstlen
      Ctx.load("r5", O.Args[0], "movl");         // dstaddr
      Ctx.emit("  movc5 r0, r1, r2, r4, r5  ; block clear");
      Ctx.setRegister("r0", "0");
      Ctx.clobberRegister("r4");
      Ctx.clobberRegister("r5");
      Ctx.clobberRegister("r3");
    };
    addBinding(std::move(Movc5));
  }

  void decompose(const HLOp &O, CodeGenContext &Ctx) const override {
    std::string Top = Ctx.freshLabel("top");
    std::string Done = Ctx.freshLabel("done");
    switch (O.K) {
    case OpKind::StrIndex: {
      Ctx.load("r1", O.Args[0], "movl");
      Ctx.load("r0", O.Args[1], "movl");
      Ctx.load("r2", O.Args[2], "movl");
      std::string NotFound = Ctx.freshLabel("nf");
      Ctx.emit("  movl r4, r1");
      Ctx.emit(Top + ":");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + NotFound);
      Ctx.emit("  decl r0");
      Ctx.emit("  ldb r5, (r1)");
      Ctx.emit("  incl r1");
      Ctx.emit("  cmpl r5, r2");
      Ctx.emit("  bneq " + Top);
      Ctx.emit("  subl r1, r4");
      Ctx.emit("  brb " + Done);
      Ctx.emit(NotFound + ":");
      Ctx.emit("  movl r1, 0");
      Ctx.emit(Done + ":");
      Ctx.emit("  movl " + O.Result + ", r1");
      break;
    }
    case OpKind::StrMove:
    case OpKind::BlockCopy: {
      // Primitive forward loop; for BlockCopy a real compiler would also
      // emit the backward variant — the exotic binding covers it here.
      Ctx.load("r1", O.Args[1], "movl");
      Ctx.load("r3", O.Args[0], "movl");
      Ctx.load("r0", O.Args[2], "movl");
      Ctx.emit(Top + ":");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + Done);
      Ctx.emit("  decl r0");
      Ctx.emit("  ldb r5, (r1)");
      Ctx.emit("  incl r1");
      Ctx.emit("  stb r5, (r3)");
      Ctx.emit("  incl r3");
      Ctx.emit("  brb " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::StrEqual: {
      Ctx.load("r1", O.Args[0], "movl");
      Ctx.load("r3", O.Args[1], "movl");
      Ctx.load("r0", O.Args[2], "movl");
      std::string Ne = Ctx.freshLabel("ne");
      Ctx.emit(Top + ":");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + Done + "_eq");
      Ctx.emit("  decl r0");
      Ctx.emit("  ldb r5, (r1)");
      Ctx.emit("  incl r1");
      Ctx.emit("  ldb r6, (r3)");
      Ctx.emit("  incl r3");
      Ctx.emit("  cmpl r5, r6");
      Ctx.emit("  bneq " + Ne);
      Ctx.emit("  brb " + Top);
      Ctx.emit(Done + "_eq:");
      Ctx.emit("  movl " + O.Result + ", 1");
      Ctx.emit("  brb " + Done);
      Ctx.emit(Ne + ":");
      Ctx.emit("  movl " + O.Result + ", 0");
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::BlockClear: {
      Ctx.load("r3", O.Args[0], "movl");
      Ctx.load("r0", O.Args[1], "movl");
      Ctx.emit("  movl r5, 0");
      Ctx.emit(Top + ":");
      Ctx.emit("  tstl r0");
      Ctx.emit("  beql " + Done);
      Ctx.emit("  decl r0");
      Ctx.emit("  stb r5, (r3)");
      Ctx.emit("  incl r3");
      Ctx.emit("  brb " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    }
  }
};

} // namespace

std::unique_ptr<Target> codegen::makeVaxTarget() {
  return std::make_unique<VaxTarget>();
}
