//===- I8086Target.cpp - Intel 8086 back end --------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 8086 binding table and decomposition rules. The StrIndex emitter
/// reproduces the paper's §4.1 hand-translated listing for the augmented
/// scasb (initial-pointer save, zf zeroing, `cld`, repeat prefix, and the
/// index-from-address epilogue), with one correction: the paper's listing
/// uses `jz` where the flag sense requires jump-if-NOT-found; we emit
/// `jnz` to the not-found label. Constraints come from the actual Table 2
/// analyses, run once and cached.
///
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "analysis/Derivations.h"

using namespace extra;
using namespace extra::codegen;
using constraint::CompileTimeFacts;

namespace {

/// Constraint set from a Table 2 analysis (cached; the analyses are
/// deterministic).
const constraint::ConstraintSet &constraintsOf(const std::string &CaseId) {
  static std::map<std::string, constraint::ConstraintSet> Cache;
  auto It = Cache.find(CaseId);
  if (It != Cache.end())
    return It->second;
  const analysis::AnalysisCase *Case = analysis::findCase(CaseId);
  assert(Case && "unknown analysis case");
  analysis::DiffOptions Opts;
  Opts.Trials = 4; // The full verification runs in the test suite.
  analysis::AnalysisResult R =
      analysis::runAnalysis(*Case, analysis::Mode::Extension, Opts);
  assert(R.Succeeded && "analysis behind a binding failed");
  return Cache.emplace(CaseId, std::move(R.Constraints)).first->second;
}

class I8086Target : public Target {
public:
  I8086Target() : Target("Intel 8086", 0xFFFF) {
    // scasb <- Rigel/CLU string search (§4.1).
    InstructionBinding Scasb;
    Scasb.Op = OpKind::StrIndex;
    Scasb.Mnemonic = "scasb";
    Scasb.AnalysisId = "i8086.scasb/rigel.index";
    Scasb.Constraints = constraintsOf("i8086.scasb/rigel.index");
    Scasb.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("di", O.Args[0]); // string address
      Ctx.load("cx", O.Args[1]); // string length (<= 16 bits)
      Ctx.load("al", O.Args[2]); // character sought
      Ctx.emit("  mov bx, di        ; save initial address");
      Ctx.emit("  mov si, 0");
      Ctx.emit("  cmp si, 1         ; reset zero flag zf");
      Ctx.emit("  cld               ; reset direction flag df");
      Ctx.emit("  repne scasb       ; search string (rf=1, rfz=0)");
      std::string NotFound = Ctx.freshLabel("nf");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  jnz " + NotFound + "          ; jump if not found");
      Ctx.emit("  sub di, bx        ; compute index of char if found");
      Ctx.emit("  jmp " + Done);
      Ctx.emit(NotFound + ":");
      Ctx.emit("  mov di, 0         ; return zero if not found");
      Ctx.emit(Done + ":");
      Ctx.emit("  mov " + O.Result + ", di   ; final result");
      Ctx.clobberRegister("di");
      Ctx.clobberRegister("cx");
      Ctx.clobberRegister("si");
      Ctx.clobberRegister("bx");
      // al still holds the sought character (§6 register preference).
      Ctx.setRegister(O.Result, "");
    };
    addBinding(std::move(Scasb));

    // movsb <- Pascal/PL/1 string move.
    InstructionBinding Movsb;
    Movsb.Op = OpKind::StrMove;
    Movsb.Mnemonic = "movsb";
    Movsb.AnalysisId = "i8086.movsb/pascal.smove";
    Movsb.Constraints = constraintsOf("i8086.movsb/pascal.smove");
    Movsb.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("si", O.Args[1]); // source
      Ctx.load("di", O.Args[0]); // destination
      Ctx.load("cx", O.Args[2]); // length
      Ctx.emit("  cld");
      Ctx.emit("  rep movsb         ; block move (rf=1, df=0)");
      Ctx.clobberRegister("si");
      Ctx.clobberRegister("di");
      Ctx.clobberRegister("cx");
    };
    addBinding(std::move(Movsb));

    // cmpsb <- Pascal string comparison.
    InstructionBinding Cmpsb;
    Cmpsb.Op = OpKind::StrEqual;
    Cmpsb.Mnemonic = "cmpsb";
    Cmpsb.AnalysisId = "i8086.cmpsb/pascal.sequal";
    Cmpsb.Constraints = constraintsOf("i8086.cmpsb/pascal.sequal");
    Cmpsb.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("si", O.Args[0]);
      Ctx.load("di", O.Args[1]);
      Ctx.load("cx", O.Args[2]);
      Ctx.emit("  cld");
      Ctx.emit("  cmp ax, ax        ; set zf: empty strings are equal");
      Ctx.emit("  repe cmpsb        ; compare while equal (rfz=1)");
      std::string Ne = Ctx.freshLabel("ne");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  jnz " + Ne);
      Ctx.emit("  mov " + O.Result + ", 1");
      Ctx.emit("  jmp " + Done);
      Ctx.emit(Ne + ":");
      Ctx.emit("  mov " + O.Result + ", 0");
      Ctx.emit(Done + ":");
      Ctx.clobberRegister("si");
      Ctx.clobberRegister("di");
      Ctx.clobberRegister("cx");
      Ctx.setRegister(O.Result, "");
    };
    addBinding(std::move(Cmpsb));

    // stosb <- PC2 block clear (an extended analysis beyond Table 2).
    InstructionBinding Stosb;
    Stosb.Op = OpKind::BlockClear;
    Stosb.Mnemonic = "stosb";
    Stosb.AnalysisId = "i8086.stosb/pc2.clear";
    Stosb.Constraints = constraintsOf("i8086.stosb/pc2.clear");
    Stosb.Emit = [](const HLOp &O, const CompileTimeFacts &,
                    CodeGenContext &Ctx) {
      Ctx.load("di", O.Args[0]); // area address
      Ctx.load("cx", O.Args[1]); // byte count
      Ctx.load("al", Value::literal(0)); // fill byte pinned to zero
      Ctx.emit("  cld");
      Ctx.emit("  rep stosb         ; block clear (rf=1, df=0, al=0)");
      Ctx.clobberRegister("di");
      Ctx.clobberRegister("cx");
    };
    addBinding(std::move(Stosb));

    // No 8086 binding was analyzed for BlockCopy (movsb is forward-only
    // and cannot honor overlap); it decomposes.
  }

  void decompose(const HLOp &O, CodeGenContext &Ctx) const override {
    switch (O.K) {
    case OpKind::StrIndex: {
      Ctx.load("si", O.Args[0]);
      Ctx.load("cx", O.Args[1]);
      Ctx.load("al", O.Args[2]);
      Ctx.emit("  mov bx, si");
      std::string Top = Ctx.freshLabel("top");
      std::string NotFound = Ctx.freshLabel("nf");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit(Top + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + NotFound);
      Ctx.emit("  dec cx");
      Ctx.emit("  mov dl, [si]");
      Ctx.emit("  inc si");
      Ctx.emit("  cmp dl, al");
      Ctx.emit("  jnz " + Top);
      Ctx.emit("  mov di, si");
      Ctx.emit("  sub di, bx");
      Ctx.emit("  jmp " + Done);
      Ctx.emit(NotFound + ":");
      Ctx.emit("  mov di, 0");
      Ctx.emit(Done + ":");
      Ctx.emit("  mov " + O.Result + ", di");
      break;
    }
    case OpKind::StrMove: {
      Ctx.load("si", O.Args[1]);
      Ctx.load("di", O.Args[0]);
      Ctx.load("cx", O.Args[2]);
      std::string Top = Ctx.freshLabel("top");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit(Top + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + Done);
      Ctx.emit("  dec cx");
      Ctx.emit("  mov dl, [si]");
      Ctx.emit("  inc si");
      Ctx.emit("  mov [di], dl");
      Ctx.emit("  inc di");
      Ctx.emit("  jmp " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::StrEqual: {
      Ctx.load("si", O.Args[0]);
      Ctx.load("di", O.Args[1]);
      Ctx.load("cx", O.Args[2]);
      std::string Top = Ctx.freshLabel("top");
      std::string Ne = Ctx.freshLabel("ne");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit(Top + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + Done + "_eq");
      Ctx.emit("  dec cx");
      Ctx.emit("  mov dl, [si]");
      Ctx.emit("  inc si");
      Ctx.emit("  mov dh, [di]");
      Ctx.emit("  inc di");
      // The compare must come after both increments: inc sets zf and
      // would clobber the comparison result.
      Ctx.emit("  cmp dl, dh");
      Ctx.emit("  jnz " + Ne);
      Ctx.emit("  jmp " + Top);
      Ctx.emit(Done + "_eq:");
      Ctx.emit("  mov " + O.Result + ", 1");
      Ctx.emit("  jmp " + Done);
      Ctx.emit(Ne + ":");
      Ctx.emit("  mov " + O.Result + ", 0");
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::BlockCopy: {
      // Overlap-safe: choose copy direction at run time.
      Ctx.load("si", O.Args[1]);
      Ctx.load("di", O.Args[0]);
      Ctx.load("cx", O.Args[2]);
      std::string Back = Ctx.freshLabel("back");
      std::string FwdTop = Ctx.freshLabel("ftop");
      std::string BackTop = Ctx.freshLabel("btop");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  mov dx, si");
      Ctx.emit("  add dx, cx        ; src + len");
      Ctx.emit("  cmp di, si");
      Ctx.emit("  jle " + FwdTop);
      Ctx.emit("  cmp di, dx");
      Ctx.emit("  jl " + Back);
      Ctx.emit(FwdTop + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + Done);
      Ctx.emit("  dec cx");
      Ctx.emit("  mov dl, [si]");
      Ctx.emit("  inc si");
      Ctx.emit("  mov [di], dl");
      Ctx.emit("  inc di");
      Ctx.emit("  jmp " + FwdTop);
      Ctx.emit(Back + ":");
      Ctx.emit("  add si, cx");
      Ctx.emit("  add di, cx");
      Ctx.emit(BackTop + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + Done);
      Ctx.emit("  dec cx");
      Ctx.emit("  dec si");
      Ctx.emit("  dec di");
      Ctx.emit("  mov dl, [si]");
      Ctx.emit("  mov [di], dl");
      Ctx.emit("  jmp " + BackTop);
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::BlockClear: {
      Ctx.load("di", O.Args[0]);
      Ctx.load("cx", O.Args[1]);
      std::string Top = Ctx.freshLabel("top");
      std::string Done = Ctx.freshLabel("done");
      Ctx.emit("  mov dl, 0");
      Ctx.emit(Top + ":");
      Ctx.emit("  cmp cx, 0");
      Ctx.emit("  jz " + Done);
      Ctx.emit("  dec cx");
      Ctx.emit("  mov [di], dl");
      Ctx.emit("  inc di");
      Ctx.emit("  jmp " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    }
  }
};

} // namespace

std::unique_ptr<Target> codegen::makeI8086Target() {
  return std::make_unique<I8086Target>();
}
