//===- IR.h - High-level internal form for the code generator --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-side internal form of §6: "the compiler must have an
/// internal form that allows high-level language operators to be
/// represented explicitly. The code generator can then generate an exotic
/// instruction when a high-level operator is encountered ... and any
/// constraints can be satisfied."
///
/// A Program is a straight-line sequence of high-level string/block
/// operators over symbolic or literal operands, plus the compile-time
/// facts (known constants, ranges, language axioms) the front end has
/// established — exactly the information constraint checking needs.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_CODEGEN_IR_H
#define EXTRA_CODEGEN_IR_H

#include "constraint/Constraint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace extra {
namespace codegen {

/// High-level operators with exotic-instruction implementations analyzed
/// in the paper.
enum class OpKind {
  StrIndex,   ///< result <- index(str, len, ch): 1-based, 0 when absent.
  StrMove,    ///< move(dst, src, len) — Pascal/PL/1 string move.
  StrEqual,   ///< result <- equal(a, b, len): 1 when byte-equal.
  BlockCopy,  ///< copy(dst, src, len) — overlap-safe (PC2 bcopy).
  BlockClear, ///< clear(dst, len) — zero fill (PC2 bzero).
};

const char *opKindName(OpKind K);

/// An operand: a literal or a named front-end symbol whose value lives in
/// a (virtual) location the emitter materializes.
struct Value {
  enum class Kind { Literal, Symbol };
  Kind K = Kind::Literal;
  int64_t Lit = 0;
  std::string Name;

  static Value literal(int64_t V) {
    Value Out;
    Out.K = Kind::Literal;
    Out.Lit = V;
    return Out;
  }
  static Value symbol(std::string Name) {
    Value Out;
    Out.K = Kind::Symbol;
    Out.Name = std::move(Name);
    return Out;
  }

  bool isLiteral() const { return K == Kind::Literal; }
  std::string str() const {
    return isLiteral() ? std::to_string(Lit) : Name;
  }
};

/// One high-level operation.
struct HLOp {
  OpKind K;
  /// Operand order by kind:
  ///   StrIndex:   str, len, ch
  ///   StrMove:    dst, src, len
  ///   StrEqual:   a, b, len
  ///   BlockCopy:  dst, src, len
  ///   BlockClear: dst, len
  std::vector<Value> Args;
  /// Result symbol for value-producing ops (StrIndex, StrEqual).
  std::string Result;

  std::string str() const;
};

/// A straight-line program plus front-end facts.
struct Program {
  std::vector<HLOp> Ops;
  constraint::CompileTimeFacts Facts;
};

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

HLOp strIndex(std::string Result, Value Str, Value Len, Value Ch);
HLOp strMove(Value Dst, Value Src, Value Len);
HLOp strEqual(std::string Result, Value A, Value B, Value Len);
HLOp blockCopy(Value Dst, Value Src, Value Len);
HLOp blockClear(Value Dst, Value Len);

} // namespace codegen
} // namespace extra

#endif // EXTRA_CODEGEN_IR_H
