//===- Target.h - Retargetable code generation interface --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Graham-Glanville-flavored, table-driven back end of §6. A Target
/// owns a table of InstructionBindings — the product of the EXTRA
/// analyses: which exotic instruction implements which operator, under
/// which constraints, with which hand-translated prologue/epilogue code
/// (§4.1: "this process was done by hand for scasb"). Code generation
/// walks the high-level internal form; for each operator it
///
///   1. finds the binding for the operator kind,
///   2. checks the binding's constraints against the compile-time facts
///      (data-flow facts satisfy value/range constraints; rewriting rules
///      such as chunked moves force ranges; offsets are directives),
///   3. emits the exotic instruction with its augments — or falls back
///      to the target's decomposition rules (a primitive byte loop).
///
/// The §6 optimizations live here too: constant-value optimization of
/// operand loads, dedicated-register preference when instructions are
/// cascaded, and a peephole pass integrating augments with rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_CODEGEN_TARGET_H
#define EXTRA_CODEGEN_TARGET_H

#include "codegen/IR.h"
#include "constraint/Constraint.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace extra {
namespace codegen {

/// Why a particular instruction selection was (or wasn't) made.
struct SelectionNote {
  size_t OpIndex = 0;
  std::string Operator;    ///< e.g. "StrIndex".
  std::string Chosen;      ///< Instruction mnemonic or "decomposed".
  std::string Reason;      ///< Constraint outcome narrative.
};

/// Output of code generation.
struct CodeGenResult {
  std::vector<std::string> Asm;       ///< Assembly lines (with labels).
  std::vector<SelectionNote> Notes;   ///< One per high-level op.
  unsigned ExoticCount = 0;           ///< Ops implemented exotically.
  unsigned DecomposedCount = 0;       ///< Ops decomposed to loops.
};

/// Mutable state threaded through the emitters of one program.
class CodeGenContext {
public:
  /// Returns a fresh unique label with the given stem.
  std::string freshLabel(const std::string &Stem);

  /// §6 "intelligent register allocation": tracks what each dedicated
  /// register currently holds so cascaded string instructions skip
  /// redundant loads.
  bool registerHolds(const std::string &Reg, const std::string &What) const;
  void setRegister(const std::string &Reg, const std::string &What);
  void clobberRegister(const std::string &Reg);
  void clobberAllRegisters();

  /// Appends one line of assembly.
  void emit(std::string Line);
  /// Loads \p V into \p Reg unless the register already holds it
  /// (mov-style syntax is provided by the target).
  void load(const std::string &Reg, const Value &V,
            const std::string &MovMnemonic = "mov");

  std::vector<std::string> takeLines() { return std::move(Lines); }
  const std::vector<std::string> &lines() const { return Lines; }

private:
  std::vector<std::string> Lines;
  std::map<std::string, std::string> RegContents;
  unsigned NextLabel = 0;
};

/// One operator-to-instruction binding produced by analysis.
struct InstructionBinding {
  OpKind Op;
  std::string Mnemonic;       ///< e.g. "scasb".
  std::string AnalysisId;     ///< The derivation that justified it.
  constraint::ConstraintSet Constraints;
  /// Emits the instruction (with augments) for \p O into \p Ctx.
  std::function<void(const HLOp &O, const constraint::CompileTimeFacts &,
                     CodeGenContext &Ctx)>
      Emit;
  /// Optional §6 rewriting rule: when a range constraint fails on a
  /// literal operand, emit a sequence of constrained uses (e.g. 256-byte
  /// mvc chunks). Null when the binding has no rewriting rule.
  std::function<bool(const HLOp &O, const constraint::CompileTimeFacts &,
                     CodeGenContext &Ctx)>
      RewriteEmit;
};

/// A target machine: its binding table and decomposition rules.
class Target {
public:
  /// \p WordMax is the largest value a machine word holds; range
  /// constraints reaching it are trivially satisfied ("a trivial one to
  /// satisfy on the Intel 8086 since the word size of the machine is 16
  /// bits", §4.1). Narrower constraints — VAX string lengths, the mvc
  /// length byte — need compile-time facts or rewriting.
  Target(std::string Name, int64_t WordMax)
      : Name(std::move(Name)), WordMax(WordMax) {}
  virtual ~Target();

  const std::string &name() const { return Name; }
  int64_t wordMax() const { return WordMax; }
  void addBinding(InstructionBinding B) { Bindings.push_back(std::move(B)); }
  const std::vector<InstructionBinding> &bindings() const { return Bindings; }
  /// Drops every binding, leaving a decomposition-only target. Used by
  /// the registry loader (bindings come from a registry file instead of
  /// the hand-built bootstrap table) and by the differential execution
  /// harness's decomposition-only baseline.
  void clearBindings() { Bindings.clear(); }

  /// Emits the primitive-operation fallback for \p O ("the compiler must
  /// include decomposition rules to transform the high-level operator
  /// into a sequence of low-level operations", §6).
  virtual void decompose(const HLOp &O, CodeGenContext &Ctx) const = 0;

  /// Generates code for a whole program.
  CodeGenResult generate(const Program &P) const;

private:
  std::string Name;
  int64_t WordMax;
  std::vector<InstructionBinding> Bindings;
};

/// The built-in targets, their binding tables populated with the
/// constraint sets from the Table 2 analyses.
std::unique_ptr<Target> makeI8086Target();
std::unique_ptr<Target> makeVaxTarget();
std::unique_ptr<Target> makeIbm370Target();

/// §6 "integration of rewriting rules with augment code": a peephole
/// pass over emitted assembly that deletes self-moves and redundant
/// adjacent flag/direction setup.
std::vector<std::string> peephole(std::vector<std::string> Asm);

} // namespace codegen
} // namespace extra

#endif // EXTRA_CODEGEN_TARGET_H
