//===- Frontend.h - A tiny front end for the high-level IR ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature source language over the string operators, standing in
/// for the Pascal/Rigel front ends of §6. It exists so programs for the
/// retargetable back ends can be written as text:
///
///     const n = 12;            ! compile-time fact (constant propagation)
///     range len 0 255;         ! compile-time fact (declared capacity)
///     assume pascal.no-overlap;! source-language axiom
///     move(dst, src, n);       ! StrMove
///     copy(dst, src, n);       ! BlockCopy (overlap-safe)
///     clear(buf, 64);          ! BlockClear
///     i := index(s, len, 'c'); ! StrIndex
///     eq := equal(a, b, len);  ! StrEqual
///
/// Operands are integer literals, character literals, or symbols.
/// Comments run from `!` to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_CODEGEN_FRONTEND_H
#define EXTRA_CODEGEN_FRONTEND_H

#include "codegen/IR.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>

namespace extra {
namespace codegen {

/// Parses a program in the miniature source language. Reports problems
/// to \p Diags; returns nullopt on any error.
std::optional<Program> parseProgram(std::string_view Source,
                                    DiagnosticEngine &Diags);

} // namespace codegen
} // namespace extra

#endif // EXTRA_CODEGEN_FRONTEND_H
