//===- Frontend.cpp - A tiny front end for the high-level IR ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "codegen/Frontend.h"

#include <cctype>
#include <vector>

using namespace extra;
using namespace extra::codegen;

namespace {

/// A tiny hand-rolled tokenizer: identifiers (with dots), integers,
/// character literals, and the punctuation ( ) , ; := =.
struct Tok {
  enum Kind { Ident, Int, Char, LParen, RParen, Comma, Semi, Assign, Eq,
              End } K = End;
  std::string Text;
  int64_t Value = 0;
  SourceLoc Loc;
};

class Lexer {
public:
  Lexer(std::string_view Src, DiagnosticEngine &Diags)
      : Src(Src), Diags(Diags) {}

  Tok next() {
    for (;;) {
      if (Pos >= Src.size())
        return {Tok::End, "", 0, loc()};
      char C = Src[Pos];
      if (C == '!') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      break;
    }
    Tok T;
    T.Loc = loc();
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_' || Src[Pos] == '.' || Src[Pos] == '-'))
        T.Text += advance();
      // A trailing '-' or '.' belongs to punctuation, not the name.
      while (!T.Text.empty() &&
             (T.Text.back() == '.' || T.Text.back() == '-')) {
        T.Text.pop_back();
        --Pos;
      }
      T.K = Tok::Ident;
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
      std::string Num;
      Num += advance();
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        Num += advance();
      T.K = Tok::Int;
      T.Value = strtoll(Num.c_str(), nullptr, 10);
      return T;
    }
    switch (advance()) {
    case '\'':
      if (Pos + 1 < Src.size() && Src[Pos + 1] == '\'') {
        T.K = Tok::Char;
        T.Value = static_cast<unsigned char>(advance());
        advance(); // closing quote
        return T;
      }
      Diags.error(T.Loc, "bad character literal");
      return next();
    case '(':
      T.K = Tok::LParen;
      return T;
    case ')':
      T.K = Tok::RParen;
      return T;
    case ',':
      T.K = Tok::Comma;
      return T;
    case ';':
      T.K = Tok::Semi;
      return T;
    case '=':
      T.K = Tok::Eq;
      return T;
    case ':':
      if (Pos < Src.size() && Src[Pos] == '=') {
        advance();
        T.K = Tok::Assign;
        return T;
      }
      Diags.error(T.Loc, "expected ':='");
      return next();
    default:
      Diags.error(T.Loc, "unexpected character");
      return next();
    }
  }

private:
  SourceLoc loc() const { return {Line, Col}; }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  std::string_view Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
};

class Parser {
public:
  Parser(std::string_view Src, DiagnosticEngine &Diags)
      : Lex(Src, Diags), Diags(Diags) {
    Cur = Lex.next();
  }

  std::optional<Program> parse() {
    unsigned Before = Diags.errorCount();
    Program P;
    while (Cur.K != Tok::End) {
      if (!parseStatement(P)) {
        // Recover to the next ';'.
        while (Cur.K != Tok::Semi && Cur.K != Tok::End)
          eat();
        if (Cur.K == Tok::Semi)
          eat();
      }
    }
    if (Diags.errorCount() != Before)
      return std::nullopt;
    return P;
  }

private:
  void eat() { Cur = Lex.next(); }
  bool expect(Tok::Kind K, const char *What) {
    if (Cur.K != K) {
      Diags.error(Cur.Loc, std::string("expected ") + What);
      return false;
    }
    eat();
    return true;
  }

  std::optional<Value> parseValue() {
    if (Cur.K == Tok::Int) {
      Value V = Value::literal(Cur.Value);
      eat();
      return V;
    }
    if (Cur.K == Tok::Char) {
      Value V = Value::literal(Cur.Value);
      eat();
      return V;
    }
    if (Cur.K == Tok::Ident) {
      Value V = Value::symbol(Cur.Text);
      eat();
      return V;
    }
    Diags.error(Cur.Loc, "expected an operand");
    return std::nullopt;
  }

  bool parseArgs(std::vector<Value> &Out, size_t N) {
    if (!expect(Tok::LParen, "'('"))
      return false;
    for (size_t I = 0; I < N; ++I) {
      if (I != 0 && !expect(Tok::Comma, "','"))
        return false;
      auto V = parseValue();
      if (!V)
        return false;
      Out.push_back(*V);
    }
    return expect(Tok::RParen, "')'") && expect(Tok::Semi, "';'");
  }

  bool parseStatement(Program &P) {
    if (Cur.K != Tok::Ident) {
      Diags.error(Cur.Loc, "expected a statement");
      return false;
    }
    std::string Name = Cur.Text;
    SourceLoc Loc = Cur.Loc;
    eat();

    if (Name == "const") {
      // const <sym> = <int>;
      if (Cur.K != Tok::Ident) {
        Diags.error(Cur.Loc, "expected a name after 'const'");
        return false;
      }
      std::string Sym = Cur.Text;
      eat();
      if (!expect(Tok::Eq, "'='"))
        return false;
      if (Cur.K != Tok::Int) {
        Diags.error(Cur.Loc, "expected an integer constant");
        return false;
      }
      P.Facts.KnownValues[Sym] = Cur.Value;
      eat();
      return expect(Tok::Semi, "';'");
    }
    if (Name == "range") {
      // range <sym> <lo> <hi>;
      if (Cur.K != Tok::Ident) {
        Diags.error(Cur.Loc, "expected a name after 'range'");
        return false;
      }
      std::string Sym = Cur.Text;
      eat();
      if (Cur.K != Tok::Int) {
        Diags.error(Cur.Loc, "expected a lower bound");
        return false;
      }
      int64_t Lo = Cur.Value;
      eat();
      if (Cur.K != Tok::Int) {
        Diags.error(Cur.Loc, "expected an upper bound");
        return false;
      }
      P.Facts.KnownRanges[Sym] = {Lo, Cur.Value};
      eat();
      return expect(Tok::Semi, "';'");
    }
    if (Name == "assume") {
      if (Cur.K != Tok::Ident) {
        Diags.error(Cur.Loc, "expected an axiom name after 'assume'");
        return false;
      }
      P.Facts.Axioms.insert(Cur.Text);
      eat();
      return expect(Tok::Semi, "';'");
    }

    if (Name == "move" || Name == "copy" || Name == "clear") {
      std::vector<Value> Args;
      size_t N = Name == "clear" ? 2 : 3;
      if (!parseArgs(Args, N))
        return false;
      if (Name == "move")
        P.Ops.push_back(strMove(Args[0], Args[1], Args[2]));
      else if (Name == "copy")
        P.Ops.push_back(blockCopy(Args[0], Args[1], Args[2]));
      else
        P.Ops.push_back(blockClear(Args[0], Args[1]));
      return true;
    }

    // result := index(...) | equal(...)
    if (Cur.K != Tok::Assign) {
      Diags.error(Loc, "unknown statement '" + Name + "'");
      return false;
    }
    eat();
    if (Cur.K != Tok::Ident ||
        (Cur.Text != "index" && Cur.Text != "equal")) {
      Diags.error(Cur.Loc, "expected index(...) or equal(...)");
      return false;
    }
    std::string Op = Cur.Text;
    eat();
    std::vector<Value> Args;
    if (!parseArgs(Args, 3))
      return false;
    if (Op == "index")
      P.Ops.push_back(strIndex(Name, Args[0], Args[1], Args[2]));
    else
      P.Ops.push_back(strEqual(Name, Args[0], Args[1], Args[2]));
    return true;
  }

  Lexer Lex;
  DiagnosticEngine &Diags;
  Tok Cur;
};

} // namespace

std::optional<Program> codegen::parseProgram(std::string_view Source,
                                             DiagnosticEngine &Diags) {
  Parser P(Source, Diags);
  return P.parse();
}
