//===- Ibm370Target.cpp - IBM System/370 back end ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 370 binding table. Only mvc was analyzed (Table 2's largest
/// derivation), so only StrMove has an exotic implementation; its emitter
/// makes both §4.2 artifacts visible:
///
///   * the *coding constraint* — the emitted length field is the source
///     length minus one;
///   * the range constraint — a literal length over 256 triggers the §6
///     rewriting rule that emits consecutive 256-byte mvc chunks, and a
///     symbolic length falls back to decomposition (no compile-time
///     proof that it fits the 8-bit field).
///
/// The dialect is a simplified register-to-register pseudo-370 (la/ahi/
/// ldb/stb/chi/j*) with `mvc (rD), (rS), L` taking the encoded length.
///
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "analysis/Derivations.h"

using namespace extra;
using namespace extra::codegen;
using constraint::CompileTimeFacts;

namespace {

const constraint::ConstraintSet &mvcConstraints() {
  static const constraint::ConstraintSet *Set = [] {
    const analysis::AnalysisCase *Case =
        analysis::findCase("ibm370.mvc/pascal.sassign");
    assert(Case && "mvc case missing");
    analysis::DiffOptions Opts;
    Opts.Trials = 4;
    analysis::AnalysisResult R =
        analysis::runAnalysis(*Case, analysis::Mode::Base, Opts);
    assert(R.Succeeded && "mvc analysis failed");
    return new constraint::ConstraintSet(std::move(R.Constraints));
  }();
  return *Set;
}

class Ibm370Target : public Target {
public:
  Ibm370Target() : Target("IBM 370", 0xFFFFFF) {
    InstructionBinding Mvc;
    Mvc.Op = OpKind::StrMove;
    Mvc.Mnemonic = "mvc";
    Mvc.AnalysisId = "ibm370.mvc/pascal.sassign";
    Mvc.Constraints = mvcConstraints();
    Mvc.Emit = [](const HLOp &O, const CompileTimeFacts &Facts,
                  CodeGenContext &Ctx) {
      // Reached only when the length provably fits 1..256: a literal, or
      // a fact-known symbol.
      int64_t Len = O.Args[2].isLiteral()
                        ? O.Args[2].Lit
                        : Facts.KnownValues.at(O.Args[2].Name);
      Ctx.load("r1", O.Args[0], "la"); // destination address
      Ctx.load("r2", O.Args[1], "la"); // source address
      Ctx.emit("  mvc (r1), (r2), " + std::to_string(Len - 1) +
               "   ; length field = count - 1 (coding constraint)");
    };
    Mvc.RewriteEmit = [](const HLOp &O, const CompileTimeFacts &Facts,
                         CodeGenContext &Ctx) {
      // §6 constraint-satisfaction rewriting: a literal length beyond the
      // encodable range becomes consecutive substring moves of at most
      // 256 bytes. A symbolic length cannot be chunked at compile time.
      int64_t Len = 0;
      if (O.Args[2].isLiteral())
        Len = O.Args[2].Lit;
      else {
        auto It = Facts.KnownValues.find(O.Args[2].Name);
        if (It == Facts.KnownValues.end())
          return false;
        Len = It->second;
      }
      if (Len <= 0)
        return false;
      Ctx.load("r1", O.Args[0], "la");
      Ctx.load("r2", O.Args[1], "la");
      int64_t Remaining = Len;
      while (Remaining > 0) {
        int64_t Chunk = Remaining > 256 ? 256 : Remaining;
        Ctx.emit("  mvc (r1), (r2), " + std::to_string(Chunk - 1) +
                 "   ; " + std::to_string(Chunk) + "-byte chunk");
        Remaining -= Chunk;
        if (Remaining > 0) {
          Ctx.emit("  ahi r1, " + std::to_string(Chunk));
          Ctx.emit("  ahi r2, " + std::to_string(Chunk));
          Ctx.clobberRegister("r1");
          Ctx.clobberRegister("r2");
        }
      }
      return true;
    };
    addBinding(std::move(Mvc));
  }

  void decompose(const HLOp &O, CodeGenContext &Ctx) const override {
    std::string Top = Ctx.freshLabel("top");
    std::string Done = Ctx.freshLabel("done");
    switch (O.K) {
    case OpKind::StrIndex: {
      std::string NotFound = Ctx.freshLabel("nf");
      Ctx.load("r2", O.Args[0], "la");
      Ctx.load("r3", O.Args[1], "la");
      Ctx.load("r4", O.Args[2], "la");
      Ctx.emit("  lr r5, r2");
      Ctx.emit(Top + ":");
      Ctx.emit("  chi r3, 0");
      Ctx.emit("  je " + NotFound);
      Ctx.emit("  ahi r3, -1");
      Ctx.emit("  ldb r6, (r2)");
      Ctx.emit("  ahi r2, 1");
      Ctx.emit("  cr r6, r4");
      Ctx.emit("  jne " + Top);
      Ctx.emit("  sr r2, r5");
      Ctx.emit("  j " + Done);
      Ctx.emit(NotFound + ":");
      Ctx.emit("  la r2, 0");
      Ctx.emit(Done + ":");
      Ctx.emit("  lr " + O.Result + ", r2");
      break;
    }
    case OpKind::StrMove:
    case OpKind::BlockCopy: {
      Ctx.load("r1", O.Args[0], "la");
      Ctx.load("r2", O.Args[1], "la");
      Ctx.load("r3", O.Args[2], "la");
      Ctx.emit(Top + ":");
      Ctx.emit("  chi r3, 0");
      Ctx.emit("  je " + Done);
      Ctx.emit("  ahi r3, -1");
      Ctx.emit("  ldb r6, (r2)");
      Ctx.emit("  ahi r2, 1");
      Ctx.emit("  stb r6, (r1)");
      Ctx.emit("  ahi r1, 1");
      Ctx.emit("  j " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::StrEqual: {
      std::string Ne = Ctx.freshLabel("ne");
      Ctx.load("r1", O.Args[0], "la");
      Ctx.load("r2", O.Args[1], "la");
      Ctx.load("r3", O.Args[2], "la");
      Ctx.emit(Top + ":");
      Ctx.emit("  chi r3, 0");
      Ctx.emit("  je " + Done + "_eq");
      Ctx.emit("  ahi r3, -1");
      Ctx.emit("  ldb r6, (r1)");
      Ctx.emit("  ahi r1, 1");
      Ctx.emit("  ldb r7, (r2)");
      Ctx.emit("  ahi r2, 1");
      Ctx.emit("  cr r6, r7");
      Ctx.emit("  jne " + Ne);
      Ctx.emit("  j " + Top);
      Ctx.emit(Done + "_eq:");
      Ctx.emit("  la " + O.Result + ", 1");
      Ctx.emit("  j " + Done);
      Ctx.emit(Ne + ":");
      Ctx.emit("  la " + O.Result + ", 0");
      Ctx.emit(Done + ":");
      break;
    }
    case OpKind::BlockClear: {
      Ctx.load("r1", O.Args[0], "la");
      Ctx.load("r3", O.Args[1], "la");
      Ctx.emit("  la r6, 0");
      Ctx.emit(Top + ":");
      Ctx.emit("  chi r3, 0");
      Ctx.emit("  je " + Done);
      Ctx.emit("  ahi r3, -1");
      Ctx.emit("  stb r6, (r1)");
      Ctx.emit("  ahi r1, 1");
      Ctx.emit("  j " + Top);
      Ctx.emit(Done + ":");
      break;
    }
    }
  }
};

} // namespace

std::unique_ptr<Target> codegen::makeIbm370Target() {
  return std::make_unique<Ibm370Target>();
}
