//===- Advisor.h - Suggesting the next transformation -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's third future-work direction (§7): "methods should be
/// developed to structure the analysis and to help the user in deciding
/// how the analysis should proceed." This module implements a simple
/// such method: given the description being transformed and the target
/// description it should come to match, enumerate plausible next steps
/// (rules with heuristically generated arguments), apply each
/// speculatively on a scratch copy, and rank the survivors by how much
/// they reduce a structural distance to the target.
///
/// The advisor is a search heuristic, not an oracle: its suggestions are
/// ordinary Steps that still pass through the verifying engine.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ANALYSIS_ADVISOR_H
#define EXTRA_ANALYSIS_ADVISOR_H

#include "isdl/AST.h"
#include "transform/Transform.h"

#include <string>
#include <vector>

namespace extra {
namespace analysis {

/// A ranked proposal for the next derivation step.
struct Suggestion {
  transform::Step S;
  /// Synthesized multi-step proposals carry their remaining steps here
  /// (e.g. the add-prologue that uses the allocate-temp in S); empty for
  /// ordinary single-step suggestions. DistanceAfter reflects the whole
  /// sequence.
  transform::Script Follow;
  /// Structural distance to the target after applying the step (lower is
  /// better); the current distance is reported by `structuralDistance`.
  unsigned DistanceAfter = 0;
  std::string Note; ///< The engine's note from the speculative apply.
};

/// A cheap structural metric between two descriptions: differences in
/// statement-kind counts, operator counts, input arity, routine count,
/// and declaration count. Zero does not imply equivalence; it is a
/// search heuristic only.
unsigned structuralDistance(const isdl::Description &A,
                            const isdl::Description &B);

/// Proposes up to \p MaxSuggestions applicable next steps that move
/// \p Current toward \p Target, best first. Steps that apply but
/// increase the distance are kept only after all improving ones.
std::vector<Suggestion> suggestSteps(const isdl::Description &Current,
                                     const isdl::Description &Target,
                                     unsigned MaxSuggestions = 8);

/// The raw candidate pool `suggestSteps` draws from: plausible Steps with
/// heuristically generated arguments, *before* any applicability check.
/// The autonomous searcher (src/search) widens this pool further; it is
/// exposed so both layers enumerate from one place.
std::vector<transform::Step> candidateSteps(const isdl::Description &Current);

} // namespace analysis
} // namespace extra

#endif // EXTRA_ANALYSIS_ADVISOR_H
