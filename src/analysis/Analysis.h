//===- Analysis.h - The EXTRA analysis driver -------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the system: proves a language operator equivalent to an
/// exotic instruction by replaying a derivation script on each side,
/// checking the common form, deriving register-size constraints from the
/// name binding, and differentially validating the whole derivation.
///
/// In the paper the scripts were interactive user sessions; here they are
/// recorded Step sequences (analysis/Derivations.cpp holds the eleven of
/// Table 2 plus the §4.3 movc3 case). The engine still *verifies* every
/// step exactly as EXTRA did.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ANALYSIS_ANALYSIS_H
#define EXTRA_ANALYSIS_ANALYSIS_H

#include "analysis/DiffCheck.h"
#include "constraint/Constraint.h"
#include "isdl/Equiv.h"
#include "transform/Transform.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace analysis {

/// Whether relational (multi-operand) constraints are accepted. Base
/// reproduces the 1982 system, which "can only deal with simple
/// constraints" (§4.3); Extension implements the paper's proposed
/// future-work support for source-language axioms like Pascal's
/// no-overlap rule.
enum class Mode { Base, Extension };

/// Stable spelled name of a mode ("base" / "extension") — the wire and
/// registry serialization of Mode.
const char *modeName(Mode M);

/// Parses a spelled mode name back; nullopt for unknown text.
std::optional<Mode> modeFromName(std::string_view Name);

/// One analysis to perform: the pairing of an operator and an
/// instruction, with the derivation scripts for both sides.
struct AnalysisCase {
  std::string Id;            ///< e.g. "i8086.scasb/rigel.index".
  std::string Machine;       ///< Table 2 column 1.
  std::string Instruction;   ///< Table 2 column 2.
  std::string Language;      ///< Table 2 column 3.
  std::string Operation;     ///< Table 2 column 4.
  unsigned PaperSteps = 0;   ///< Table 2 column 5.
  std::string OperatorId;    ///< Description library id.
  std::string InstructionId; ///< Description library id.
  transform::Script OperatorScript;
  transform::Script InstructionScript;
  /// True when the derivation needs relational constraints (§4.3).
  bool RequiresExtension = false;
};

/// The outcome of one analysis.
struct AnalysisResult {
  bool Succeeded = false;
  std::string FailureReason;
  /// Transformation steps applied (operator + instruction side), the
  /// analog of Table 2's "Steps" column.
  unsigned StepsApplied = 0;
  unsigned OperatorSteps = 0;
  unsigned InstructionSteps = 0;
  /// Operator-name to instruction-register binding from the common form.
  isdl::NameBinding Binding;
  /// All constraints: recorded by the scripts plus register-size ranges
  /// derived from the binding.
  constraint::ConstraintSet Constraints;
  /// The final (simplified + augmented) instruction description — what
  /// gets bound to the intermediate-language operator.
  std::string AugmentedInstruction;
  /// The transformed operator description (common form witness).
  std::string TransformedOperator;
};

/// Runs one analysis end to end.
///
/// Verification layers: (1) every script step checks its own
/// applicability conditions; (2) each non-augmenting step is
/// differentially tested; (3) the final forms must match modulo renaming;
/// (4) the *original* operator description is differentially compared
/// against the final augmented instruction, with inputs mapped through
/// the operator-side refinement adapters (this is what validates the
/// user-specified augments).
AnalysisResult runAnalysis(const AnalysisCase &Case, Mode M = Mode::Base,
                           const DiffOptions &Opts = {});

/// Derives register-size range constraints from a binding: an operator
/// operand bound to a narrower instruction register must fit in it (e.g.
/// a string length bound to cx acquires 0..65535 — §4.1).
void deriveBindingConstraints(const isdl::Description &OperatorDesc,
                              const isdl::Description &InstructionDesc,
                              const isdl::NameBinding &Binding,
                              constraint::ConstraintSet &Out);

/// True when \p S uses a rule only available in Extension mode.
bool isExtensionStep(const transform::Step &S);

} // namespace analysis
} // namespace extra

#endif // EXTRA_ANALYSIS_ANALYSIS_H
