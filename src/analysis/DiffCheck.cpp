//===- DiffCheck.cpp - Differential semantic checking -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/DiffCheck.h"

#include "isdl/Printer.h"

#include <chrono>

using namespace extra;
using namespace extra::analysis;
using namespace extra::isdl;
using constraint::Constraint;
using constraint::ConstraintKind;
using constraint::ConstraintSet;

namespace {

/// Evaluates a pure constraint predicate over candidate input values
/// (variables not in \p Values read as 0). Returns nullopt when the
/// predicate uses features that cannot be evaluated statically.
std::optional<int64_t>
evalPred(const Expr &E, const std::map<std::string, int64_t> &Values) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return cast<IntLit>(&E)->getValue();
  case Expr::Kind::CharLit:
    return cast<CharLit>(&E)->getValue();
  case Expr::Kind::VarRef: {
    auto It = Values.find(cast<VarRef>(&E)->getName());
    return It == Values.end() ? 0 : It->second;
  }
  case Expr::Kind::MemRef:
  case Expr::Kind::Call:
    return std::nullopt;
  case Expr::Kind::Unary: {
    auto V = evalPred(*cast<UnaryExpr>(&E)->getOperand(), Values);
    if (!V)
      return std::nullopt;
    return cast<UnaryExpr>(&E)->getOp() == UnaryOp::Not ? (*V == 0 ? 1 : 0)
                                                        : -*V;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    auto L = evalPred(*B->getLHS(), Values);
    auto R = evalPred(*B->getRHS(), Values);
    if (!L || !R)
      return std::nullopt;
    switch (B->getOp()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      return *R == 0 ? std::optional<int64_t>() : *L / *R;
    case BinaryOp::And:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOp::Or:
      return (*L != 0 || *R != 0) ? 1 : 0;
    case BinaryOp::Eq:
      return *L == *R;
    case BinaryOp::Ne:
      return *L != *R;
    case BinaryOp::Lt:
      return *L < *R;
    case BinaryOp::Le:
      return *L <= *R;
    case BinaryOp::Gt:
      return *L > *R;
    case BinaryOp::Ge:
      return *L >= *R;
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

int64_t drawOne(const Description &D, const std::string &Name,
                const ConstraintSet *Constraints, std::mt19937_64 &Rng,
                const DiffOptions &Opts) {
  // An explicit range constraint wins.
  if (Constraints)
    for (const Constraint &C : Constraints->items())
      if (C.kind() == ConstraintKind::Range && C.operand() == Name) {
        std::uniform_int_distribution<int64_t> Dist(C.lo(), C.hi());
        return Dist(Rng);
      }
  unsigned W = interp::inputWidth(D, Name);
  if (W == 1) {
    std::uniform_int_distribution<int64_t> Dist(0, 1);
    return Dist(Rng);
  }
  if (W > 1 && W <= 8) {
    std::uniform_int_distribution<int64_t> Dist(0, 255);
    return Dist(Rng);
  }
  // Wide registers and unbounded integers double as addresses and loop
  // counts: keep them small and within the planted memory image so loops
  // terminate quickly and string scenarios are interesting.
  std::uniform_int_distribution<int64_t> Dist(0, Opts.SmallValueMax);
  return Dist(Rng);
}

} // namespace

std::vector<int64_t> analysis::drawInputs(const Description &D,
                                          const ConstraintSet *Constraints,
                                          std::mt19937_64 &Rng,
                                          const DiffOptions &Opts) {
  std::vector<std::string> Names = interp::inputOperands(D);
  for (unsigned Attempt = 0; Attempt < 200; ++Attempt) {
    std::vector<int64_t> Inputs;
    std::map<std::string, int64_t> ByName;
    Inputs.reserve(Names.size());
    for (const std::string &N : Names) {
      int64_t V = drawOne(D, N, Constraints, Rng, Opts);
      Inputs.push_back(V);
      ByName[N] = V;
    }
    // Relational constraints: accept only satisfying draws.
    bool Ok = true;
    if (Constraints)
      for (const Constraint &C : Constraints->items())
        if (C.kind() == ConstraintKind::Relational) {
          auto V = evalPred(*C.pred(), ByName);
          if (V && *V == 0)
            Ok = false;
        }
    if (Ok)
      return Inputs;
  }
  // Sampling failed; return the last draw — the comparison will likely
  // fail loudly, which beats silently skipping the check.
  std::vector<int64_t> Inputs;
  for (const std::string &N : Names)
    Inputs.push_back(drawOne(D, N, Constraints, Rng, Opts));
  return Inputs;
}

interp::Memory analysis::drawMemory(std::mt19937_64 &Rng,
                                    const DiffOptions &Opts) {
  interp::Memory M;
  std::uniform_int_distribution<int> Byte(0, 255);
  // A small alphabet makes "search for character" scenarios hit often.
  std::uniform_int_distribution<int> Pick(0, 3);
  static const uint8_t Alphabet[4] = {'a', 'b', 'c', 0};
  for (uint64_t A = 0; A < Opts.MemoryCells; ++A)
    M[A] = (Pick(Rng) == 0) ? static_cast<uint8_t>(Byte(Rng))
                            : Alphabet[Pick(Rng)];
  return M;
}

bool analysis::equivalentOnRandomInputs(
    const Description &A, const Description &B,
    const ConstraintSet *Constraints,
    const std::function<std::vector<int64_t>(const std::vector<int64_t> &)>
        &MapInputs,
    const DiffOptions &Opts, std::string &Error) {
  std::mt19937_64 Rng(Opts.Seed);
  for (unsigned T = 0; T < Opts.Trials; ++T) {
    if (Opts.Stop && Opts.Stop()) {
      Error = "verification cancelled (deadline) after " + std::to_string(T) +
              " trials";
      return false;
    }
    interp::Memory M = drawMemory(Rng, Opts);
    std::vector<int64_t> BInputs = drawInputs(B, Constraints, Rng, Opts);
    std::vector<int64_t> AInputs = MapInputs ? MapInputs(BInputs) : BInputs;

    interp::ExecResult RA = interp::run(A, AInputs, M);
    interp::ExecResult RB = interp::run(B, BInputs, M);
    if (RA.sameObservable(RB))
      continue;

    Error = "divergence on trial " + std::to_string(T) + ":\n  inputs(B): ";
    for (int64_t V : BInputs)
      Error += std::to_string(V) + " ";
    Error += "\n  A: " + std::string(RA.Ok ? "ok" : "error: " + RA.Error) +
             ", outputs:";
    for (int64_t V : RA.Outputs)
      Error += " " + std::to_string(V);
    Error += "\n  B: " + std::string(RB.Ok ? "ok" : "error: " + RB.Error) +
             ", outputs:";
    for (int64_t V : RB.Outputs)
      Error += " " + std::to_string(V);
    if (RA.Ok && RB.Ok && RA.Outputs == RB.Outputs)
      Error += "\n  (final memories differ)";
    return false;
  }
  return true;
}

transform::StepVerifier
analysis::makeStepVerifier(const ConstraintSet &Constraints,
                           DiffOptions Opts) {
  return [&Constraints, Opts](const transform::StepObservation &Obs,
                              std::string &Error) {
    if (Obs.Effect == transform::SemanticsEffect::Augmenting)
      return true; // Covered by the end-to-end check.
    std::function<std::vector<int64_t>(const std::vector<int64_t> &)> Map;
    if (Obs.Effect == transform::SemanticsEffect::InputRefining) {
      if (!Obs.Adapter) {
        Error = "input-refining step provided no adapter";
        return false;
      }
      Map = Obs.Adapter;
    }
    using Clock = std::chrono::steady_clock;
    Clock::time_point Start;
    if (Opts.Metrics)
      Start = Clock::now();
    bool Ok = equivalentOnRandomInputs(Obs.Before, Obs.After, &Constraints,
                                       Map, Opts, Error);
    if (Opts.Metrics) {
      Opts.Metrics->histogram("verify.ns")
          .record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - Start)
                  .count()));
      Opts.Metrics->counter(Ok ? "verify.pass" : "verify.fail").add();
    }
    return Ok;
  };
}
