//===- Priors.h - Knowledge mined from the recorded derivations -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recorded Table-2 derivation scripts are transcripts of an expert
/// 1982 user; this module mines them once, at first use, for reusable
/// regularities:
///
///  * *rule bigrams* — how often rule Y follows rule X in a recorded
///    script. The searcher orders candidate expansion and the cleanup
///    closure by these counts, so the expansion tries the expert's
///    continuations first instead of a fixed hand-built list;
///
///  * *naming conventions* — the allocate-temp name/type/section used
///    when a prologue saves a given machine register (`temp <- di`,
///    `rb <- r1`, ...), and the fresh-flag names given to
///    record-exit-cause. These feed synth::Vocabulary, so synthesized
///    arguments reproduce the recorded spellings (the names surface in
///    binding-derived constraint notes, where spelling matters).
///
/// Only the scripts' *shape* is consulted — never which case they solve;
/// autonomous discovery still has to find every step itself.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ANALYSIS_PRIORS_H
#define EXTRA_ANALYSIS_PRIORS_H

#include "synth/Synth.h"

#include <map>
#include <string>
#include <vector>

namespace extra {
namespace analysis {

class Priors {
public:
  /// The process-wide priors, mined from the recorded derivation library
  /// on first use. Immutable afterwards; safe to share across threads.
  static const Priors &instance();

  /// How often rule \p Next follows rule \p Prev in a recorded script.
  /// \p Prev empty means "at the start of a script".
  unsigned bigram(const std::string &Prev, const std::string &Next) const;

  /// Stable-sorts \p Rules by descending bigram count after \p Prev.
  /// Rules the corpus never saw after \p Prev keep their relative order,
  /// so orderings remain deterministic and total coverage is unchanged.
  void orderBySuccessor(const std::string &Prev,
                        std::vector<std::string> &Rules) const;

  /// Naming conventions for synthesized arguments.
  const synth::Vocabulary &vocabulary() const { return Vocab; }

private:
  Priors();
  std::map<std::string, std::map<std::string, unsigned>> Bigrams;
  synth::Vocabulary Vocab;
};

} // namespace analysis
} // namespace extra

#endif // EXTRA_ANALYSIS_PRIORS_H
