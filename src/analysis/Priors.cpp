//===- Priors.cpp - Knowledge mined from the recorded derivations -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Priors.h"

#include "analysis/Derivations.h"

#include <algorithm>

using namespace extra;
using namespace extra::analysis;
using transform::Script;
using transform::Step;

namespace {

/// Splits a one-assignment prologue "lhs <- rhs;" into its two names.
/// Returns false for anything more complex — conventions are only mined
/// from the simple register-save idiom.
bool splitSave(const std::string &Code, std::string &Lhs, std::string &Rhs) {
  size_t Arrow = Code.find("<-");
  if (Arrow == std::string::npos)
    return false;
  auto Trim = [](std::string S) {
    size_t B = S.find_first_not_of(" \t\n;");
    size_t E = S.find_last_not_of(" \t\n;");
    return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
  };
  Lhs = Trim(Code.substr(0, Arrow));
  Rhs = Trim(Code.substr(Arrow + 2));
  if (Lhs.empty() || Rhs.empty())
    return false;
  // Reject anything beyond a plain identifier on either side.
  auto PlainName = [](const std::string &S) {
    return S.find_first_of(" \t\n;()+-*/<>=") == std::string::npos;
  };
  return PlainName(Lhs) && PlainName(Rhs);
}

} // namespace

Priors::Priors() {
  std::vector<const Script *> Corpus;
  auto AddCase = [&](const AnalysisCase &C) {
    Corpus.push_back(&C.OperatorScript);
    Corpus.push_back(&C.InstructionScript);
  };
  for (const AnalysisCase &C : table2Cases())
    AddCase(C);
  for (const AnalysisCase &C : extendedCases())
    AddCase(C);
  AddCase(movc3SassignCase());

  for (const Script *S : Corpus) {
    // Rule bigrams, including the script-start pseudo-rule "".
    std::string Prev;
    for (const Step &St : *S) {
      ++Bigrams[Prev][St.Rule];
      Prev = St.Rule;
    }

    // Temp conventions: an allocate-temp whose name is later saved-into
    // by a one-assignment add-prologue keys the convention by the saved
    // register. Flag palette: the fresh names record-exit-cause was given,
    // in first-seen order.
    for (size_t I = 0; I < S->size(); ++I) {
      const Step &St = (*S)[I];
      if (St.Rule == "allocate-temp") {
        auto Name = St.Args.find("name");
        auto Type = St.Args.find("type");
        if (Name == St.Args.end() || Type == St.Args.end())
          continue;
        for (size_t J = I + 1; J < S->size(); ++J) {
          const Step &Later = (*S)[J];
          if (Later.Rule != "add-prologue")
            continue;
          auto Code = Later.Args.find("code");
          std::string Lhs, Rhs;
          if (Code == Later.Args.end() ||
              !splitSave(Code->second, Lhs, Rhs) || Lhs != Name->second)
            continue;
          auto Section = St.Args.find("section");
          Vocab.Temps.emplace(
              Rhs, synth::TempConvention{
                       Name->second, Type->second,
                       Section == St.Args.end() ? std::string("STATE")
                                                : Section->second});
          break;
        }
      }
      if (St.Rule == "record-exit-cause") {
        auto Flag = St.Args.find("flag");
        if (Flag != St.Args.end() &&
            std::find(Vocab.Flags.begin(), Vocab.Flags.end(), Flag->second) ==
                Vocab.Flags.end())
          Vocab.Flags.push_back(Flag->second);
      }
    }
  }
}

const Priors &Priors::instance() {
  static const Priors P;
  return P;
}

unsigned Priors::bigram(const std::string &Prev, const std::string &Next) const {
  auto It = Bigrams.find(Prev);
  if (It == Bigrams.end())
    return 0;
  auto Jt = It->second.find(Next);
  return Jt == It->second.end() ? 0 : Jt->second;
}

void Priors::orderBySuccessor(const std::string &Prev,
                              std::vector<std::string> &Rules) const {
  std::stable_sort(Rules.begin(), Rules.end(),
                   [&](const std::string &A, const std::string &B) {
                     return bigram(Prev, A) > bigram(Prev, B);
                   });
}
