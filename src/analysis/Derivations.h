//===- Derivations.h - The Table 2 derivation scripts -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recorded derivations for the eleven successful analyses of
/// Table 2 and the §4.3 movc3/sassign case. Each derivation plays the
/// role of the 1982 user session: an ordered list of transformation
/// applications that the engine verifies and applies.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ANALYSIS_DERIVATIONS_H
#define EXTRA_ANALYSIS_DERIVATIONS_H

#include "analysis/Analysis.h"

namespace extra {
namespace analysis {

/// The eleven successful analyses of Table 2, in table order.
const std::vector<AnalysisCase> &table2Cases();

/// The §4.3 case: VAX movc3 against Pascal string assignment. Fails in
/// base mode (the no-overlap condition is a relational constraint);
/// succeeds in extension mode.
const AnalysisCase &movc3SassignCase();

/// Analyses beyond the paper's Table 2 (PaperSteps = 0), demonstrating
/// that the machinery generalizes: 8086 stosb as PC2 block clear, and
/// VAX skpc as a Rigel span operator.
const std::vector<AnalysisCase> &extendedCases();

/// Looks up a case by Id ("<instruction>/<operator>"), searching the
/// Table 2 cases and the movc3 case. Null when unknown.
const AnalysisCase *findCase(const std::string &Id);

} // namespace analysis
} // namespace extra

#endif // EXTRA_ANALYSIS_DERIVATIONS_H
