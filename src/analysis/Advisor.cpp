//===- Advisor.cpp - Suggesting the next transformation ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Advisor.h"

#include "analysis/Priors.h"
#include "isdl/Traverse.h"
#include "synth/Synth.h"

#include <algorithm>
#include <map>

using namespace extra;
using namespace extra::analysis;
using namespace extra::isdl;
using transform::Step;

//===----------------------------------------------------------------------===//
// Structural distance
//===----------------------------------------------------------------------===//

namespace {

/// Feature vector: counts of syntactic categories.
std::map<std::string, int> featuresOf(const Description &D) {
  std::map<std::string, int> F;
  F["routines"] = static_cast<int>(D.routines().size());
  F["decls"] = static_cast<int>(D.decls().size());
  for (const Routine *R : D.routines()) {
    forEachStmt(R->Body, [&](const Stmt &S) {
      switch (S.getKind()) {
      case Stmt::Kind::Assign:
        ++F["assign"];
        break;
      case Stmt::Kind::If:
        ++F["if"];
        break;
      case Stmt::Kind::Repeat:
        ++F["repeat"];
        break;
      case Stmt::Kind::ExitWhen:
        ++F["exit"];
        break;
      case Stmt::Kind::Input:
        F["input-arity"] +=
            static_cast<int>(cast<InputStmt>(&S)->getTargets().size());
        break;
      case Stmt::Kind::Output:
        F["output-arity"] +=
            static_cast<int>(cast<OutputStmt>(&S)->getValues().size());
        break;
      case Stmt::Kind::Constrain:
        ++F["constrain"];
        break;
      case Stmt::Kind::Assert:
        ++F["assert"];
        break;
      }
      forEachExpr(S, [&](const Expr &E) {
        switch (E.getKind()) {
        case Expr::Kind::Binary:
          ++F[std::string("op:") +
              spelling(cast<BinaryExpr>(&E)->getOp())];
          break;
        case Expr::Kind::Unary:
          ++F[std::string("op:") + spelling(cast<UnaryExpr>(&E)->getOp())];
          break;
        case Expr::Kind::MemRef:
          ++F["mem"];
          break;
        case Expr::Kind::Call:
          ++F["call"];
          break;
        case Expr::Kind::IntLit:
          ++F["lit"];
          break;
        default:
          break;
        }
      });
    });
  }
  return F;
}

} // namespace

unsigned analysis::structuralDistance(const Description &A,
                                      const Description &B) {
  std::map<std::string, int> FA = featuresOf(A), FB = featuresOf(B);
  unsigned D = 0;
  for (const auto &[K, V] : FA) {
    auto It = FB.find(K);
    D += static_cast<unsigned>(std::abs(V - (It == FB.end() ? 0 : It->second)));
  }
  for (const auto &[K, V] : FB)
    if (!FA.count(K))
      D += static_cast<unsigned>(std::abs(V));
  return D;
}

//===----------------------------------------------------------------------===//
// Candidate generation
//===----------------------------------------------------------------------===//

namespace {

/// Rules worth trying with no arguments.
const char *ZeroArgRules[] = {
    "fold-constants",   "if-false-elim", "if-true-elim",
    "if-not-elim",      "not-not",       "ne-to-not-eq",
    "eq-to-diff-zero",  "diff-zero-to-eq", "de-morgan-and",
    "if-to-flag-assign", "flag-assign-to-if", "dead-loop-elim",
    "empty-if-elim",    "merge-exits",   "split-exit-disjunction",
    "rotate-while-to-dowhile", "remove-assert", "hoist-from-if",
    "sink-common-tail", "rel-shift-const", "fold-const-chain",
};

} // namespace

std::vector<Step> analysis::candidateSteps(const Description &Current) {
  std::vector<Step> Out;
  for (const char *R : ZeroArgRules)
    Out.push_back(Step{R, "", {}});

  // Per-declaration candidates.
  unsigned Fresh = 0;
  for (const Decl *Dl : Current.decls()) {
    const std::string &N = Dl->Name;
    Out.push_back(Step{"dead-decl-elim", "", {{"var", N}}});
    Out.push_back(Step{"dead-var-elim", "", {{"var", N}}});
    Out.push_back(Step{"dead-assign-elim", "", {{"var", N}}});
    Out.push_back(Step{"global-constant-propagate", "", {{"var", N}}});
    Out.push_back(Step{"copy-propagate", "", {{"var", N}}});
    Out.push_back(Step{"move-up", "", {{"var", N}}});
    Out.push_back(Step{"move-down", "", {{"var", N}}});
    Out.push_back(Step{"fuse-load-store", "", {{"var", N}}});
    if (Dl->Type.isFlag()) {
      Out.push_back(
          Step{"fix-operand-value", "", {{"operand", N}, {"value", "0"}}});
      Out.push_back(
          Step{"fix-operand-value", "", {{"operand", N}, {"value", "1"}}});
      Out.push_back(Step{"record-exit-cause", "", {{"flag", N}}});
      Out.push_back(Step{"invert-flag", "", {{"var", N}}});
    }
  }

  // Base+index access patterns suggest strength reduction; the pointer
  // names are synthesized from the access shape (src/synth), so two runs
  // — and the matching side — agree on the spelling.
  for (Step &S : synth::proposeIndexToPointer(Current))
    Out.push_back(std::move(S));

  // Up-counting loops suggest the down-counter rewrite, reusing the
  // bound as the counter.
  for (Step &S : synth::proposeCountUpToDown(Current))
    Out.push_back(std::move(S));

  // Routine-structuring candidates.
  for (const Routine *R : Current.routines()) {
    Out.push_back(Step{"extract-call-to-temp",
                       "",
                       {{"callee", R->Name},
                        {"temp", "t" + std::to_string(Fresh++)}}});
    Out.push_back(Step{"inline-routine",
                       "",
                       {{"callee", R->Name},
                        {"temp", "t" + std::to_string(Fresh++)}}});
    Out.push_back(Step{"dead-routine-elim", "", {{"name", R->Name}}});
  }
  return Out;
}

std::vector<Suggestion> analysis::suggestSteps(const Description &Current,
                                               const Description &Target,
                                               unsigned MaxSuggestions) {
  std::vector<Suggestion> Improving, Other;
  unsigned Baseline = structuralDistance(Current, Target);

  for (Step &S : candidateSteps(Current)) {
    transform::Engine Scratch(Current.clone());
    transform::ApplyResult R = Scratch.apply(S);
    if (!R.Applied)
      continue;
    Suggestion Sg;
    Sg.S = std::move(S);
    Sg.DistanceAfter = structuralDistance(Scratch.current(), Target);
    Sg.Note = R.Note;
    (Sg.DistanceAfter < Baseline ? Improving : Other).push_back(
        std::move(Sg));
  }

  // Synthesized multi-step proposals: the arguments the 1982 user typed
  // by hand, derived from the divergence against the target. The whole
  // sequence is applied speculatively; any refused step kills it.
  for (synth::Proposal &P : synth::synthesizeProposals(
           Current, Target, /*CurrentIsInstruction=*/true,
           Priors::instance().vocabulary())) {
    if (P.Steps.empty())
      continue;
    transform::Engine Scratch(Current.clone());
    if (Scratch.applyScript(P.Steps) != P.Steps.size())
      continue;
    Suggestion Sg;
    Sg.S = P.Steps.front();
    Sg.Follow.assign(P.Steps.begin() + 1, P.Steps.end());
    Sg.DistanceAfter = structuralDistance(Scratch.current(), Target);
    Sg.Note = P.Rationale;
    (Sg.DistanceAfter < Baseline ? Improving : Other).push_back(
        std::move(Sg));
  }

  auto ByDistance = [](const Suggestion &A, const Suggestion &B) {
    return A.DistanceAfter < B.DistanceAfter;
  };
  std::stable_sort(Improving.begin(), Improving.end(), ByDistance);
  std::stable_sort(Other.begin(), Other.end(), ByDistance);
  for (Suggestion &Sg : Other)
    Improving.push_back(std::move(Sg));
  if (Improving.size() > MaxSuggestions)
    Improving.resize(MaxSuggestions);
  return Improving;
}
