//===- DiffCheck.h - Differential semantic checking -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of descriptions. The 1982 system relied
/// on the hand-proved soundness of each transformation; this reproduction
/// additionally executes both sides of every step (and the end-to-end
/// operator/instruction pair) on random inputs and memories, comparing
/// outputs, final memory, and termination.
///
/// Input generation is constraint-aware: range constraints bound the
/// drawn values, and relational constraints (the no-overlap extension)
/// are enforced by rejection sampling against the recorded predicate.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ANALYSIS_DIFFCHECK_H
#define EXTRA_ANALYSIS_DIFFCHECK_H

#include "constraint/Constraint.h"
#include "interp/Interp.h"
#include "obs/Metrics.h"
#include "transform/Transform.h"

#include <cstdint>
#include <random>
#include <string>

namespace extra {
namespace analysis {

/// Knobs for differential runs.
struct DiffOptions {
  unsigned Trials = 32;        ///< Random trials per comparison.
  uint64_t Seed = 0x5EED1982;  ///< Deterministic by default.
  uint64_t MemoryCells = 96;   ///< Random bytes planted from address 0.
  int64_t SmallValueMax = 24;  ///< Cap for unbounded integer operands.
  /// Optional metrics registry (non-owning). Verifiers built by
  /// makeStepVerifier record `verify.pass`/`verify.fail` counters and the
  /// `verify.ns` latency histogram; null disables for one branch.
  obs::Metrics *Metrics = nullptr;
  /// Optional cancellation probe, polled once per trial. When it returns
  /// true the comparison stops early and reports a failure mentioning
  /// cancellation — deadline enforcement reaches inside long verification
  /// loops this way instead of waiting for all trials.
  std::function<bool()> Stop;
};

/// Draws one input vector for \p D: values honor declared register
/// widths, recorded range constraints, and (by rejection sampling)
/// relational constraints whose variables are all input operands.
std::vector<int64_t> drawInputs(const isdl::Description &D,
                                const constraint::ConstraintSet *Constraints,
                                std::mt19937_64 &Rng,
                                const DiffOptions &Opts);

/// Fills a fresh random memory image.
interp::Memory drawMemory(std::mt19937_64 &Rng, const DiffOptions &Opts);

/// Runs \p A and \p B on shared random scenarios; \p MapInputs converts
/// B-side inputs into A-side inputs (identity when null). Constraints
/// apply to the B side (the more-refined description).
///
/// \returns true when all trials agree; otherwise fills \p Error.
bool equivalentOnRandomInputs(
    const isdl::Description &A, const isdl::Description &B,
    const constraint::ConstraintSet *Constraints,
    const std::function<std::vector<int64_t>(const std::vector<int64_t> &)>
        &MapInputs,
    const DiffOptions &Opts, std::string &Error);

/// Builds a per-step verifier for a transformation Engine: Preserving
/// steps are replayed on random inputs directly, InputRefining steps
/// through their adapter, Augmenting steps are deferred to the end-to-end
/// check. \p Constraints must outlive the verifier (pass the engine's
/// set).
transform::StepVerifier
makeStepVerifier(const constraint::ConstraintSet &Constraints,
                 DiffOptions Opts = {});

} // namespace analysis
} // namespace extra

#endif // EXTRA_ANALYSIS_DIFFCHECK_H
