//===- Analysis.cpp - The EXTRA analysis driver -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "descriptions/Descriptions.h"
#include "isdl/Printer.h"

using namespace extra;
using namespace extra::analysis;
using namespace extra::isdl;
using constraint::Constraint;
using constraint::ConstraintSet;
using transform::Engine;
using transform::Script;
using transform::Step;

const char *analysis::modeName(Mode M) {
  return M == Mode::Extension ? "extension" : "base";
}

std::optional<analysis::Mode> analysis::modeFromName(std::string_view Name) {
  if (Name == "base")
    return Mode::Base;
  if (Name == "extension")
    return Mode::Extension;
  return std::nullopt;
}

bool analysis::isExtensionStep(const Step &S) {
  return S.Rule == "note-relational-constraint" ||
         S.Rule == "resolve-if-by-constraint";
}

void analysis::deriveBindingConstraints(const Description &OperatorDesc,
                                        const Description &InstructionDesc,
                                        const NameBinding &Binding,
                                        ConstraintSet &Out) {
  for (const auto &[OpName, InstName] : Binding.pairs()) {
    const Decl *OpDecl = OperatorDesc.findDecl(OpName);
    const Decl *InstDecl = InstructionDesc.findDecl(InstName);
    if (!OpDecl || !InstDecl)
      continue; // Routine pair.
    unsigned OpW = OpDecl->Type.widthInBits();
    unsigned InstW = InstDecl->Type.widthInBits();
    if (InstW == 0 || InstW >= 64)
      continue;
    if (OpW != 0 && OpW <= InstW)
      continue; // Operator operand already fits.
    int64_t Hi = (int64_t(1) << InstW) - 1;
    Out.add(Constraint::range(
        OpName, 0, Hi,
        "bound to " + InstName + InstDecl->Type.str() + " — operand must "
        "fit in " + std::to_string(InstW) + " bits"));
  }
}

AnalysisResult analysis::runAnalysis(const AnalysisCase &Case, Mode M,
                                     const DiffOptions &Opts) {
  AnalysisResult Result;

  // Base mode rejects extension-only rules up front, reproducing the
  // 1982 limitation (§4.3: "the current version of EXTRA has no ability
  // to deal with complicated constraints that involve more than one
  // operand").
  if (M == Mode::Base) {
    for (const Script *S : {&Case.OperatorScript, &Case.InstructionScript})
      for (const Step &St : *S)
        if (isExtensionStep(St)) {
          Result.FailureReason =
              "the derivation requires a relational constraint over "
              "several operands; EXTRA's constraints are limited to a "
              "single operand's value, range, or offset (§4.3) — rerun in "
              "extension mode";
          return Result;
        }
  }

  auto OperatorDesc = descriptions::load(Case.OperatorId);
  auto InstructionDesc = descriptions::load(Case.InstructionId);
  if (!OperatorDesc || !InstructionDesc) {
    Result.FailureReason = "cannot load descriptions";
    return Result;
  }
  Description OriginalOperator = OperatorDesc->clone();

  // Operator-side session. Collect adapters so the end-to-end check can
  // map final-form inputs back to original operator inputs.
  Engine OpEngine(std::move(*OperatorDesc));
  OpEngine.setVerifier(makeStepVerifier(OpEngine.constraints(), Opts));
  std::vector<transform::InputAdapter> OpAdapters;
  for (const Step &St : Case.OperatorScript) {
    transform::ApplyResult R = OpEngine.apply(St);
    if (!R.Applied) {
      Result.FailureReason = "operator step '" + St.str() +
                             "' failed: " + R.Reason;
      Result.StepsApplied = Result.OperatorSteps = OpEngine.stepsApplied();
      return Result;
    }
    if (R.Effect == transform::SemanticsEffect::InputRefining && R.Adapter)
      OpAdapters.push_back(R.Adapter);
  }
  Result.OperatorSteps = OpEngine.stepsApplied();

  // Instruction-side session.
  Engine InstEngine(std::move(*InstructionDesc));
  InstEngine.setVerifier(makeStepVerifier(InstEngine.constraints(), Opts));
  for (const Step &St : Case.InstructionScript) {
    transform::ApplyResult R = InstEngine.apply(St);
    if (!R.Applied) {
      Result.FailureReason = "instruction step '" + St.str() +
                             "' failed: " + R.Reason;
      Result.StepsApplied =
          Result.OperatorSteps + InstEngine.stepsApplied();
      Result.InstructionSteps = InstEngine.stepsApplied();
      return Result;
    }
  }
  Result.InstructionSteps = InstEngine.stepsApplied();
  Result.StepsApplied = Result.OperatorSteps + Result.InstructionSteps;

  // Merge constraints from both sides.
  for (const Constraint &C : OpEngine.constraints().items())
    Result.Constraints.add(C);
  for (const Constraint &C : InstEngine.constraints().items())
    Result.Constraints.add(C);
  if (M == Mode::Base && Result.Constraints.hasRelational()) {
    Result.FailureReason = "a relational constraint was recorded; EXTRA "
                           "cannot represent it (§4.3)";
    return Result;
  }

  // The common-form check (§3): identical except for names.
  const Description &FinalOperator = OpEngine.current();
  const Description &FinalInstruction = InstEngine.current();
  MatchResult Match = matchDescriptions(FinalOperator, FinalInstruction);
  if (!Match.Matched) {
    Result.FailureReason = "descriptions do not reach a common form: " +
                           Match.Mismatch;
    return Result;
  }
  Result.Binding = Match.Binding;

  // Register-size constraints induced by the binding (§3, §4.1).
  deriveBindingConstraints(FinalOperator, FinalInstruction, Result.Binding,
                           Result.Constraints);

  // End-to-end differential check: the ORIGINAL operator against the
  // final augmented instruction. Inputs are drawn for the final form and
  // mapped back through the operator-side refinement adapters, newest
  // first.
  std::vector<transform::InputAdapter> Adapters = OpAdapters;
  auto MapInputs = [Adapters](const std::vector<int64_t> &Final) {
    std::vector<int64_t> V = Final;
    for (size_t I = Adapters.size(); I-- > 0;)
      V = Adapters[I](V);
    return V;
  };
  std::string DiffError;
  if (!equivalentOnRandomInputs(OriginalOperator, FinalInstruction,
                                &Result.Constraints, MapInputs, Opts,
                                DiffError)) {
    Result.FailureReason =
        "end-to-end differential check failed (the augments do not "
        "implement the operator): " + DiffError;
    return Result;
  }

  Result.AugmentedInstruction = printDescription(FinalInstruction);
  Result.TransformedOperator = printDescription(FinalOperator);
  Result.Succeeded = true;
  return Result;
}
