//===- Derivations.cpp - The Table 2 derivation scripts ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"

using namespace extra;
using namespace extra::analysis;
using transform::Script;
using transform::Step;

namespace {

Step s(std::string Rule, std::map<std::string, std::string> Args = {},
       std::string Routine = "") {
  return Step{std::move(Rule), std::move(Routine), std::move(Args)};
}

//===----------------------------------------------------------------------===//
// Shared instruction-side simplifications
//===----------------------------------------------------------------------===//

/// 8086 rep-prefix simplification: pin rf = 1 and fold away the
/// non-repeating arm (§4.1: "setting rf means [the instruction] always
/// loops").
Script repPrefix() {
  return {
      s("fix-operand-value", {{"operand", "rf"}, {"value", "1"}}),
      s("global-constant-propagate", {{"var", "rf"}}),
      s("fold-not"),
      s("if-false-elim"),
  };
}

/// 8086 direction-flag simplification for one fetch routine: pin df = 0
/// so strings are processed low addresses to high.
Script forwardDirection(std::initializer_list<const char *> FetchRoutines) {
  Script Out = {
      s("fix-operand-value", {{"operand", "df"}, {"value", "0"}}),
      s("global-constant-propagate", {{"var", "df"}}),
  };
  for (const char *R : FetchRoutines)
    Out.push_back(s("if-false-elim", {}, R));
  return Out;
}

/// Removes the pinned flag's now-dead definition and declaration.
Script dropFlag(const char *Name) {
  return {
      s("dead-assign-elim", {{"var", Name}}),
      s("dead-decl-elim", {{"var", Name}}),
  };
}

void append(Script &Out, const Script &More) {
  Out.insert(Out.end(), More.begin(), More.end());
}

//===----------------------------------------------------------------------===//
// Instruction scripts
//===----------------------------------------------------------------------===//

/// movsb with rep, forward: Figure-3 style flags pinned, raw register
/// outputs dropped (string move has no operator-level result).
Script movsbScript() {
  Script Out = repPrefix();
  append(Out, forwardDirection({"fetch"}));
  Out.push_back(s("if-false-elim")); // the di-direction if in the entry
  append(Out, dropFlag("rf"));
  append(Out, dropFlag("df"));
  Out.push_back(s("replace-output", {{"code", "none"}}));
  return Out;
}

/// scasb simplified (Figure 4) and augmented (Figure 5): rf=1, rfz=0,
/// df=0; zf zeroed in the prologue; initial pointer saved; epilogue
/// computes the 1-based index from the final address.
Script scasbScript() {
  Script Out = repPrefix();
  // rfz = 0 collapses the exit condition to plain zf (§4.1).
  Out.push_back(s("fix-operand-value", {{"operand", "rfz"}, {"value", "0"}}));
  Out.push_back(s("global-constant-propagate", {{"var", "rfz"}}));
  Out.push_back(s("and-false"));
  Out.push_back(s("fold-not"));
  Out.push_back(s("and-true"));
  Out.push_back(s("or-false"));
  append(Out, forwardDirection({"fetch"}));
  append(Out, dropFlag("rf"));
  append(Out, dropFlag("rfz"));
  append(Out, dropFlag("df"));
  // --- Figure 4 reached. Augments (Figure 5): ---
  Out.push_back(s("fix-operand-value", {{"operand", "zf"}, {"value", "0"}}));
  Out.push_back(s("allocate-temp", {{"name", "temp"},
                                    {"type", "bits:15:0"},
                                    {"section", "STATE"}}));
  Out.push_back(s("add-prologue", {{"code", "temp <- di;"}}));
  Out.push_back(s("replace-output",
                  {{"code", "if zf then output (di - temp); else "
                            "output (0); end_if;"}}));
  return Out;
}

/// cmpsb simplified for compare-while-equal (rfz = 1) and augmented to
/// return the equality result.
Script cmpsbScript() {
  Script Out = repPrefix();
  Out.push_back(s("fix-operand-value", {{"operand", "rfz"}, {"value", "1"}}));
  Out.push_back(s("global-constant-propagate", {{"var", "rfz"}}));
  Out.push_back(s("and-true"));
  Out.push_back(s("fold-not"));
  Out.push_back(s("and-false"));
  Out.push_back(s("or-false"));
  append(Out, forwardDirection({"fetchs", "fetchd"}));
  append(Out, dropFlag("rf"));
  append(Out, dropFlag("rfz"));
  append(Out, dropFlag("df"));
  // Augments: empty strings compare equal, so zf starts at 1.
  Out.push_back(s("fix-operand-value", {{"operand", "zf"}, {"value", "1"}}));
  Out.push_back(s("replace-output",
                  {{"code",
                    "if zf then output (1); else output (0); end_if;"}}));
  return Out;
}

/// locc: operands reordered to the operator's (addr, len, char) order,
/// initial address saved, epilogue computes the 1-based index.
Script loccScript() {
  return {
      s("permute-inputs", {{"order", "2,1,0"}}),
      s("allocate-temp",
        {{"name", "rb"}, {"type", "bits:31:0"}, {"section", "OPERANDS"}}),
      s("add-prologue", {{"code", "rb <- r1;"}}),
      s("replace-output",
        {{"code",
          "if r0 = 0 then output (0); else output (r1 - rb); end_if;"}}),
      s("empty-if-elim"),
  };
}

/// cmpc3: operands reordered, epilogue turns "bytes remaining" into the
/// operator's boolean equality result.
Script cmpc3Script() {
  return {
      s("permute-inputs", {{"order", "1,2,0"}}),
      s("replace-output",
        {{"code", "if r0 = 0 then output (1); else output (0); end_if;"}}),
  };
}

/// movc3 for PC2 block copy: both sides guard overlap identically, so
/// only the raw register results go away.
Script movc3ForPc2Script() {
  return {
      s("replace-output", {{"code", "none"}}),
  };
}

/// movc3 for Pascal sassign (§4.3): requires the no-overlap axiom —
/// extension mode only.
Script movc3ForSassignScript() {
  return {
      s("permute-inputs", {{"order", "2,1,0"}}),
      s("note-relational-constraint",
        {{"pred", "(r1 + r0 <= r3) or (r3 + r0 <= r1)"},
         {"axiom", "pascal.no-overlap"}}),
      s("resolve-if-by-constraint", {{"arm", "else"}, {"occurrence", "0"}}),
      s("replace-output", {{"code", "none"}}),
  };
}

/// movc5 specialized to block clear: source length 0 (move phase
/// vanishes), fill 0, unused source address pinned, operands reordered.
Script movc5Script() {
  return {
      s("replace-output", {{"code", "none"}}),
      s("fix-operand-value", {{"operand", "r0"}, {"value", "0"}}),
      s("dead-loop-elim"),
      s("dead-assign-elim", {{"var", "r0"}}),
      s("dead-decl-elim", {{"var", "r0"}}),
      s("fix-operand-value", {{"operand", "r1"}, {"value", "0"}}),
      s("dead-assign-elim", {{"var", "r1"}}),
      s("dead-decl-elim", {{"var", "r1"}}),
      s("fix-operand-value", {{"operand", "fill"}, {"value", "0"}}),
      s("global-constant-propagate", {{"var", "fill"}}),
      s("dead-assign-elim", {{"var", "fill"}}),
      s("dead-decl-elim", {{"var", "fill"}}),
      s("permute-inputs", {{"order", "1,0"}}),
  };
}

//===----------------------------------------------------------------------===//
// Operator scripts
//===----------------------------------------------------------------------===//

/// Pascal smove toward movsb: pointers instead of base+index, decrement
/// moved to the top of the loop, dead bases removed.
Script smoveScript() {
  return {
      s("index-to-pointer", {{"index-var", "Src.Index"},
                             {"base-var", "Src.Base"},
                             {"pointer-var", "sp"}}),
      s("index-to-pointer", {{"index-var", "Dst.Index"},
                             {"base-var", "Dst.Base"},
                             {"pointer-var", "dp"}}),
      s("move-up", {{"var", "Len"}}),
      s("move-up", {{"var", "Len"}}),
      s("dead-assign-elim", {{"var", "Src.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Base"}}),
      s("dead-assign-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Index"}}),
      s("dead-decl-elim", {{"var", "Dst.Index"}}),
  };
}

/// PL/1 move toward movsb: like smove, plus the up counter must become a
/// down counter (counting n itself down, as the hardware does).
Script pl1moveScript() {
  return {
      s("index-to-pointer", {{"index-var", "Spos"},
                             {"base-var", "Sbase"},
                             {"pointer-var", "sp"}}),
      s("index-to-pointer", {{"index-var", "Dpos"},
                             {"base-var", "Dbase"},
                             {"pointer-var", "dp"}}),
      s("count-up-to-down", {{"index-var", "cnt"},
                             {"bound-var", "n"},
                             {"counter-var", "n"}}),
      s("move-up", {{"var", "n"}}),
      s("move-up", {{"var", "n"}}),
      s("dead-assign-elim", {{"var", "Sbase"}}),
      s("dead-decl-elim", {{"var", "Sbase"}}),
      s("dead-assign-elim", {{"var", "Dbase"}}),
      s("dead-decl-elim", {{"var", "Dbase"}}),
      s("dead-decl-elim", {{"var", "Spos"}}),
      s("dead-decl-elim", {{"var", "Dpos"}}),
      s("dead-decl-elim", {{"var", "cnt"}}),
  };
}

/// Rigel index toward scasb: record which exit fired in a fresh flag
/// (the zf idiom), move the decrement to the scasb position, switch the
/// comparison to subtract-and-test, and reduce indexing to a pointer.
Script rigelIndexForScasbScript() {
  return {
      s("allocate-temp",
        {{"name", "found"}, {"type", "flag"}, {"section", "STATE"}}),
      s("record-exit-cause", {{"flag", "found"}}),
      s("move-up", {{"var", "Src.Length"}}),
      s("move-up", {{"var", "Src.Length"}}),
      s("eq-to-diff-zero"),
      s("index-to-pointer", {{"index-var", "Src.Index"},
                             {"base-var", "Src.Base"},
                             {"pointer-var", "ptr"}}),
      s("dead-decl-elim", {{"var", "Src.Index"}}),
  };
}

/// CLU search toward scasb: clean up the inverted comparisons first,
/// then the same flag recording as Rigel (the pointer form is already
/// there — CLU's runtime scans with a pointer).
Script cluSearchForScasbScript() {
  return {
      s("ne-to-not-eq"),
      s("not-not"),
      s("if-not-elim"),
      s("swap-relational-operands", {{"occurrence", "1"}}),
      s("allocate-temp",
        {{"name", "found"}, {"type", "flag"}, {"section", "STATE"}}),
      s("record-exit-cause", {{"flag", "found"}}),
      s("move-up", {{"var", "rem"}}),
      s("move-up", {{"var", "rem"}}),
      s("eq-to-diff-zero"),
  };
}

/// Pascal sequal toward cmpsb: record the exit cause, invert the flag's
/// polarity to the hardware's "equal" sense, normalize the comparison.
Script sequalForCmpsbScript() {
  return {
      s("allocate-temp",
        {{"name", "ne"}, {"type", "flag"}, {"section", "STATE"}}),
      s("record-exit-cause", {{"flag", "ne"}}),
      s("move-up", {{"var", "Len"}}),
      s("move-up", {{"var", "Len"}}),
      s("invert-flag", {{"var", "ne"}}),
      s("if-not-elim"),
      s("reverse-conditional", {{"occurrence", "0"}}),
      s("ne-to-not-eq"),
      s("not-not"),
      s("eq-to-diff-zero"),
      s("index-to-pointer", {{"index-var", "A.Index"},
                             {"base-var", "A.Base"},
                             {"pointer-var", "pa"}}),
      s("index-to-pointer", {{"index-var", "B.Index"},
                             {"base-var", "B.Base"},
                             {"pointer-var", "pb"}}),
      s("dead-assign-elim", {{"var", "A.Base"}}),
      s("dead-decl-elim", {{"var", "A.Base"}}),
      s("dead-assign-elim", {{"var", "B.Base"}}),
      s("dead-decl-elim", {{"var", "B.Base"}}),
      s("dead-decl-elim", {{"var", "A.Index"}}),
      s("dead-decl-elim", {{"var", "B.Index"}}),
  };
}

/// PC2 copy toward movc3: only cosmetic comparison normalization.
Script pc2copyScript() {
  return {
      s("swap-relational-operands", {{"occurrence", "0"}}),
      s("swap-commutative", {{"op", "+"}, {"occurrence", "1"}}),
  };
}

/// Rigel index toward locc: pointer access; the locc epilogue already
/// discriminates exactly like the operator.
Script rigelIndexForLoccScript() {
  return {
      s("index-to-pointer", {{"index-var", "Src.Index"},
                             {"base-var", "Src.Base"},
                             {"pointer-var", "ptr"}}),
      s("dead-decl-elim", {{"var", "Src.Index"}}),
  };
}

/// CLU search toward locc: comparison cleanup only.
Script cluSearchForLoccScript() {
  return {
      s("ne-to-not-eq"),
      s("not-not"),
      s("if-not-elim"),
      s("swap-relational-operands", {{"occurrence", "1"}}),
  };
}

/// Pascal sequal toward cmpc3: pointer access; the comparison is already
/// in the cmpc3 shape.
Script sequalForCmpc3Script() {
  return {
      s("index-to-pointer", {{"index-var", "A.Index"},
                             {"base-var", "A.Base"},
                             {"pointer-var", "pa"}}),
      s("index-to-pointer", {{"index-var", "B.Index"},
                             {"base-var", "B.Base"},
                             {"pointer-var", "pb"}}),
      s("dead-assign-elim", {{"var", "A.Base"}}),
      s("dead-decl-elim", {{"var", "A.Base"}}),
      s("dead-assign-elim", {{"var", "B.Base"}}),
      s("dead-decl-elim", {{"var", "B.Base"}}),
      s("dead-decl-elim", {{"var", "A.Index"}}),
      s("dead-decl-elim", {{"var", "B.Index"}}),
  };
}

/// Pascal sassign toward mvc (§4.2): the length-minus-one coding
/// constraint, loop rotation justified by the induced length >= 1, the
/// counter shifted to the encoded length, pointers, and the access
/// routine flattened into the mvc shape.
Script sassignForMvcScript() {
  return {
      s("introduce-offset-input",
        {{"operand", "Len"}, {"delta", "-1"}, {"new-name", "Lc"}}),
      s("introduce-range-assert", {{"operand", "Lc"}, {"lo", "0"},
                                   {"hi", "255"}}),
      s("introduce-range-assert", {{"operand", "Len"},
                                   {"lo", "1"},
                                   {"hi", "256"},
                                   {"before-loop", "1"}}),
      s("rotate-while-to-dowhile"),
      s("remove-assert"),
      s("shift-counter", {{"old-var", "Len"}, {"new-var", "Lc"}}),
      s("index-to-pointer", {{"index-var", "Src.Index"},
                             {"base-var", "Src.Base"},
                             {"pointer-var", "sp"}}),
      s("index-to-pointer", {{"index-var", "Dst.Index"},
                             {"base-var", "Dst.Base"},
                             {"pointer-var", "dp"}}),
      s("extract-call-to-temp", {{"callee", "getch"}, {"temp", "tc"}}),
      s("inline-routine", {{"callee", "getch"}, {"temp", "gv"}}),
      s("copy-propagate", {{"var", "tc"}}),
      s("dead-assign-elim", {{"var", "tc"}}),
      s("dead-decl-elim", {{"var", "tc"}}),
      s("move-down", {{"var", "sp"}}),
      s("fuse-load-store", {{"var", "gv"}}),
      s("dead-decl-elim", {{"var", "gv"}}),
      s("move-down", {{"var", "sp"}}),
      s("dead-routine-elim", {{"name", "getch"}}),
      s("dead-assign-elim", {{"var", "Src.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Base"}}),
      s("dead-assign-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Index"}}),
      s("dead-decl-elim", {{"var", "Dst.Index"}}),
  };
}

/// Pascal sassign toward movc3 (§4.3 extension): like the mvc flattening
/// but with no length re-encoding, and the decrement moved to the top.
Script sassignForMovc3Script() {
  return {
      s("index-to-pointer", {{"index-var", "Src.Index"},
                             {"base-var", "Src.Base"},
                             {"pointer-var", "sp"}}),
      s("index-to-pointer", {{"index-var", "Dst.Index"},
                             {"base-var", "Dst.Base"},
                             {"pointer-var", "dp"}}),
      s("extract-call-to-temp", {{"callee", "getch"}, {"temp", "tc"}}),
      s("inline-routine", {{"callee", "getch"}, {"temp", "gv"}}),
      s("copy-propagate", {{"var", "tc"}}),
      s("dead-assign-elim", {{"var", "tc"}}),
      s("dead-decl-elim", {{"var", "tc"}}),
      s("move-down", {{"var", "sp"}}),
      s("fuse-load-store", {{"var", "gv"}}),
      s("dead-decl-elim", {{"var", "gv"}}),
      s("move-up", {{"var", "Len"}}),
      s("move-up", {{"var", "Len"}}),
      s("move-up", {{"var", "Len"}}),
      s("dead-routine-elim", {{"name", "getch"}}),
      s("dead-assign-elim", {{"var", "Src.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Base"}}),
      s("dead-assign-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Dst.Base"}}),
      s("dead-decl-elim", {{"var", "Src.Index"}}),
      s("dead-decl-elim", {{"var", "Dst.Index"}}),
  };
}

/// 8086 stosb toward PC2 block clear (extended case): the same flag
/// simplifications as movsb, plus the fill byte pinned to zero.
Script stosbScript() {
  Script Out = repPrefix();
  append(Out, forwardDirection({}));
  Out.push_back(s("if-false-elim")); // the di-direction if in the entry
  append(Out, dropFlag("rf"));
  append(Out, dropFlag("df"));
  Out.push_back(s("fix-operand-value", {{"operand", "al"}, {"value", "0"}}));
  Out.push_back(s("global-constant-propagate", {{"var", "al"}}));
  Out.push_back(s("dead-assign-elim", {{"var", "al"}}));
  Out.push_back(s("dead-decl-elim", {{"var", "al"}}));
  Out.push_back(s("permute-inputs", {{"order", "0,1"}}));
  Out.push_back(s("replace-output", {{"code", "none"}}));
  return Out;
}

/// PC2 clear toward stosb: only the counter decrement moves up.
Script pc2clearForStosbScript() {
  return {
      s("move-up", {{"var", "n"}}),
      s("move-up", {{"var", "n"}}),
  };
}

/// VAX skpc toward Rigel span: operands reordered, initial length saved,
/// the count epilogue — notably no conditional: consumed = initial -
/// remaining on both exit paths.
Script skpcScript() {
  return {
      s("permute-inputs", {{"order", "2,1,0"}}),
      s("allocate-temp",
        {{"name", "t0"}, {"type", "bits:15:0"}, {"section", "OPERANDS"}}),
      s("add-prologue", {{"code", "t0 <- r0;"}}),
      s("replace-output", {{"code", "output (t0 - r0);"}}),
      s("empty-if-elim"),
  };
}

/// Rigel span toward skpc: only the comparison operand order differs.
Script rigelSpanScript() {
  return {
      s("swap-relational-operands", {{"occurrence", "1"}}),
  };
}

AnalysisCase makeCase(std::string Machine, std::string Instruction,
                      std::string Language, std::string Operation,
                      unsigned PaperSteps, std::string OperatorId,
                      std::string InstructionId, Script OperatorScript,
                      Script InstructionScript, bool Extension = false) {
  AnalysisCase C;
  C.Id = InstructionId + "/" + OperatorId;
  C.Machine = std::move(Machine);
  C.Instruction = std::move(Instruction);
  C.Language = std::move(Language);
  C.Operation = std::move(Operation);
  C.PaperSteps = PaperSteps;
  C.OperatorId = std::move(OperatorId);
  C.InstructionId = std::move(InstructionId);
  C.OperatorScript = std::move(OperatorScript);
  C.InstructionScript = std::move(InstructionScript);
  C.RequiresExtension = Extension;
  return C;
}

} // namespace

const std::vector<AnalysisCase> &analysis::table2Cases() {
  static const std::vector<AnalysisCase> Cases = {
      makeCase("Intel 8086", "movsb", "Pascal", "string move", 52,
               "pascal.smove", "i8086.movsb", smoveScript(), movsbScript()),
      makeCase("Intel 8086", "movsb", "PL/1", "string move", 66, "pl1.move",
               "i8086.movsb", pl1moveScript(), movsbScript()),
      makeCase("Intel 8086", "scasb", "Rigel", "string search", 73,
               "rigel.index", "i8086.scasb", rigelIndexForScasbScript(),
               scasbScript()),
      makeCase("Intel 8086", "scasb", "CLU", "string search", 86,
               "clu.search", "i8086.scasb", cluSearchForScasbScript(),
               scasbScript()),
      makeCase("Intel 8086", "cmpsb", "Pascal", "string compare", 79,
               "pascal.sequal", "i8086.cmpsb", sequalForCmpsbScript(),
               cmpsbScript()),
      makeCase("VAX-11", "movc3", "PC2", "block copy", 21, "pc2.copy",
               "vax.movc3", pc2copyScript(), movc3ForPc2Script()),
      makeCase("VAX-11", "movc5", "PC2", "block clear", 26, "pc2.clear",
               "vax.movc5", Script{}, movc5Script()),
      makeCase("VAX-11", "locc", "Rigel", "string search", 33, "rigel.index",
               "vax.locc", rigelIndexForLoccScript(), loccScript()),
      makeCase("VAX-11", "locc", "CLU", "string search", 32, "clu.search",
               "vax.locc", cluSearchForLoccScript(), loccScript()),
      makeCase("VAX-11", "cmpc3", "Pascal", "string compare", 47,
               "pascal.sequal", "vax.cmpc3", sequalForCmpc3Script(),
               cmpc3Script()),
      makeCase("IBM 370", "mvc", "Pascal", "string move", 105,
               "pascal.sassign", "ibm370.mvc", sassignForMvcScript(),
               Script{}),
  };
  return Cases;
}

const std::vector<AnalysisCase> &analysis::extendedCases() {
  static const std::vector<AnalysisCase> Cases = {
      makeCase("Intel 8086", "stosb", "PC2", "block clear", 0, "pc2.clear",
               "i8086.stosb", pc2clearForStosbScript(), stosbScript()),
      makeCase("VAX-11", "skpc", "Rigel", "span", 0, "rigel.span",
               "vax.skpc", rigelSpanScript(), skpcScript()),
  };
  return Cases;
}

const AnalysisCase &analysis::movc3SassignCase() {
  static const AnalysisCase Case = makeCase(
      "VAX-11", "movc3", "Pascal", "string assignment", 0, "pascal.sassign",
      "vax.movc3", sassignForMovc3Script(), movc3ForSassignScript(),
      /*Extension=*/true);
  return Case;
}

const AnalysisCase *analysis::findCase(const std::string &Id) {
  for (const AnalysisCase &C : table2Cases())
    if (C.Id == Id)
      return &C;
  for (const AnalysisCase &C : extendedCases())
    if (C.Id == Id)
      return &C;
  if (movc3SassignCase().Id == Id)
    return &movc3SassignCase();
  return nullptr;
}
