//===- Descriptions.cpp - Library of ISDL description sources --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "descriptions/Descriptions.h"

#include "isdl/Parser.h"
#include "isdl/Validate.h"
#include "support/FaultInjection.h"

#include <map>

using namespace extra;
using namespace extra::descriptions;

//===----------------------------------------------------------------------===//
// Language operator descriptions
//===----------------------------------------------------------------------===//

/// Figure 2: the Rigel index operator, verbatim from the paper.
static const char *RigelIndex = R"(
index.operation := begin
  ** SOURCE.ACCESS **
    Src.Base: integer,    ! string base address
    Src.Index: integer,   ! string index
    Src.Length: integer,  ! string length
    read(): integer := begin
      read <- Mb[Src.Base + Src.Index];
      Src.Index <- Src.Index + 1;
    end
  ** STATE **
    ch: character          ! character sought
  ** STRING.PROCESS **
    index.execute := begin
      input (Src.Base, Src.Length, ch);
      Src.Index <- 0;
      repeat
        ! exit when string exhausted
        exit_when (Src.Length = 0);
        ! exit if char is found
        exit_when (ch = read());
        Src.Length <- Src.Length - 1;
      end_repeat;
      if Src.Length = 0 then
        output (0);          ! char not found
      else
        output (Src.Index);  ! char found
      end_if;
    end
end
)";

/// CLU string search (string$indexc): written from the CLU runtime in a
/// pointer-based style with inverted comparisons — a deliberately
/// different idiom from Figure 2.
static const char *CluSearch = R"(
clusearch.operation := begin
  ** SOURCE.ACCESS **
    sp: integer,          ! scan pointer
    start: integer,       ! start-of-string save
    probe(): character := begin
      probe <- Mb[sp];
      sp <- sp + 1;
    end
  ** STATE **
    rem: integer,         ! characters remaining
    c: character          ! character sought
  ** STRING.PROCESS **
    clusearch.execute := begin
      input (sp, rem, c);
      start <- sp;
      repeat
        exit_when (rem = 0);
        exit_when (not (probe() <> c));
        rem <- rem - 1;
      end_repeat;
      if rem <> 0 then
        output (sp - start);  ! 1-based index of the character
      else
        output (0);
      end_if;
    end
end
)";

/// Pascal string move (the smove runtime routine): base+index access
/// through per-string sections, with the count decrement at the bottom of
/// the loop.
static const char *PascalSmove = R"(
smove.operation := begin
  ** SOURCE.ACCESS **
    Src.Base: integer,
    Src.Index: integer,
    getch(): character := begin
      getch <- Mb[Src.Base + Src.Index];
      Src.Index <- Src.Index + 1;
    end
  ** DEST.ACCESS **
    Dst.Base: integer,
    Dst.Index: integer,
  ** STATE **
    Len: integer,
  ** STRING.PROCESS **
    smove.execute := begin
      input (Src.Base, Dst.Base, Len);
      Src.Index <- 0;
      Dst.Index <- 0;
      repeat
        exit_when (Len = 0);
        Mb[Dst.Base + Dst.Index] <- getch();
        Dst.Index <- Dst.Index + 1;
        Len <- Len - 1;
      end_repeat;
    end
end
)";

/// PL/1 string move: same operation as Pascal smove, but written with an
/// up-counting loop (as the PL/1 library source has it).
static const char *Pl1Move = R"(
pl1move.operation := begin
  ** SOURCE.ACCESS **
    Sbase: integer,
    Spos: integer,
    nextch(): character := begin
      nextch <- Mb[Sbase + Spos];
      Spos <- Spos + 1;
    end
  ** DEST.ACCESS **
    Dbase: integer,
    Dpos: integer,
  ** STATE **
    n: integer,     ! number of characters to move
    cnt: integer,   ! characters moved so far
  ** STRING.PROCESS **
    pl1move.execute := begin
      input (Sbase, Dbase, n);
      Spos <- 0;
      Dpos <- 0;
      cnt <- 0;
      repeat
        exit_when (cnt = n);
        Mb[Dbase + Dpos] <- nextch();
        Dpos <- Dpos + 1;
        cnt <- cnt + 1;
      end_repeat;
    end
end
)";

/// Pascal string comparison (equality test): 1 when the strings are
/// equal, 0 otherwise.
static const char *PascalSequal = R"(
sequal.operation := begin
  ** SOURCE.ACCESS **
    A.Base: integer,
    A.Index: integer,
    geta(): character := begin
      geta <- Mb[A.Base + A.Index];
      A.Index <- A.Index + 1;
    end
  ** DEST.ACCESS **
    B.Base: integer,
    B.Index: integer,
    getb(): character := begin
      getb <- Mb[B.Base + B.Index];
      B.Index <- B.Index + 1;
    end
  ** STATE **
    Len: integer,
  ** STRING.PROCESS **
    sequal.execute := begin
      input (A.Base, B.Base, Len);
      A.Index <- 0;
      B.Index <- 0;
      repeat
        exit_when (Len = 0);
        exit_when (geta() <> getb());
        Len <- Len - 1;
      end_repeat;
      if Len = 0 then
        output (1);   ! strings equal
      else
        output (0);   ! mismatch found
      end_if;
    end
end
)";

/// PC2 (Berkeley Pascal runtime, written in C) block copy: overlap-safe,
/// like the C library bcopy it is built on.
static const char *Pc2Copy = R"(
pc2copy.operation := begin
  ** OPERANDS **
    len: integer,   ! byte count
    src: integer,   ! source address
    dst: integer,   ! destination address
  ** PROCESS **
    pc2copy.execute := begin
      input (len, src, dst);
      if (dst > src) and (dst < src + len) then
        ! destination overlaps the source tail: move high to low
        src <- len + src;
        dst <- dst + len;
        repeat
          exit_when (len = 0);
          len <- len - 1;
          src <- src - 1;
          dst <- dst - 1;
          Mb[dst] <- Mb[src];
        end_repeat;
      else
        repeat
          exit_when (len = 0);
          len <- len - 1;
          Mb[dst] <- Mb[src];
          src <- src + 1;
          dst <- dst + 1;
        end_repeat;
      end_if;
    end
end
)";

/// PC2 block clear (bzero).
static const char *Pc2Clear = R"(
pc2clear.operation := begin
  ** OPERANDS **
    p: integer,   ! area address
    n: integer,   ! byte count
  ** PROCESS **
    pc2clear.execute := begin
      input (p, n);
      repeat
        exit_when (n = 0);
        Mb[p] <- 0;
        p <- p + 1;
        n <- n - 1;
      end_repeat;
    end
end
)";

/// Rigel span: counts the leading occurrences of a character (the
/// complement of index; not in the paper's Table 2 — an extended
/// analysis exercising the same machinery against the VAX skpc).
static const char *RigelSpan = R"(
span.operation := begin
  ** SOURCE.ACCESS **
    sp: integer,       ! scan pointer
    look(): character := begin
      look <- Mb[sp];
      sp <- sp + 1;
    end
  ** STATE **
    rem: integer,      ! characters remaining
    total: integer,    ! starting length
    c: character       ! character to span over
  ** STRING.PROCESS **
    span.execute := begin
      input (sp, rem, c);
      total <- rem;
      repeat
        exit_when (rem = 0);
        exit_when (look() <> c);
        rem <- rem - 1;
      end_repeat;
      output (total - rem);
    end
end
)";

/// Pascal string assignment (sassign, compiler internal form): a simple
/// forward move — Pascal strings cannot overlap (§4.3).
static const char *PascalSassign = R"(
sassign.operation := begin
  ** SOURCE.ACCESS **
    Src.Base: integer,
    Src.Index: integer,
    getch(): character := begin
      getch <- Mb[Src.Base + Src.Index];
      Src.Index <- Src.Index + 1;
    end
  ** DEST.ACCESS **
    Dst.Base: integer,
    Dst.Index: integer,
  ** STATE **
    Len: integer,
  ** STRING.PROCESS **
    sassign.execute := begin
      input (Dst.Base, Src.Base, Len);
      Src.Index <- 0;
      Dst.Index <- 0;
      repeat
        exit_when (Len = 0);
        Mb[Dst.Base + Dst.Index] <- getch();
        Dst.Index <- Dst.Index + 1;
        Len <- Len - 1;
      end_repeat;
    end
end
)";

//===----------------------------------------------------------------------===//
// Intel 8086 instruction descriptions
//===----------------------------------------------------------------------===//

/// Figure 3: the scasb instruction, verbatim from the paper.
static const char *I8086Scasb = R"(
scasb.instruction := begin
  ! segment addressing ignored in this description
  ** SOURCE.ACCESS **
    di<15:0>,   ! source string address
    cx<15:0>,   ! source string length
    fetch()<7:0> := begin   ! fetch source character
      fetch <- Mb[di];
      if df then
        di <- di - 1;   ! high-to-low addresses
      else
        di <- di + 1;   ! low-to-high addresses
      end_if;
    end
  ** STATE **
    rf<>,      ! repeat flag
    df<>,      ! direction flag
    rfz<>,     ! exit condition flag
    zf<>,      ! last compare zero flag
    al<7:0>    ! character sought
  ** STRING.PROCESS **
    scasb.execute := begin
      input (rf, rfz, df, zf, di, cx, al);
      if not rf then   ! no repetition
        if (al - fetch()) = 0 then
          zf <- 1;
        else
          zf <- 0;
        end_if;
      else             ! repeat mode
        repeat
          exit_when (cx = 0);
          cx <- cx - 1;
          if (al - fetch()) = 0 then
            zf <- 1;
          else
            zf <- 0;
          end_if;
          ! exit on condition
          exit_when (rfz and (not zf)) or ((not rfz) and zf);
        end_repeat;
      end_if;
      output (zf, di, cx);
    end
end
)";

/// 8086 movsb with rep prefix, from the 8086 Family User's Manual.
static const char *I8086Movsb = R"(
movsb.instruction := begin
  ** SOURCE.ACCESS **
    si<15:0>,   ! source string address
    fetch()<7:0> := begin
      fetch <- Mb[si];
      if df then
        si <- si - 1;
      else
        si <- si + 1;
      end_if;
    end
  ** DEST.ACCESS **
    di<15:0>,   ! destination string address
    cx<15:0>,   ! string length
  ** STATE **
    rf<>,       ! repeat flag
    df<>,       ! direction flag
  ** STRING.PROCESS **
    movsb.execute := begin
      input (rf, df, si, di, cx);
      if not rf then
        Mb[di] <- fetch();
        if df then
          di <- di - 1;
        else
          di <- di + 1;
        end_if;
      else
        repeat
          exit_when (cx = 0);
          cx <- cx - 1;
          Mb[di] <- fetch();
          if df then
            di <- di - 1;
          else
            di <- di + 1;
          end_if;
        end_repeat;
      end_if;
      output (si, di, cx);
    end
end
)";

/// 8086 cmpsb with rep prefix.
static const char *I8086Cmpsb = R"(
cmpsb.instruction := begin
  ** SOURCE.ACCESS **
    si<15:0>,
    fetchs()<7:0> := begin
      fetchs <- Mb[si];
      if df then
        si <- si - 1;
      else
        si <- si + 1;
      end_if;
    end
  ** DEST.ACCESS **
    di<15:0>,
    fetchd()<7:0> := begin
      fetchd <- Mb[di];
      if df then
        di <- di - 1;
      else
        di <- di + 1;
      end_if;
    end
  ** STATE **
    rf<>,       ! repeat flag
    df<>,       ! direction flag
    rfz<>,      ! exit condition flag
    zf<>,       ! last compare zero flag
    cx<15:0>,   ! string length
  ** STRING.PROCESS **
    cmpsb.execute := begin
      input (rf, rfz, df, zf, si, di, cx);
      if not rf then
        if (fetchs() - fetchd()) = 0 then
          zf <- 1;
        else
          zf <- 0;
        end_if;
      else
        repeat
          exit_when (cx = 0);
          cx <- cx - 1;
          if (fetchs() - fetchd()) = 0 then
            zf <- 1;
          else
            zf <- 0;
          end_if;
          exit_when (rfz and (not zf)) or ((not rfz) and zf);
        end_repeat;
      end_if;
      output (zf, si, di, cx);
    end
end
)";

//===----------------------------------------------------------------------===//
// VAX-11 instruction descriptions
//===----------------------------------------------------------------------===//

/// VAX locc: LOCC char.rb, len.rw, addr.ab. Leaves r0 = bytes remaining
/// including the located one (0 when absent), r1 = address of the located
/// byte (or one past the string when absent).
static const char *VaxLocc = R"(
locc.instruction := begin
  ** OPERANDS **
    ch<7:0>,    ! character sought
    r0<15:0>,   ! string length (VAX string lengths are 16 bits)
    r1<31:0>,   ! string address
  ** SOURCE.ACCESS **
    next()<7:0> := begin
      next <- Mb[r1];
      r1 <- r1 + 1;
    end
  ** STRING.PROCESS **
    locc.execute := begin
      input (ch, r0, r1);
      repeat
        exit_when (r0 = 0);
        exit_when (ch = next());
        r0 <- r0 - 1;
      end_repeat;
      if r0 = 0 then
        output (r0, r1);
      else
        output (r0, r1 - 1);   ! back up to the located byte
      end_if;
    end
end
)";

/// VAX cmpc3: CMPC3 len.rw, src1addr.ab, src2addr.ab. Leaves r0 = bytes
/// remaining including the first unequal pair (0 when equal).
static const char *VaxCmpc3 = R"(
cmpc3.instruction := begin
  ** OPERANDS **
    r0<15:0>,   ! length
    r1<31:0>,   ! first string address
    r3<31:0>,   ! second string address
  ** ACCESS **
    next1()<7:0> := begin
      next1 <- Mb[r1];
      r1 <- r1 + 1;
    end
    next2()<7:0> := begin
      next2 <- Mb[r3];
      r3 <- r3 + 1;
    end
  ** STRING.PROCESS **
    cmpc3.execute := begin
      input (r0, r1, r3);
      repeat
        exit_when (r0 = 0);
        exit_when (next1() <> next2());
        r0 <- r0 - 1;
      end_repeat;
      output (r0, r1, r3);
    end
end
)";

/// VAX movc3: MOVC3 len.rw, srcaddr.ab, dstaddr.ab — guards against
/// overlapping strings by choosing the copy direction (§4.3).
static const char *VaxMovc3 = R"(
movc3.instruction := begin
  ** OPERANDS **
    r0<15:0>,   ! byte count
    r1<31:0>,   ! source address
    r3<31:0>,   ! destination address
  ** STRING.PROCESS **
    movc3.execute := begin
      input (r0, r1, r3);
      if (r1 < r3) and (r3 < r1 + r0) then
        ! destination overlaps the source tail: move high to low
        r1 <- r1 + r0;
        r3 <- r3 + r0;
        repeat
          exit_when (r0 = 0);
          r0 <- r0 - 1;
          r1 <- r1 - 1;
          r3 <- r3 - 1;
          Mb[r3] <- Mb[r1];
        end_repeat;
      else
        repeat
          exit_when (r0 = 0);
          r0 <- r0 - 1;
          Mb[r3] <- Mb[r1];
          r1 <- r1 + 1;
          r3 <- r3 + 1;
        end_repeat;
      end_if;
      output (r0, r1, r3);
    end
end
)";

/// VAX movc5: MOVC5 srclen.rw, srcaddr.ab, fill.rb, dstlen.rw,
/// dstaddr.ab (overlap handling elided; the block-clear specialization
/// fixes srclen = 0, which makes the move phase vanish).
static const char *VaxMovc5 = R"(
movc5.instruction := begin
  ** OPERANDS **
    r0<15:0>,   ! source length
    r1<31:0>,   ! source address
    fill<7:0>,  ! fill character
    r2<15:0>,   ! destination length
    r3<31:0>,   ! destination address
  ** STRING.PROCESS **
    movc5.execute := begin
      input (r0, r1, fill, r2, r3);
      repeat
        exit_when (r0 = 0);
        exit_when (r2 = 0);
        Mb[r3] <- Mb[r1];
        r1 <- r1 + 1;
        r3 <- r3 + 1;
        r0 <- r0 - 1;
        r2 <- r2 - 1;
      end_repeat;
      repeat
        exit_when (r2 = 0);
        Mb[r3] <- fill;
        r3 <- r3 + 1;
        r2 <- r2 - 1;
      end_repeat;
      output (r0, r1, r2, r3);
    end
end
)";

//===----------------------------------------------------------------------===//
// IBM System/370 instruction description
//===----------------------------------------------------------------------===//

/// IBM 370 mvc: MVC D1(L,B1),D2(B2). The 8-bit length field holds the
/// number of bytes to move *less one* — the coding-constraint quirk of
/// §4.2. Addresses are 24-bit.
static const char *Ibm370Mvc = R"(
mvc.instruction := begin
  ** OPERANDS **
    d<23:0>,   ! destination address (B1 + D1)
    s<23:0>,   ! source address (B2 + D2)
    L<7:0>,    ! length code: byte count less one
  ** STRING.PROCESS **
    mvc.execute := begin
      input (d, s, L);
      repeat
        Mb[d] <- Mb[s];
        d <- d + 1;
        s <- s + 1;
        exit_when (L = 0);
        L <- L - 1;
      end_repeat;
    end
end
)";

//===----------------------------------------------------------------------===//
// Additional catalog instructions (not in Table 2, provided for
// completeness and for the §5 Eclipse failure study)
//===----------------------------------------------------------------------===//

/// 8086 stosb with rep: store AL through the string.
static const char *I8086Stosb = R"(
stosb.instruction := begin
  ** DEST.ACCESS **
    di<15:0>,   ! destination string address
    cx<15:0>,   ! string length
  ** STATE **
    rf<>,       ! repeat flag
    df<>,       ! direction flag
    al<7:0>,    ! byte to store
  ** STRING.PROCESS **
    stosb.execute := begin
      input (rf, df, di, cx, al);
      if not rf then
        Mb[di] <- al;
        if df then
          di <- di - 1;
        else
          di <- di + 1;
        end_if;
      else
        repeat
          exit_when (cx = 0);
          cx <- cx - 1;
          Mb[di] <- al;
          if df then
            di <- di - 1;
          else
            di <- di + 1;
          end_if;
        end_repeat;
      end_if;
      output (di, cx);
    end
end
)";

/// VAX skpc: skip over occurrences of a character (the complement of
/// locc).
static const char *VaxSkpc = R"(
skpc.instruction := begin
  ** OPERANDS **
    ch<7:0>,    ! character to skip
    r0<15:0>,   ! string length
    r1<31:0>,   ! string address
  ** SOURCE.ACCESS **
    next()<7:0> := begin
      next <- Mb[r1];
      r1 <- r1 + 1;
    end
  ** STRING.PROCESS **
    skpc.execute := begin
      input (ch, r0, r1);
      repeat
        exit_when (r0 = 0);
        exit_when (ch <> next());
        r0 <- r0 - 1;
      end_repeat;
      if r0 = 0 then
        output (r0, r1);
      else
        output (r0, r1 - 1);   ! back up to the unequal byte
      end_if;
    end
end
)";

/// IBM 370 clc: compare logical characters (length-1 encoded, like mvc).
static const char *Ibm370Clc = R"(
clc.instruction := begin
  ** OPERANDS **
    a<23:0>,    ! first operand address
    b<23:0>,    ! second operand address
    L<7:0>,     ! length code: byte count less one
    cc<1:0>,    ! condition code
  ** STRING.PROCESS **
    clc.execute := begin
      input (a, b, L);
      cc <- 0;
      repeat
        if (Mb[a] - Mb[b]) = 0 then
          cc <- 0;
        else
          if Mb[a] < Mb[b] then
            cc <- 1;
          else
            cc <- 2;
          end_if;
        end_if;
        exit_when (cc <> 0);
        a <- a + 1;
        b <- b + 1;
        exit_when (L = 0);
        L <- L - 1;
      end_repeat;
      output (cc);
    end
end
)";

/// DG Eclipse cmv (character move), from the Eclipse Programmer's
/// Reference: the *sign* of each length operand encodes the direction of
/// that string's processing — the coding trick that §5 reports EXTRA
/// could not analyze ("the length operand is now used for two unrelated
/// purposes and it is difficult to formulate transformations to separate
/// the two functions").
static const char *EclipseCmv = R"(
cmv.instruction := begin
  ** OPERANDS **
    acs<15:0>,      ! source address
    acd<15:0>,      ! destination address
    slen: integer,  ! source length; the SIGN encodes source direction
    dlen: integer,  ! destination length; the SIGN encodes direction
  ** STRING.PROCESS **
    cmv.execute := begin
      input (acs, acd, slen, dlen);
      repeat
        exit_when (dlen = 0);
        Mb[acd] <- Mb[acs];
        if slen > 0 then
          acs <- acs + 1;
          slen <- slen - 1;
        else
          acs <- acs - 1;
          slen <- slen + 1;
        end_if;
        if dlen > 0 then
          acd <- acd + 1;
          dlen <- dlen - 1;
        else
          acd <- acd - 1;
          dlen <- dlen + 1;
        end_if;
      end_repeat;
      output (acs, acd);
    end
end
)";

//===----------------------------------------------------------------------===//
// Library table
//===----------------------------------------------------------------------===//

const std::vector<Entry> &descriptions::allEntries() {
  static const std::vector<Entry> Entries = {
      // Language operators.
      {"rigel.index", "Rigel", "string search (Figure 2)", RigelIndex},
      {"clu.search", "CLU", "string search (string$indexc)", CluSearch},
      {"pascal.smove", "Pascal", "string move (smove runtime)", PascalSmove},
      {"pl1.move", "PL/1", "string move (up-counting library source)",
       Pl1Move},
      {"pascal.sequal", "Pascal", "string comparison", PascalSequal},
      {"pc2.copy", "PC2", "block copy (overlap-safe bcopy)", Pc2Copy},
      {"pc2.clear", "PC2", "block clear (bzero)", Pc2Clear},
      {"pascal.sassign", "Pascal", "string assignment (no overlap)",
       PascalSassign},
      {"rigel.span", "Rigel", "count leading occurrences (extended case)",
       RigelSpan},
      // Machine instructions.
      {"i8086.scasb", "Intel 8086", "scan string for byte (Figure 3)",
       I8086Scasb},
      {"i8086.movsb", "Intel 8086", "move string byte", I8086Movsb},
      {"i8086.cmpsb", "Intel 8086", "compare string bytes", I8086Cmpsb},
      {"vax.locc", "VAX-11", "locate character", VaxLocc},
      {"vax.cmpc3", "VAX-11", "compare characters", VaxCmpc3},
      {"vax.movc3", "VAX-11", "move characters (overlap-safe)", VaxMovc3},
      {"vax.movc5", "VAX-11", "move characters with fill", VaxMovc5},
      {"ibm370.mvc", "IBM 370", "move characters (length-1 encoding)",
       Ibm370Mvc},
      // Beyond Table 2: further catalog instructions.
      {"i8086.stosb", "Intel 8086", "store string byte", I8086Stosb},
      {"vax.skpc", "VAX-11", "skip character", VaxSkpc},
      {"ibm370.clc", "IBM 370", "compare logical characters", Ibm370Clc},
      {"eclipse.cmv", "DG Eclipse",
       "character move (sign-encoded direction; the §5 failure)",
       EclipseCmv},
  };
  return Entries;
}

const char *descriptions::sourceFor(const std::string &Id) {
  for (const Entry &E : allEntries())
    if (E.Id == Id)
      return E.Source;
  return nullptr;
}

std::unique_ptr<isdl::Description> descriptions::load(const std::string &Id) {
  // The library text is a program invariant — suppress injection so the
  // asserts below cannot trip under a fault-injection run.
  FaultSuppress Quiet;
  const char *Source = sourceFor(Id);
  assert(Source && "unknown description id");
  if (!Source)
    return nullptr;
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(Source, Diags);
  assert(D && !Diags.hasErrors() && "library description fails to parse");
  if (D && !isdl::validate(*D, Diags)) {
    assert(false && "library description fails validation");
    return nullptr;
  }
  return D;
}

Expected<std::unique_ptr<isdl::Description>>
descriptions::loadChecked(const std::string &Id) {
  const char *Source = sourceFor(Id);
  if (!Source)
    return makeFault(FaultCategory::Internal,
                     "unknown description id '" + Id + "'");
  auto D = isdl::parseDescriptionChecked(Source);
  if (!D)
    return D.fault();
  DiagnosticEngine Diags;
  if (!isdl::validate(**D, Diags))
    return makeFault(FaultCategory::Validate,
                     "description '" + Id + "': " + Diags.str());
  return std::move(*D);
}

//===----------------------------------------------------------------------===//
// Table 1 catalog
//===----------------------------------------------------------------------===//

const std::vector<CatalogEntry> &descriptions::catalog() {
  static const std::vector<CatalogEntry> Entries = {
      // Intel 8086 — 6 string instructions (8086 Family User's Manual).
      {"Intel 8086", "movs", "string move", true},
      {"Intel 8086", "cmps", "string compare", true},
      {"Intel 8086", "scas", "string scan", true},
      {"Intel 8086", "lods", "string load", true},
      {"Intel 8086", "stos", "string store", true},
      {"Intel 8086", "xlat", "table translate", true},
      // DG Eclipse — 5 character instructions (Eclipse Programmer's
      // Reference).
      {"DG Eclipse", "cmv", "character move", true},
      {"DG Eclipse", "cmp", "character compare", true},
      {"DG Eclipse", "ctr", "character translate", true},
      {"DG Eclipse", "cmt", "character move until true", true},
      {"DG Eclipse", "edit", "string edit", true},
      // Univac 1100 — 21 byte/string instructions. The paper's exact
      // membership is not recoverable; the set below reconstructs a
      // 21-instruction byte-manipulation repertoire of the 1100 series.
      {"Univac 1100", "bt", "block transfer", true},
      {"Univac 1100", "btt", "block transfer and translate", false},
      {"Univac 1100", "slj", "string load and justify", false},
      {"Univac 1100", "bim", "byte instruction move", false},
      {"Univac 1100", "bimt", "byte move and translate", false},
      {"Univac 1100", "bicl", "byte compare limits", false},
      {"Univac 1100", "bde", "byte to decimal edit", false},
      {"Univac 1100", "deb", "decimal edit bytes", false},
      {"Univac 1100", "bf", "byte fill", false},
      {"Univac 1100", "bsc", "byte string compare", false},
      {"Univac 1100", "bss", "byte string search", false},
      {"Univac 1100", "bsm", "byte string move", false},
      {"Univac 1100", "bsmr", "byte string move reversed", false},
      {"Univac 1100", "bst", "byte string translate", false},
      {"Univac 1100", "bsp", "byte string pack", false},
      {"Univac 1100", "bsu", "byte string unpack", false},
      {"Univac 1100", "lsc", "list search", false},
      {"Univac 1100", "lins", "list insert", false},
      {"Univac 1100", "lrem", "list remove", false},
      {"Univac 1100", "sscn", "string scan", false},
      {"Univac 1100", "sed", "string edit", false},
      // IBM 370 — 7 storage-to-storage string instructions (Principles
      // of Operation).
      {"IBM 370", "mvc", "move characters", true},
      {"IBM 370", "mvcl", "move characters long", true},
      {"IBM 370", "clc", "compare logical characters", true},
      {"IBM 370", "clcl", "compare logical long", true},
      {"IBM 370", "tr", "translate", true},
      {"IBM 370", "trt", "translate and test (string search)", true},
      {"IBM 370", "ed", "edit", true},
      // Burroughs B4800 — 16 string/list instructions. As with the 1100,
      // the precise 1982 membership is reconstructed.
      {"Burroughs B4800", "mvn", "move numeric", true},
      {"Burroughs B4800", "mva", "move alphanumeric", true},
      {"Burroughs B4800", "mvr", "move repeated", false},
      {"Burroughs B4800", "cpa", "compare alphanumeric", false},
      {"Burroughs B4800", "cpn", "compare numeric", false},
      {"Burroughs B4800", "sst", "string search", false},
      {"Burroughs B4800", "ssd", "string search delimited", false},
      {"Burroughs B4800", "tws", "translate while scanning", false},
      {"Burroughs B4800", "edt", "string edit", true},
      {"Burroughs B4800", "edm", "edit and mark", false},
      {"Burroughs B4800", "lsh", "list search head-linked", true},
      {"Burroughs B4800", "lst", "list search", true},
      {"Burroughs B4800", "lnk", "list link", true},
      {"Burroughs B4800", "unl", "list unlink", true},
      {"Burroughs B4800", "ins", "list insert", false},
      {"Burroughs B4800", "del", "list delete", false},
      // VAX-11 — 12 character-string instructions (VAX-11 Architecture
      // Handbook).
      {"VAX-11", "movc3", "move characters", true},
      {"VAX-11", "movc5", "move characters with fill", true},
      {"VAX-11", "cmpc3", "compare characters", true},
      {"VAX-11", "cmpc5", "compare characters with fill", true},
      {"VAX-11", "locc", "locate character", true},
      {"VAX-11", "skpc", "skip character", true},
      {"VAX-11", "scanc", "scan characters", true},
      {"VAX-11", "spanc", "span characters", true},
      {"VAX-11", "matchc", "match characters (substring search)", true},
      {"VAX-11", "movtc", "move translated characters", true},
      {"VAX-11", "movtuc", "move translated until character", true},
      {"VAX-11", "crc", "cyclic redundancy check", true},
  };
  return Entries;
}

const std::vector<std::string> &descriptions::catalogMachines() {
  static const std::vector<std::string> Machines = {
      "Intel 8086",      "DG Eclipse", "Univac 1100",
      "IBM 370",         "Burroughs B4800", "VAX-11"};
  return Machines;
}

unsigned descriptions::catalogCount(const std::string &Machine) {
  unsigned N = 0;
  for (const CatalogEntry &E : catalog())
    if (E.Machine == Machine)
      ++N;
  return N;
}
