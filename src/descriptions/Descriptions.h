//===- Descriptions.h - Library of ISDL description sources ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction and language-operator descriptions analyzed in the
/// paper (§4, §5, Table 2). Machine descriptions follow the flowcharts of
/// the reference manuals in the Figure-3 style; operator descriptions
/// follow the Figure-2 style of the Rigel `index` operator. The paper's
/// own figures (2 and 3) are reproduced verbatim; the remaining
/// descriptions were reconstructed from the instruction-set manuals of
/// the 8086, VAX-11, and System/370, deliberately written in varied
/// styles (up-counters, inverted conditionals, pointer vs. base+index
/// access) because the paper stresses that EXTRA's descriptions "have
/// come from a variety of sources to eliminate bias caused by a single
/// style" (§5).
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_DESCRIPTIONS_DESCRIPTIONS_H
#define EXTRA_DESCRIPTIONS_DESCRIPTIONS_H

#include "isdl/AST.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace extra {
namespace descriptions {

/// A named description source in the library.
struct Entry {
  std::string Id;       ///< Lookup key, e.g. "i8086.scasb".
  std::string Machine;  ///< Machine or language, e.g. "Intel 8086".
  std::string Title;    ///< Human-readable summary.
  const char *Source;   ///< ISDL source text.
};

/// All library entries (instructions and operators).
const std::vector<Entry> &allEntries();

/// The ISDL source for \p Id; null when unknown.
const char *sourceFor(const std::string &Id);

/// Parses and validates the library description \p Id. Asserts that the
/// library text is well-formed (it is tested to be). Runs with fault
/// injection suppressed: the library is an invariant of the program, so
/// injected parser/validator faults must not fire inside it.
std::unique_ptr<isdl::Description> load(const std::string &Id);

/// Fault-typed variant of load() for the robustness layer: unknown ids,
/// parse failures, and validation failures come back as typed Faults
/// instead of tripping asserts. Unlike load(), this path *is* subject to
/// fault injection — it is the entry the discovery searcher uses, and the
/// one the containment machinery must survive.
Expected<std::unique_ptr<isdl::Description>>
loadChecked(const std::string &Id);

//===----------------------------------------------------------------------===//
// Table 1 catalog: exotic instruction statistics
//===----------------------------------------------------------------------===//

/// One exotic instruction of the Table-1 survey.
struct CatalogEntry {
  std::string Machine;
  std::string Mnemonic;
  std::string Role; ///< e.g. "string move", "list search".
  /// True when the mnemonic comes straight from the machine's reference
  /// manual; false for entries reconstructed to match the paper's tally
  /// (the 1982 survey's exact membership for the Univac 1100 and
  /// Burroughs B4800 is not recoverable from the paper).
  bool FromManual;
};

/// The full 67-instruction survey behind Table 1.
const std::vector<CatalogEntry> &catalog();

/// Machines in Table 1 order.
const std::vector<std::string> &catalogMachines();

/// Number of catalog instructions for \p Machine.
unsigned catalogCount(const std::string &Machine);

} // namespace descriptions
} // namespace extra

#endif // EXTRA_DESCRIPTIONS_DESCRIPTIONS_H
