//===- ReachingDefs.h - Reaching definitions over ISDL CFGs -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward reaching-definitions analysis. Constant propagation asks: "at
/// this use of `rf`, is the only reaching definition `rf <- 1`?" — the
/// mechanism behind the paper's flag-fixing simplification of scasb (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_DATAFLOW_REACHINGDEFS_H
#define EXTRA_DATAFLOW_REACHINGDEFS_H

#include "dataflow/CFG.h"

#include <cstdint>
#include <optional>

namespace extra {
namespace dataflow {

/// Per-node reaching definition sets. A "definition" is a node index that
/// writes the variable; input statements and call-site writes count as
/// definitions with unknown value.
class ReachingDefs {
public:
  explicit ReachingDefs(const CFG &G);

  /// Definition nodes of \p Var reaching the entry of \p Node.
  std::set<int> defsReaching(int Node, const std::string &Var) const;

  /// If every path to \p Node gives \p Var the same literal value — the
  /// unique reaching definition is `Var <- k` — returns k.
  std::optional<int64_t> constantAt(int Node, const std::string &Var) const;

  /// Convenience overload resolving the node for statement \p S (the use
  /// site) first.
  std::optional<int64_t> constantAt(const isdl::Stmt *S,
                                    const std::string &Var) const;

private:
  const CFG &G;
  // IN[node] = set of (var, def-node) pairs, stored per variable.
  std::vector<std::map<std::string, std::set<int>>> In;
};

} // namespace dataflow
} // namespace extra

#endif // EXTRA_DATAFLOW_REACHINGDEFS_H
