//===- ReachingDefs.cpp - Reaching definitions over ISDL CFGs ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "dataflow/ReachingDefs.h"

using namespace extra;
using namespace extra::dataflow;
using namespace extra::isdl;

ReachingDefs::ReachingDefs(const CFG &G) : G(G) {
  size_t N = G.nodes().size();
  In.resize(N);
  std::vector<std::map<std::string, std::set<int>>> Out(N);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < N; ++I) {
      const CFGNode &Node = G.nodes()[I];
      // IN = union of predecessors' OUT. Recompute from scratch; graphs
      // are tiny.
      std::map<std::string, std::set<int>> NewIn;
      for (size_t P = 0; P < N; ++P)
        for (int S : G.nodes()[P].Succs)
          if (static_cast<size_t>(S) == I)
            for (const auto &[Var, Defs] : Out[P])
              NewIn[Var].insert(Defs.begin(), Defs.end());

      std::map<std::string, std::set<int>> NewOut = NewIn;
      for (const std::string &W : Node.Writes) {
        NewOut[W].clear();
        NewOut[W].insert(static_cast<int>(I));
      }

      if (NewIn != In[I] || NewOut != Out[I]) {
        In[I] = std::move(NewIn);
        Out[I] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}

std::set<int> ReachingDefs::defsReaching(int Node,
                                         const std::string &Var) const {
  const auto &Map = In[static_cast<size_t>(Node)];
  auto It = Map.find(Var);
  return It == Map.end() ? std::set<int>() : It->second;
}

std::optional<int64_t> ReachingDefs::constantAt(int Node,
                                                const std::string &Var) const {
  std::set<int> Defs = defsReaching(Node, Var);
  if (Defs.size() != 1)
    return std::nullopt;
  const CFGNode &DefNode = G.nodes()[static_cast<size_t>(*Defs.begin())];
  const auto *A = dyn_cast<AssignStmt>(DefNode.S);
  if (!A || A->targetVarName() != Var)
    return std::nullopt;
  // Multiple writes at one node (a call with effects) disqualify it.
  if (DefNode.Writes.size() != 1)
    return std::nullopt;
  const auto *Lit = dyn_cast<IntLit>(A->getValue());
  if (!Lit)
    return std::nullopt;
  return Lit->getValue();
}

std::optional<int64_t> ReachingDefs::constantAt(const Stmt *S,
                                                const std::string &Var) const {
  int Id = G.nodeFor(S);
  if (Id < 0)
    return std::nullopt;
  return constantAt(Id, Var);
}
