//===- Liveness.h - Backward liveness over ISDL CFGs ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward may-liveness over a routine CFG. Transformations use
/// it to justify dead-variable elimination and code motion across loop
/// exits ("the decrement may move past this exit_when because the counter
/// is dead on the exit path").
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_DATAFLOW_LIVENESS_H
#define EXTRA_DATAFLOW_LIVENESS_H

#include "dataflow/CFG.h"

namespace extra {
namespace dataflow {

/// Per-node live-in/live-out sets for one routine.
class Liveness {
public:
  /// Runs the fixed point over \p G.
  explicit Liveness(const CFG &G);

  const std::set<std::string> &liveIn(int Node) const { return In[Node]; }
  const std::set<std::string> &liveOut(int Node) const { return Out[Node]; }

  /// Live-out of the node for statement \p S. Returns the empty set when
  /// the statement is not in the graph.
  const std::set<std::string> &liveAfter(const isdl::Stmt *S) const;

  /// Variables live along the *taken* (loop-leaving) edge of an
  /// exit_when: the live-in of the exit continuation.
  const std::set<std::string> &liveAtExitOf(const isdl::ExitWhenStmt *S) const;

  /// True if \p Name is dead immediately after \p S.
  bool deadAfter(const isdl::Stmt *S, const std::string &Name) const {
    return liveAfter(S).count(Name) == 0;
  }

private:
  const CFG &G;
  std::vector<std::set<std::string>> In, Out;
  std::set<std::string> Empty;
};

} // namespace dataflow
} // namespace extra

#endif // EXTRA_DATAFLOW_LIVENESS_H
