//===- CFG.h - Control-flow graphs for ISDL routines ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow graphs over routine bodies. Each primitive statement becomes a
/// node; `if` contributes a condition node with two successors; `repeat`
/// contributes a header node with a back edge; `exit_when` has a taken
/// (loop-exit) successor and a fall-through successor. Calls are expanded
/// through routine effect summaries, because routines read and write
/// description-global registers (e.g. `fetch()` advances `di`).
///
/// Memory is modeled as the pseudo-variable `@Mb` and the input/output
/// streams as `@io`, so ordinary set operations cover memory and I/O
/// dependences.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_DATAFLOW_CFG_H
#define EXTRA_DATAFLOW_CFG_H

#include "isdl/AST.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace extra {
namespace dataflow {

/// Name of the pseudo-variable standing for all of main memory.
inline const std::string MemoryVar = "@Mb";
/// Name of the pseudo-variable standing for the input/output streams.
inline const std::string IoVar = "@io";

/// What a routine reads and writes, transitively through calls.
struct EffectSummary {
  std::set<std::string> Reads;
  std::set<std::string> Writes;

  bool readsMemory() const { return Reads.count(MemoryVar) != 0; }
  bool writesMemory() const { return Writes.count(MemoryVar) != 0; }
};

/// Computes the transitive effect summary of \p R within \p D. Recursion
/// between routines (not expressible in well-formed descriptions) is cut
/// off conservatively.
EffectSummary summarizeRoutine(const isdl::Description &D,
                               const isdl::Routine &R);

/// Reads/writes of a single statement (nested statements included),
/// expanding calls via routine summaries.
EffectSummary summarizeStmt(const isdl::Description &D, const isdl::Stmt &S);

/// Reads of a single expression, expanding calls; call-site writes are
/// reported through \p WritesOut when provided.
void collectExprEffects(const isdl::Description &D, const isdl::Expr &E,
                        std::set<std::string> &ReadsOut,
                        std::set<std::string> *WritesOut);

/// True when two statements may be reordered: no write-read, read-write,
/// or write-write conflict on variables, memory, or the I/O streams, and
/// neither statement affects control flow (exit_when).
bool independent(const isdl::Description &D, const isdl::Stmt &A,
                 const isdl::Stmt &B);

/// One node of a routine flow graph.
struct CFGNode {
  enum class Role {
    Entry,      ///< Unique entry, no statement.
    Exit,       ///< Unique exit, no statement.
    Plain,      ///< Assign / input / output / assert / constrain.
    IfCond,     ///< Condition of an IfStmt.
    LoopHeader, ///< Head of a RepeatStmt (no reads or writes).
    ExitCond,   ///< Condition of an ExitWhenStmt.
  };

  Role R = Role::Plain;
  const isdl::Stmt *S = nullptr;
  std::set<std::string> Reads;
  std::set<std::string> Writes;
  std::vector<int> Succs;
  /// For ExitCond nodes: the successor taken when the condition holds
  /// (control leaves the loop). Also present in Succs.
  int TakenSucc = -1;
};

/// A flow graph for one routine body.
class CFG {
public:
  /// Builds the graph for \p R inside \p D.
  static CFG build(const isdl::Description &D, const isdl::Routine &R);

  const std::vector<CFGNode> &nodes() const { return Nodes; }
  int entry() const { return 0; }
  int exit() const { return 1; }

  /// Node index for a statement (the condition node for if/exit_when, the
  /// header node for repeat), or -1.
  int nodeFor(const isdl::Stmt *S) const;

  /// Predecessor lists, derived from successor edges.
  std::vector<std::vector<int>> predecessors() const;

private:
  int addNode(CFGNode N);
  int buildList(const isdl::Description &D, const isdl::StmtList &Stmts,
                int Next, int LoopExit);
  int buildStmt(const isdl::Description &D, const isdl::Stmt &S, int Next,
                int LoopExit);

  std::vector<CFGNode> Nodes;
  std::map<const isdl::Stmt *, int> Index;
};

} // namespace dataflow
} // namespace extra

#endif // EXTRA_DATAFLOW_CFG_H
