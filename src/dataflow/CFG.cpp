//===- CFG.cpp - Control-flow graphs for ISDL routines ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "dataflow/CFG.h"

#include "isdl/Traverse.h"

using namespace extra;
using namespace extra::dataflow;
using namespace extra::isdl;

//===----------------------------------------------------------------------===//
// Effect summaries
//===----------------------------------------------------------------------===//

namespace {

void summarizeRoutineInto(const Description &D, const Routine &R,
                          EffectSummary &Out,
                          std::set<std::string> &InProgress);

/// Collects reads (and call-induced writes) of \p E.
void exprEffects(const Description &D, const Expr &E,
                 std::set<std::string> &Reads, std::set<std::string> *Writes,
                 std::set<std::string> &InProgress) {
  forEachExpr(E, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub)) {
      Reads.insert(V->getName());
    } else if (isa<MemRef>(&Sub)) {
      Reads.insert(MemoryVar);
    } else if (const auto *C = dyn_cast<CallExpr>(&Sub)) {
      const Routine *Callee = D.findRoutine(C->getCallee());
      if (!Callee) {
        // Unknown callee: assume the worst.
        Reads.insert(MemoryVar);
        if (Writes)
          Writes->insert(MemoryVar);
        return;
      }
      EffectSummary Sum;
      summarizeRoutineInto(D, *Callee, Sum, InProgress);
      Reads.insert(Sum.Reads.begin(), Sum.Reads.end());
      if (Writes)
        Writes->insert(Sum.Writes.begin(), Sum.Writes.end());
      else
        Reads.insert(Sum.Writes.begin(), Sum.Writes.end());
    }
  });
}

void stmtEffects(const Description &D, const Stmt &S, EffectSummary &Out,
                 std::set<std::string> &InProgress) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    exprEffects(D, *A->getValue(), Out.Reads, &Out.Writes, InProgress);
    if (const auto *M = dyn_cast<MemRef>(A->getTarget())) {
      exprEffects(D, *M->getAddress(), Out.Reads, &Out.Writes, InProgress);
      Out.Writes.insert(MemoryVar);
    } else {
      Out.Writes.insert(cast<VarRef>(A->getTarget())->getName());
    }
    break;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    exprEffects(D, *I->getCond(), Out.Reads, &Out.Writes, InProgress);
    for (const StmtPtr &Sub : I->getThen())
      stmtEffects(D, *Sub, Out, InProgress);
    for (const StmtPtr &Sub : I->getElse())
      stmtEffects(D, *Sub, Out, InProgress);
    break;
  }
  case Stmt::Kind::Repeat:
    for (const StmtPtr &Sub : cast<RepeatStmt>(&S)->getBody())
      stmtEffects(D, *Sub, Out, InProgress);
    break;
  case Stmt::Kind::ExitWhen:
    exprEffects(D, *cast<ExitWhenStmt>(&S)->getCond(), Out.Reads, &Out.Writes,
                InProgress);
    break;
  case Stmt::Kind::Input:
    Out.Reads.insert(IoVar);
    Out.Writes.insert(IoVar);
    for (const std::string &T : cast<InputStmt>(&S)->getTargets())
      Out.Writes.insert(T);
    break;
  case Stmt::Kind::Output:
    Out.Reads.insert(IoVar);
    Out.Writes.insert(IoVar);
    for (const ExprPtr &V : cast<OutputStmt>(&S)->getValues())
      exprEffects(D, *V, Out.Reads, &Out.Writes, InProgress);
    break;
  case Stmt::Kind::Constrain:
  case Stmt::Kind::Assert:
    // Annotations do not read or write run-time state.
    break;
  }
}

void summarizeRoutineInto(const Description &D, const Routine &R,
                          EffectSummary &Out,
                          std::set<std::string> &InProgress) {
  if (!InProgress.insert(R.Name).second) {
    // Recursion guard: assume the worst for a cyclic call.
    Out.Reads.insert(MemoryVar);
    Out.Writes.insert(MemoryVar);
    return;
  }
  for (const StmtPtr &S : R.Body)
    stmtEffects(D, *S, Out, InProgress);
  InProgress.erase(R.Name);
}

} // namespace

EffectSummary dataflow::summarizeRoutine(const Description &D,
                                         const Routine &R) {
  EffectSummary Out;
  std::set<std::string> InProgress;
  summarizeRoutineInto(D, R, Out, InProgress);
  return Out;
}

EffectSummary dataflow::summarizeStmt(const Description &D, const Stmt &S) {
  EffectSummary Out;
  std::set<std::string> InProgress;
  stmtEffects(D, S, Out, InProgress);
  return Out;
}

void dataflow::collectExprEffects(const Description &D, const Expr &E,
                                  std::set<std::string> &ReadsOut,
                                  std::set<std::string> *WritesOut) {
  std::set<std::string> InProgress;
  exprEffects(D, E, ReadsOut, WritesOut, InProgress);
}

static bool intersects(const std::set<std::string> &A,
                       const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (B.count(X))
      return true;
  return false;
}

bool dataflow::independent(const Description &D, const Stmt &A,
                           const Stmt &B) {
  bool ControlA = false, ControlB = false;
  forEachStmt(A, [&](const Stmt &S) {
    if (isa<ExitWhenStmt>(&S))
      ControlA = true;
  });
  forEachStmt(B, [&](const Stmt &S) {
    if (isa<ExitWhenStmt>(&S))
      ControlB = true;
  });
  if (ControlA || ControlB)
    return false;

  EffectSummary EA = summarizeStmt(D, A);
  EffectSummary EB = summarizeStmt(D, B);
  return !intersects(EA.Writes, EB.Reads) && !intersects(EB.Writes, EA.Reads) &&
         !intersects(EA.Writes, EB.Writes);
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

int CFG::addNode(CFGNode N) {
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size()) - 1;
}

int CFG::buildList(const Description &D, const StmtList &Stmts, int Next,
                   int LoopExit) {
  int Entry = Next;
  for (size_t I = Stmts.size(); I-- > 0;)
    Entry = buildStmt(D, *Stmts[I], Entry, LoopExit);
  return Entry;
}

int CFG::buildStmt(const Description &D, const Stmt &S, int Next,
                   int LoopExit) {
  switch (S.getKind()) {
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(&S);
    CFGNode Cond;
    Cond.R = CFGNode::Role::IfCond;
    Cond.S = &S;
    std::set<std::string> InProgress;
    collectExprEffects(D, *If->getCond(), Cond.Reads, &Cond.Writes);
    int CondId = addNode(std::move(Cond));
    Index[&S] = CondId;
    int ThenEntry = buildList(D, If->getThen(), Next, LoopExit);
    int ElseEntry = buildList(D, If->getElse(), Next, LoopExit);
    Nodes[CondId].Succs = {ThenEntry, ElseEntry};
    return CondId;
  }
  case Stmt::Kind::Repeat: {
    const auto *Rep = cast<RepeatStmt>(&S);
    CFGNode Header;
    Header.R = CFGNode::Role::LoopHeader;
    Header.S = &S;
    int HeaderId = addNode(std::move(Header));
    Index[&S] = HeaderId;
    int BodyEntry = buildList(D, Rep->getBody(), HeaderId, Next);
    Nodes[HeaderId].Succs = {BodyEntry};
    return HeaderId;
  }
  case Stmt::Kind::ExitWhen: {
    CFGNode N;
    N.R = CFGNode::Role::ExitCond;
    N.S = &S;
    collectExprEffects(D, *cast<ExitWhenStmt>(&S)->getCond(), N.Reads,
                       &N.Writes);
    // A malformed exit_when outside a loop falls through only.
    int Taken = LoopExit >= 0 ? LoopExit : Next;
    N.TakenSucc = Taken;
    N.Succs = {Taken, Next};
    int Id = addNode(std::move(N));
    Index[&S] = Id;
    return Id;
  }
  default: {
    CFGNode N;
    N.R = CFGNode::Role::Plain;
    N.S = &S;
    EffectSummary Sum = summarizeStmt(D, S);
    N.Reads = std::move(Sum.Reads);
    N.Writes = std::move(Sum.Writes);
    N.Succs = {Next};
    int Id = addNode(std::move(N));
    Index[&S] = Id;
    return Id;
  }
  }
}

CFG CFG::build(const Description &D, const Routine &R) {
  CFG G;
  CFGNode Entry;
  Entry.R = CFGNode::Role::Entry;
  G.addNode(std::move(Entry)); // node 0
  CFGNode Exit;
  Exit.R = CFGNode::Role::Exit;
  // Final memory is observable, so the exit keeps @Mb live; liveness then
  // never lets a memory write be treated as dead.
  Exit.Reads.insert(MemoryVar);
  G.addNode(std::move(Exit)); // node 1
  int First = G.buildList(D, R.Body, G.exit(), /*LoopExit=*/-1);
  G.Nodes[G.entry()].Succs = {First};
  return G;
}

int CFG::nodeFor(const Stmt *S) const {
  auto It = Index.find(S);
  return It == Index.end() ? -1 : It->second;
}

std::vector<std::vector<int>> CFG::predecessors() const {
  std::vector<std::vector<int>> Preds(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I)
    for (int S : Nodes[I].Succs)
      Preds[static_cast<size_t>(S)].push_back(static_cast<int>(I));
  return Preds;
}
