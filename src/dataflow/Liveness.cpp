//===- Liveness.cpp - Backward liveness over ISDL CFGs ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Liveness.h"

using namespace extra;
using namespace extra::dataflow;
using namespace extra::isdl;

Liveness::Liveness(const CFG &G) : G(G) {
  size_t N = G.nodes().size();
  In.resize(N);
  Out.resize(N);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse node order; construction order is roughly
    // reverse-topological within straight-line stretches, so this
    // converges quickly for our small graphs.
    for (size_t I = N; I-- > 0;) {
      const CFGNode &Node = G.nodes()[I];
      std::set<std::string> NewOut;
      for (int S : Node.Succs)
        NewOut.insert(In[static_cast<size_t>(S)].begin(),
                      In[static_cast<size_t>(S)].end());
      std::set<std::string> NewIn = NewOut;
      // IN = reads ∪ (OUT - writes). A node both reading and writing a
      // name (e.g. `x <- x + 1`) keeps it live.
      for (const std::string &W : Node.Writes)
        NewIn.erase(W);
      NewIn.insert(Node.Reads.begin(), Node.Reads.end());
      if (NewIn != In[I] || NewOut != Out[I]) {
        In[I] = std::move(NewIn);
        Out[I] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}

const std::set<std::string> &Liveness::liveAfter(const Stmt *S) const {
  int Id = G.nodeFor(S);
  if (Id < 0)
    return Empty;
  return Out[static_cast<size_t>(Id)];
}

const std::set<std::string> &
Liveness::liveAtExitOf(const ExitWhenStmt *S) const {
  int Id = G.nodeFor(S);
  if (Id < 0)
    return Empty;
  const CFGNode &Node = G.nodes()[static_cast<size_t>(Id)];
  if (Node.TakenSucc < 0)
    return Empty;
  return In[static_cast<size_t>(Node.TakenSucc)];
}
