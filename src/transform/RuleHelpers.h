//===- RuleHelpers.h - Builders for pattern-rewrite rules -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private helpers shared by the transformation category files. Most
/// local rules are (match, rewrite) pairs over expression or statement
/// occurrences within one routine; these builders provide the shared
/// occurrence-addressing plumbing:
///
///   * with no `occurrence` argument a rule rewrites every matching site
///     in the routine (one scripted step, as the paper's bulk constant
///     folding suggests);
///   * `occurrence=N` (0-based, in pre-order) rewrites only the Nth match,
///     giving scripts cursor-level precision.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_TRANSFORM_RULEHELPERS_H
#define EXTRA_TRANSFORM_RULEHELPERS_H

#include "transform/Transform.h"

#include "isdl/Traverse.h"

#include <functional>

namespace extra {
namespace transform {
namespace detail {

/// Match predicate over an expression in context.
using ExprMatch =
    std::function<bool(const isdl::Expr &, const isdl::Description &)>;
/// In-place rewrite of a matched expression slot.
using ExprRewrite =
    std::function<void(isdl::ExprPtr &, const isdl::Description &)>;

/// A local rule rewriting expression occurrences within a routine.
class ExprRule : public Transformation {
public:
  ExprRule(std::string Name, std::string Description, ExprMatch Match,
           ExprRewrite Rewrite)
      : Transformation(std::move(Name), Category::Local,
                       std::move(Description)),
        Match(std::move(Match)), Rewrite(std::move(Rewrite)) {}

  ApplyResult apply(TransformContext &Ctx) const override;

private:
  ExprMatch Match;
  ExprRewrite Rewrite;
};

/// Match predicate over a statement in context.
using StmtMatch =
    std::function<bool(const isdl::Stmt &, const isdl::Description &)>;
/// Rewrites the matched statement; may replace it with several statements
/// (returned list), or an empty list to delete it.
using StmtRewrite = std::function<isdl::StmtList(isdl::StmtPtr,
                                                 const isdl::Description &)>;

/// A rule rewriting statement occurrences within a routine.
class StmtRule : public Transformation {
public:
  StmtRule(std::string Name, Category Cat, std::string Description,
           StmtMatch Match, StmtRewrite Rewrite)
      : Transformation(std::move(Name), Cat, std::move(Description)),
        Match(std::move(Match)), Rewrite(std::move(Rewrite)) {}

  ApplyResult apply(TransformContext &Ctx) const override;

private:
  StmtMatch Match;
  StmtRewrite Rewrite;
};

/// A rule implemented by a free function over the context.
class LambdaRule : public Transformation {
public:
  using Fn = std::function<ApplyResult(TransformContext &)>;
  LambdaRule(std::string Name, Category Cat, std::string Description, Fn Apply)
      : Transformation(std::move(Name), Cat, std::move(Description)),
        Apply(std::move(Apply)) {}

  ApplyResult apply(TransformContext &Ctx) const override { return Apply(Ctx); }

private:
  Fn Apply;
};

/// True when evaluating \p E twice (or not at all) is unobservable: no
/// calls and no memory reads.
inline bool isPure(const isdl::Expr &E) { return !isdl::hasCallOrMem(E); }

/// The literal value of \p E if it is an IntLit or CharLit.
std::optional<int64_t> litValue(const isdl::Expr &E);

/// Parses the rule-argument statement code with a local diagnostic
/// engine; empty list + Reason on parse failure.
isdl::StmtList parseRuleCode(const std::string &Code, std::string &Reason);

} // namespace detail
} // namespace transform
} // namespace extra

#endif // EXTRA_TRANSFORM_RULEHELPERS_H
