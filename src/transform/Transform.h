//===- Transform.h - Source-to-source transformation framework --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation framework at the heart of EXTRA (§3, §5). A
/// Transformation rewrites a description in place after checking its
/// syntactic and data-flow applicability conditions. The library mirrors
/// the paper's seven categories:
///
///   local, code motion, loop, global, routine structuring,
///   constraint/assertion, and augment producing.
///
/// In the 1982 system the *user* chose each transformation with a
/// structure editor and EXTRA verified and applied it. Here a Step names
/// the rule, the routine to work in, and rule-specific arguments (the
/// role of the cursor); the engine verifies and applies exactly as the
/// paper describes, and records a replayable log.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_TRANSFORM_TRANSFORM_H
#define EXTRA_TRANSFORM_TRANSFORM_H

#include "constraint/Constraint.h"
#include "isdl/AST.h"
#include "isdl/Intern.h"
#include "isdl/Traverse.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace extra {
namespace transform {

/// The paper's seven transformation categories (§5).
enum class Category {
  Local,
  CodeMotion,
  Loop,
  Global,
  RoutineStructuring,
  ConstraintOp,
  Augment,
};

/// Spelled name of a category, for reports.
const char *categoryName(Category C);

/// How a rule relates the semantics of the description before and after.
enum class SemanticsEffect {
  /// Observationally identical on every input.
  Preserving,
  /// The input signature or input domain changed (operand fixed to a
  /// value, offset-encoded, or range-restricted); an adapter maps new
  /// inputs back to old ones so a differential check still applies.
  InputRefining,
  /// Deliberately changes observables (prologue/epilogue augments). The
  /// end-to-end check against the language operator covers these.
  Augmenting,
};

/// Maps an input vector of the transformed description to the equivalent
/// input vector of the original (for InputRefining steps).
using InputAdapter =
    std::function<std::vector<int64_t>(const std::vector<int64_t> &)>;

/// Everything a rule may touch while applying.
struct TransformContext {
  isdl::Description &Desc;
  /// Routine to operate in; empty selects the entry routine. A few global
  /// rules ignore it and work on the whole description.
  std::string RoutineName;
  /// Rule-specific arguments (operand names, values, code text, ...).
  std::map<std::string, std::string> Args;
  /// Constraints uncovered so far; rules append (may be null).
  constraint::ConstraintSet *Constraints = nullptr;

  /// Resolves RoutineName (entry when empty); null + Reason when absent.
  isdl::Routine *routine(std::string &Reason) const;

  /// Required string argument; empty + Reason when missing.
  std::string arg(const std::string &Key, std::string &Reason) const;
  /// Optional argument with default.
  std::string argOr(const std::string &Key, std::string Default) const;
  /// Required integer argument.
  std::optional<int64_t> intArg(const std::string &Key,
                                std::string &Reason) const;
};

/// Outcome of one application attempt.
struct ApplyResult {
  bool Applied = false;
  /// Why the rule refused, when !Applied.
  std::string Reason;
  /// Typed classification of the failure: RuleApplication when a rule
  /// faulted (threw) rather than refused, None for ordinary refusals and
  /// successes. Ordinary refusals are expected search traffic, not
  /// faults.
  FaultCategory Category = FaultCategory::None;
  SemanticsEffect Effect = SemanticsEffect::Preserving;
  /// For InputRefining steps: adapter from new inputs to old inputs.
  InputAdapter Adapter;
  /// Human-readable note about what was done.
  std::string Note;

  static ApplyResult failure(std::string Reason) {
    ApplyResult R;
    R.Reason = std::move(Reason);
    return R;
  }
  static ApplyResult success(SemanticsEffect Effect, std::string Note = "") {
    ApplyResult R;
    R.Applied = true;
    R.Effect = Effect;
    R.Note = std::move(Note);
    return R;
  }
};

/// Base class of all transformations.
class Transformation {
public:
  Transformation(std::string Name, Category C, std::string Description)
      : Name(std::move(Name)), Cat(C), Desc(std::move(Description)) {}
  virtual ~Transformation();

  const std::string &name() const { return Name; }
  Category category() const { return Cat; }
  const std::string &description() const { return Desc; }

  /// Verifies applicability and applies, mutating the description.
  ///
  /// Refusal-purity contract: a rule that returns a failure must leave
  /// `Ctx.Desc` exactly as it found it — all applicability checks run
  /// before the first mutation (check-then-mutate). The engine's scratch
  /// reuse depends on this: a refused attempt keeps the working copy for
  /// the next candidate instead of re-cloning, so a rule that mutated
  /// before refusing would leak the partial rewrite into later attempts.
  /// Throwing mid-rewrite is fine (the engine discards the working copy
  /// on any exception); constraint-set additions before a refusal are
  /// also fine (the engine never rolled those back). Debug builds assert
  /// the contract on every refusal; tests/intern_test.cpp sweeps it over
  /// the corpus.
  virtual ApplyResult apply(TransformContext &Ctx) const = 0;

private:
  std::string Name;
  Category Cat;
  std::string Desc;
};

/// The transformation library: all registered rules by name.
class Registry {
public:
  /// The process-wide library, populated on first use with the full
  /// 75-rule catalog.
  static const Registry &instance();

  const Transformation *lookup(const std::string &Name) const;
  std::vector<const Transformation *> all() const;
  size_t size() const { return ByName.size(); }
  /// Rules in one category, in registration order.
  std::vector<const Transformation *> inCategory(Category C) const;

  /// Adds a rule (takes ownership). Asserts on duplicate names.
  void add(std::unique_ptr<Transformation> T);

private:
  Registry() = default;
  std::map<std::string, std::unique_ptr<Transformation>> ByName;
  std::vector<const Transformation *> Order;
};

// Registration hooks, one per category source file.
void registerLocalTransforms(Registry &R);
void registerCodeMotionTransforms(Registry &R);
void registerLoopTransforms(Registry &R);
void registerGlobalTransforms(Registry &R);
void registerRoutineTransforms(Registry &R);
void registerConstraintTransforms(Registry &R);
void registerAugmentTransforms(Registry &R);

/// One scripted application: rule name, routine, arguments.
struct Step {
  std::string Rule;
  std::string Routine;
  std::map<std::string, std::string> Args;

  std::string str() const;
};

/// A replayable derivation (the recorded role of the 1982 user session).
using Script = std::vector<Step>;

/// Hook invoked after every successful step; used by the analysis driver
/// to differentially test semantic preservation.
struct StepObservation {
  const Step &S;
  const isdl::Description &Before;
  const isdl::Description &After;
  SemanticsEffect Effect;
  const InputAdapter &Adapter; ///< Valid only for InputRefining steps.
};
using StepVerifier = std::function<bool(const StepObservation &,
                                        std::string &Error)>;

/// Applies scripted steps to a working copy of a description, keeping a
/// log and the constraint set. This is the EXTRA session object.
///
/// The session state is a copy-on-write handle to an immutable description
/// version. apply() clones the current version once into a private working
/// copy, lets the rule mutate that, and on success publishes it as the new
/// current version while the log keeps the *handle* to the old one — so a
/// refusal discards the working copy with nothing to restore, undo() is a
/// refcount swap instead of a deep copy, and an Engine constructed from a
/// shared DescHandle (the searcher's per-candidate scratch engine) costs no
/// clone at all until a rule actually applies.
class Engine {
public:
  explicit Engine(isdl::Description Initial);
  /// Shares \p Initial with the caller: no copy is made until a step
  /// applies (the searcher constructs one scratch engine per candidate).
  explicit Engine(isdl::DescHandle Initial);

  /// Verifies and applies one step. On failure the description is left
  /// unchanged and the failure reason is returned in the result.
  ApplyResult apply(const Step &S);

  /// Applies a whole script, stopping at the first failure. Returns the
  /// number of successfully applied steps.
  size_t applyScript(const Script &S, std::string *FirstError = nullptr);

  const isdl::Description &current() const { return Cur.get(); }
  /// The current version as a shareable handle (no copy).
  const isdl::DescHandle &currentHandle() const { return Cur; }
  isdl::Description takeDescription() { return std::move(Cur).take(); }
  const constraint::ConstraintSet &constraints() const { return Constraints; }
  size_t stepsApplied() const { return Log.size(); }

  struct LogEntry {
    Step S;
    SemanticsEffect Effect;
    std::string Note;
    /// Snapshot for undo: a handle to the pre-step version (shared, not
    /// copied) and the constraint-set size before the step.
    isdl::DescHandle Before;
    size_t ConstraintsBefore = 0;
  };
  const std::vector<LogEntry> &log() const { return Log; }

  /// Reverts the most recent step (description and recorded
  /// constraints), like backing out of an edit in the 1982 structure
  /// editor. Returns false when nothing has been applied.
  bool undo();

  /// Installs a per-step verifier (differential semantic check).
  void setVerifier(StepVerifier V) { Verifier = std::move(V); }

  /// Scratch reuse (default on): apply() keeps one thread-local working
  /// copy alive across attempts, so a refused candidate costs a rule
  /// match but no clone — the next attempt on the same version reuses
  /// the buffer under the rules' refusal-purity contract (see
  /// Transformation::apply). The searcher's legacy A/B mode turns this
  /// off to reproduce the pre-COW per-attempt clone cost.
  void setScratchReuse(bool On) { ScratchReuse = On; }

  /// Observability hooks, both optional and non-owning. With metrics
  /// installed, apply() records per-rule apply/refuse counters and the
  /// apply latency histogram; with a trace sink, every attempt emits a
  /// "rule-apply" event under \p Span. Disabled hooks cost one branch.
  void setMetrics(obs::Metrics *M) { Met = M; }
  void setTrace(obs::TraceSink *T, uint64_t Span = 0) {
    Trace = T;
    TraceSpan = Span;
  }

private:
  isdl::DescHandle Cur;
  constraint::ConstraintSet Constraints;
  std::vector<LogEntry> Log;
  bool ScratchReuse = true;
  StepVerifier Verifier;
  obs::Metrics *Met = nullptr;
  obs::TraceSink *Trace = nullptr;
  uint64_t TraceSpan = 0;
};

//===----------------------------------------------------------------------===//
// Shared rule helpers (used across category implementation files)
//===----------------------------------------------------------------------===//

namespace detail {

/// True if \p E is boolean-valued: a relational or logical operator, a
/// `not`, a literal 0/1, or a reference to a declared 1-bit flag.
bool isBooleanExpr(const isdl::Description &D, const isdl::Expr &E);

/// Finds the unique RepeatStmt in \p R at any nesting depth; null + Reason
/// when absent or ambiguous.
isdl::RepeatStmt *findUniqueLoop(isdl::Routine &R, std::string &Reason);

/// Finds the unique assignment to variable \p Var in \p R; invalid locus +
/// Reason when absent or ambiguous.
isdl::StmtLocus findUniqueAssign(isdl::Routine &R, const std::string &Var,
                                 std::string &Reason);

/// Counts writes of \p Var across the whole description (assignment
/// targets and input lists).
unsigned countWrites(const isdl::Description &D, const std::string &Var);

/// Counts read references of \p Var across the whole description. Plain
/// assignment targets and input lists are writes, not reads; a memory
/// target's address expression is a read. `assert` predicates count;
/// `constrain` annotations do not.
unsigned countReads(const isdl::Description &D, const std::string &Var);

/// True when \p Var or routine \p Var is referenced anywhere.
bool isReferenced(const isdl::Description &D, const std::string &Name);

} // namespace detail

} // namespace transform
} // namespace extra

#endif // EXTRA_TRANSFORM_TRANSFORM_H
