//===- AugmentTransforms.cpp - Prologue/epilogue augments -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Augment producing transformations that produce prologue and epilogue
/// augments to the descriptions. The user specifies the augment, and the
/// system guarantees the interface of the augment code to the exotic
/// instruction" (§5). The augment code arrives as ISDL statement text in
/// the rule arguments; the rules parse it, check that it only references
/// declared names (the guaranteed interface), and splice it in. Augments
/// deliberately change what the instruction computes — the driver's
/// end-to-end check against the language operator validates the result.
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "isdl/Traverse.h"
#include "isdl/Validate.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;

namespace {

/// Interface guarantee: every name referenced by augment code must be a
/// declared register/variable or routine of the description.
bool checkInterface(const Description &D, const StmtList &Code,
                    std::string &Reason) {
  bool Ok = true;
  for (const StmtPtr &S : Code) {
    forEachExpr(*S, [&](const Expr &E) {
      if (const auto *V = dyn_cast<VarRef>(&E)) {
        if (!D.findDecl(V->getName())) {
          Reason = "augment references undeclared name '" + V->getName() +
                   "' (allocate-temp first)";
          Ok = false;
        }
      } else if (const auto *C = dyn_cast<CallExpr>(&E)) {
        if (!D.findRoutine(C->getCallee())) {
          Reason = "augment calls unknown routine '" + C->getCallee() + "'";
          Ok = false;
        }
      }
    });
    forEachStmt(*S, [&](const Stmt &Sub) {
      if (const auto *A = dyn_cast<AssignStmt>(&Sub)) {
        std::string T = A->targetVarName();
        if (!T.empty() && !D.findDecl(T)) {
          Reason = "augment assigns undeclared name '" + T + "'";
          Ok = false;
        }
      }
    });
  }
  return Ok;
}

ApplyResult addCode(TransformContext &Ctx, bool Prologue) {
  std::string Reason;
  Routine *Entry = Ctx.routine(Reason);
  if (!Entry)
    return ApplyResult::failure(Reason);
  std::string Code = Ctx.arg("code", Reason);
  if (Code.empty())
    return ApplyResult::failure(Reason);
  StmtList Parsed = parseRuleCode(Code, Reason);
  if (Parsed.empty())
    return ApplyResult::failure(Reason);
  if (!checkInterface(Ctx.Desc, Parsed, Reason))
    return ApplyResult::failure(Reason);

  if (Prologue) {
    // After the input statement (operands must be loaded first), or at
    // the very front when the routine has none.
    size_t At = 0;
    for (size_t I = 0; I < Entry->Body.size(); ++I)
      if (isa<InputStmt>(Entry->Body[I].get()))
        At = I + 1;
    for (size_t K = 0; K < Parsed.size(); ++K)
      Entry->Body.insert(Entry->Body.begin() + static_cast<long>(At + K),
                         std::move(Parsed[K]));
  } else {
    for (StmtPtr &S : Parsed)
      Entry->Body.push_back(std::move(S));
  }
  return ApplyResult::success(SemanticsEffect::Augmenting,
                              Prologue ? "prologue augment added"
                                       : "epilogue augment added");
}

} // namespace

void transform::registerAugmentTransforms(Registry &R) {
  R.add(std::make_unique<LambdaRule>(
      "allocate-temp", Category::Augment,
      "declare a fresh temporary for augment code (args: name, "
      "type=integer|character|flag|bits:<hi>:<lo>, section)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string Name = Ctx.arg("name", Reason);
        if (Name.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        if (D.findDecl(Name) || D.findRoutine(Name) ||
            isReferenced(D, Name))
          return ApplyResult::failure("'" + Name + "' is not fresh");

        std::string TypeText = Ctx.argOr("type", "integer");
        TypeRef Type;
        if (TypeText == "integer")
          Type = TypeRef::integer();
        else if (TypeText == "character")
          Type = TypeRef::character();
        else if (TypeText == "flag")
          Type = TypeRef::flag();
        else if (TypeText.rfind("bits:", 0) == 0) {
          int Hi = 0, Lo = 0;
          if (sscanf(TypeText.c_str(), "bits:%d:%d", &Hi, &Lo) != 2 ||
              Hi < Lo)
            return ApplyResult::failure("bad bits type '" + TypeText + "'");
          Type = TypeRef::bits(Hi, Lo);
        } else {
          return ApplyResult::failure("unknown type '" + TypeText + "'");
        }

        std::string SectionName = Ctx.argOr("section", "STATE");
        Decl Dl;
        Dl.Name = Name;
        Dl.Type = Type;
        Dl.Comment = "temporary allocated for augment code";
        D.addDecl(SectionName, std::move(Dl));
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "allocated temporary '" + Name + "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "add-prologue", Category::Augment,
      "insert augment statements after the entry input statement "
      "(args: code — ISDL statement text)",
      [](TransformContext &Ctx) { return addCode(Ctx, /*Prologue=*/true); }));

  R.add(std::make_unique<LambdaRule>(
      "add-epilogue", Category::Augment,
      "append augment statements at the end of the entry routine "
      "(args: code — ISDL statement text)",
      [](TransformContext &Ctx) { return addCode(Ctx, /*Prologue=*/false); }));

  R.add(std::make_unique<LambdaRule>(
      "replace-output", Category::Augment,
      "delete the instruction's raw machine-state outputs (wherever they "
      "appear) and append the operator-level epilogue; code=none deletes "
      "only (for operators without results, like string assignment)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *Entry = Ctx.routine(Reason);
        if (!Entry)
          return ApplyResult::failure(Reason);
        std::string Code = Ctx.arg("code", Reason);
        if (Code.empty())
          return ApplyResult::failure(Reason);

        StmtList Parsed;
        if (Code != "none") {
          Parsed = parseRuleCode(Code, Reason);
          if (Parsed.empty())
            return ApplyResult::failure(Reason);
          if (!checkInterface(Ctx.Desc, Parsed, Reason))
            return ApplyResult::failure(Reason);
          // The replacement must produce at least one output somewhere.
          bool HasOutput = false;
          for (const StmtPtr &S : Parsed)
            forEachStmt(*S, [&](const Stmt &Sub) {
              if (isa<OutputStmt>(&Sub))
                HasOutput = true;
            });
          if (!HasOutput)
            return ApplyResult::failure(
                "replacement code contains no output statement");
        }

        // Remove outputs at any nesting depth (locc reports its results
        // from inside a conditional); empty-if-elim can clean any shells
        // left behind.
        unsigned Removed = 0;
        std::function<void(StmtList &)> Strip = [&](StmtList &List) {
          for (size_t I = 0; I < List.size();) {
            Stmt *S = List[I].get();
            if (isa<OutputStmt>(S)) {
              List.erase(List.begin() + static_cast<long>(I));
              ++Removed;
              continue;
            }
            if (auto *If = dyn_cast<IfStmt>(S)) {
              Strip(If->getThen());
              Strip(If->getElse());
            } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
              Strip(Rep->getBody());
            }
            ++I;
          }
        };
        Strip(Entry->Body);
        if (Removed == 0)
          return ApplyResult::failure("entry routine has no output "
                                      "statement to replace");
        for (StmtPtr &S : Parsed)
          Entry->Body.push_back(std::move(S));
        return ApplyResult::success(SemanticsEffect::Augmenting,
                                    Code == "none"
                                        ? "deleted machine outputs"
                                        : "replaced machine outputs with "
                                          "operator-level epilogue");
      }));
}
