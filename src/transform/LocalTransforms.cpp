//===- LocalTransforms.cpp - Local rewrite rules ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "local transformations which manipulate the descriptions based on
/// local properties ... arithmetic and logical identities" (§5), plus the
/// paper's one pictured rule, the reverse-conditional of Figure 1.
///
/// Purity conditions: a rewrite may only delete or duplicate an
/// expression when it has no calls and no memory reads (`isPure`).
/// Boolean conditions: logical identities that change how many times a
/// value is tested (e.g. `not not x -> x`) require the operand to be
/// boolean-valued (flag, relational, or logical expression).
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "isdl/Equiv.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;

namespace {

bool isLit(const Expr &E, int64_t V) {
  auto K = litValue(E);
  return K && *K == V;
}

const BinaryExpr *asBinary(const Expr &E, BinaryOp Op) {
  const auto *B = dyn_cast<BinaryExpr>(&E);
  return B && B->getOp() == Op ? B : nullptr;
}

/// Registers a fold of `k1 op k2` into its value.
void addConstFold(Registry &R, const char *Name, BinaryOp Op,
                  const char *Doc) {
  R.add(std::make_unique<ExprRule>(
      Name, Doc,
      [Op](const Expr &E, const Description &) {
        const auto *B = asBinary(E, Op);
        if (!B || !litValue(*B->getLHS()) || !litValue(*B->getRHS()))
          return false;
        if (Op == BinaryOp::Div && *litValue(*B->getRHS()) == 0)
          return false;
        return true;
      },
      [Op](ExprPtr &Slot, const Description &) {
        const auto *B = cast<BinaryExpr>(Slot.get());
        int64_t L = *litValue(*B->getLHS());
        int64_t Rv = *litValue(*B->getRHS());
        int64_t V = 0;
        switch (Op) {
        case BinaryOp::Add:
          V = L + Rv;
          break;
        case BinaryOp::Sub:
          V = L - Rv;
          break;
        case BinaryOp::Mul:
          V = L * Rv;
          break;
        case BinaryOp::Div:
          V = L / Rv;
          break;
        case BinaryOp::And:
          V = (L != 0 && Rv != 0) ? 1 : 0;
          break;
        case BinaryOp::Or:
          V = (L != 0 || Rv != 0) ? 1 : 0;
          break;
        case BinaryOp::Eq:
          V = L == Rv;
          break;
        case BinaryOp::Ne:
          V = L != Rv;
          break;
        case BinaryOp::Lt:
          V = L < Rv;
          break;
        case BinaryOp::Le:
          V = L <= Rv;
          break;
        case BinaryOp::Gt:
          V = L > Rv;
          break;
        case BinaryOp::Ge:
          V = L >= Rv;
          break;
        }
        Slot = intLit(V);
      }));
}


/// `swap-commutative`: a op b -> b op a. An optional `op` argument
/// restricts matching to one operator spelling ("+", "*", "and", "or"),
/// so occurrence addressing counts only that operator's sites.
class CommutativeSwapRule : public Transformation {
public:
  CommutativeSwapRule()
      : Transformation("swap-commutative", Category::Local,
                       "a op b -> b op a for +, *, and, or (optional arg "
                       "op restricts the operator)") {}

  ApplyResult apply(TransformContext &Ctx) const override {
    std::string Reason;
    Routine *R = Ctx.routine(Reason);
    if (!R)
      return ApplyResult::failure(Reason);
    std::string OpFilter = Ctx.argOr("op", "");
    long Wanted = -1;
    if (Ctx.Args.count("occurrence")) {
      auto N = Ctx.intArg("occurrence", Reason);
      if (!N)
        return ApplyResult::failure(Reason);
      Wanted = static_cast<long>(*N);
    }
    long Seen = 0;
    unsigned Rewritten = 0;
    for (StmtPtr &S : R->Body)
      forEachExprSlot(*S, [&](ExprPtr &Slot) {
        auto *B = dyn_cast<BinaryExpr>(Slot.get());
        if (!B)
          return;
        switch (B->getOp()) {
        case BinaryOp::Add:
        case BinaryOp::Mul:
        case BinaryOp::And:
        case BinaryOp::Or:
          break;
        default:
          return;
        }
        if (!OpFilter.empty() && OpFilter != spelling(B->getOp()))
          return;
        // `and`/`or` evaluate both operands (no short circuit); purity
        // keeps call order stable for the differential check.
        if (!detail::isPure(*B->getLHS()) || !detail::isPure(*B->getRHS()))
          return;
        long Occurrence = Seen++;
        if (Wanted >= 0 && Occurrence != Wanted)
          return;
        ExprPtr L = B->takeLHS();
        ExprPtr Rv = B->takeRHS();
        B->setLHS(std::move(Rv));
        B->setRHS(std::move(L));
        ++Rewritten;
      });
    if (Rewritten == 0)
      return ApplyResult::failure("no matching commutative operator");
    return ApplyResult::success(SemanticsEffect::Preserving,
                                std::to_string(Rewritten) +
                                    " site(s) swapped");
  }
};

} // namespace

void transform::registerLocalTransforms(Registry &R) {
  //--- Constant folding -----------------------------------------------------
  addConstFold(R, "fold-add", BinaryOp::Add, "fold k1 + k2 to its value");
  addConstFold(R, "fold-sub", BinaryOp::Sub, "fold k1 - k2 to its value");
  addConstFold(R, "fold-mul", BinaryOp::Mul, "fold k1 * k2 to its value");
  addConstFold(R, "fold-div", BinaryOp::Div,
               "fold k1 / k2 to its value (k2 nonzero)");
  addConstFold(R, "fold-and", BinaryOp::And, "fold k1 and k2 to 0 or 1");
  addConstFold(R, "fold-or", BinaryOp::Or, "fold k1 or k2 to 0 or 1");

  R.add(std::make_unique<ExprRule>(
      "fold-compare", "fold a comparison of two literals to 0 or 1",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        return B && isRelational(B->getOp()) && litValue(*B->getLHS()) &&
               litValue(*B->getRHS());
      },
      [](ExprPtr &Slot, const Description &) {
        const auto *B = cast<BinaryExpr>(Slot.get());
        int64_t L = *litValue(*B->getLHS());
        int64_t Rv = *litValue(*B->getRHS());
        bool V = false;
        switch (B->getOp()) {
        case BinaryOp::Eq:
          V = L == Rv;
          break;
        case BinaryOp::Ne:
          V = L != Rv;
          break;
        case BinaryOp::Lt:
          V = L < Rv;
          break;
        case BinaryOp::Le:
          V = L <= Rv;
          break;
        case BinaryOp::Gt:
          V = L > Rv;
          break;
        case BinaryOp::Ge:
          V = L >= Rv;
          break;
        default:
          break;
        }
        Slot = intLit(V ? 1 : 0);
      }));

  R.add(std::make_unique<ExprRule>(
      "fold-not", "fold not k to 0 or 1",
      [](const Expr &E, const Description &) {
        const auto *U = dyn_cast<UnaryExpr>(&E);
        return U && U->getOp() == UnaryOp::Not && litValue(*U->getOperand());
      },
      [](ExprPtr &Slot, const Description &) {
        int64_t V = *litValue(*cast<UnaryExpr>(Slot.get())->getOperand());
        Slot = intLit(V == 0 ? 1 : 0);
      }));

  R.add(std::make_unique<ExprRule>(
      "fold-neg", "fold -k to its value",
      [](const Expr &E, const Description &) {
        const auto *U = dyn_cast<UnaryExpr>(&E);
        return U && U->getOp() == UnaryOp::Neg && litValue(*U->getOperand());
      },
      [](ExprPtr &Slot, const Description &) {
        Slot = intLit(-*litValue(*cast<UnaryExpr>(Slot.get())->getOperand()));
      }));

  //--- Arithmetic identities ------------------------------------------------
  R.add(std::make_unique<ExprRule>(
      "add-zero", "x + 0 -> x and 0 + x -> x",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Add);
        return B && (isLit(*B->getRHS(), 0) || isLit(*B->getLHS(), 0));
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        Slot = isLit(*B->getRHS(), 0) ? B->takeLHS() : B->takeRHS();
      }));

  R.add(std::make_unique<ExprRule>(
      "sub-zero", "x - 0 -> x",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Sub);
        return B && isLit(*B->getRHS(), 0);
      },
      [](ExprPtr &Slot, const Description &) {
        Slot = cast<BinaryExpr>(Slot.get())->takeLHS();
      }));

  R.add(std::make_unique<ExprRule>(
      "sub-self", "x - x -> 0 (x pure)",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Sub);
        return B && isPure(*B->getLHS()) &&
               exactEqual(*B->getLHS(), *B->getRHS());
      },
      [](ExprPtr &Slot, const Description &) { Slot = intLit(0); }));

  R.add(std::make_unique<ExprRule>(
      "mul-one", "x * 1 -> x and 1 * x -> x",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Mul);
        return B && (isLit(*B->getRHS(), 1) || isLit(*B->getLHS(), 1));
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        Slot = isLit(*B->getRHS(), 1) ? B->takeLHS() : B->takeRHS();
      }));

  R.add(std::make_unique<ExprRule>(
      "mul-zero", "x * 0 -> 0 (x pure)",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Mul);
        if (!B)
          return false;
        if (isLit(*B->getRHS(), 0))
          return isPure(*B->getLHS());
        if (isLit(*B->getLHS(), 0))
          return isPure(*B->getRHS());
        return false;
      },
      [](ExprPtr &Slot, const Description &) { Slot = intLit(0); }));

  R.add(std::make_unique<ExprRule>(
      "neg-neg", "-(-x) -> x",
      [](const Expr &E, const Description &) {
        const auto *U = dyn_cast<UnaryExpr>(&E);
        if (!U || U->getOp() != UnaryOp::Neg)
          return false;
        const auto *Inner = dyn_cast<UnaryExpr>(U->getOperand());
        return Inner && Inner->getOp() == UnaryOp::Neg;
      },
      [](ExprPtr &Slot, const Description &) {
        ExprPtr Inner = cast<UnaryExpr>(Slot.get())->takeOperand();
        Slot = cast<UnaryExpr>(Inner.get())->takeOperand();
      }));

  R.add(std::make_unique<ExprRule>(
      "fold-const-chain",
      "(a +/- k1) +/- k2 -> a +/- k (combine literal addends)",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        if (!B ||
            (B->getOp() != BinaryOp::Add && B->getOp() != BinaryOp::Sub) ||
            !litValue(*B->getRHS()))
          return false;
        const auto *Inner = dyn_cast<BinaryExpr>(B->getLHS());
        return Inner &&
               (Inner->getOp() == BinaryOp::Add ||
                Inner->getOp() == BinaryOp::Sub) &&
               litValue(*Inner->getRHS());
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        int64_t K2 = *litValue(*B->getRHS());
        if (B->getOp() == BinaryOp::Sub)
          K2 = -K2;
        ExprPtr InnerPtr = B->takeLHS();
        auto *Inner = cast<BinaryExpr>(InnerPtr.get());
        int64_t K1 = *litValue(*Inner->getRHS());
        if (Inner->getOp() == BinaryOp::Sub)
          K1 = -K1;
        int64_t K = K1 + K2;
        ExprPtr Base = Inner->takeLHS();
        if (K == 0)
          Slot = std::move(Base);
        else if (K > 0)
          Slot = binary(BinaryOp::Add, std::move(Base), intLit(K));
        else
          Slot = binary(BinaryOp::Sub, std::move(Base), intLit(-K));
      }));

  R.add(std::make_unique<ExprRule>(
      "rel-shift-const",
      "(a +/- k1) rel k2 -> a rel k2' (move a literal across a relation)",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        if (!B || !isRelational(B->getOp()) || !litValue(*B->getRHS()))
          return false;
        const auto *Inner = dyn_cast<BinaryExpr>(B->getLHS());
        return Inner &&
               (Inner->getOp() == BinaryOp::Add ||
                Inner->getOp() == BinaryOp::Sub) &&
               litValue(*Inner->getRHS());
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        int64_t K2 = *litValue(*B->getRHS());
        ExprPtr InnerPtr = B->takeLHS();
        auto *Inner = cast<BinaryExpr>(InnerPtr.get());
        int64_t K1 = *litValue(*Inner->getRHS());
        int64_t NewK = Inner->getOp() == BinaryOp::Add ? K2 - K1 : K2 + K1;
        Slot = binary(B->getOp(), Inner->takeLHS(), intLit(NewK));
      }));

  //--- Logical identities ---------------------------------------------------
  R.add(std::make_unique<ExprRule>(
      "not-not", "not (not x) -> x (x boolean)",
      [](const Expr &E, const Description &D) {
        const auto *U = dyn_cast<UnaryExpr>(&E);
        if (!U || U->getOp() != UnaryOp::Not)
          return false;
        const auto *Inner = dyn_cast<UnaryExpr>(U->getOperand());
        return Inner && Inner->getOp() == UnaryOp::Not &&
               isBooleanExpr(D, *Inner->getOperand());
      },
      [](ExprPtr &Slot, const Description &) {
        ExprPtr Inner = cast<UnaryExpr>(Slot.get())->takeOperand();
        Slot = cast<UnaryExpr>(Inner.get())->takeOperand();
      }));

  R.add(std::make_unique<ExprRule>(
      "and-true", "x and 1 -> x and 1 and x -> x (x boolean)",
      [](const Expr &E, const Description &D) {
        const auto *B = asBinary(E, BinaryOp::And);
        if (!B)
          return false;
        if (isLit(*B->getRHS(), 1))
          return isBooleanExpr(D, *B->getLHS());
        if (isLit(*B->getLHS(), 1))
          return isBooleanExpr(D, *B->getRHS());
        return false;
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        Slot = isLit(*B->getRHS(), 1) ? B->takeLHS() : B->takeRHS();
      }));

  R.add(std::make_unique<ExprRule>(
      "and-false", "x and 0 -> 0 (x pure)",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::And);
        if (!B)
          return false;
        if (isLit(*B->getRHS(), 0))
          return isPure(*B->getLHS());
        if (isLit(*B->getLHS(), 0))
          return isPure(*B->getRHS());
        return false;
      },
      [](ExprPtr &Slot, const Description &) { Slot = intLit(0); }));

  R.add(std::make_unique<ExprRule>(
      "or-false", "x or 0 -> x and 0 or x -> x (x boolean)",
      [](const Expr &E, const Description &D) {
        const auto *B = asBinary(E, BinaryOp::Or);
        if (!B)
          return false;
        if (isLit(*B->getRHS(), 0))
          return isBooleanExpr(D, *B->getLHS());
        if (isLit(*B->getLHS(), 0))
          return isBooleanExpr(D, *B->getRHS());
        return false;
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        Slot = isLit(*B->getRHS(), 0) ? B->takeLHS() : B->takeRHS();
      }));

  R.add(std::make_unique<ExprRule>(
      "or-true", "x or 1 -> 1 (x pure)",
      [](const Expr &E, const Description &) {
        const auto *B = asBinary(E, BinaryOp::Or);
        if (!B)
          return false;
        if (isLit(*B->getRHS(), 1))
          return isPure(*B->getLHS());
        if (isLit(*B->getLHS(), 1))
          return isPure(*B->getRHS());
        return false;
      },
      [](ExprPtr &Slot, const Description &) { Slot = intLit(1); }));

  R.add(std::make_unique<ExprRule>(
      "de-morgan-and", "not (a and b) -> (not a) or (not b)",
      [](const Expr &E, const Description &) {
        const auto *U = dyn_cast<UnaryExpr>(&E);
        return U && U->getOp() == UnaryOp::Not &&
               asBinary(*U->getOperand(), BinaryOp::And);
      },
      [](ExprPtr &Slot, const Description &) {
        ExprPtr Inner = cast<UnaryExpr>(Slot.get())->takeOperand();
        auto *B = cast<BinaryExpr>(Inner.get());
        Slot = binary(BinaryOp::Or, unary(UnaryOp::Not, B->takeLHS()),
                      unary(UnaryOp::Not, B->takeRHS()));
      }));

  //--- Comparison rewrites ---------------------------------------------------
  R.add(std::make_unique<ExprRule>(
      "eq-to-diff-zero", "a = b -> (a - b) = 0 (also a <> b)",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        return B &&
               (B->getOp() == BinaryOp::Eq || B->getOp() == BinaryOp::Ne) &&
               !isLit(*B->getRHS(), 0);
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        BinaryOp Op = B->getOp();
        Slot = binary(Op, binary(BinaryOp::Sub, B->takeLHS(), B->takeRHS()),
                      intLit(0));
      }));

  R.add(std::make_unique<ExprRule>(
      "diff-zero-to-eq", "(a - b) = 0 -> a = b (also <>)",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        return B &&
               (B->getOp() == BinaryOp::Eq || B->getOp() == BinaryOp::Ne) &&
               isLit(*B->getRHS(), 0) && asBinary(*B->getLHS(), BinaryOp::Sub);
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        BinaryOp Op = B->getOp();
        ExprPtr Diff = B->takeLHS();
        auto *Sub = cast<BinaryExpr>(Diff.get());
        Slot = binary(Op, Sub->takeLHS(), Sub->takeRHS());
      }));

  R.add(std::make_unique<ExprRule>(
      "ne-to-not-eq", "a <> b -> not (a = b)",
      [](const Expr &E, const Description &) {
        return asBinary(E, BinaryOp::Ne) != nullptr;
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        Slot = unary(UnaryOp::Not,
                     binary(BinaryOp::Eq, B->takeLHS(), B->takeRHS()));
      }));

  R.add(std::make_unique<ExprRule>(
      "swap-relational-operands", "a rel b -> b rel' a",
      [](const Expr &E, const Description &) {
        const auto *B = dyn_cast<BinaryExpr>(&E);
        return B && isRelational(B->getOp());
      },
      [](ExprPtr &Slot, const Description &) {
        auto *B = cast<BinaryExpr>(Slot.get());
        ExprPtr L = B->takeLHS();
        ExprPtr Rv = B->takeRHS();
        Slot = binary(swapRelational(B->getOp()), std::move(Rv), std::move(L));
      }));

  R.add(std::make_unique<CommutativeSwapRule>());

  //--- Statement-level local rules -------------------------------------------
  R.add(std::make_unique<StmtRule>(
      "reverse-conditional", Category::Local,
      "Figure 1: if e then A else B -> if not e then B else A",
      [](const Stmt &S, const Description &) { return isa<IfStmt>(&S); },
      [](StmtPtr S, const Description &) {
        auto *If = cast<IfStmt>(S.get());
        StmtList Then = std::move(If->getThen());
        StmtList Else = std::move(If->getElse());
        StmtPtr New = ifStmt(unary(UnaryOp::Not, If->takeCond()),
                             std::move(Else), std::move(Then));
        StmtList Out;
        Out.push_back(std::move(New));
        return Out;
      }));

  R.add(std::make_unique<StmtRule>(
      "if-not-elim", Category::Local,
      "if not e then A else B -> if e then B else A",
      [](const Stmt &S, const Description &) {
        const auto *If = dyn_cast<IfStmt>(&S);
        if (!If)
          return false;
        const auto *U = dyn_cast<UnaryExpr>(If->getCond());
        return U && U->getOp() == UnaryOp::Not;
      },
      [](StmtPtr S, const Description &) {
        auto *If = cast<IfStmt>(S.get());
        ExprPtr Cond = cast<UnaryExpr>(If->getCond())->takeOperand();
        StmtList Then = std::move(If->getThen());
        StmtList Else = std::move(If->getElse());
        StmtList Out;
        Out.push_back(ifStmt(std::move(Cond), std::move(Else),
                             std::move(Then)));
        return Out;
      }));

  R.add(std::make_unique<StmtRule>(
      "if-true-elim", Category::Local,
      "if 1 then A else B -> A (literal condition)",
      [](const Stmt &S, const Description &) {
        const auto *If = dyn_cast<IfStmt>(&S);
        if (!If)
          return false;
        auto K = litValue(*If->getCond());
        return K && *K != 0;
      },
      [](StmtPtr S, const Description &) {
        return std::move(cast<IfStmt>(S.get())->getThen());
      }));

  R.add(std::make_unique<StmtRule>(
      "if-false-elim", Category::Local,
      "if 0 then A else B -> B (literal condition)",
      [](const Stmt &S, const Description &) {
        const auto *If = dyn_cast<IfStmt>(&S);
        if (!If)
          return false;
        auto K = litValue(*If->getCond());
        return K && *K == 0;
      },
      [](StmtPtr S, const Description &) {
        return std::move(cast<IfStmt>(S.get())->getElse());
      }));

  R.add(std::make_unique<StmtRule>(
      "empty-if-elim", Category::Local,
      "delete an if with two empty arms and a pure condition",
      [](const Stmt &S, const Description &) {
        const auto *If = dyn_cast<IfStmt>(&S);
        return If && If->getThen().empty() && If->getElse().empty() &&
               isPure(*If->getCond());
      },
      [](StmtPtr, const Description &) { return StmtList(); }));

  R.add(std::make_unique<StmtRule>(
      "exit-when-false-elim", Category::Local,
      "delete exit_when (0)",
      [](const Stmt &S, const Description &) {
        const auto *E = dyn_cast<ExitWhenStmt>(&S);
        if (!E)
          return false;
        auto K = litValue(*E->getCond());
        return K && *K == 0;
      },
      [](StmtPtr, const Description &) { return StmtList(); }));

  R.add(std::make_unique<LambdaRule>(
      "dead-loop-elim", Category::Local,
      "delete a repeat that exits before running anything: its first "
      "statement is exit_when of a nonzero literal, or exit_when (v = 0) "
      "directly preceded by `v <- 0`",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *R = Ctx.routine(Reason);
        if (!R)
          return ApplyResult::failure(Reason);
        bool Done = false;
        std::function<void(StmtList &)> Walk = [&](StmtList &List) {
          for (size_t I = 0; !Done && I < List.size(); ++I) {
            Stmt *S = List[I].get();
            if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
              bool Dead = false;
              if (!Rep->getBody().empty()) {
                const auto *E =
                    dyn_cast<ExitWhenStmt>(Rep->getBody().front().get());
                if (E) {
                  auto K = litValue(*E->getCond());
                  if (K && *K != 0)
                    Dead = true;
                  // exit_when (v = 0) with `v <- 0` immediately before
                  // the loop: the first test fires on entry.
                  if (!Dead && I > 0) {
                    const auto *Cmp = dyn_cast<BinaryExpr>(E->getCond());
                    const auto *Prev =
                        dyn_cast<AssignStmt>(List[I - 1].get());
                    if (Cmp && Prev && Cmp->getOp() == BinaryOp::Eq) {
                      const auto *V = dyn_cast<VarRef>(Cmp->getLHS());
                      auto Zero = litValue(*Cmp->getRHS());
                      auto PrevVal = litValue(*Prev->getValue());
                      if (V && Zero && *Zero == 0 && PrevVal &&
                          *PrevVal == 0 &&
                          Prev->targetVarName() == V->getName())
                        Dead = true;
                    }
                  }
                }
              }
              if (Dead) {
                List.erase(List.begin() + static_cast<long>(I));
                Done = true;
                return;
              }
              Walk(Rep->getBody());
            } else if (auto *If = dyn_cast<IfStmt>(S)) {
              Walk(If->getThen());
              Walk(If->getElse());
            }
          }
        };
        Walk(R->Body);
        if (!Done)
          return ApplyResult::failure("no dead loop found");
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "deleted a never-iterating loop");
      }));

  R.add(std::make_unique<LambdaRule>(
      "invert-flag", Category::Local,
      "replace flag `var` by its logical negation everywhere: literal "
      "assignments swap 0/1 and every read becomes `not var` (the flag "
      "must not be an input operand or appear in an output value)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string Var = Ctx.arg("var", Reason);
        if (Var.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        const Decl *Dl = D.findDecl(Var);
        if (!Dl || !Dl->Type.isFlag())
          return ApplyResult::failure("'" + Var +
                                      "' is not a declared one-bit flag");
        // All writes must be literal 0/1 assignments; no input writes.
        bool Ok = true;
        std::string Why;
        for (const Routine *R : D.routines())
          forEachStmt(R->Body, [&](const Stmt &S) {
            if (const auto *A = dyn_cast<AssignStmt>(&S)) {
              if (A->targetVarName() != Var)
                return;
              auto K = litValue(*A->getValue());
              if (!K || (*K != 0 && *K != 1)) {
                Ok = false;
                Why = "a non-literal value is assigned to '" + Var + "'";
              }
            } else if (const auto *In = dyn_cast<InputStmt>(&S)) {
              for (const std::string &T : In->getTargets())
                if (T == Var) {
                  Ok = false;
                  Why = "'" + Var + "' is an input operand";
                }
            } else if (const auto *O = dyn_cast<OutputStmt>(&S)) {
              for (const ExprPtr &V : O->getValues())
                if (mentionsVar(*V, Var)) {
                  Ok = false;
                  Why = "'" + Var + "' appears in an output value";
                }
            } else if (const auto *As = dyn_cast<AssertStmt>(&S)) {
              if (mentionsVar(*As->getPred(), Var)) {
                Ok = false;
                Why = "'" + Var + "' appears in an assertion";
              }
            } else if (const auto *Cn = dyn_cast<ConstrainStmt>(&S)) {
              if (mentionsVar(*Cn->getPred(), Var)) {
                Ok = false;
                Why = "'" + Var + "' appears in a constraint annotation";
              }
            }
          });
        if (!Ok)
          return ApplyResult::failure(Why);

        // Rewrite: wrap reads, then swap literal writes.
        for (Routine *R : D.routines()) {
          for (StmtPtr &S : R->Body)
            forEachExprSlot(*S, [&](ExprPtr &Slot) {
              if (const auto *V = dyn_cast<VarRef>(Slot.get()))
                if (V->getName() == Var)
                  Slot = unary(UnaryOp::Not, std::move(Slot));
            });
          forEachStmt(R->Body, [&](const Stmt &SC) {
            auto *A = dyn_cast<AssignStmt>(const_cast<Stmt *>(&SC));
            if (!A || A->targetVarName() != Var)
              return;
            // The read-wrapping above also wrapped this literal? No: the
            // value is a literal, not a VarRef. Swap it.
            auto K = litValue(*A->getValue());
            assert(K && "checked above");
            A->setValue(intLit(*K == 0 ? 1 : 0));
          });
        }
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "inverted flag '" + Var + "'");
      }));

  R.add(std::make_unique<StmtRule>(
      "flag-assign-to-if", Category::Local,
      "f <- C -> if C then f <- 1 else f <- 0 (C boolean)",
      [](const Stmt &S, const Description &D) {
        const auto *A = dyn_cast<AssignStmt>(&S);
        return A && isa<VarRef>(A->getTarget()) &&
               isBooleanExpr(D, *A->getValue()) && !litValue(*A->getValue());
      },
      [](StmtPtr S, const Description &) {
        auto *A = cast<AssignStmt>(S.get());
        std::string Name = A->targetVarName();
        StmtList Then, Else;
        Then.push_back(assign(Name, intLit(1)));
        Else.push_back(assign(Name, intLit(0)));
        StmtList Out;
        Out.push_back(ifStmt(A->takeValue(), std::move(Then), std::move(Else)));
        return Out;
      }));

  R.add(std::make_unique<StmtRule>(
      "if-to-flag-assign", Category::Local,
      "if C then f <- 1 else f <- 0 -> f <- C (C boolean)",
      [](const Stmt &S, const Description &D) {
        const auto *If = dyn_cast<IfStmt>(&S);
        if (!If || If->getThen().size() != 1 || If->getElse().size() != 1 ||
            !isBooleanExpr(D, *If->getCond()))
          return false;
        const auto *T = dyn_cast<AssignStmt>(If->getThen()[0].get());
        const auto *E = dyn_cast<AssignStmt>(If->getElse()[0].get());
        if (!T || !E)
          return false;
        std::string Name = T->targetVarName();
        return !Name.empty() && Name == E->targetVarName() &&
               isLit(*T->getValue(), 1) && isLit(*E->getValue(), 0);
      },
      [](StmtPtr S, const Description &) {
        auto *If = cast<IfStmt>(S.get());
        std::string Name =
            cast<AssignStmt>(If->getThen()[0].get())->targetVarName();
        StmtList Out;
        Out.push_back(assign(Name, If->takeCond()));
        return Out;
      }));
}
