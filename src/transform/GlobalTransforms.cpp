//===- GlobalTransforms.cpp - Whole-description rules -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Global transformations which must look at potentially the entire
/// description. For instance, copy propagation and dead variable
/// elimination both use information that may be a long distance textually
/// from where it is used" (§5).
///
/// `global-constant-propagate` is the workhorse of instruction
/// simplification: after `fix-operand-value` plants `df <- 0`, it carries
/// the constant into every use — including uses inside other routines
/// such as scasb's `fetch()` — which constant folding then collapses
/// (§4.1, Figures 3→4).
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "dataflow/CFG.h"
#include "dataflow/Liveness.h"
#include "dataflow/ReachingDefs.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;

namespace {

/// Replaces read references of \p Var under \p S with clones of \p
/// Replacement (assignment targets and input lists untouched).
void replaceReads(Stmt &S, const std::string &Var, const Expr &Replacement) {
  forEachExprSlot(S, [&](ExprPtr &Slot) {
    if (const auto *V = dyn_cast<VarRef>(Slot.get()))
      if (V->getName() == Var)
        Slot = Replacement.clone();
  });
}

ApplyResult globalConstantPropagate(TransformContext &Ctx) {
  std::string Reason;
  std::string Var = Ctx.arg("var", Reason);
  if (Var.empty())
    return ApplyResult::failure(Reason);
  Description &D = Ctx.Desc;
  Routine *Entry = D.entryRoutine();
  if (!Entry)
    return ApplyResult::failure("description has no entry routine");

  if (countWrites(D, Var) != 1)
    return ApplyResult::failure("'" + Var + "' must have exactly one write "
                                "in the whole description");

  // The single write must be a top-level `var <- k` in the entry routine.
  size_t DefIdx = Entry->Body.size();
  int64_t K = 0;
  for (size_t I = 0; I < Entry->Body.size(); ++I) {
    const auto *A = dyn_cast<AssignStmt>(Entry->Body[I].get());
    if (A && A->targetVarName() == Var) {
      const auto *Lit = dyn_cast<IntLit>(A->getValue());
      if (!Lit)
        return ApplyResult::failure("the definition of '" + Var +
                                    "' is not a literal");
      DefIdx = I;
      K = Lit->getValue();
    }
  }
  if (DefIdx == Entry->Body.size())
    return ApplyResult::failure("the single write of '" + Var +
                                "' is not a top-level entry statement");

  // Nothing before the definition may read the variable (directly or via
  // a call).
  for (size_t I = 0; I < DefIdx; ++I) {
    dataflow::EffectSummary Eff =
        dataflow::summarizeStmt(D, *Entry->Body[I]);
    if (Eff.Reads.count(Var))
      return ApplyResult::failure("'" + Var + "' is read before its "
                                  "definition");
  }

  // Respect the declared width: the stored value is masked.
  if (const Decl *Dl = D.findDecl(Var)) {
    unsigned W = Dl->Type.widthInBits();
    if (W > 0 && W < 64)
      K &= (int64_t(1) << W) - 1;
  }

  unsigned Before = countReads(D, Var);
  if (Before == 0)
    return ApplyResult::failure("'" + Var + "' has no uses to propagate "
                                "into");
  IntLit Lit(K);
  for (Routine *R : D.routines())
    for (StmtPtr &S : R->Body)
      replaceReads(*S, Var, Lit);

  return ApplyResult::success(SemanticsEffect::Preserving,
                              "propagated " + Var + " = " +
                                  std::to_string(K) + " into " +
                                  std::to_string(Before) + " use(s)");
}

ApplyResult copyPropagate(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string Var = Ctx.arg("var", Reason);
  if (Var.empty())
    return ApplyResult::failure(Reason);
  Description &D = Ctx.Desc;

  dataflow::CFG G = dataflow::CFG::build(D, *R);
  dataflow::ReachingDefs RD(G);

  unsigned Replaced = 0;
  forEachStmt(R->Body, [&](const Stmt &SC) {
    auto &S = const_cast<Stmt &>(SC);
    int Node = G.nodeFor(&S);
    if (Node < 0 || !mentionsVar(S, Var))
      return;
    std::set<int> Defs = RD.defsReaching(Node, Var);
    if (Defs.size() != 1)
      return;
    const dataflow::CFGNode &DefNode =
        G.nodes()[static_cast<size_t>(*Defs.begin())];
    const auto *DefAssign = dyn_cast<AssignStmt>(DefNode.S);
    if (!DefAssign || DefAssign->targetVarName() != Var)
      return;
    const auto *Src = dyn_cast<VarRef>(DefAssign->getValue());
    if (!Src)
      return;
    // The copied-from variable must have a single description-wide write
    // that reaches the copy (so its value cannot change between the copy
    // and this use).
    if (countWrites(D, Src->getName()) != 1)
      return;
    std::set<int> SrcDefs = RD.defsReaching(*Defs.begin(), Src->getName());
    if (SrcDefs.size() > 1)
      return;
    replaceReads(S, Var, *DefAssign->getValue());
    ++Replaced;
  });

  if (Replaced == 0)
    return ApplyResult::failure("no uses of '" + Var +
                                "' with a unique reaching copy");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "propagated copy into " +
                                  std::to_string(Replaced) + " statement(s)");
}

ApplyResult deadAssignElim(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string Var = Ctx.arg("var", Reason);
  if (Var.empty())
    return ApplyResult::failure(Reason);
  Description &D = Ctx.Desc;

  dataflow::CFG G = dataflow::CFG::build(D, *R);
  dataflow::Liveness L(G);

  unsigned Removed = 0;
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; I < List.size();) {
      Stmt *S = List[I].get();
      if (auto *A = dyn_cast<AssignStmt>(S)) {
        if (A->targetVarName() == Var && isPure(*A->getValue()) &&
            L.deadAfter(S, Var)) {
          List.erase(List.begin() + static_cast<long>(I));
          ++Removed;
          continue;
        }
      } else if (auto *If = dyn_cast<IfStmt>(S)) {
        Walk(If->getThen());
        Walk(If->getElse());
      } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
        Walk(Rep->getBody());
      }
      ++I;
    }
  };
  Walk(R->Body);

  if (Removed == 0)
    return ApplyResult::failure("no dead assignment to '" + Var +
                                "' in routine '" + R->Name + "'");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "removed " + std::to_string(Removed) +
                                  " dead assignment(s)");
}

ApplyResult deadVarElim(TransformContext &Ctx) {
  std::string Reason;
  std::string Var = Ctx.arg("var", Reason);
  if (Var.empty())
    return ApplyResult::failure(Reason);
  Description &D = Ctx.Desc;

  if (!D.findDecl(Var))
    return ApplyResult::failure("'" + Var + "' is not declared");
  if (countReads(D, Var) != 0)
    return ApplyResult::failure("'" + Var + "' is still read");
  for (const Routine *R : D.routines())
    for (const StmtPtr &S : R->Body)
      if (const auto *In = dyn_cast<InputStmt>(S.get()))
        for (const std::string &T : In->getTargets())
          if (T == Var)
            return ApplyResult::failure("'" + Var + "' is an input operand; "
                                        "fix or remove the operand first");

  // Remove every assignment (all RHSs must be pure).
  unsigned Removed = 0;
  bool Impure = false;
  for (Routine *R : D.routines()) {
    std::function<void(StmtList &)> Walk = [&](StmtList &List) {
      for (size_t I = 0; I < List.size();) {
        Stmt *S = List[I].get();
        if (auto *A = dyn_cast<AssignStmt>(S)) {
          if (A->targetVarName() == Var) {
            if (!isPure(*A->getValue())) {
              Impure = true;
              ++I;
              continue;
            }
            List.erase(List.begin() + static_cast<long>(I));
            ++Removed;
            continue;
          }
        } else if (auto *If = dyn_cast<IfStmt>(S)) {
          Walk(If->getThen());
          Walk(If->getElse());
        } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
          Walk(Rep->getBody());
        }
        ++I;
      }
    };
    Walk(R->Body);
  }
  if (Impure)
    return ApplyResult::failure("an assignment to '" + Var +
                                "' has an impure right-hand side");
  D.removeDecl(Var);
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "eliminated dead variable '" + Var + "' (" +
                                  std::to_string(Removed) +
                                  " assignment(s) removed)");
}

ApplyResult foldConstants(TransformContext &Ctx) {
  // Composite: run the folding subset of the local rules to a fixed
  // point within the routine. The paper describes simplification as a
  // mass of small steps; this composite is the labor-saving form, while
  // scripts that want 1982-style granularity invoke the fine-grained
  // rules directly.
  static const char *FoldRules[] = {
      "fold-add",  "fold-sub",     "fold-mul",          "fold-div",
      "fold-and",  "fold-or",      "fold-compare",      "fold-not",
      "fold-neg",  "add-zero",     "sub-zero",          "mul-one",
      "mul-zero",  "neg-neg",      "and-true",          "and-false",
      "or-false",  "or-true",      "not-not",           "if-true-elim",
      "if-false-elim", "exit-when-false-elim", "empty-if-elim",
      "dead-loop-elim"};
  const Registry &Reg = Registry::instance();
  unsigned Rounds = 0;
  bool Any = false;
  bool Changed = true;
  while (Changed && Rounds < 64) {
    Changed = false;
    ++Rounds;
    for (const char *Name : FoldRules) {
      const Transformation *T = Reg.lookup(Name);
      assert(T && "fold-constants refers to an unregistered rule");
      TransformContext Sub{Ctx.Desc, Ctx.RoutineName, {}, Ctx.Constraints};
      ApplyResult R = T->apply(Sub);
      if (R.Applied)
        Changed = Any = true;
    }
  }
  if (!Any)
    return ApplyResult::failure("nothing to fold");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "constant folding reached a fixed point");
}

} // namespace

void transform::registerGlobalTransforms(Registry &R) {
  R.add(std::make_unique<LambdaRule>(
      "global-constant-propagate", Category::Global,
      "propagate the single description-wide literal definition of `var` "
      "into every use, across routine boundaries",
      globalConstantPropagate));

  R.add(std::make_unique<LambdaRule>(
      "copy-propagate", Category::Global,
      "replace uses of `var` whose unique reaching definition is a copy "
      "`var <- u` by u (u single-assignment)",
      copyPropagate));

  R.add(std::make_unique<LambdaRule>(
      "dead-assign-elim", Category::Global,
      "remove assignments to `var` whose value is dead (liveness-checked) "
      "and whose right-hand side is pure",
      deadAssignElim));

  R.add(std::make_unique<LambdaRule>(
      "dead-var-elim", Category::Global,
      "remove a never-read variable: all its assignments and its "
      "declaration",
      deadVarElim));

  R.add(std::make_unique<LambdaRule>(
      "dead-decl-elim", Category::Global,
      "remove the declaration of `var` when nothing references it",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string Var = Ctx.arg("var", Reason);
        if (Var.empty())
          return ApplyResult::failure(Reason);
        if (!Ctx.Desc.findDecl(Var))
          return ApplyResult::failure("'" + Var + "' is not declared");
        if (detail::isReferenced(Ctx.Desc, Var))
          return ApplyResult::failure("'" + Var + "' is still referenced");
        Ctx.Desc.removeDecl(Var);
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "removed unused declaration '" + Var +
                                        "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "dead-routine-elim", Category::Global,
      "remove routine `name` when it is never called",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string Name = Ctx.arg("name", Reason);
        if (Name.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        if (!D.findRoutine(Name))
          return ApplyResult::failure("no routine named '" + Name + "'");
        if (D.entryRoutine() && D.entryRoutine()->Name == Name)
          return ApplyResult::failure("cannot remove the entry routine");
        for (const Routine *R : D.routines())
          if (calledRoutines(R->Body).count(Name))
            return ApplyResult::failure("routine '" + Name +
                                        "' is still called");
        for (Section &S : D.getSections())
          for (size_t I = 0; I < S.Items.size(); ++I)
            if (S.Items[I].K == SectionItem::Kind::Routine &&
                S.Items[I].R->Name == Name) {
              S.Items.erase(S.Items.begin() + static_cast<long>(I));
              return ApplyResult::success(SemanticsEffect::Preserving,
                                          "removed dead routine '" + Name +
                                              "'");
            }
        return ApplyResult::failure("routine not found");
      }));

  R.add(std::make_unique<LambdaRule>(
      "fold-constants", Category::Global,
      "composite: apply all folding identities to a fixed point in the "
      "routine",
      foldConstants));

  R.add(std::make_unique<StmtRule>(
      "remove-assert", Category::Global,
      "delete an assert (its fact is retained by the recorded constraint "
      "set)",
      [](const Stmt &S, const Description &) { return isa<AssertStmt>(&S); },
      [](StmtPtr, const Description &) { return StmtList(); }));
}
