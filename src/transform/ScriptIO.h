//===- ScriptIO.h - Textual derivation scripts ------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual exchange format for derivation scripts, so recorded analyses
/// can live in files and be replayed (`extra-cli replay`). One step per
/// line:
///
///     # comment
///     rule-name [@routine] key=value key="value with spaces"
///
/// Values containing whitespace, quotes, or '=' are double-quoted with
/// backslash escapes for `"` and `\`.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_TRANSFORM_SCRIPTIO_H
#define EXTRA_TRANSFORM_SCRIPTIO_H

#include "support/Diagnostics.h"
#include "transform/Transform.h"

#include <optional>
#include <string_view>

namespace extra {
namespace transform {

/// Renders a script in the textual format (ends with a newline).
std::string printScript(const Script &S);

/// Parses the textual format. Reports problems to \p Diags and returns
/// nullopt on any error.
std::optional<Script> parseScript(std::string_view Text,
                                  DiagnosticEngine &Diags);

} // namespace transform
} // namespace extra

#endif // EXTRA_TRANSFORM_SCRIPTIO_H
