//===- RuleHelpers.cpp - Builders for pattern-rewrite rules -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "isdl/Parser.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;

std::optional<int64_t> detail::litValue(const Expr &E) {
  if (const auto *I = dyn_cast<IntLit>(&E))
    return I->getValue();
  if (const auto *C = dyn_cast<CharLit>(&E))
    return C->getValue();
  return std::nullopt;
}

StmtList detail::parseRuleCode(const std::string &Code, std::string &Reason) {
  DiagnosticEngine Diags;
  StmtList Out = parseStmts(Code, Diags);
  if (Diags.hasErrors()) {
    Reason = "cannot parse rule code: " + Diags.str();
    return StmtList();
  }
  if (Out.empty())
    Reason = "rule code is empty";
  return Out;
}

ApplyResult ExprRule::apply(TransformContext &Ctx) const {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);

  long WantedOccurrence = -1;
  if (Ctx.Args.count("occurrence")) {
    auto N = Ctx.intArg("occurrence", Reason);
    if (!N)
      return ApplyResult::failure(Reason);
    WantedOccurrence = static_cast<long>(*N);
  }

  long Seen = 0;
  unsigned Rewritten = 0;
  const Description &D = Ctx.Desc;
  forEachExprSlot(R->Body, [&](ExprPtr &Slot) {
    if (!Match(*Slot, D))
      return;
    long Occurrence = Seen++;
    if (WantedOccurrence >= 0 && Occurrence != WantedOccurrence)
      return;
    Rewrite(Slot, D);
    ++Rewritten;
  });

  if (Rewritten == 0)
    return ApplyResult::failure("no matching expression in routine '" +
                                R->Name + "'");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              std::to_string(Rewritten) + " site(s) rewritten");
}

ApplyResult StmtRule::apply(TransformContext &Ctx) const {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);

  long WantedOccurrence = -1;
  if (Ctx.Args.count("occurrence")) {
    auto N = Ctx.intArg("occurrence", Reason);
    if (!N)
      return ApplyResult::failure(Reason);
    WantedOccurrence = static_cast<long>(*N);
  }

  long Seen = 0;
  unsigned Rewritten = 0;
  const Description &D = Ctx.Desc;

  // Walk all statement lists; splice rewrite results in place. Pre-order:
  // a statement is offered to the rule before its children, and the
  // rewrite result is not re-scanned (no self-recursion).
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; I < List.size(); ++I) {
      Stmt *S = List[I].get();
      bool Matched = Match(*S, D);
      if (Matched) {
        long Occurrence = Seen++;
        if (WantedOccurrence < 0 || Occurrence == WantedOccurrence) {
          StmtPtr Taken = std::move(List[I]);
          StmtList Replacement = Rewrite(std::move(Taken), D);
          List.erase(List.begin() + static_cast<long>(I));
          for (size_t K = 0; K < Replacement.size(); ++K)
            List.insert(List.begin() + static_cast<long>(I + K),
                        std::move(Replacement[K]));
          ++Rewritten;
          // Do not descend into the replacement; continue after it.
          I += Replacement.size();
          --I; // compensate loop increment
          continue;
        }
      }
      if (auto *If = dyn_cast<IfStmt>(S)) {
        Walk(If->getThen());
        Walk(If->getElse());
      } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
        Walk(Rep->getBody());
      }
    }
  };
  Walk(R->Body);

  if (Rewritten == 0)
    return ApplyResult::failure("no matching statement in routine '" +
                                R->Name + "'");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              std::to_string(Rewritten) + " site(s) rewritten");
}
