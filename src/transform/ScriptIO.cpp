//===- ScriptIO.cpp - Textual derivation scripts ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/ScriptIO.h"

#include "support/StringUtil.h"

#include <cctype>

using namespace extra;
using namespace extra::transform;

namespace {

bool needsQuoting(const std::string &V) {
  if (V.empty())
    return true;
  for (char C : V)
    if (std::isspace(static_cast<unsigned char>(C)) || C == '"' ||
        C == '=' || C == '#' || C == '\\')
      return true;
  return false;
}

std::string quote(const std::string &V) {
  std::string Out = "\"";
  for (char C : V) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

std::string transform::printScript(const Script &S) {
  std::string Out;
  for (const Step &St : S) {
    Out += St.Rule;
    if (!St.Routine.empty())
      Out += " @" + St.Routine;
    for (const auto &[K, V] : St.Args) {
      Out += " " + K + "=";
      Out += needsQuoting(V) ? quote(V) : V;
    }
    Out += '\n';
  }
  return Out;
}

std::optional<Script> transform::parseScript(std::string_view Text,
                                             DiagnosticEngine &Diags) {
  Script Out;
  unsigned LineNo = 0;
  size_t Pos = 0;
  bool Failed = false;

  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line =
        Text.substr(Pos, End == std::string_view::npos ? End : End - Pos);
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;
    ++LineNo;

    std::string_view T = trim(Line);
    if (T.empty() || T[0] == '#')
      continue;

    // Tokenize respecting quotes.
    Step St;
    size_t I = 0;
    auto Error = [&](const std::string &Why) {
      Diags.error({LineNo, static_cast<unsigned>(I + 1)}, Why);
      Failed = true;
    };
    auto SkipWs = [&] {
      while (I < T.size() && std::isspace(static_cast<unsigned char>(T[I])))
        ++I;
    };
    auto ReadToken = [&](bool StopAtEq) {
      std::string Tok;
      if (I < T.size() && T[I] == '"') {
        ++I;
        while (I < T.size() && T[I] != '"') {
          if (T[I] == '\\' && I + 1 < T.size())
            ++I;
          Tok += T[I++];
        }
        if (I >= T.size()) {
          Error("unterminated quoted value");
          return Tok;
        }
        ++I; // closing quote
        return Tok;
      }
      while (I < T.size() &&
             !std::isspace(static_cast<unsigned char>(T[I])) &&
             !(StopAtEq && T[I] == '='))
        Tok += T[I++];
      return Tok;
    };

    SkipWs();
    St.Rule = ReadToken(false);
    if (St.Rule.empty()) {
      Error("missing rule name");
      continue;
    }
    SkipWs();
    if (I < T.size() && T[I] == '@') {
      ++I;
      St.Routine = ReadToken(false);
      SkipWs();
    }
    while (I < T.size()) {
      std::string Key = ReadToken(true);
      if (Key.empty() || I >= T.size() || T[I] != '=') {
        Error("expected key=value");
        break;
      }
      ++I; // '='
      std::string Value = ReadToken(false);
      St.Args[Key] = std::move(Value);
      SkipWs();
    }
    Out.push_back(std::move(St));
  }

  if (Failed)
    return std::nullopt;
  return Out;
}
