//===- Transform.cpp - Transformation framework -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "isdl/Traverse.h"
#include "support/FaultInjection.h"

#include <cassert>
#include <chrono>

namespace {

/// One reusable working copy per thread, keyed by the version it was
/// cloned from. The handle keeps that version's payload alive, so a
/// pointer-equality key can never alias a recycled allocation.
struct ScratchSlot {
  extra::isdl::DescHandle For;
  extra::isdl::Description Buf;
  bool Valid = false;
  /// Set while an apply is running; a reentrant apply on the same thread
  /// (a verifier driving its own engine) must not steal the buffer out
  /// from under the outer rule.
  bool Busy = false;
};

ScratchSlot &scratchSlot() {
  static thread_local ScratchSlot Slot;
  return Slot;
}

struct BusyGuard {
  explicit BusyGuard(ScratchSlot &S) : S(S), Prev(S.Busy) { S.Busy = true; }
  ~BusyGuard() { S.Busy = Prev; }
  ScratchSlot &S;
  bool Prev;
};

} // namespace

using namespace extra;
using namespace extra::transform;
using namespace extra::isdl;

const char *transform::categoryName(Category C) {
  switch (C) {
  case Category::Local:
    return "local";
  case Category::CodeMotion:
    return "code motion";
  case Category::Loop:
    return "loop";
  case Category::Global:
    return "global";
  case Category::RoutineStructuring:
    return "routine structuring";
  case Category::ConstraintOp:
    return "constraint/assertion";
  case Category::Augment:
    return "augment producing";
  }
  return "?";
}

Transformation::~Transformation() = default;

//===----------------------------------------------------------------------===//
// TransformContext
//===----------------------------------------------------------------------===//

Routine *TransformContext::routine(std::string &Reason) const {
  Routine *R = RoutineName.empty() ? Desc.entryRoutine()
                                   : Desc.findRoutine(RoutineName);
  if (!R)
    Reason = "no routine named '" + RoutineName + "' in description '" +
             Desc.getName() + "'";
  return R;
}

std::string TransformContext::arg(const std::string &Key,
                                  std::string &Reason) const {
  auto It = Args.find(Key);
  if (It == Args.end() || It->second.empty()) {
    Reason = "missing required argument '" + Key + "'";
    return std::string();
  }
  return It->second;
}

std::string TransformContext::argOr(const std::string &Key,
                                    std::string Default) const {
  auto It = Args.find(Key);
  return It == Args.end() ? Default : It->second;
}

std::optional<int64_t> TransformContext::intArg(const std::string &Key,
                                                std::string &Reason) const {
  std::string S = arg(Key, Reason);
  if (S.empty())
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  long long V = strtoll(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0') {
    Reason = "argument '" + Key + "' is not an integer: '" + S + "'";
    return std::nullopt;
  }
  return static_cast<int64_t>(V);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const Registry &Registry::instance() {
  static Registry *R = [] {
    auto *Reg = new Registry();
    registerLocalTransforms(*Reg);
    registerCodeMotionTransforms(*Reg);
    registerLoopTransforms(*Reg);
    registerGlobalTransforms(*Reg);
    registerRoutineTransforms(*Reg);
    registerConstraintTransforms(*Reg);
    registerAugmentTransforms(*Reg);
    return Reg;
  }();
  return *R;
}

const Transformation *Registry::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : It->second.get();
}

std::vector<const Transformation *> Registry::all() const { return Order; }

std::vector<const Transformation *> Registry::inCategory(Category C) const {
  std::vector<const Transformation *> Out;
  for (const Transformation *T : Order)
    if (T->category() == C)
      Out.push_back(T);
  return Out;
}

void Registry::add(std::unique_ptr<Transformation> T) {
  assert(T && "null transformation");
  const Transformation *Raw = T.get();
  auto [It, Inserted] = ByName.emplace(T->name(), std::move(T));
  (void)It;
  assert(Inserted && "duplicate transformation name");
  (void)Inserted;
  Order.push_back(Raw);
}

//===----------------------------------------------------------------------===//
// Steps and the engine
//===----------------------------------------------------------------------===//

std::string Step::str() const {
  std::string Out = Rule;
  if (!Routine.empty())
    Out += " @" + Routine;
  for (const auto &[K, V] : Args)
    Out += " " + K + "=" + V;
  return Out;
}

Engine::Engine(Description Initial) : Cur(DescHandle(std::move(Initial))) {}
Engine::Engine(DescHandle Initial) : Cur(std::move(Initial)) {}

ApplyResult Engine::apply(const Step &S) {
  // Observability: time and classify every attempt. The disabled path
  // costs the two null checks; the clock is read only when metrics or an
  // enabled trace will consume the duration (the profiler's per-rule
  // rollup needs dur_ns on the event).
  using ObsClock = std::chrono::steady_clock;
  bool Timing = Met || (Trace && Trace->enabled());
  ObsClock::time_point ObsStart;
  if (Timing)
    ObsStart = ObsClock::now();
  auto Finish = [&](const ApplyResult &R, const char *Outcome) {
    uint64_t Ns = 0;
    if (Timing)
      Ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              ObsClock::now() - ObsStart)
              .count());
    if (Met) {
      Met->histogram("transform.apply_ns").record(Ns);
      Met->counter(std::string(R.Applied ? "rule.apply." : "rule.refuse.") +
                   S.Rule)
          .add();
    }
    if (Trace && Trace->enabled())
      Trace->event("rule-apply", TraceSpan,
                   obs::Payload()
                       .add("rule", S.Rule)
                       .add("applied", R.Applied)
                       .add("outcome", Outcome)
                       .add("dur_ns", Ns)
                       .add("detail", R.Applied ? R.Note : R.Reason));
  };

  const Transformation *T = Registry::instance().lookup(S.Rule);
  if (!T) {
    ApplyResult R =
        ApplyResult::failure("unknown transformation '" + S.Rule + "'");
    Finish(R, "unknown-rule");
    return R;
  }

  // Copy-on-write: the rule mutates a private working copy of the current
  // version. A refused or failed application just discards the copy — the
  // published version is immutable, so there is nothing to restore — and
  // on success the old version survives in the log as a shared handle.
  //
  // Scratch reuse: the working copy lives in a thread-local slot keyed by
  // the version it was cloned from. Under the rules' refusal-purity
  // contract (Transformation::apply) a refused attempt leaves the copy
  // equal to the version, so the next attempt on the same version skips
  // the clone entirely — in a refusal-dominated searcher loop that is
  // almost every attempt. The slot holds a handle to its source version,
  // so the payload cannot be freed and recycled under the cache (no ABA),
  // and a busy flag drops to a local clone on reentrant applies (e.g. a
  // verifier that runs an engine of its own on this thread).
  ScratchSlot &SB = scratchSlot();
  bool Reusing = ScratchReuse && !SB.Busy;
  Description WorkLocal;
  if (Reusing) {
    if (!SB.Valid || !SB.For.same(Cur)) {
      SB.Buf = Cur.clone();
      SB.For = Cur;
      SB.Valid = true;
      if (Met)
        Met->counter("transform.scratch.clone").add();
    } else if (Met) {
      Met->counter("transform.scratch.reuse").add();
    }
  } else {
    WorkLocal = Cur.clone();
  }
  Description &Work = Reusing ? SB.Buf : WorkLocal;
  BusyGuard Busy(SB);
  size_t ConstraintsBefore = Constraints.size();
  TransformContext Ctx{Work, S.Routine, S.Args, &Constraints};

  // Fault containment: a rule that throws (a genuine bug, or an injected
  // fault) must not take the session down or leave a half-rewritten
  // description behind. The exception is converted to a typed failure and
  // the half-rewritten working copy dropped, exactly like a refusal.
  ApplyResult R;
  try {
    // Fault-injection site: a rule implementation crashing mid-rewrite.
    if (FaultInjector::instance().shouldFail("rule-apply"))
      throw FaultError(makeFault(FaultCategory::RuleApplication,
                                 "injected fault: rule-apply"));
    R = T->apply(Ctx);
  } catch (const FaultError &FE) {
    // The rule may have died mid-rewrite: the buffer is unusable.
    if (Reusing)
      SB.Valid = false;
    ApplyResult F = ApplyResult::failure("rule '" + S.Rule +
                                         "' faulted: " + FE.fault().Message);
    F.Category = FE.fault().Category;
    Finish(F, "faulted");
    return F;
  } catch (const std::exception &E) {
    if (Reusing)
      SB.Valid = false;
    ApplyResult F =
        ApplyResult::failure("rule '" + S.Rule + "' faulted: " + E.what());
    F.Category = FaultCategory::RuleApplication;
    Finish(F, "faulted");
    return F;
  }
  if (!R.Applied) {
    // Refusal-purity contract: the working copy still equals the current
    // version, so the slot stays valid for the next attempt. The debug
    // check compares name-sensitive structural identities.
    assert(!Reusing || isdl::Interner::local().identity(Work) ==
                           isdl::Interner::local().identity(Cur.get()));
    Finish(R, "refused");
    return R;
  }

  if (Verifier) {
    std::string Error;
    StepObservation Obs{S, Cur.get(), Work, R.Effect, R.Adapter};
    if (!Verifier(Obs, Error)) {
      // The rewrite happened; the buffer no longer matches the version.
      if (Reusing)
        SB.Valid = false;
      ApplyResult F = ApplyResult::failure(
          "step verification failed for '" + S.Rule + "': " + Error);
      Finish(F, "verify-reject");
      return F;
    }
  }

  Log.push_back({S, R.Effect, R.Note, Cur, ConstraintsBefore});
  Cur = DescHandle(std::move(Work));
  if (Reusing)
    SB.Valid = false; // Moved out; the slot holds a husk.
  Finish(R, "applied");
  return R;
}

bool Engine::undo() {
  if (Log.empty())
    return false;
  Cur = std::move(Log.back().Before);
  Constraints.truncate(Log.back().ConstraintsBefore);
  Log.pop_back();
  return true;
}

size_t Engine::applyScript(const Script &Steps, std::string *FirstError) {
  size_t Applied = 0;
  for (const Step &S : Steps) {
    ApplyResult R = apply(S);
    if (!R.Applied) {
      if (FirstError)
        *FirstError = "step " + std::to_string(Applied + 1) + " (" + S.str() +
                      "): " + R.Reason;
      return Applied;
    }
    ++Applied;
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

bool detail::isBooleanExpr(const Description &D, const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit: {
    int64_t V = cast<IntLit>(&E)->getValue();
    return V == 0 || V == 1;
  }
  case Expr::Kind::VarRef: {
    const Decl *Dl = D.findDecl(cast<VarRef>(&E)->getName());
    return Dl && Dl->Type.isFlag();
  }
  case Expr::Kind::Unary:
    return cast<UnaryExpr>(&E)->getOp() == UnaryOp::Not;
  case Expr::Kind::Binary: {
    BinaryOp Op = cast<BinaryExpr>(&E)->getOp();
    return isRelational(Op) || Op == BinaryOp::And || Op == BinaryOp::Or;
  }
  default:
    return false;
  }
}

RepeatStmt *detail::findUniqueLoop(Routine &R, std::string &Reason) {
  RepeatStmt *Found = nullptr;
  bool Ambiguous = false;
  forEachStmt(R.Body, [&](const Stmt &S) {
    if (const auto *Rep = dyn_cast<RepeatStmt>(&S)) {
      if (Found)
        Ambiguous = true;
      else
        Found = const_cast<RepeatStmt *>(Rep);
    }
  });
  if (!Found)
    Reason = "routine '" + R.Name + "' contains no repeat loop";
  else if (Ambiguous) {
    Reason = "routine '" + R.Name + "' contains more than one repeat loop";
    Found = nullptr;
  }
  return Found;
}

StmtLocus detail::findUniqueAssign(Routine &R, const std::string &Var,
                                   std::string &Reason) {
  // Search every statement list reachable from the body.
  StmtLocus Found;
  bool Ambiguous = false;
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; I < List.size(); ++I) {
      Stmt *S = List[I].get();
      if (auto *A = dyn_cast<AssignStmt>(S)) {
        if (A->targetVarName() == Var) {
          if (Found.isValid())
            Ambiguous = true;
          else
            Found = StmtLocus{&List, I};
        }
      } else if (auto *If = dyn_cast<IfStmt>(S)) {
        Walk(If->getThen());
        Walk(If->getElse());
      } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
        Walk(Rep->getBody());
      }
    }
  };
  Walk(R.Body);
  if (!Found.isValid())
    Reason = "no assignment to '" + Var + "' in routine '" + R.Name + "'";
  else if (Ambiguous) {
    Reason = "more than one assignment to '" + Var + "' in routine '" +
             R.Name + "'";
    Found = StmtLocus();
  }
  return Found;
}

unsigned detail::countWrites(const Description &D, const std::string &Var) {
  unsigned Count = 0;
  for (const Routine *R : D.routines())
    forEachStmt(R->Body, [&](const Stmt &S) {
      if (const auto *A = dyn_cast<AssignStmt>(&S)) {
        if (A->targetVarName() == Var)
          ++Count;
      } else if (const auto *In = dyn_cast<InputStmt>(&S)) {
        for (const std::string &T : In->getTargets())
          if (T == Var)
            ++Count;
      }
    });
  return Count;
}

unsigned detail::countReads(const Description &D, const std::string &Var) {
  unsigned N = 0;
  auto CountInExpr = [&](const Expr &E) {
    forEachExpr(E, [&](const Expr &Sub) {
      if (const auto *V = dyn_cast<VarRef>(&Sub))
        if (V->getName() == Var)
          ++N;
    });
  };
  for (const Routine *R : D.routines())
    forEachStmt(R->Body, [&](const Stmt &S) {
      switch (S.getKind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(&S);
        if (const auto *M = dyn_cast<MemRef>(A->getTarget()))
          CountInExpr(*M->getAddress());
        CountInExpr(*A->getValue());
        break;
      }
      case Stmt::Kind::If:
        CountInExpr(*cast<IfStmt>(&S)->getCond());
        break;
      case Stmt::Kind::ExitWhen:
        CountInExpr(*cast<ExitWhenStmt>(&S)->getCond());
        break;
      case Stmt::Kind::Output:
        for (const ExprPtr &V : cast<OutputStmt>(&S)->getValues())
          CountInExpr(*V);
        break;
      case Stmt::Kind::Assert:
        CountInExpr(*cast<AssertStmt>(&S)->getPred());
        break;
      default:
        break;
      }
    });
  return N;
}

bool detail::isReferenced(const Description &D, const std::string &Name) {
  for (const Routine *R : D.routines()) {
    bool Hit = false;
    forEachStmt(R->Body, [&](const Stmt &S) {
      forEachExpr(S, [&](const Expr &E) {
        if (const auto *V = dyn_cast<VarRef>(&E)) {
          if (V->getName() == Name)
            Hit = true;
        } else if (const auto *C = dyn_cast<CallExpr>(&E)) {
          if (C->getCallee() == Name)
            Hit = true;
        }
      });
      if (const auto *In = dyn_cast<InputStmt>(&S))
        for (const std::string &T : In->getTargets())
          if (T == Name)
            Hit = true;
    });
    if (Hit)
      return true;
  }
  return false;
}
