//===- CodeMotionTransforms.cpp - Statement reordering rules ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Code motion transformations which move statements with respect to one
/// another, such as reversing the order of two statements or moving one
/// statement into the body of another when possible" (§5).
///
/// The load-bearing rule is the hop across an `exit_when`: a statement may
/// cross a loop exit only when everything it writes is dead along the
/// taken (loop-leaving) path and it does not disturb the exit condition.
/// This is what lets the Rigel `index` counter decrement move from the
/// bottom of the loop to the position the 8086 `scasb` dictates (§4.1).
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "dataflow/CFG.h"
#include "dataflow/Liveness.h"
#include "isdl/Equiv.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;
using dataflow::CFG;
using dataflow::EffectSummary;
using dataflow::Liveness;

namespace {

bool intersects(const std::set<std::string> &A,
                const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (B.count(X))
      return true;
  return false;
}

bool containsExit(const Stmt &S) {
  bool Found = false;
  forEachStmt(S, [&](const Stmt &Sub) {
    if (isa<ExitWhenStmt>(&Sub))
      Found = true;
  });
  return Found;
}

/// Checks whether statement \p S may hop across the exit \p Exit (in
/// either direction) inside routine \p R: everything \p S writes must be
/// dead on the taken edge, \p S must not touch the exit condition, and
/// the condition must not affect \p S.
bool mayCrossExit(const Description &D, Routine &R, const Stmt &S,
                  const ExitWhenStmt &Exit, std::string &Reason) {
  if (containsExit(S)) {
    Reason = "moved statement contains an exit_when";
    return false;
  }
  EffectSummary SEff = dataflow::summarizeStmt(D, S);

  std::set<std::string> CondReads, CondWrites;
  dataflow::collectExprEffects(D, *Exit.getCond(), CondReads, &CondWrites);
  if (!CondWrites.empty()) {
    Reason = "exit condition has side effects";
    return false;
  }
  if (intersects(SEff.Writes, CondReads)) {
    Reason = "moved statement writes a variable the exit condition reads";
    return false;
  }

  CFG G = CFG::build(D, R);
  Liveness L(G);
  const std::set<std::string> &LiveOnExit = L.liveAtExitOf(&Exit);
  for (const std::string &W : SEff.Writes)
    if (LiveOnExit.count(W)) {
      Reason = "'" + W + "' is live on the loop-exit path";
      return false;
    }
  return true;
}

/// Shared implementation of move-up / move-down / swap-statements.
ApplyResult moveByOne(TransformContext &Ctx, bool Up) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string Var = Ctx.arg("var", Reason);
  if (Var.empty())
    return ApplyResult::failure(Reason);

  StmtLocus Locus = findUniqueAssign(*R, Var, Reason);
  if (!Locus.isValid())
    return ApplyResult::failure(Reason);

  size_t I = Locus.Index;
  StmtList &List = *Locus.List;
  size_t NeighborIdx;
  if (Up) {
    if (I == 0)
      return ApplyResult::failure("assignment to '" + Var +
                                  "' is already first in its block");
    NeighborIdx = I - 1;
  } else {
    if (I + 1 >= List.size())
      return ApplyResult::failure("assignment to '" + Var +
                                  "' is already last in its block");
    NeighborIdx = I + 1;
  }

  Stmt &S = *List[I];
  Stmt &Neighbor = *List[NeighborIdx];
  if (const auto *Exit = dyn_cast<ExitWhenStmt>(&Neighbor)) {
    if (!mayCrossExit(Ctx.Desc, *R, S, *Exit, Reason))
      return ApplyResult::failure("cannot cross exit_when: " + Reason);
  } else if (!dataflow::independent(Ctx.Desc, S, Neighbor)) {
    return ApplyResult::failure(
        "statements are not independent; reordering would change results");
  }

  std::swap(List[I], List[NeighborIdx]);
  return ApplyResult::success(SemanticsEffect::Preserving,
                              std::string("moved assignment to '") + Var +
                                  (Up ? "' one position up" : "' one position down"));
}

} // namespace

void transform::registerCodeMotionTransforms(Registry &R) {
  R.add(std::make_unique<LambdaRule>(
      "move-up", Category::CodeMotion,
      "move the unique assignment to `var` one statement earlier "
      "(crossing an exit_when requires the target dead on the exit path)",
      [](TransformContext &Ctx) { return moveByOne(Ctx, /*Up=*/true); }));

  R.add(std::make_unique<LambdaRule>(
      "move-down", Category::CodeMotion,
      "move the unique assignment to `var` one statement later",
      [](TransformContext &Ctx) { return moveByOne(Ctx, /*Up=*/false); }));

  R.add(std::make_unique<LambdaRule>(
      "fuse-load-store", Category::CodeMotion,
      "merge `v <- RHS; X <- v` into `X <- RHS` when v is dead afterwards "
      "and the two statements are adjacent (args: var)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *R = Ctx.routine(Reason);
        if (!R)
          return ApplyResult::failure(Reason);
        std::string Var = Ctx.arg("var", Reason);
        if (Var.empty())
          return ApplyResult::failure(Reason);
        StmtLocus Locus = findUniqueAssign(*R, Var, Reason);
        if (!Locus.isValid())
          return ApplyResult::failure(Reason);
        StmtList &List = *Locus.List;
        size_t I = Locus.Index;
        if (I + 1 >= List.size())
          return ApplyResult::failure("no statement follows the "
                                      "assignment to '" + Var + "'");
        auto *Def = cast<AssignStmt>(List[I].get());
        auto *Use = dyn_cast<AssignStmt>(List[I + 1].get());
        if (!Use)
          return ApplyResult::failure("the following statement is not an "
                                      "assignment");
        const auto *UseVal = dyn_cast<VarRef>(Use->getValue());
        if (!UseVal || UseVal->getName() != Var)
          return ApplyResult::failure("the following assignment's value "
                                      "is not exactly '" + Var + "'");
        // The use's target address (for a memory store) is evaluated
        // after the value in this dialect, so the RHS keeps its
        // evaluation point; but it must not be affected by the address
        // computation and the address must not read v.
        if (const auto *M = dyn_cast<MemRef>(Use->getTarget()))
          if (mentionsVar(*M->getAddress(), Var))
            return ApplyResult::failure("the store address reads '" + Var +
                                        "'");
        dataflow::CFG G = dataflow::CFG::build(Ctx.Desc, *R);
        dataflow::Liveness L(G);
        if (!L.deadAfter(List[I + 1].get(), Var))
          return ApplyResult::failure("'" + Var + "' is still live after "
                                      "the use");
        Use->setValue(Def->takeValue());
        List.erase(List.begin() + static_cast<long>(I));
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "fused '" + Var + "' into its single "
                                    "use");
      }));

  R.add(std::make_unique<StmtRule>(
      "hoist-from-if", Category::CodeMotion,
      "move an identical first statement of both arms out in front of "
      "the if",
      [](const Stmt &S, const Description &D) {
        const auto *If = dyn_cast<IfStmt>(&S);
        if (!If || If->getThen().empty() || If->getElse().empty())
          return false;
        const Stmt &A = *If->getThen().front();
        const Stmt &B = *If->getElse().front();
        if (!exactEqual(A, B) || containsExit(A))
          return false;
        EffectSummary AEff = dataflow::summarizeStmt(D, A);
        std::set<std::string> CondReads, CondWrites;
        dataflow::collectExprEffects(D, *If->getCond(), CondReads, &CondWrites);
        if (intersects(AEff.Writes, CondReads))
          return false;
        if (intersects(CondWrites, AEff.Reads) ||
            intersects(CondWrites, AEff.Writes))
          return false;
        return true;
      },
      [](StmtPtr S, const Description &) {
        auto *If = cast<IfStmt>(S.get());
        StmtPtr Hoisted = std::move(If->getThen().front());
        If->getThen().erase(If->getThen().begin());
        If->getElse().erase(If->getElse().begin());
        StmtList Out;
        Out.push_back(std::move(Hoisted));
        Out.push_back(std::move(S));
        return Out;
      }));

  R.add(std::make_unique<StmtRule>(
      "sink-common-tail", Category::CodeMotion,
      "move an identical last statement of both arms out behind the if",
      [](const Stmt &S, const Description &) {
        const auto *If = dyn_cast<IfStmt>(&S);
        return If && !If->getThen().empty() && !If->getElse().empty() &&
               exactEqual(*If->getThen().back(), *If->getElse().back());
      },
      [](StmtPtr S, const Description &) {
        auto *If = cast<IfStmt>(S.get());
        StmtPtr Sunk = std::move(If->getThen().back());
        If->getThen().pop_back();
        If->getElse().pop_back();
        StmtList Out;
        Out.push_back(std::move(S));
        Out.push_back(std::move(Sunk));
        return Out;
      }));
}
