//===- RoutineTransforms.cpp - Routine structuring rules --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Routine structuring transformations which change how a description is
/// structured into different routines. For instance, a routine with
/// several calls may be changed into several routines each with a single
/// call" (§5). Also the alpha-renaming rules that tidy a description
/// toward its partner's vocabulary without affecting the name-insensitive
/// common-form check.
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "isdl/Equiv.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;

namespace {

/// Walks the expressions of \p S in interpreter evaluation order and
/// reports whether the first impure node (call or memory access) is a
/// call of \p Callee.
bool firstImpureIsCall(const Stmt &S, const std::string &Callee) {
  bool Decided = false, Result = false;
  std::function<void(const Expr &)> Visit = [&](const Expr &E) {
    if (Decided)
      return;
    switch (E.getKind()) {
    case Expr::Kind::Call:
      Decided = true;
      Result = cast<CallExpr>(&E)->getCallee() == Callee;
      return;
    case Expr::Kind::MemRef:
      Visit(*cast<MemRef>(&E)->getAddress());
      if (Decided)
        return;
      Decided = true;
      Result = false;
      return;
    case Expr::Kind::Unary:
      Visit(*cast<UnaryExpr>(&E)->getOperand());
      return;
    case Expr::Kind::Binary:
      Visit(*cast<BinaryExpr>(&E)->getLHS());
      if (!Decided)
        Visit(*cast<BinaryExpr>(&E)->getRHS());
      return;
    default:
      return;
    }
  };
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    // The interpreter evaluates the value first, then a memory target's
    // address.
    Visit(*A->getValue());
    if (!Decided)
      if (const auto *M = dyn_cast<MemRef>(A->getTarget()))
        Visit(*M->getAddress());
    break;
  }
  case Stmt::Kind::If:
    Visit(*cast<IfStmt>(&S)->getCond());
    break;
  case Stmt::Kind::ExitWhen:
    Visit(*cast<ExitWhenStmt>(&S)->getCond());
    break;
  case Stmt::Kind::Output:
    for (const ExprPtr &V : cast<OutputStmt>(&S)->getValues()) {
      Visit(*V);
      if (Decided)
        break;
    }
    break;
  default:
    break;
  }
  return Decided && Result;
}

/// Adds a declaration for \p Name with \p Type into the section that
/// holds \p Near (or the first section).
void declareNear(Description &D, const std::string &Name, TypeRef Type,
                 const std::string &Near, const std::string &Comment) {
  for (Section &S : D.getSections())
    for (const SectionItem &I : S.Items) {
      bool Hit = (I.K == SectionItem::Kind::Decl && I.D.Name == Near) ||
                 (I.K == SectionItem::Kind::Routine && I.R->Name == Near);
      if (Hit) {
        Decl Dl;
        Dl.Name = Name;
        Dl.Type = Type;
        Dl.Comment = Comment;
        S.Items.push_back(SectionItem::decl(std::move(Dl)));
        return;
      }
    }
  D.addDecl(D.getSections().empty() ? "STATE" : D.getSections().front().Name,
            Decl{Name, Type, Comment, {}});
}

} // namespace

void transform::registerRoutineTransforms(Registry &R) {
  R.add(std::make_unique<LambdaRule>(
      "extract-call-to-temp", Category::RoutineStructuring,
      "hoist a call `f()` buried in an expression into `t <- f()` before "
      "the statement (args: callee, temp; the call must be the first "
      "impure operation of the statement)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *R = Ctx.routine(Reason);
        if (!R)
          return ApplyResult::failure(Reason);
        std::string Callee = Ctx.arg("callee", Reason);
        std::string Temp = Ctx.arg("temp", Reason);
        if (Callee.empty() || Temp.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        const Routine *F = D.findRoutine(Callee);
        if (!F)
          return ApplyResult::failure("no routine named '" + Callee + "'");
        if (D.findDecl(Temp) || isReferenced(D, Temp))
          return ApplyResult::failure("temp name '" + Temp +
                                      "' is not fresh");

        bool Done = false;
        std::function<void(StmtList &)> Walk = [&](StmtList &List) {
          for (size_t I = 0; !Done && I < List.size(); ++I) {
            Stmt *S = List[I].get();
            bool HasCall = false;
            forEachExpr(*S, [&](const Expr &E) {
              if (const auto *C = dyn_cast<CallExpr>(&E))
                if (C->getCallee() == Callee)
                  HasCall = true;
            });
            // Skip the trivial form `x <- f()` with a plain variable
            // target (nothing to extract); a memory-target store still
            // benefits.
            if (const auto *A = dyn_cast<AssignStmt>(S))
              if (isa<VarRef>(A->getTarget()) &&
                  isa<CallExpr>(A->getValue()) &&
                  cast<CallExpr>(A->getValue())->getCallee() == Callee)
                HasCall = false;
            if (HasCall && firstImpureIsCall(*S, Callee)) {
              bool Replaced = false;
              forEachExprSlot(*S, [&](ExprPtr &Slot) {
                if (Replaced)
                  return;
                if (const auto *C = dyn_cast<CallExpr>(Slot.get()))
                  if (C->getCallee() == Callee) {
                    Slot = varRef(Temp);
                    Replaced = true;
                  }
              });
              if (Replaced) {
                List.insert(List.begin() + static_cast<long>(I),
                            assign(Temp, call(Callee)));
                Done = true;
                return;
              }
            }
            if (auto *If = dyn_cast<IfStmt>(S)) {
              Walk(If->getThen());
              Walk(If->getElse());
            } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
              Walk(Rep->getBody());
            }
          }
        };
        Walk(R->Body);
        if (!Done)
          return ApplyResult::failure(
              "no extractable call of '" + Callee +
              "' (the call must be the statement's first impure operation)");
        declareNear(D, Temp, F->ResultType, Callee,
                    "holds the result of " + Callee + "()");
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "extracted call of '" + Callee +
                                        "' into '" + Temp + "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "inline-routine", Category::RoutineStructuring,
      "replace one `x <- f()` call statement by f's body, renaming the "
      "return accumulator to a fresh temp (args: callee, temp)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *R = Ctx.routine(Reason);
        if (!R)
          return ApplyResult::failure(Reason);
        std::string Callee = Ctx.arg("callee", Reason);
        std::string Temp = Ctx.arg("temp", Reason);
        if (Callee.empty() || Temp.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        Routine *F = D.findRoutine(Callee);
        if (!F)
          return ApplyResult::failure("no routine named '" + Callee + "'");
        if (D.findDecl(Temp) || isReferenced(D, Temp))
          return ApplyResult::failure("temp name '" + Temp +
                                      "' is not fresh");
        // The callee must not itself contain calls of the enclosing
        // routine (no recursion in well-formed descriptions anyway).
        bool Done = false;
        std::function<void(StmtList &)> Walk = [&](StmtList &List) {
          for (size_t I = 0; !Done && I < List.size(); ++I) {
            Stmt *S = List[I].get();
            if (const auto *A = dyn_cast<AssignStmt>(S)) {
              const auto *C = dyn_cast<CallExpr>(A->getValue());
              if (C && C->getCallee() == Callee &&
                  isa<VarRef>(A->getTarget())) {
                std::string Target = A->targetVarName();
                StmtList Inlined = cloneStmts(F->Body);
                renameVar(Inlined, Callee, Temp);
                Inlined.push_back(assign(Target, varRef(Temp)));
                List.erase(List.begin() + static_cast<long>(I));
                for (size_t K = 0; K < Inlined.size(); ++K)
                  List.insert(List.begin() + static_cast<long>(I + K),
                              std::move(Inlined[K]));
                Done = true;
                return;
              }
            }
            if (auto *If = dyn_cast<IfStmt>(S)) {
              Walk(If->getThen());
              Walk(If->getElse());
            } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
              Walk(Rep->getBody());
            }
          }
        };
        Walk(R->Body);
        if (!Done)
          return ApplyResult::failure("no `x <- " + Callee +
                                      "()` call statement to inline");
        declareNear(D, Temp, F->ResultType, Callee,
                    "inlined return accumulator of " + Callee + "()");
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "inlined one call of '" + Callee + "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "rename-variable", Category::RoutineStructuring,
      "alpha-rename a declared variable everywhere (args: from, to)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string From = Ctx.arg("from", Reason);
        std::string To = Ctx.arg("to", Reason);
        if (From.empty() || To.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        Decl *Dl = D.findDecl(From);
        if (!Dl)
          return ApplyResult::failure("'" + From + "' is not declared");
        if (D.findDecl(To) || D.findRoutine(To) || isReferenced(D, To))
          return ApplyResult::failure("'" + To + "' is not fresh");
        Dl->Name = To;
        for (Routine *R : D.routines())
          renameVar(R->Body, From, To);
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "renamed '" + From + "' to '" + To + "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "rename-routine", Category::RoutineStructuring,
      "alpha-rename a routine and all of its call sites (args: from, to)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string From = Ctx.arg("from", Reason);
        std::string To = Ctx.arg("to", Reason);
        if (From.empty() || To.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        Routine *F = D.findRoutine(From);
        if (!F)
          return ApplyResult::failure("no routine named '" + From + "'");
        if (D.findDecl(To) || D.findRoutine(To) || isReferenced(D, To))
          return ApplyResult::failure("'" + To + "' is not fresh");
        // The return accumulator shares the routine's name.
        renameVar(F->Body, From, To);
        F->Name = To;
        for (Routine *R : D.routines())
          renameCall(R->Body, From, To);
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "renamed routine '" + From + "' to '" +
                                        To + "'");
      }));

  R.add(std::make_unique<LambdaRule>(
      "split-routine", Category::RoutineStructuring,
      "duplicate routine `name` as `new-name` and retarget one call site "
      "(args: name, new-name, occurrence)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string Name = Ctx.arg("name", Reason);
        std::string NewName = Ctx.arg("new-name", Reason);
        if (Name.empty() || NewName.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        Routine *F = D.findRoutine(Name);
        if (!F)
          return ApplyResult::failure("no routine named '" + Name + "'");
        if (D.findDecl(NewName) || D.findRoutine(NewName))
          return ApplyResult::failure("'" + NewName + "' is not fresh");
        long Occurrence = 0;
        if (Ctx.Args.count("occurrence")) {
          auto N = Ctx.intArg("occurrence", Reason);
          if (!N)
            return ApplyResult::failure(Reason);
          Occurrence = static_cast<long>(*N);
        }

        // Retarget the chosen call site.
        long Seen = 0;
        bool Retargeted = false;
        for (Routine *R : D.routines())
          for (StmtPtr &S : R->Body)
            forEachExprSlot(*S, [&](ExprPtr &Slot) {
              if (auto *C = dyn_cast<CallExpr>(Slot.get()))
                if (C->getCallee() == Name) {
                  if (Seen++ == Occurrence && !Retargeted) {
                    C->setCallee(NewName);
                    Retargeted = true;
                  }
                }
            });
        if (!Retargeted)
          return ApplyResult::failure("no call site #" +
                                      std::to_string(Occurrence) + " of '" +
                                      Name + "'");

        // Clone the routine body under the new name.
        Routine Copy = F->clone();
        renameVar(Copy.Body, Name, NewName);
        Copy.Name = NewName;
        for (Section &S : D.getSections())
          for (size_t I = 0; I < S.Items.size(); ++I)
            if (S.Items[I].K == SectionItem::Kind::Routine &&
                S.Items[I].R->Name == Name) {
              S.Items.insert(S.Items.begin() + static_cast<long>(I) + 1,
                             SectionItem::routine(std::move(Copy)));
              return ApplyResult::success(SemanticsEffect::Preserving,
                                          "split routine '" + Name + "'");
            }
        return ApplyResult::failure("routine section not found");
      }));

  R.add(std::make_unique<LambdaRule>(
      "merge-identical-routines", Category::RoutineStructuring,
      "delete routine `b` whose body is identical to routine `a`, "
      "retargeting b's call sites to a (args: a, b)",
      [](TransformContext &Ctx) {
        std::string Reason;
        std::string A = Ctx.arg("a", Reason);
        std::string B = Ctx.arg("b", Reason);
        if (A.empty() || B.empty())
          return ApplyResult::failure(Reason);
        Description &D = Ctx.Desc;
        Routine *RA = D.findRoutine(A);
        Routine *RB = D.findRoutine(B);
        if (!RA || !RB)
          return ApplyResult::failure("both routines must exist");
        // Compare modulo the accumulator name.
        Routine Probe = RB->clone();
        renameVar(Probe.Body, B, A);
        if (!exactEqual(RA->Body, Probe.Body))
          return ApplyResult::failure("routine bodies differ");
        for (Routine *R : D.routines())
          renameCall(R->Body, B, A);
        for (Section &S : D.getSections())
          for (size_t I = 0; I < S.Items.size(); ++I)
            if (S.Items[I].K == SectionItem::Kind::Routine &&
                S.Items[I].R->Name == B) {
              S.Items.erase(S.Items.begin() + static_cast<long>(I));
              return ApplyResult::success(SemanticsEffect::Preserving,
                                          "merged '" + B + "' into '" + A +
                                              "'");
            }
        return ApplyResult::failure("routine section not found");
      }));
}
