//===- ConstraintTransforms.cpp - Constraint/assertion rules ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Constraint and assertion transformations which manipulate constraints
/// and assertions in the descriptions" (§5). These rules are the ones
/// that *refine the input interface* of a description:
///
///  * `fix-operand-value` removes a flag operand and pins it (the scasb
///    simplification: rf=1, rfz=0, df=0 — §4.1);
///  * `introduce-offset-input` re-encodes an operand by a delta (the mvc
///    length-minus-one coding constraint — §4.2);
///  * `introduce-range-assert` restricts an operand's domain and records
///    the range constraint (a register-size bound);
///  * `note-relational-constraint` records a multi-operand predicate
///    backed by a source-language axiom — the §7 future-work extension
///    (base-mode analyses reject descriptions carrying one);
///  * `resolve-if-by-constraint` uses such an axiom to choose a branch
///    (movc3's overlap guard under Pascal's no-overlap rule — §4.3).
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "isdl/Parser.h"
#include "support/StringUtil.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;
using constraint::Constraint;

namespace {

/// Finds the entry input statement and the position of \p Operand in it.
InputStmt *findInputOperand(Routine &Entry, const std::string &Operand,
                            size_t &PosOut, std::string &Reason) {
  for (StmtPtr &S : Entry.Body)
    if (auto *In = dyn_cast<InputStmt>(S.get())) {
      for (size_t I = 0; I < In->getTargets().size(); ++I)
        if (In->getTargets()[I] == Operand) {
          PosOut = I;
          return In;
        }
      Reason = "'" + Operand + "' is not an input operand of routine '" +
               Entry.Name + "'";
      return nullptr;
    }
  Reason = "routine '" + Entry.Name + "' has no input statement";
  return nullptr;
}

/// Index of the input statement within the entry body.
size_t inputStmtIndex(const Routine &Entry) {
  for (size_t I = 0; I < Entry.Body.size(); ++I)
    if (isa<InputStmt>(Entry.Body[I].get()))
      return I;
  return 0;
}

ApplyResult fixOperandValue(TransformContext &Ctx) {
  std::string Reason;
  Routine *Entry = Ctx.routine(Reason);
  if (!Entry)
    return ApplyResult::failure(Reason);
  std::string Operand = Ctx.arg("operand", Reason);
  auto Value = Ctx.intArg("value", Reason);
  if (Operand.empty() || !Value)
    return ApplyResult::failure(Reason);

  size_t Pos = 0;
  InputStmt *In = findInputOperand(*Entry, Operand, Pos, Reason);
  if (!In)
    return ApplyResult::failure(Reason);

  In->getTargets().erase(In->getTargets().begin() + static_cast<long>(Pos));
  size_t InIdx = inputStmtIndex(*Entry);
  Entry->Body.insert(Entry->Body.begin() + static_cast<long>(InIdx) + 1,
                     assign(Operand, intLit(*Value)));

  if (Ctx.Constraints)
    Ctx.Constraints->add(Constraint::value(
        Operand, *Value,
        "operand fixed during simplification; code generator must "
        "establish it before issuing the instruction"));

  ApplyResult R = ApplyResult::success(
      SemanticsEffect::InputRefining,
      "fixed input operand " + Operand + " = " + std::to_string(*Value));
  int64_t V = *Value;
  R.Adapter = [Pos, V](const std::vector<int64_t> &NewInputs) {
    std::vector<int64_t> Old = NewInputs;
    if (Pos <= Old.size())
      Old.insert(Old.begin() + static_cast<long>(Pos), V);
    return Old;
  };
  return R;
}

ApplyResult introduceOffsetInput(TransformContext &Ctx) {
  std::string Reason;
  Routine *Entry = Ctx.routine(Reason);
  if (!Entry)
    return ApplyResult::failure(Reason);
  std::string Operand = Ctx.arg("operand", Reason);
  std::string NewName = Ctx.arg("new-name", Reason);
  auto Delta = Ctx.intArg("delta", Reason);
  if (Operand.empty() || NewName.empty() || !Delta)
    return ApplyResult::failure(Reason);
  if (*Delta == 0)
    return ApplyResult::failure("a zero offset is the identity encoding");

  Description &D = Ctx.Desc;
  if (D.findDecl(NewName) || D.findRoutine(NewName) ||
      isReferenced(D, NewName))
    return ApplyResult::failure("'" + NewName + "' is not fresh");
  const Decl *OpDecl = D.findDecl(Operand);
  if (!OpDecl)
    return ApplyResult::failure("'" + Operand + "' is not declared");

  size_t Pos = 0;
  InputStmt *In = findInputOperand(*Entry, Operand, Pos, Reason);
  if (!In)
    return ApplyResult::failure(Reason);

  // Declare the encoded operand next to the original.
  for (Section &S : D.getSections())
    for (size_t I = 0; I < S.Items.size(); ++I)
      if (S.Items[I].K == SectionItem::Kind::Decl &&
          S.Items[I].D.Name == Operand) {
        Decl Dl;
        Dl.Name = NewName;
        Dl.Type = OpDecl->Type;
        Dl.Comment = "offset-encoded " + Operand;
        S.Items.insert(S.Items.begin() + static_cast<long>(I) + 1,
                       SectionItem::decl(std::move(Dl)));
      }

  // input (..., operand, ...) becomes input (..., new, ...) followed by
  // the decoding `operand <- new - delta`.
  In->getTargets()[Pos] = NewName;
  ExprPtr Decode =
      *Delta < 0 ? binary(BinaryOp::Add, varRef(NewName), intLit(-*Delta))
                 : binary(BinaryOp::Sub, varRef(NewName), intLit(*Delta));
  size_t InIdx = inputStmtIndex(*Entry);
  Entry->Body.insert(Entry->Body.begin() + static_cast<long>(InIdx) + 1,
                     assign(Operand, std::move(Decode)));

  if (Ctx.Constraints)
    Ctx.Constraints->add(Constraint::offset(
        Operand, *Delta,
        "coding constraint: the compiler must pass " + Operand +
            (*Delta < 0 ? " - " + std::to_string(-*Delta)
                        : " + " + std::to_string(*Delta)) +
            " in this operand position"));

  ApplyResult R = ApplyResult::success(
      SemanticsEffect::InputRefining,
      "re-encoded operand " + Operand + " with offset " +
          std::to_string(*Delta) + " as " + NewName);
  int64_t Dl = *Delta;
  R.Adapter = [Pos, Dl](const std::vector<int64_t> &NewInputs) {
    std::vector<int64_t> Old = NewInputs;
    if (Pos < Old.size())
      Old[Pos] = Old[Pos] - Dl;
    return Old;
  };
  return R;
}

ApplyResult introduceRangeAssert(TransformContext &Ctx) {
  std::string Reason;
  Routine *Entry = Ctx.routine(Reason);
  if (!Entry)
    return ApplyResult::failure(Reason);
  std::string Operand = Ctx.arg("operand", Reason);
  auto Lo = Ctx.intArg("lo", Reason);
  auto Hi = Ctx.intArg("hi", Reason);
  if (Operand.empty() || !Lo || !Hi)
    return ApplyResult::failure(Reason);
  if (*Lo > *Hi)
    return ApplyResult::failure("empty range");
  if (!Ctx.Desc.findDecl(Operand))
    return ApplyResult::failure("'" + Operand + "' is not declared");

  ExprPtr Pred =
      binary(BinaryOp::And,
             binary(BinaryOp::Ge, varRef(Operand), intLit(*Lo)),
             binary(BinaryOp::Le, varRef(Operand), intLit(*Hi)));
  StmtPtr Assert = std::make_unique<AssertStmt>(std::move(Pred));

  // Default placement is right after the input statement; with
  // `before-loop=1` the assert lands immediately before the first repeat
  // (where rotate-while-to-dowhile looks for its justification).
  if (Ctx.argOr("before-loop", "0") == "1") {
    bool Placed = false;
    for (size_t I = 0; I < Entry->Body.size(); ++I)
      if (isa<RepeatStmt>(Entry->Body[I].get())) {
        Entry->Body.insert(Entry->Body.begin() + static_cast<long>(I),
                           std::move(Assert));
        Placed = true;
        break;
      }
    if (!Placed)
      return ApplyResult::failure("no top-level loop to place the assert "
                                  "before");
  } else {
    size_t InIdx = inputStmtIndex(*Entry);
    Entry->Body.insert(Entry->Body.begin() + static_cast<long>(InIdx) + 1,
                       std::move(Assert));
  }

  if (Ctx.Constraints)
    Ctx.Constraints->add(Constraint::range(
        Operand, *Lo, *Hi,
        "operand restricted to the instruction's encodable range"));

  // Domain restriction: inputs outside the range are no longer this
  // binding's concern. The adapter is the identity; the differential
  // checker draws inputs satisfying the recorded constraints.
  ApplyResult R = ApplyResult::success(SemanticsEffect::InputRefining,
                                       "restricted " + Operand + " to [" +
                                           std::to_string(*Lo) + ", " +
                                           std::to_string(*Hi) + "]");
  R.Adapter = [](const std::vector<int64_t> &NewInputs) { return NewInputs; };
  return R;
}

ApplyResult noteRelationalConstraint(TransformContext &Ctx) {
  std::string Reason;
  std::string PredText = Ctx.arg("pred", Reason);
  std::string Axiom = Ctx.arg("axiom", Reason);
  if (PredText.empty() || Axiom.empty())
    return ApplyResult::failure(Reason);

  DiagnosticEngine Diags;
  ExprPtr Pred = parseExpr(PredText, Diags);
  if (!Pred || Diags.hasErrors())
    return ApplyResult::failure("cannot parse constraint predicate: " +
                                Diags.str());
  if (!Ctx.Constraints)
    return ApplyResult::failure("no constraint set attached to this session");
  Ctx.Constraints->add(Constraint::relational(
      std::move(Pred), Axiom,
      "multi-operand constraint (beyond the 1982 system; extension mode "
      "only)"));
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "recorded relational constraint under axiom '" +
                                  Axiom + "'");
}

ApplyResult resolveIfByConstraint(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string Arm = Ctx.arg("arm", Reason);
  if (Arm.empty())
    return ApplyResult::failure(Reason);
  if (Arm != "then" && Arm != "else")
    return ApplyResult::failure("arm must be 'then' or 'else'");
  if (!Ctx.Constraints || !Ctx.Constraints->hasRelational())
    return ApplyResult::failure(
        "no relational constraint recorded; this rule is only justified "
        "by a source-language axiom (record one with "
        "note-relational-constraint first)");

  long Occurrence = 0;
  if (Ctx.Args.count("occurrence")) {
    auto N = Ctx.intArg("occurrence", Reason);
    if (!N)
      return ApplyResult::failure(Reason);
    Occurrence = static_cast<long>(*N);
  }

  long Seen = 0;
  bool Done = false;
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; !Done && I < List.size(); ++I) {
      Stmt *S = List[I].get();
      if (auto *If = dyn_cast<IfStmt>(S)) {
        if (Seen++ == Occurrence) {
          StmtList Chosen = Arm == "then" ? std::move(If->getThen())
                                          : std::move(If->getElse());
          List.erase(List.begin() + static_cast<long>(I));
          for (size_t K = 0; K < Chosen.size(); ++K)
            List.insert(List.begin() + static_cast<long>(I + K),
                        std::move(Chosen[K]));
          Done = true;
          return;
        }
        Walk(If->getThen());
        Walk(If->getElse());
      } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
        Walk(Rep->getBody());
      }
    }
  };
  Walk(R->Body);
  if (!Done)
    return ApplyResult::failure("no if statement #" +
                                std::to_string(Occurrence));
  // The branch choice is justified by the recorded axiom; the
  // differential check validates it on axiom-respecting inputs.
  ApplyResult Res = ApplyResult::success(
      SemanticsEffect::InputRefining,
      "resolved conditional to its " + Arm + " arm under the recorded "
      "relational constraint");
  Res.Adapter = [](const std::vector<int64_t> &NewInputs) {
    return NewInputs;
  };
  return Res;
}

ApplyResult liftConstrain(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  if (!Ctx.Constraints)
    return ApplyResult::failure("no constraint set attached to this session");

  bool Done = false;
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; !Done && I < List.size(); ++I) {
      Stmt *S = List[I].get();
      if (auto *C = dyn_cast<ConstrainStmt>(S)) {
        // Interpret the annotation by its tag and predicate shape.
        const std::string &Tag = C->getTag();
        const Expr *P = C->getPred();
        if (Tag == "value") {
          const auto *B = dyn_cast<BinaryExpr>(P);
          const VarRef *V = B ? dyn_cast<VarRef>(B->getLHS()) : nullptr;
          const IntLit *K = B ? dyn_cast<IntLit>(B->getRHS()) : nullptr;
          if (!B || B->getOp() != BinaryOp::Eq || !V || !K)
            return;
          Ctx.Constraints->add(
              Constraint::value(V->getName(), K->getValue(), "from text"));
        } else if (Tag == "range") {
          // lo <= v and v <= hi  |  v <= hi  |  v >= lo
          int64_t Lo = INT64_MIN, Hi = INT64_MAX;
          std::string Var;
          std::function<bool(const Expr &)> Scan = [&](const Expr &E) {
            const auto *B = dyn_cast<BinaryExpr>(&E);
            if (!B)
              return false;
            if (B->getOp() == BinaryOp::And)
              return Scan(*B->getLHS()) && Scan(*B->getRHS());
            const auto *V = dyn_cast<VarRef>(B->getLHS());
            const auto *K = dyn_cast<IntLit>(B->getRHS());
            if (!V || !K)
              return false;
            if (!Var.empty() && Var != V->getName())
              return false;
            Var = V->getName();
            if (B->getOp() == BinaryOp::Le)
              Hi = K->getValue();
            else if (B->getOp() == BinaryOp::Ge)
              Lo = K->getValue();
            else
              return false;
            return true;
          };
          if (!Scan(*P) || Var.empty())
            return;
          Ctx.Constraints->add(Constraint::range(
              Var, Lo == INT64_MIN ? 0 : Lo, Hi, "from text"));
        } else {
          Ctx.Constraints->add(Constraint::relational(
              P->clone(), Tag.empty() ? "unnamed" : Tag, "from text"));
        }
        List.erase(List.begin() + static_cast<long>(I));
        Done = true;
        return;
      }
      if (auto *If = dyn_cast<IfStmt>(S)) {
        Walk(If->getThen());
        Walk(If->getElse());
      } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
        Walk(Rep->getBody());
      }
    }
  };
  Walk(R->Body);
  if (!Done)
    return ApplyResult::failure("no liftable constrain statement");
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "lifted textual constraint into the set");
}

} // namespace

void transform::registerConstraintTransforms(Registry &R) {
  R.add(std::make_unique<LambdaRule>(
      "fix-operand-value", Category::ConstraintOp,
      "remove input operand `operand` and pin it to `value` (records a "
      "value constraint; the scasb flag simplification)",
      fixOperandValue));

  R.add(std::make_unique<LambdaRule>(
      "introduce-offset-input", Category::ConstraintOp,
      "re-encode input `operand` as `new-name` = operand + delta "
      "(records the mvc-style coding constraint; args: operand, delta, "
      "new-name)",
      introduceOffsetInput));

  R.add(std::make_unique<LambdaRule>(
      "introduce-range-assert", Category::ConstraintOp,
      "restrict input `operand` to [lo, hi]: records a range constraint "
      "and plants the corresponding assert (args: operand, lo, hi, "
      "optional before-loop=1)",
      introduceRangeAssert));

  R.add(std::make_unique<LambdaRule>(
      "permute-inputs", Category::ConstraintOp,
      "reorder the entry input operands; `order` lists the old positions "
      "in their new order, e.g. order=2,0,1 (operand binding in the code "
      "generator is positional, so operand order is part of the "
      "interface)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *Entry = Ctx.routine(Reason);
        if (!Entry)
          return ApplyResult::failure(Reason);
        std::string OrderText = Ctx.arg("order", Reason);
        if (OrderText.empty())
          return ApplyResult::failure(Reason);

        InputStmt *In = nullptr;
        for (StmtPtr &S : Entry->Body)
          if (auto *I = dyn_cast<InputStmt>(S.get()))
            In = I;
        if (!In)
          return ApplyResult::failure("routine '" + Entry->Name +
                                      "' has no input statement");

        std::vector<size_t> Order;
        std::set<size_t> SeenIdx;
        for (const std::string &Part : split(OrderText, ',')) {
          errno = 0;
          char *End = nullptr;
          long V = strtol(Part.c_str(), &End, 10);
          if (End == Part.c_str() || *End != '\0' || V < 0 ||
              static_cast<size_t>(V) >= In->getTargets().size() ||
              !SeenIdx.insert(static_cast<size_t>(V)).second)
            return ApplyResult::failure("bad permutation '" + OrderText +
                                        "' for " +
                                        std::to_string(In->getTargets().size()) +
                                        " operands");
          Order.push_back(static_cast<size_t>(V));
        }
        if (Order.size() != In->getTargets().size())
          return ApplyResult::failure("permutation must mention every "
                                      "operand exactly once");

        std::vector<std::string> NewTargets;
        NewTargets.reserve(Order.size());
        for (size_t OldIdx : Order)
          NewTargets.push_back(In->getTargets()[OldIdx]);
        In->getTargets() = std::move(NewTargets);

        ApplyResult R = ApplyResult::success(
            SemanticsEffect::InputRefining,
            "reordered input operands (" + OrderText + ")");
        R.Adapter = [Order](const std::vector<int64_t> &NewInputs) {
          std::vector<int64_t> Old(NewInputs.size(), 0);
          for (size_t K = 0; K < Order.size() && K < NewInputs.size(); ++K)
            Old[Order[K]] = NewInputs[K];
          return Old;
        };
        return R;
      }));

  R.add(std::make_unique<LambdaRule>(
      "note-relational-constraint", Category::ConstraintOp,
      "record a multi-operand predicate backed by a source-language axiom "
      "(extension beyond the 1982 system; args: pred, axiom)",
      noteRelationalConstraint));

  R.add(std::make_unique<LambdaRule>(
      "resolve-if-by-constraint", Category::ConstraintOp,
      "replace an if by one arm, justified by a recorded relational "
      "constraint (args: arm, occurrence)",
      resolveIfByConstraint));

  R.add(std::make_unique<LambdaRule>(
      "lift-constrain", Category::ConstraintOp,
      "move a textual `constrain` annotation from the description into "
      "the analysis constraint set",
      liftConstrain));
}
