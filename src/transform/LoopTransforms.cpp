//===- LoopTransforms.cpp - Loop manipulation rules -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Loop transformations ... especially necessary to manipulate the
/// counting loops for string oriented instructions" (§5). The big three:
///
///  * `record-exit-cause` rewrites a two-exit loop whose post-loop code
///    re-tests the first exit's condition into the flag-discriminated
///    form the 8086 string instructions use (zf tells which exit fired);
///  * `index-to-pointer` strength-reduces base+index string access into
///    the moving-pointer access of real string hardware (di/si);
///  * `rotate-while-to-dowhile` + `shift-counter` reshape a pre-tested
///    counting loop into the post-tested, length-minus-one-encoded loop
///    of the IBM 370 `mvc` (§4.2).
///
/// Every rule documents and checks the conditions under which it is a
/// semantics-preserving rewrite; the analysis driver additionally
/// validates each application differentially.
///
//===----------------------------------------------------------------------===//

#include "transform/RuleHelpers.h"

#include "dataflow/CFG.h"
#include "dataflow/Liveness.h"
#include "isdl/Equiv.h"

using namespace extra;
using namespace extra::transform;
using namespace extra::transform::detail;
using namespace extra::isdl;
using dataflow::EffectSummary;

namespace {

bool intersects(const std::set<std::string> &A,
                const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (B.count(X))
      return true;
  return false;
}

/// Locates the unique repeat loop of \p R together with its owning list,
/// so statements can be placed before/after it.
StmtLocus findLoopLocus(Routine &R, std::string &Reason) {
  StmtLocus Found;
  bool Ambiguous = false;
  std::function<void(StmtList &)> Walk = [&](StmtList &List) {
    for (size_t I = 0; I < List.size(); ++I) {
      Stmt *S = List[I].get();
      if (isa<RepeatStmt>(S)) {
        if (Found.isValid())
          Ambiguous = true;
        else
          Found = StmtLocus{&List, I};
        Walk(cast<RepeatStmt>(S)->getBody());
      } else if (auto *If = dyn_cast<IfStmt>(S)) {
        Walk(If->getThen());
        Walk(If->getElse());
      }
    }
  };
  Walk(R.Body);
  if (!Found.isValid())
    Reason = "routine '" + R.Name + "' contains no repeat loop";
  else if (Ambiguous) {
    Reason = "routine '" + R.Name + "' contains more than one repeat loop";
    Found = StmtLocus();
  }
  return Found;
}

unsigned countExitsIn(const Stmt &S) {
  unsigned N = 0;
  forEachStmt(S, [&](const Stmt &Sub) {
    if (isa<ExitWhenStmt>(&Sub))
      ++N;
  });
  return N;
}

/// Narrow implication check: does asserted predicate \p P imply that
/// variable \p V is nonzero (so `exit_when (V = 0)` cannot fire)?
/// Handles conjunctions of  V >= k (k>=1),  V > k (k>=0),  k <= V,
/// k < V,  and V <> 0.
bool impliesNonZero(const Expr &P, const std::string &V) {
  if (const auto *B = dyn_cast<BinaryExpr>(&P)) {
    if (B->getOp() == BinaryOp::And)
      return impliesNonZero(*B->getLHS(), V) ||
             impliesNonZero(*B->getRHS(), V);
    const auto *L = dyn_cast<VarRef>(B->getLHS());
    const auto *RLit = dyn_cast<IntLit>(B->getRHS());
    if (L && RLit && L->getName() == V) {
      switch (B->getOp()) {
      case BinaryOp::Ge:
        return RLit->getValue() >= 1;
      case BinaryOp::Gt:
        return RLit->getValue() >= 0;
      case BinaryOp::Ne:
        return RLit->getValue() == 0;
      default:
        return false;
      }
    }
    const auto *LLit = dyn_cast<IntLit>(B->getLHS());
    const auto *Rv = dyn_cast<VarRef>(B->getRHS());
    if (LLit && Rv && Rv->getName() == V) {
      switch (B->getOp()) {
      case BinaryOp::Le:
        return LLit->getValue() >= 1;
      case BinaryOp::Lt:
        return LLit->getValue() >= 0;
      default:
        return false;
      }
    }
  }
  return false;
}

/// True when `exit_when (V = 0)` or `exit_when (0 = V)` for variable V;
/// returns the name through \p VOut.
bool isExitOnZero(const Stmt &S, std::string &VOut) {
  const auto *E = dyn_cast<ExitWhenStmt>(&S);
  if (!E)
    return false;
  const auto *B = dyn_cast<BinaryExpr>(E->getCond());
  if (!B || B->getOp() != BinaryOp::Eq)
    return false;
  const auto *L = dyn_cast<VarRef>(B->getLHS());
  const auto *RLit = dyn_cast<IntLit>(B->getRHS());
  if (L && RLit && RLit->getValue() == 0) {
    VOut = L->getName();
    return true;
  }
  return false;
}

/// True when `V <- V - 1`.
bool isDecrement(const Stmt &S, const std::string &V) {
  const auto *A = dyn_cast<AssignStmt>(&S);
  if (!A || A->targetVarName() != V)
    return false;
  const auto *B = dyn_cast<BinaryExpr>(A->getValue());
  if (!B || B->getOp() != BinaryOp::Sub)
    return false;
  const auto *L = dyn_cast<VarRef>(B->getLHS());
  const auto *RLit = dyn_cast<IntLit>(B->getRHS());
  return L && L->getName() == V && RLit && RLit->getValue() == 1;
}

/// True when `V <- V + 1`.
bool isIncrement(const Stmt &S, const std::string &V) {
  const auto *A = dyn_cast<AssignStmt>(&S);
  if (!A || A->targetVarName() != V)
    return false;
  const auto *B = dyn_cast<BinaryExpr>(A->getValue());
  if (!B || B->getOp() != BinaryOp::Add)
    return false;
  const auto *L = dyn_cast<VarRef>(B->getLHS());
  const auto *RLit = dyn_cast<IntLit>(B->getRHS());
  return L && L->getName() == V && RLit && RLit->getValue() == 1;
}

ApplyResult recordExitCause(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string Flag = Ctx.arg("flag", Reason);
  if (Flag.empty())
    return ApplyResult::failure(Reason);

  const Decl *FlagDecl = Ctx.Desc.findDecl(Flag);
  if (!FlagDecl || !FlagDecl->Type.isFlag())
    return ApplyResult::failure("'" + Flag +
                                "' is not a declared one-bit flag");
  if (isReferenced(Ctx.Desc, Flag))
    return ApplyResult::failure("flag '" + Flag +
                                "' is already referenced; need a fresh flag");

  StmtLocus LoopLocus = findLoopLocus(*R, Reason);
  if (!LoopLocus.isValid())
    return ApplyResult::failure(Reason);
  auto *Loop = cast<RepeatStmt>(LoopLocus.get());
  StmtList &Body = Loop->getBody();

  if (countExitsIn(*LoopLocus.get()) != 2)
    return ApplyResult::failure("loop must contain exactly two exit_when "
                                "statements");
  if (Body.empty() || !isa<ExitWhenStmt>(Body.front().get()))
    return ApplyResult::failure("first statement of the loop body must be "
                                "the primary exit_when");
  auto *FirstExit = cast<ExitWhenStmt>(Body.front().get());
  if (hasCallOrMem(*FirstExit->getCond()))
    return ApplyResult::failure("primary exit condition must be pure");

  size_t SecondIdx = 0;
  for (size_t I = 1; I < Body.size(); ++I)
    if (isa<ExitWhenStmt>(Body[I].get())) {
      SecondIdx = I;
      break;
    }
  if (SecondIdx == 0)
    return ApplyResult::failure("secondary exit_when must be a top-level "
                                "statement of the loop body");

  // Statements between the two exits must not disturb the primary
  // condition (so its value at the secondary exit is still false).
  std::set<std::string> CondReads;
  dataflow::collectExprEffects(Ctx.Desc, *FirstExit->getCond(), CondReads,
                               nullptr);
  for (size_t I = 1; I < SecondIdx; ++I) {
    EffectSummary Eff = dataflow::summarizeStmt(Ctx.Desc, *Body[I]);
    if (intersects(Eff.Writes, CondReads))
      return ApplyResult::failure(
          "statement between the exits writes a variable of the primary "
          "exit condition");
  }

  // The statement following the loop must re-test the primary condition.
  StmtList &Outer = *LoopLocus.List;
  size_t LoopIdx = LoopLocus.Index;
  if (LoopIdx + 1 >= Outer.size() || !isa<IfStmt>(Outer[LoopIdx + 1].get()))
    return ApplyResult::failure("loop must be followed by an if statement "
                                "re-testing the primary exit condition");
  auto *PostIf = cast<IfStmt>(Outer[LoopIdx + 1].get());
  if (!exactEqual(*PostIf->getCond(), *FirstExit->getCond()))
    return ApplyResult::failure("post-loop if condition differs from the "
                                "primary exit condition");

  // Rewrite. 1) flag <- 0 before the loop.
  Outer.insert(Outer.begin() + static_cast<long>(LoopIdx),
               assign(Flag, intLit(0)));
  // (the loop moved one slot later; PostIf pointer is unaffected)

  // 2) secondary `exit_when (C)` becomes `if C then f<-1 else f<-0;
  //    exit_when (f)`.
  auto *SecondExit = cast<ExitWhenStmt>(Body[SecondIdx].get());
  ExprPtr C = SecondExit->takeCond();
  StmtList Then, Else;
  Then.push_back(assign(Flag, intLit(1)));
  Else.push_back(assign(Flag, intLit(0)));
  StmtPtr FlagIf = ifStmt(std::move(C), std::move(Then), std::move(Else));
  Body[SecondIdx] = exitWhen(varRef(Flag));
  Body.insert(Body.begin() + static_cast<long>(SecondIdx), std::move(FlagIf));

  // 3) post-loop discriminator: `if D then A else B` -> `if f then B
  //    else A` (f set exactly when the secondary exit fired).
  StmtList NewThen = std::move(PostIf->getElse());
  StmtList NewElse = std::move(PostIf->getThen());
  PostIf->setCond(varRef(Flag));
  PostIf->getThen() = std::move(NewThen);
  PostIf->getElse() = std::move(NewElse);

  return ApplyResult::success(SemanticsEffect::Preserving,
                              "loop exit cause recorded in flag '" + Flag +
                                  "'");
}

ApplyResult indexToPointer(TransformContext &Ctx) {
  std::string Reason;
  Routine *Entry = Ctx.routine(Reason);
  if (!Entry)
    return ApplyResult::failure(Reason);
  std::string IVar = Ctx.arg("index-var", Reason);
  std::string BVar = Ctx.arg("base-var", Reason);
  std::string PVar = Ctx.arg("pointer-var", Reason);
  if (IVar.empty() || BVar.empty() || PVar.empty())
    return ApplyResult::failure(Reason);

  Description &D = Ctx.Desc;
  const Decl *BDecl = D.findDecl(BVar);
  if (!BDecl)
    return ApplyResult::failure("base '" + BVar + "' is not declared");
  if (D.findDecl(PVar) || D.findRoutine(PVar) || isReferenced(D, PVar))
    return ApplyResult::failure("pointer name '" + PVar + "' is not fresh");

  // Base must be written exactly once — by the entry input statement.
  if (countWrites(D, BVar) != 1)
    return ApplyResult::failure("base '" + BVar +
                                "' must be written only by input");
  std::vector<std::string> *InputTargets = nullptr;
  for (StmtPtr &S : Entry->Body)
    if (auto *In = dyn_cast<InputStmt>(S.get()))
      for (std::string &T : In->getTargets())
        if (T == BVar)
          InputTargets = &In->getTargets();
  if (!InputTargets)
    return ApplyResult::failure("base '" + BVar +
                                "' is not an entry input operand");

  // Index: exactly two writes, `I <- 0` at entry top level and one
  // `I <- I + 1` anywhere.
  if (countWrites(D, IVar) != 2)
    return ApplyResult::failure("index '" + IVar +
                                "' must be written exactly twice (zero "
                                "initialization and one increment)");
  size_t ZeroInitIdx = Entry->Body.size();
  for (size_t I = 0; I < Entry->Body.size(); ++I) {
    const auto *A = dyn_cast<AssignStmt>(Entry->Body[I].get());
    if (A && A->targetVarName() == IVar) {
      const auto *Lit = dyn_cast<IntLit>(A->getValue());
      if (Lit && Lit->getValue() == 0)
        ZeroInitIdx = I;
    }
  }
  if (ZeroInitIdx == Entry->Body.size())
    return ApplyResult::failure("index '" + IVar +
                                "' has no top-level `" + IVar +
                                " <- 0` in the entry routine");
  // No statement before the zero-init may read the index or call a
  // routine (which could read it indirectly).
  for (size_t I = 0; I < ZeroInitIdx; ++I) {
    EffectSummary Eff = dataflow::summarizeStmt(D, *Entry->Body[I]);
    if (Eff.Reads.count(IVar))
      return ApplyResult::failure("index '" + IVar +
                                  "' is read before its zero initialization");
  }

  // Find the unique increment across all routines.
  Stmt *Increment = nullptr;
  for (Routine *Rt : D.routines())
    forEachStmt(Rt->Body, [&](const Stmt &S) {
      if (isIncrement(S, IVar))
        Increment = const_cast<Stmt *>(&S);
    });
  if (!Increment)
    return ApplyResult::failure("index '" + IVar + "' has no `" + IVar +
                                " <- " + IVar + " + 1` increment");

  // Declare the pointer with the base's type, next to the base.
  for (Section &Sec : D.getSections())
    for (size_t I = 0; I < Sec.Items.size(); ++I)
      if (Sec.Items[I].K == SectionItem::Kind::Decl &&
          Sec.Items[I].D.Name == BVar) {
        Decl P;
        P.Name = PVar;
        P.Type = BDecl->Type;
        P.Comment = "moving pointer for " + BVar + "+" + IVar;
        Sec.Items.insert(Sec.Items.begin() + static_cast<long>(I) + 1,
                         SectionItem::decl(std::move(P)));
      }

  // Rewrites, in dependency order:
  // a) the increment becomes `P <- P + 1`;
  {
    auto *A = cast<AssignStmt>(Increment);
    A->setTarget(varRef(PVar));
    A->setValue(binary(BinaryOp::Add, varRef(PVar), intLit(1)));
  }
  // b) every `Mb[B + I]` / `Mb[I + B]` address becomes `Mb[P]` (first
  //    pass, before the leaf rewrite below can disturb the pattern), and
  //    any other read of I becomes `P - B` (the induction invariant
  //    I = P - B);
  auto RewriteMem = [&](ExprPtr &Slot) {
    auto *M = dyn_cast<MemRef>(Slot.get());
    if (!M)
      return;
    const auto *Add = dyn_cast<BinaryExpr>(M->getAddress());
    if (!Add || Add->getOp() != BinaryOp::Add)
      return;
    const auto *L = dyn_cast<VarRef>(Add->getLHS());
    const auto *Rv = dyn_cast<VarRef>(Add->getRHS());
    bool Matches =
        (L && Rv) &&
        ((L->getName() == BVar && Rv->getName() == IVar) ||
         (L->getName() == IVar && Rv->getName() == BVar));
    if (Matches)
      M->setAddress(varRef(PVar));
  };
  auto RewriteLeaf = [&](ExprPtr &Slot) {
    if (auto *V = dyn_cast<VarRef>(Slot.get()))
      if (V->getName() == IVar)
        Slot = binary(BinaryOp::Sub, varRef(PVar), varRef(BVar));
  };
  // Assignment targets `Mb[B + I] <- ...` are not expression slots; apply
  // the memory-pattern rewrite to them directly.
  auto RewriteStoreTarget = [&](Stmt &S) {
    auto *A = dyn_cast<AssignStmt>(&S);
    if (!A)
      return;
    auto *M = dyn_cast<MemRef>(A->getTarget());
    if (!M)
      return;
    const auto *Add = dyn_cast<BinaryExpr>(M->getAddress());
    if (!Add || Add->getOp() != BinaryOp::Add)
      return;
    const auto *L = dyn_cast<VarRef>(Add->getLHS());
    const auto *Rv = dyn_cast<VarRef>(Add->getRHS());
    bool Matches =
        (L && Rv) &&
        ((L->getName() == BVar && Rv->getName() == IVar) ||
         (L->getName() == IVar && Rv->getName() == BVar));
    if (Matches)
      M->setAddress(varRef(PVar));
  };
  for (Routine *Rt : D.routines())
    for (StmtPtr &S : Rt->Body) {
      forEachStmt(*S, [&](const Stmt &Sub) {
        RewriteStoreTarget(const_cast<Stmt &>(Sub));
      });
      forEachExprSlot(*S, RewriteMem);
    }
  for (Routine *Rt : D.routines())
    for (StmtPtr &S : Rt->Body)
      forEachExprSlot(*S, RewriteLeaf);
  // c) the zero-init is deleted (the invariant holds with P = B there);
  Entry->Body.erase(Entry->Body.begin() + static_cast<long>(ZeroInitIdx));
  // d) the input operand B becomes P, and `B <- P` is inserted directly
  //    after the input statement to preserve the base for index
  //    reconstruction.
  for (std::string &T : *InputTargets)
    if (T == BVar)
      T = PVar;
  for (size_t I = 0; I < Entry->Body.size(); ++I)
    if (isa<InputStmt>(Entry->Body[I].get())) {
      Entry->Body.insert(Entry->Body.begin() + static_cast<long>(I) + 1,
                         assign(BVar, varRef(PVar)));
      break;
    }
  // Remaining reads of I were rewritten in step (b); I's declaration is
  // now unused and removable by dead-decl-elim.

  return ApplyResult::success(SemanticsEffect::Preserving,
                              "reduced " + BVar + "+" + IVar +
                                  " indexing to pointer '" + PVar + "'");
}

ApplyResult rotateWhileToDoWhile(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);

  StmtLocus LoopLocus = findLoopLocus(*R, Reason);
  if (!LoopLocus.isValid())
    return ApplyResult::failure(Reason);
  auto *Loop = cast<RepeatStmt>(LoopLocus.get());
  StmtList &Body = Loop->getBody();

  std::string V;
  if (Body.empty() || !isExitOnZero(*Body.front(), V))
    return ApplyResult::failure("loop body must begin with `exit_when "
                                "(v = 0)`");

  // A dominating assert immediately before the loop must rule out v = 0
  // on entry.
  StmtList &Outer = *LoopLocus.List;
  size_t LoopIdx = LoopLocus.Index;
  bool Justified = false;
  if (LoopIdx > 0) {
    if (const auto *A = dyn_cast<AssertStmt>(Outer[LoopIdx - 1].get()))
      Justified = impliesNonZero(*A->getPred(), V);
  }
  if (!Justified)
    return ApplyResult::failure(
        "no `assert` immediately before the loop implies " + V +
        " <> 0 on entry; the first test cannot be removed");

  StmtPtr Exit = std::move(Body.front());
  Body.erase(Body.begin());
  Body.push_back(std::move(Exit));
  return ApplyResult::success(SemanticsEffect::Preserving,
                              "rotated pre-tested loop into post-tested "
                              "form (first test discharged by assert)");
}

ApplyResult shiftCounter(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string V = Ctx.arg("old-var", Reason);
  std::string W = Ctx.arg("new-var", Reason);
  if (V.empty() || W.empty())
    return ApplyResult::failure(Reason);

  Description &D = Ctx.Desc;
  StmtLocus LoopLocus = findLoopLocus(*R, Reason);
  if (!LoopLocus.isValid())
    return ApplyResult::failure(Reason);
  auto *Loop = cast<RepeatStmt>(LoopLocus.get());
  StmtList &Body = Loop->getBody();

  // Loop must end [..., v <- v - 1, exit_when (v = 0)].
  std::string ExitVar;
  if (Body.size() < 2 || !isExitOnZero(*Body.back(), ExitVar) ||
      ExitVar != V || !isDecrement(*Body[Body.size() - 2], V))
    return ApplyResult::failure("loop must end with `" + V + " <- " + V +
                                " - 1; exit_when (" + V + " = 0)`");

  // Initialization `v <- w + 1` at entry top level, before the loop.
  StmtList &Outer = *LoopLocus.List;
  size_t LoopIdx = LoopLocus.Index;
  size_t InitIdx = Outer.size();
  for (size_t I = 0; I < LoopIdx && I < Outer.size(); ++I) {
    const auto *A = dyn_cast<AssignStmt>(Outer[I].get());
    if (!A || A->targetVarName() != V)
      continue;
    const auto *B = dyn_cast<BinaryExpr>(A->getValue());
    if (!B || B->getOp() != BinaryOp::Add)
      continue;
    const auto *L = dyn_cast<VarRef>(B->getLHS());
    const auto *RLit = dyn_cast<IntLit>(B->getRHS());
    if (L && L->getName() == W && RLit && RLit->getValue() == 1)
      InitIdx = I;
  }
  if (InitIdx == Outer.size())
    return ApplyResult::failure("no `" + V + " <- " + W +
                                " + 1` initialization before the loop");

  // v must have exactly those two writes and no other reads; w must be
  // written only by input and be unread outside the init.
  if (countWrites(D, V) != 2)
    return ApplyResult::failure("'" + V + "' is written elsewhere");
  if (countWrites(D, W) != 1)
    return ApplyResult::failure("'" + W + "' must be written only by input");
  unsigned VReads = countReads(D, V);
  unsigned WReads = countReads(D, W);
  // v reads: decrement RHS + exit test. (The init writes v, reads w.)
  if (VReads != 2)
    return ApplyResult::failure("'" + V + "' is read outside the loop "
                                "counter pattern");
  if (WReads != 1)
    return ApplyResult::failure("'" + W + "' is read outside the "
                                "initialization");

  // Rewrite: drop the init; loop tail becomes
  //   exit_when (w = 0); w <- w - 1;
  Outer.erase(Outer.begin() + static_cast<long>(InitIdx));
  Body.pop_back();
  Body.pop_back();
  Body.push_back(exitWhen(binary(BinaryOp::Eq, varRef(W), intLit(0))));
  Body.push_back(assign(W, binary(BinaryOp::Sub, varRef(W), intLit(1))));

  return ApplyResult::success(SemanticsEffect::Preserving,
                              "shifted loop counter from '" + V + "' to '" +
                                  W + "' (one-less encoding)");
}

ApplyResult countUpToDown(TransformContext &Ctx) {
  std::string Reason;
  Routine *R = Ctx.routine(Reason);
  if (!R)
    return ApplyResult::failure(Reason);
  std::string I = Ctx.arg("index-var", Reason);
  std::string N = Ctx.arg("bound-var", Reason);
  std::string C = Ctx.arg("counter-var", Reason);
  if (I.empty() || N.empty() || C.empty())
    return ApplyResult::failure(Reason);

  Description &D = Ctx.Desc;
  bool ReuseBound = C == N;
  if (!ReuseBound && (D.findDecl(C) || isReferenced(D, C)))
    return ApplyResult::failure("counter name '" + C + "' is not fresh");
  const Decl *NDecl = D.findDecl(N);
  if (!NDecl)
    return ApplyResult::failure("bound '" + N + "' is not declared");
  TypeRef NType = NDecl->Type;

  StmtLocus LoopLocus = findLoopLocus(*R, Reason);
  if (!LoopLocus.isValid())
    return ApplyResult::failure(Reason);
  auto *Loop = cast<RepeatStmt>(LoopLocus.get());
  StmtList &Body = Loop->getBody();

  // Pattern: [exit_when (i = n); BODY...; i <- i + 1] and `i <- 0` before
  // the loop, with i referenced nowhere else and n loop-invariant.
  const auto *Exit0 = Body.empty() ? nullptr
                                   : dyn_cast<ExitWhenStmt>(Body.front().get());
  if (!Exit0)
    return ApplyResult::failure("loop must begin with `exit_when (" + I +
                                " = " + N + ")`");
  const auto *Cmp = dyn_cast<BinaryExpr>(Exit0->getCond());
  bool HeadOk = false;
  if (Cmp && Cmp->getOp() == BinaryOp::Eq) {
    const auto *L = dyn_cast<VarRef>(Cmp->getLHS());
    const auto *Rv = dyn_cast<VarRef>(Cmp->getRHS());
    HeadOk = L && Rv && L->getName() == I && Rv->getName() == N;
  }
  if (!HeadOk)
    return ApplyResult::failure("loop must begin with `exit_when (" + I +
                                " = " + N + ")`");
  if (Body.size() < 2 || !isIncrement(*Body.back(), I))
    return ApplyResult::failure("loop must end with `" + I + " <- " + I +
                                " + 1`");

  StmtList &Outer = *LoopLocus.List;
  size_t LoopIdx = LoopLocus.Index;
  size_t InitIdx = Outer.size();
  for (size_t K = 0; K < LoopIdx; ++K) {
    const auto *A = dyn_cast<AssignStmt>(Outer[K].get());
    if (A && A->targetVarName() == I) {
      const auto *Lit = dyn_cast<IntLit>(A->getValue());
      if (Lit && Lit->getValue() == 0)
        InitIdx = K;
    }
  }
  if (InitIdx == Outer.size())
    return ApplyResult::failure("no `" + I + " <- 0` before the loop");

  if (countWrites(D, I) != 2)
    return ApplyResult::failure("'" + I + "' is written elsewhere");
  unsigned IReads = countReads(D, I);
  if (IReads != 2) // exit test + increment RHS
    return ApplyResult::failure("'" + I + "' is read by the loop body; "
                                "convert indexing to pointers first");
  if (countWrites(D, N) != 1)
    return ApplyResult::failure("bound '" + N + "' must be loop-invariant "
                                "(written only by input)");
  if (countReads(D, N) != 1)
    return ApplyResult::failure("bound '" + N + "' must be read only by "
                                "the loop head test");
  // i must not be read after the loop (its final value i = n has no new
  // home); i is unread elsewhere (checked above). n is never written, so
  // later reads of n are unaffected — but be conservative and require n
  // dead on the exit edge as well.
  {
    dataflow::CFG G = dataflow::CFG::build(D, *R);
    dataflow::Liveness L(G);
    if (L.liveAtExitOf(Exit0).count(N))
      return ApplyResult::failure("bound '" + N + "' is read after the loop");
  }

  if (ReuseBound) {
    // In-place reuse: the bound itself becomes the down counter (it is
    // dead after the loop, so destroying its value is unobservable).
    // `i <- 0` disappears; head exit tests n = 0; the tail increment
    // becomes `n <- n - 1`.
    Outer.erase(Outer.begin() + static_cast<long>(InitIdx));
    cast<ExitWhenStmt>(Body.front().get())
        ->setCond(binary(BinaryOp::Eq, varRef(N), intLit(0)));
    Body.back() = assign(N, binary(BinaryOp::Sub, varRef(N), intLit(1)));
    return ApplyResult::success(SemanticsEffect::Preserving,
                                "converted up-counting loop over '" + I +
                                    "' to count '" + N + "' down in place");
  }

  // Declare c like n.
  for (Section &Sec : D.getSections())
    for (size_t K = 0; K < Sec.Items.size(); ++K)
      if (Sec.Items[K].K == SectionItem::Kind::Decl &&
          Sec.Items[K].D.Name == N) {
        Decl CD;
        CD.Name = C;
        CD.Type = NType;
        CD.Comment = "down counter replacing " + I + "/" + N;
        Sec.Items.insert(Sec.Items.begin() + static_cast<long>(K) + 1,
                         SectionItem::decl(std::move(CD)));
      }

  // Rewrite: `i <- 0` becomes `c <- n`; head exit tests c = 0; tail
  // increment becomes `c <- c - 1`.
  Outer[InitIdx] = assign(C, varRef(N));
  cast<ExitWhenStmt>(Body.front().get())
      ->setCond(binary(BinaryOp::Eq, varRef(C), intLit(0)));
  Body.back() = assign(C, binary(BinaryOp::Sub, varRef(C), intLit(1)));

  return ApplyResult::success(SemanticsEffect::Preserving,
                              "converted up-counting loop over '" + I +
                                  "' to down counter '" + C + "'");
}

} // namespace

void transform::registerLoopTransforms(Registry &R) {
  R.add(std::make_unique<StmtRule>(
      "split-exit-disjunction", Category::Loop,
      "exit_when (a or b) -> exit_when (a); exit_when (b)  (b pure)",
      [](const Stmt &S, const Description &) {
        const auto *E = dyn_cast<ExitWhenStmt>(&S);
        if (!E)
          return false;
        const auto *B = dyn_cast<BinaryExpr>(E->getCond());
        return B && B->getOp() == BinaryOp::Or && isPure(*B->getRHS());
      },
      [](StmtPtr S, const Description &) {
        auto *E = cast<ExitWhenStmt>(S.get());
        ExprPtr Cond = E->takeCond();
        auto *B = cast<BinaryExpr>(Cond.get());
        StmtList Out;
        Out.push_back(exitWhen(B->takeLHS()));
        Out.push_back(exitWhen(B->takeRHS()));
        return Out;
      }));

  R.add(std::make_unique<LambdaRule>(
      "merge-exits", Category::Loop,
      "exit_when (a); exit_when (b) -> exit_when (a or b)  (b pure)",
      [](TransformContext &Ctx) {
        std::string Reason;
        Routine *R = Ctx.routine(Reason);
        if (!R)
          return ApplyResult::failure(Reason);
        bool Done = false;
        std::function<void(StmtList &)> Walk = [&](StmtList &List) {
          for (size_t I = 0; !Done && I < List.size(); ++I) {
            Stmt *S = List[I].get();
            if (I + 1 < List.size() && isa<ExitWhenStmt>(S) &&
                isa<ExitWhenStmt>(List[I + 1].get())) {
              auto *A = cast<ExitWhenStmt>(S);
              auto *B = cast<ExitWhenStmt>(List[I + 1].get());
              if (isPure(*B->getCond())) {
                A->setCond(binary(BinaryOp::Or, A->takeCond(), B->takeCond()));
                List.erase(List.begin() + static_cast<long>(I) + 1);
                Done = true;
                return;
              }
            }
            if (auto *If = dyn_cast<IfStmt>(S)) {
              Walk(If->getThen());
              Walk(If->getElse());
            } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
              Walk(Rep->getBody());
            }
          }
        };
        Walk(R->Body);
        if (!Done)
          return ApplyResult::failure("no adjacent exit_when pair with a "
                                      "pure second condition");
        return ApplyResult::success(SemanticsEffect::Preserving,
                                    "merged adjacent exits");
      }));

  R.add(std::make_unique<LambdaRule>(
      "record-exit-cause", Category::Loop,
      "discriminate a two-exit loop through a fresh flag; the post-loop "
      "re-test of the primary condition becomes a flag test (the zf idiom "
      "of the 8086 string instructions)",
      recordExitCause));

  R.add(std::make_unique<LambdaRule>(
      "index-to-pointer", Category::Loop,
      "strength-reduce base+index string access to a moving pointer "
      "(args: index-var, base-var, pointer-var)",
      indexToPointer));

  R.add(std::make_unique<LambdaRule>(
      "rotate-while-to-dowhile", Category::Loop,
      "move a leading `exit_when (v = 0)` to the end of the loop; an "
      "assert before the loop must rule out v = 0 on entry",
      rotateWhileToDoWhile));

  R.add(std::make_unique<LambdaRule>(
      "shift-counter", Category::Loop,
      "replace counter v (initialized w + 1, post-decrement tested) by w "
      "directly — the mvc length-minus-one loop shape (args: old-var, "
      "new-var)",
      shiftCounter));

  R.add(std::make_unique<LambdaRule>(
      "count-up-to-down", Category::Loop,
      "turn `i <- 0 ... exit_when (i = n) ... i <- i + 1` into a fresh "
      "down counter `c <- n ... exit_when (c = 0) ... c <- c - 1` "
      "(args: index-var, bound-var, counter-var)",
      countUpToDown));
}
