//===- Sim8086.h - Intel 8086 subset simulator ------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the 8086 dialect the code generator emits:
///
///   mov/add/sub/cmp R, X     X in {reg, imm, [reg]}; also mov [R], X
///   inc/dec R                (set zf)
///   cld / std                direction flag
///   jmp/jz/jnz/jl/jle/jg/jge label
///   scasb, movsb, cmpsb, stosb, lodsb
///   rep movsb | rep stosb | repe cmpsb | repne scasb
///
/// Registers: the 8086 set (16-bit masked) plus 8-bit al/bl/cl/dl (no
/// high/low aliasing with the 16-bit registers — a documented
/// simplification), plus arbitrary identifiers acting as virtual
/// registers for front-end symbols. Comments start with ';'.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SIM_SIM8086_H
#define EXTRA_SIM_SIM8086_H

#include "sim/SimCommon.h"

namespace extra {
namespace sim {

/// Runs \p Asm to completion (falling off the end halts).
SimResult run8086(const std::vector<std::string> &Asm,
                  const interp::Memory &InitialMemory = {},
                  const std::map<std::string, int64_t> &InitialRegs = {},
                  uint64_t MaxSteps = 1000000);

} // namespace sim
} // namespace extra

#endif // EXTRA_SIM_SIM8086_H
