//===- Sim370.h - IBM System/370 subset simulator ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the simplified 370 dialect the code generator emits (a
/// register-style pseudo-assembly standing in for base+displacement
/// coding, which the descriptions also elide — §3):
///
///   la R, imm|reg     load address/immediate
///   lr R, R2          copy register
///   ar/sr R, R2       add/subtract register
///   ahi R, imm        add halfword immediate
///   ldb R, (Rm) / stb R, (Rm)
///   chi R, imm / cr R, R2      compare (condition code)
///   j/je/jne/jl/jg label
///   mvc (Rd), (Rs), L          move L+1 bytes (the §4.2 encoding)
///
/// Comments start with ';'.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SIM_SIM370_H
#define EXTRA_SIM_SIM370_H

#include "sim/SimCommon.h"

namespace extra {
namespace sim {

SimResult run370(const std::vector<std::string> &Asm,
                 const interp::Memory &InitialMemory = {},
                 const std::map<std::string, int64_t> &InitialRegs = {},
                 uint64_t MaxSteps = 1000000);

} // namespace sim
} // namespace extra

#endif // EXTRA_SIM_SIM370_H
