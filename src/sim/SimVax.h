//===- SimVax.h - VAX-11 subset simulator -----------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the VAX dialect the code generator emits:
///
///   movl/addl/subl R, X      (dst first; X in {reg, imm})
///   incl/decl R,  tstl R,  cmpl A, B
///   brb/beql/bneq label
///   ldb R, (Rm)  /  stb R, (Rm)     byte load/store
///   movc3 len, src, dst             overlap-safe block move
///   movc5 sl, sa, fill, dl, da      move with fill
///   locc ch, len, addr              locate character
///   cmpc3 len, a, b                 compare characters
///
/// String instructions leave results in the dedicated registers the real
/// hardware uses: movc3/movc5 clear r0 and leave r1/r3 one past the
/// strings; locc leaves r0 = bytes remaining (including the located one)
/// and r1 = its address; cmpc3 leaves r0 = bytes remaining including the
/// first unequal pair. Comments start with ';'.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SIM_SIMVAX_H
#define EXTRA_SIM_SIMVAX_H

#include "sim/SimCommon.h"

namespace extra {
namespace sim {

SimResult runVax(const std::vector<std::string> &Asm,
                 const interp::Memory &InitialMemory = {},
                 const std::map<std::string, int64_t> &InitialRegs = {},
                 uint64_t MaxSteps = 1000000);

} // namespace sim
} // namespace extra

#endif // EXTRA_SIM_SIMVAX_H
