//===- SimVax.cpp - VAX-11 subset simulator ---------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "sim/SimVax.h"

using namespace extra;
using namespace extra::sim;

namespace {

class Machine {
public:
  Machine(const interp::Memory &Mem, const std::map<std::string, int64_t> &Rs)
      : R(Rs) {
    Res.Mem = Mem;
  }

  SimResult run(const std::vector<AsmStmt> &Prog,
                const std::map<std::string, size_t> &Labels,
                uint64_t MaxSteps) {
    size_t Pc = 0;
    while (Pc < Prog.size()) {
      if (++Res.Instructions > MaxSteps) {
        Res.Error = "step limit exceeded";
        Res.Regs = R;
        return std::move(Res);
      }
      size_t NextPc = Pc + 1;
      if (!exec(Prog[Pc], Labels, NextPc)) {
        Res.Regs = R;
        return std::move(Res);
      }
      Pc = NextPc;
    }
    Res.Ok = true;
    Res.Regs = R;
    return std::move(Res);
  }

private:
  bool error(const AsmStmt &S, const std::string &Why) {
    Res.Error = Why + " in '" + S.Raw + "'";
    return false;
  }

  bool isIndirect(const std::string &T) const {
    return T.size() > 2 && T.front() == '(' && T.back() == ')';
  }

  bool value(const std::string &T, int64_t &Out) {
    if (T.empty())
      return false;
    if (isdigit(static_cast<unsigned char>(T[0])) || T[0] == '-') {
      Out = strtoll(T.c_str(), nullptr, 10);
      return true;
    }
    Out = R[T];
    return true;
  }

  uint8_t byteAt(int64_t Addr) {
    auto It = Res.Mem.find(static_cast<uint64_t>(Addr));
    return It == Res.Mem.end() ? 0 : It->second;
  }

  bool exec(const AsmStmt &S, const std::map<std::string, size_t> &Labels,
            size_t &NextPc) {
    const std::string &Op = S.Toks[0];

    auto Jump = [&](const std::string &Label) {
      auto It = Labels.find(Label);
      if (It == Labels.end())
        return error(S, "unknown label '" + Label + "'");
      NextPc = It->second;
      return true;
    };

    if (Op == "brb" || Op == "jmp")
      return Jump(S.Toks[1]);
    if (Op == "beql")
      return Z ? Jump(S.Toks[1]) : true;
    if (Op == "bneq")
      return !Z ? Jump(S.Toks[1]) : true;

    ++Res.MicroOps;
    if (Op == "movl" && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      R[S.Toks[1]] = V;
      return true;
    }
    if ((Op == "addl" || Op == "subl") && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      R[S.Toks[1]] += Op == "addl" ? V : -V;
      return true;
    }
    if ((Op == "incl" || Op == "decl") && S.Toks.size() == 2) {
      R[S.Toks[1]] += Op == "incl" ? 1 : -1;
      Z = R[S.Toks[1]] == 0;
      return true;
    }
    if (Op == "tstl" && S.Toks.size() == 2) {
      Z = R[S.Toks[1]] == 0;
      return true;
    }
    if (Op == "cmpl" && S.Toks.size() == 3) {
      int64_t A, B;
      if (!value(S.Toks[1], A) || !value(S.Toks[2], B))
        return error(S, "bad operand");
      Z = A == B;
      return true;
    }
    if (Op == "ldb" && S.Toks.size() == 3 && isIndirect(S.Toks[2])) {
      std::string Reg = S.Toks[2].substr(1, S.Toks[2].size() - 2);
      R[S.Toks[1]] = byteAt(R[Reg]);
      return true;
    }
    if (Op == "stb" && S.Toks.size() == 3 && isIndirect(S.Toks[2])) {
      std::string Reg = S.Toks[2].substr(1, S.Toks[2].size() - 2);
      Res.Mem[static_cast<uint64_t>(R[Reg])] =
          static_cast<uint8_t>(R[S.Toks[1]] & 0xFF);
      return true;
    }

    if (Op == "movc3" && S.Toks.size() == 4) {
      int64_t Len, Src, Dst;
      if (!value(S.Toks[1], Len) || !value(S.Toks[2], Src) ||
          !value(S.Toks[3], Dst))
        return error(S, "bad operand");
      Len &= 0xFFFF;
      if (Src < Dst && Dst < Src + Len) {
        for (int64_t I = Len; I-- > 0;)
          Res.Mem[static_cast<uint64_t>(Dst + I)] = byteAt(Src + I);
      } else {
        for (int64_t I = 0; I < Len; ++I)
          Res.Mem[static_cast<uint64_t>(Dst + I)] = byteAt(Src + I);
      }
      Res.MicroOps += static_cast<uint64_t>(Len);
      R["r0"] = 0;
      R["r1"] = Src + Len;
      R["r3"] = Dst + Len;
      R["r2"] = R["r4"] = R["r5"] = 0;
      return true;
    }
    if (Op == "movc5" && S.Toks.size() == 6) {
      int64_t Sl, Sa, Fill, Dl, Da;
      if (!value(S.Toks[1], Sl) || !value(S.Toks[2], Sa) ||
          !value(S.Toks[3], Fill) || !value(S.Toks[4], Dl) ||
          !value(S.Toks[5], Da))
        return error(S, "bad operand");
      Sl &= 0xFFFF;
      Dl &= 0xFFFF;
      int64_t Moved = Sl < Dl ? Sl : Dl;
      for (int64_t I = 0; I < Moved; ++I)
        Res.Mem[static_cast<uint64_t>(Da + I)] = byteAt(Sa + I);
      for (int64_t I = Moved; I < Dl; ++I)
        Res.Mem[static_cast<uint64_t>(Da + I)] =
            static_cast<uint8_t>(Fill & 0xFF);
      Res.MicroOps += static_cast<uint64_t>(Dl);
      R["r0"] = Sl > Dl ? Sl - Dl : 0;
      R["r1"] = Sa + Moved;
      R["r2"] = 0;
      R["r3"] = Da + Dl;
      R["r4"] = 0;
      R["r5"] = 0;
      return true;
    }
    if (Op == "locc" && S.Toks.size() == 4) {
      int64_t Ch, Len, Addr;
      if (!value(S.Toks[1], Ch) || !value(S.Toks[2], Len) ||
          !value(S.Toks[3], Addr))
        return error(S, "bad operand");
      Len &= 0xFFFF;
      int64_t I = 0;
      for (; I < Len; ++I) {
        ++Res.MicroOps;
        if (byteAt(Addr + I) == (Ch & 0xFF))
          break;
      }
      if (I < Len) {
        R["r0"] = Len - I;
        R["r1"] = Addr + I;
        Z = false;
      } else {
        R["r0"] = 0;
        R["r1"] = Addr + Len;
        Z = true;
      }
      return true;
    }
    if (Op == "cmpc3" && S.Toks.size() == 4) {
      int64_t Len, A, B;
      if (!value(S.Toks[1], Len) || !value(S.Toks[2], A) ||
          !value(S.Toks[3], B))
        return error(S, "bad operand");
      Len &= 0xFFFF;
      int64_t I = 0;
      for (; I < Len; ++I) {
        ++Res.MicroOps;
        if (byteAt(A + I) != byteAt(B + I))
          break;
      }
      R["r0"] = Len - I;
      R["r1"] = A + I;
      R["r3"] = B + I;
      Z = R["r0"] == 0;
      return true;
    }
    return error(S, "unknown instruction '" + Op + "'");
  }

  std::map<std::string, int64_t> R;
  bool Z = false;
  SimResult Res;
};

} // namespace

SimResult sim::runVax(const std::vector<std::string> &Asm,
                      const interp::Memory &InitialMemory,
                      const std::map<std::string, int64_t> &InitialRegs,
                      uint64_t MaxSteps) {
  std::vector<AsmStmt> Prog;
  std::map<std::string, size_t> Labels;
  SimResult Bad;
  if (!assemble(Asm, ';', Prog, Labels, Bad.Error))
    return Bad;
  Machine M(InitialMemory, InitialRegs);
  return M.run(Prog, Labels, MaxSteps);
}
