//===- SimCommon.h - Shared simulator infrastructure ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared pieces of the three instruction-level simulators (8086, VAX,
/// 370) that execute the code generator's output. The paper evaluated on
/// real machines; these simulators substitute for them, giving the
/// benchmarks an executable target and honest relative cost numbers:
///
///  * `Instructions` counts instruction dispatches (fetch/decode), the
///    quantity exotic instructions amortize over a whole string;
///  * `MicroOps` counts per-byte data work, which is the same for exotic
///    and primitive implementations;
///  * code size is simply the number of emitted instruction lines.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SIM_SIMCOMMON_H
#define EXTRA_SIM_SIMCOMMON_H

#include "interp/Interp.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace extra {
namespace sim {

/// Outcome of one simulated run.
struct SimResult {
  bool Ok = false;
  std::string Error;
  uint64_t Instructions = 0; ///< Dispatches.
  uint64_t MicroOps = 0;     ///< Per-byte data operations.
  interp::Memory Mem;
  std::map<std::string, int64_t> Regs;

  /// Register (or virtual symbol) value; 0 when never written.
  int64_t reg(const std::string &Name) const {
    auto It = Regs.find(Name);
    return It == Regs.end() ? 0 : It->second;
  }
};

/// One parsed assembly statement.
struct AsmStmt {
  std::string Label;              ///< Set when the line is "name:".
  std::vector<std::string> Toks;  ///< Mnemonic (and prefix) + operands.
  std::string Raw;                ///< Original text, for error messages.
};

/// Strips the comment, splits the label, and tokenizes operands
/// (separators: whitespace and commas; parenthesized and bracketed
/// operands stay single tokens).
AsmStmt parseAsmLine(const std::string &Line, char CommentChar);

/// Parses the program into statements and a label table.
///
/// \returns false (with \p Error) on malformed lines or duplicate labels.
bool assemble(const std::vector<std::string> &Lines, char CommentChar,
              std::vector<AsmStmt> &Out,
              std::map<std::string, size_t> &Labels, std::string &Error);

/// Number of instruction lines (non-label, non-comment, non-blank) — the
/// "space" measure of §1.
unsigned codeSize(const std::vector<std::string> &Lines, char CommentChar);

} // namespace sim
} // namespace extra

#endif // EXTRA_SIM_SIMCOMMON_H
