//===- SimCommon.cpp - Shared simulator infrastructure ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "sim/SimCommon.h"

#include "support/StringUtil.h"

#include <cctype>

using namespace extra;
using namespace extra::sim;

AsmStmt sim::parseAsmLine(const std::string &Line, char CommentChar) {
  AsmStmt Out;
  Out.Raw = Line;
  std::string Text = Line;
  size_t Comment = Text.find(CommentChar);
  if (Comment != std::string::npos)
    Text = Text.substr(0, Comment);
  std::string_view T = trim(Text);
  if (T.empty())
    return Out;

  // Label line: "name:" (possibly followed by nothing else).
  if (T.back() == ':' && T.find(' ') == std::string_view::npos &&
      T.find(',') == std::string_view::npos) {
    Out.Label = std::string(T.substr(0, T.size() - 1));
    return Out;
  }

  // Tokenize on whitespace and commas.
  std::string Tok;
  for (char C : T) {
    if (C == ' ' || C == '\t' || C == ',') {
      if (!Tok.empty()) {
        Out.Toks.push_back(Tok);
        Tok.clear();
      }
      continue;
    }
    Tok.push_back(C);
  }
  if (!Tok.empty())
    Out.Toks.push_back(Tok);
  return Out;
}

bool sim::assemble(const std::vector<std::string> &Lines, char CommentChar,
                   std::vector<AsmStmt> &Out,
                   std::map<std::string, size_t> &Labels,
                   std::string &Error) {
  Out.clear();
  Labels.clear();
  for (const std::string &Line : Lines) {
    AsmStmt S = parseAsmLine(Line, CommentChar);
    if (!S.Label.empty()) {
      if (!Labels.emplace(S.Label, Out.size()).second) {
        Error = "duplicate label '" + S.Label + "'";
        return false;
      }
      continue; // Labels point at the next statement.
    }
    if (!S.Toks.empty())
      Out.push_back(std::move(S));
  }
  return true;
}

unsigned sim::codeSize(const std::vector<std::string> &Lines,
                       char CommentChar) {
  unsigned N = 0;
  for (const std::string &Line : Lines) {
    AsmStmt S = parseAsmLine(Line, CommentChar);
    if (!S.Toks.empty())
      ++N;
  }
  return N;
}
