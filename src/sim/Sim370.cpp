//===- Sim370.cpp - IBM System/370 subset simulator -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "sim/Sim370.h"

using namespace extra;
using namespace extra::sim;

namespace {

class Machine {
public:
  Machine(const interp::Memory &Mem, const std::map<std::string, int64_t> &Rs)
      : R(Rs) {
    Res.Mem = Mem;
  }

  SimResult run(const std::vector<AsmStmt> &Prog,
                const std::map<std::string, size_t> &Labels,
                uint64_t MaxSteps) {
    size_t Pc = 0;
    while (Pc < Prog.size()) {
      if (++Res.Instructions > MaxSteps) {
        Res.Error = "step limit exceeded";
        Res.Regs = R;
        return std::move(Res);
      }
      size_t NextPc = Pc + 1;
      if (!exec(Prog[Pc], Labels, NextPc)) {
        Res.Regs = R;
        return std::move(Res);
      }
      Pc = NextPc;
    }
    Res.Ok = true;
    Res.Regs = R;
    return std::move(Res);
  }

private:
  bool error(const AsmStmt &S, const std::string &Why) {
    Res.Error = Why + " in '" + S.Raw + "'";
    return false;
  }

  bool isIndirect(const std::string &T) const {
    return T.size() > 2 && T.front() == '(' && T.back() == ')';
  }

  bool value(const std::string &T, int64_t &Out) {
    if (T.empty())
      return false;
    if (isdigit(static_cast<unsigned char>(T[0])) || T[0] == '-') {
      Out = strtoll(T.c_str(), nullptr, 10);
      return true;
    }
    Out = R[T];
    return true;
  }

  uint8_t byteAt(int64_t Addr) {
    auto It = Res.Mem.find(static_cast<uint64_t>(Addr));
    return It == Res.Mem.end() ? 0 : It->second;
  }

  bool exec(const AsmStmt &S, const std::map<std::string, size_t> &Labels,
            size_t &NextPc) {
    const std::string &Op = S.Toks[0];
    auto Jump = [&](const std::string &Label) {
      auto It = Labels.find(Label);
      if (It == Labels.end())
        return error(S, "unknown label '" + Label + "'");
      NextPc = It->second;
      return true;
    };

    if (Op == "j")
      return Jump(S.Toks[1]);
    if (Op == "je")
      return Cc == 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jne")
      return Cc != 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jl")
      return Cc < 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jg")
      return Cc > 0 ? Jump(S.Toks[1]) : true;

    ++Res.MicroOps;
    if ((Op == "la" || Op == "lr") && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      R[S.Toks[1]] = V & 0xFFFFFF; // 24-bit addressing
      return true;
    }
    if ((Op == "ar" || Op == "sr") && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      R[S.Toks[1]] += Op == "ar" ? V : -V;
      return true;
    }
    if (Op == "ahi" && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      R[S.Toks[1]] += V;
      return true;
    }
    if (Op == "chi" && S.Toks.size() == 3) {
      int64_t V;
      if (!value(S.Toks[2], V))
        return error(S, "bad operand");
      Cc = R[S.Toks[1]] - V;
      return true;
    }
    if (Op == "cr" && S.Toks.size() == 3) {
      Cc = R[S.Toks[1]] - R[S.Toks[2]];
      return true;
    }
    if (Op == "ldb" && S.Toks.size() == 3 && isIndirect(S.Toks[2])) {
      std::string Reg = S.Toks[2].substr(1, S.Toks[2].size() - 2);
      R[S.Toks[1]] = byteAt(R[Reg]);
      return true;
    }
    if (Op == "stb" && S.Toks.size() == 3 && isIndirect(S.Toks[2])) {
      std::string Reg = S.Toks[2].substr(1, S.Toks[2].size() - 2);
      Res.Mem[static_cast<uint64_t>(R[Reg])] =
          static_cast<uint8_t>(R[S.Toks[1]] & 0xFF);
      return true;
    }
    if (Op == "mvc" && S.Toks.size() == 4 && isIndirect(S.Toks[1]) &&
        isIndirect(S.Toks[2])) {
      std::string Rd = S.Toks[1].substr(1, S.Toks[1].size() - 2);
      std::string Rs = S.Toks[2].substr(1, S.Toks[2].size() - 2);
      int64_t L;
      if (!value(S.Toks[3], L))
        return error(S, "bad length");
      if (L < 0 || L > 255)
        return error(S, "mvc length field must fit in 8 bits");
      int64_t D = R[Rd], Sa = R[Rs];
      // The 370 moves byte by byte, low to high (no overlap guard).
      for (int64_t I = 0; I <= L; ++I) {
        Res.Mem[static_cast<uint64_t>(D + I)] = byteAt(Sa + I);
        ++Res.MicroOps;
      }
      return true;
    }
    return error(S, "unknown instruction '" + Op + "'");
  }

  std::map<std::string, int64_t> R;
  int64_t Cc = 0;
  SimResult Res;
};

} // namespace

SimResult sim::run370(const std::vector<std::string> &Asm,
                      const interp::Memory &InitialMemory,
                      const std::map<std::string, int64_t> &InitialRegs,
                      uint64_t MaxSteps) {
  std::vector<AsmStmt> Prog;
  std::map<std::string, size_t> Labels;
  SimResult Bad;
  if (!assemble(Asm, ';', Prog, Labels, Bad.Error))
    return Bad;
  Machine M(InitialMemory, InitialRegs);
  return M.run(Prog, Labels, MaxSteps);
}
