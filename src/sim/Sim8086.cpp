//===- Sim8086.cpp - Intel 8086 subset simulator ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "sim/Sim8086.h"

#include <set>

using namespace extra;
using namespace extra::sim;

namespace {

const std::set<std::string> Regs16 = {"ax", "bx", "cx", "dx",
                                      "si", "di", "bp", "sp"};
const std::set<std::string> Regs8 = {"al", "ah", "bl", "bh",
                                     "cl", "ch", "dl", "dh"};

class Machine {
public:
  Machine(const interp::Memory &Mem, const std::map<std::string, int64_t> &Rs)
      : R(Rs) {
    Res.Mem = Mem;
  }

  SimResult run(const std::vector<AsmStmt> &Prog,
                const std::map<std::string, size_t> &Labels,
                uint64_t MaxSteps) {
    size_t Pc = 0;
    while (Pc < Prog.size()) {
      if (++Res.Instructions > MaxSteps)
        return fail("step limit exceeded");
      const AsmStmt &S = Prog[Pc];
      size_t NextPc = Pc + 1;
      if (!exec(S, Labels, NextPc))
        return std::move(Res);
      Pc = NextPc;
    }
    Res.Ok = true;
    Res.Regs = R;
    return std::move(Res);
  }

private:
  SimResult fail(const std::string &Why) {
    Res.Error = Why;
    Res.Regs = R;
    return std::move(Res);
  }
  bool error(const AsmStmt &S, const std::string &Why) {
    Res.Error = Why + " in '" + S.Raw + "'";
    return false;
  }

  int64_t mask(const std::string &Reg, int64_t V) const {
    if (Regs16.count(Reg))
      return V & 0xFFFF;
    if (Regs8.count(Reg))
      return V & 0xFF;
    return V;
  }

  bool isMem(const std::string &T) const {
    return T.size() > 2 && T.front() == '[' && T.back() == ']';
  }

  bool readOperand(const std::string &T, int64_t &Out) {
    if (isMem(T)) {
      std::string Reg = T.substr(1, T.size() - 2);
      uint64_t Addr = static_cast<uint64_t>(R[Reg]);
      auto It = Res.Mem.find(Addr);
      Out = It == Res.Mem.end() ? 0 : It->second;
      return true;
    }
    if (T.empty())
      return false;
    if (isdigit(static_cast<unsigned char>(T[0])) || T[0] == '-') {
      Out = strtoll(T.c_str(), nullptr, 10);
      return true;
    }
    Out = R[T];
    return true;
  }

  void writeOperand(const std::string &T, int64_t V) {
    if (isMem(T)) {
      std::string Reg = T.substr(1, T.size() - 2);
      Res.Mem[static_cast<uint64_t>(R[Reg])] = static_cast<uint8_t>(V & 0xFF);
      return;
    }
    R[T] = mask(T, V);
  }

  uint8_t byteAt(int64_t Addr) {
    auto It = Res.Mem.find(static_cast<uint64_t>(Addr));
    return It == Res.Mem.end() ? 0 : It->second;
  }

  int dir() const { return Df ? -1 : 1; }

  void scasb() {
    Zf = (R["al"] & 0xFF) == byteAt(R["di"]);
    R["di"] = mask("di", R["di"] + dir());
    ++Res.MicroOps;
  }
  void movsb() {
    Res.Mem[static_cast<uint64_t>(R["di"])] = byteAt(R["si"]);
    R["si"] = mask("si", R["si"] + dir());
    R["di"] = mask("di", R["di"] + dir());
    ++Res.MicroOps;
  }
  void cmpsb() {
    Zf = byteAt(R["si"]) == byteAt(R["di"]);
    R["si"] = mask("si", R["si"] + dir());
    R["di"] = mask("di", R["di"] + dir());
    ++Res.MicroOps;
  }
  void stosb() {
    Res.Mem[static_cast<uint64_t>(R["di"])] =
        static_cast<uint8_t>(R["al"] & 0xFF);
    R["di"] = mask("di", R["di"] + dir());
    ++Res.MicroOps;
  }
  void lodsb() {
    R["al"] = byteAt(R["si"]);
    R["si"] = mask("si", R["si"] + dir());
    ++Res.MicroOps;
  }

  bool exec(const AsmStmt &S, const std::map<std::string, size_t> &Labels,
            size_t &NextPc) {
    const std::string &Op = S.Toks[0];

    // Repeat-prefixed string instructions.
    if ((Op == "rep" || Op == "repe" || Op == "repne") && S.Toks.size() == 2) {
      const std::string &Str = S.Toks[1];
      for (;;) {
        if ((R["cx"] & 0xFFFF) == 0)
          break;
        R["cx"] = mask("cx", R["cx"] - 1);
        if (Str == "scasb")
          scasb();
        else if (Str == "movsb")
          movsb();
        else if (Str == "cmpsb")
          cmpsb();
        else if (Str == "stosb")
          stosb();
        else
          return error(S, "unknown string instruction");
        if (Op == "repne" && Zf)
          break; // found
        if (Op == "repe" && !Zf)
          break; // mismatch
        if (Res.MicroOps > 10000000)
          return error(S, "runaway rep");
      }
      return true;
    }

    auto Jump = [&](const std::string &Label) {
      auto It = Labels.find(Label);
      if (It == Labels.end())
        return error(S, "unknown label '" + Label + "'");
      NextPc = It->second;
      return true;
    };

    if (Op == "jmp")
      return Jump(S.Toks[1]);
    if (Op == "jz")
      return !Zf ? true : Jump(S.Toks[1]);
    if (Op == "jnz")
      return Zf ? true : Jump(S.Toks[1]);
    if (Op == "jl")
      return LastCmp < 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jle")
      return LastCmp <= 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jg")
      return LastCmp > 0 ? Jump(S.Toks[1]) : true;
    if (Op == "jge")
      return LastCmp >= 0 ? Jump(S.Toks[1]) : true;

    if (Op == "cld") {
      Df = false;
      ++Res.MicroOps;
      return true;
    }
    if (Op == "std") {
      Df = true;
      ++Res.MicroOps;
      return true;
    }
    if (Op == "scasb") {
      scasb();
      return true;
    }
    if (Op == "movsb") {
      movsb();
      return true;
    }
    if (Op == "cmpsb") {
      cmpsb();
      return true;
    }
    if (Op == "stosb") {
      stosb();
      return true;
    }
    if (Op == "lodsb") {
      lodsb();
      return true;
    }

    if (Op == "inc" || Op == "dec") {
      if (S.Toks.size() != 2 || isMem(S.Toks[1]))
        return error(S, "inc/dec needs one register");
      int64_t V = R[S.Toks[1]] + (Op == "inc" ? 1 : -1);
      R[S.Toks[1]] = mask(S.Toks[1], V);
      Zf = R[S.Toks[1]] == 0;
      ++Res.MicroOps;
      return true;
    }

    if (S.Toks.size() != 3)
      return error(S, "unknown instruction");
    const std::string &A = S.Toks[1];
    const std::string &B = S.Toks[2];
    int64_t VB = 0;
    if (!readOperand(B, VB))
      return error(S, "bad operand");
    ++Res.MicroOps;

    if (Op == "mov") {
      writeOperand(A, VB);
      return true;
    }
    int64_t VA = 0;
    if (!readOperand(A, VA))
      return error(S, "bad operand");
    if (Op == "add") {
      writeOperand(A, VA + VB);
      return true;
    }
    if (Op == "sub") {
      writeOperand(A, VA - VB);
      return true;
    }
    if (Op == "cmp") {
      LastCmp = VA - VB;
      Zf = LastCmp == 0;
      return true;
    }
    return error(S, "unknown instruction '" + Op + "'");
  }

  std::map<std::string, int64_t> R;
  bool Zf = false;
  bool Df = false;
  int64_t LastCmp = 0;
  SimResult Res;
};

} // namespace

SimResult sim::run8086(const std::vector<std::string> &Asm,
                       const interp::Memory &InitialMemory,
                       const std::map<std::string, int64_t> &InitialRegs,
                       uint64_t MaxSteps) {
  std::vector<AsmStmt> Prog;
  std::map<std::string, size_t> Labels;
  SimResult Bad;
  if (!assemble(Asm, ';', Prog, Labels, Bad.Error))
    return Bad;
  Machine M(InitialMemory, InitialRegs);
  return M.run(Prog, Labels, MaxSteps);
}
