//===- NameSynth.cpp - Fresh-name synthesis for renaming rules --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "isdl/Traverse.h"
#include "support/FaultInjection.h"

#include <cctype>

using namespace extra;
using namespace extra::synth;
using namespace extra::isdl;
using transform::Step;

//===----------------------------------------------------------------------===//
// index-to-pointer
//===----------------------------------------------------------------------===//

std::string synth::pointerNameFor(const std::string &BaseName,
                                  unsigned SiteCount) {
  if (SiteCount <= 1)
    return "ptr";
  // Stem: the base name up to the first qualifier dot ("Src.Base" -> "Src").
  std::string Stem = BaseName.substr(0, BaseName.find('.'));
  if (Stem.empty())
    return "ptr";
  char Initial = static_cast<char>(std::tolower(Stem[0]));
  // One-letter stems keep the whole letter after a 'p' ("A" -> "pa");
  // longer stems contribute their initial before it ("Src" -> "sp").
  if (Stem.size() == 1)
    return std::string("p") + Initial;
  return std::string(1, Initial) + "p";
}

std::vector<Step>
synth::proposeIndexToPointer(const Description &Current) {
  // First pass: collect distinct (base, index) sites in description order.
  std::vector<std::pair<std::string, std::string>> Sites;
  for (const Routine *R : Current.routines())
    forEachExpr(R->Body, [&](const Expr &E) {
      const auto *M = dyn_cast<MemRef>(&E);
      if (!M)
        return;
      const auto *Add = dyn_cast<BinaryExpr>(M->getAddress());
      if (!Add || Add->getOp() != BinaryOp::Add)
        return;
      const auto *B = dyn_cast<VarRef>(Add->getLHS());
      const auto *I = dyn_cast<VarRef>(Add->getRHS());
      if (!B || !I)
        return;
      std::pair<std::string, std::string> Site{B->getName(), I->getName()};
      for (const auto &S : Sites)
        if (S == Site)
          return;
      Sites.push_back(std::move(Site));
    });

  std::vector<Step> Out;
  for (const auto &[Base, Index] : Sites) {
    std::string Ptr = pointerNameFor(Base, static_cast<unsigned>(Sites.size()));
    // The synthesized name must be fresh; fall back to a suffixed variant
    // when the description already uses it.
    std::string Name = Ptr;
    for (unsigned N = 2; Current.findDecl(Name) || Current.findRoutine(Name) ||
                         transform::detail::isReferenced(Current, Name);
         ++N)
      Name = Ptr + std::to_string(N);
    Out.push_back(Step{"index-to-pointer",
                       "",
                       {{"base-var", Base},
                        {"index-var", Index},
                        {"pointer-var", Name}}});
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// count-up-to-down
//===----------------------------------------------------------------------===//

std::vector<Step> synth::proposeCountUpToDown(const Description &Current) {
  std::vector<Step> Out;
  for (const Routine *R : Current.routines()) {
    forEachStmt(R->Body, [&](const Stmt &S) {
      const auto *Loop = dyn_cast<RepeatStmt>(&S);
      if (!Loop || Loop->getBody().empty())
        return;
      // Head: exit_when (i = n) in either operand order.
      const auto *Head = dyn_cast<ExitWhenStmt>(Loop->getBody().front().get());
      if (!Head)
        return;
      const auto *Cmp = dyn_cast<BinaryExpr>(Head->getCond());
      if (!Cmp || Cmp->getOp() != BinaryOp::Eq)
        return;
      const auto *L = dyn_cast<VarRef>(Cmp->getLHS());
      const auto *Rv = dyn_cast<VarRef>(Cmp->getRHS());
      if (!L || !Rv)
        return;
      // Tail: i <- i + 1 for one of the compared variables; the other is
      // the bound. The rule itself re-checks the `i <- 0` initialization
      // and the bound's liveness, so the proposal only needs the shape.
      const auto *Tail = dyn_cast<AssignStmt>(Loop->getBody().back().get());
      if (!Tail)
        return;
      const auto *Target = dyn_cast<VarRef>(Tail->getTarget());
      if (!Target)
        return;
      std::string Index, Bound;
      if (Target->getName() == L->getName())
        Index = L->getName(), Bound = Rv->getName();
      else if (Target->getName() == Rv->getName())
        Index = Rv->getName(), Bound = L->getName();
      else
        return;
      // Reuse the bound as the down counter (the rule's in-place branch):
      // the instruction side counts its own operand register down, so a
      // fresh counter name would only block the final binding.
      Out.push_back(Step{"count-up-to-down",
                         "",
                         {{"index-var", Index},
                          {"bound-var", Bound},
                          {"counter-var", Bound}}});
    });
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// record-exit-cause
//===----------------------------------------------------------------------===//

std::vector<Proposal>
synth::proposeRecordExitCause(const Description &Current,
                              const Vocabulary &Vocab) {
  const Routine *Entry = Current.entryRoutine();
  if (!Entry)
    return {};
  // The rule discriminates a two-exit loop in the entry routine.
  bool TwoExit = false;
  forEachStmt(Entry->Body, [&](const Stmt &S) {
    const auto *Loop = dyn_cast<RepeatStmt>(&S);
    if (!Loop)
      return;
    unsigned Exits = 0;
    for (const StmtPtr &B : Loop->getBody())
      if (isa<ExitWhenStmt>(B.get()))
        ++Exits;
    if (Exits >= 2)
      TwoExit = true;
  });
  if (!TwoExit)
    return {};

  std::vector<Proposal> Out;
  for (const std::string &Flag : Vocab.Flags) {
    if (Current.findDecl(Flag) || Current.findRoutine(Flag) ||
        transform::detail::isReferenced(Current, Flag))
      continue;
    Proposal P;
    P.Steps.push_back(Step{"allocate-temp",
                           "",
                           {{"name", Flag},
                            {"type", "flag"},
                            {"section", "STATE"}}});
    P.Steps.push_back(Step{"record-exit-cause", "", {{"flag", Flag}}});
    P.Rationale = "two-exit loop: record the exit cause in fresh flag '" +
                  Flag + "'";
    Out.push_back(std::move(P));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Combined entry point
//===----------------------------------------------------------------------===//

std::vector<Proposal>
synth::synthesizeProposals(const Description &Current, const Description &Other,
                           bool CurrentIsInstruction,
                           const Vocabulary &Vocab, obs::Metrics *Metrics) {
  // Fault-injection site: a proposal generator crashing. The searcher's
  // containment layer catches the typed exception and records a Faulted
  // outcome instead of dying.
  if (FaultInjector::instance().shouldFail("synth"))
    throw FaultError(
        makeFault(FaultCategory::Synth, "injected fault: synth"));
  std::vector<Proposal> Out = proposeRecordExitCause(Current, Vocab);
  // Multi-site index-to-pointer as one atomic proposal: converting the
  // sites one ply at a time re-derives the names against the *shrunken*
  // site set (the second of pa/pb would come out as "ptr"), so the whole
  // family is proposed together with names minted from the full set.
  {
    std::vector<Step> I2P = proposeIndexToPointer(Current);
    if (I2P.size() >= 2) {
      Proposal P;
      P.Rationale = "convert all " + std::to_string(I2P.size()) +
                    " base+index access patterns to pointers";
      P.Steps = std::move(I2P);
      Out.push_back(std::move(P));
    }
  }
  if (CurrentIsInstruction) {
    std::vector<Proposal> Augments = proposeAugments(Other, Current, Vocab);
    for (Proposal &P : Augments)
      Out.push_back(std::move(P));
  }
  if (Metrics)
    for (const Proposal &P : Out) {
      // Classify by the rule family the proposal leads with; a proposal
      // whose first step is the allocate-temp of a larger macro is named
      // by the rule the temp serves.
      std::string Kind = P.Steps.empty() ? "empty" : P.Steps.front().Rule;
      if (Kind == "allocate-temp" && P.Steps.size() > 1)
        Kind = P.Steps[1].Rule;
      if (Kind == "index-to-pointer" && P.Steps.size() > 1)
        Kind = "index-to-pointer-family";
      Metrics->counter("synth.proposal." + Kind).add();
    }
  return Out;
}
