//===- Synth.h - Rule-argument synthesis from divergence reports -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the structured failure of a common-form match into concrete rule
/// arguments. The 1982 user supplied these by hand: fresh variable names
/// for the renaming loop transformations (`index-to-pointer`,
/// `count-up-to-down`, `record-exit-cause`) and the augment code text for
/// `add-prologue` / `replace-output`. The synthesizers here recover both
/// from the isdl::DivergenceReport of a failed matchDescriptions call:
///
///  * *name synthesis* scans the description for the syntactic shapes the
///    renaming rules rewrite (base+index memory accesses, up-counting
///    loops, two-exit loops) and derives names from the shapes themselves;
///
///  * *code synthesis* prints the operator side's unmatched statements
///    through the partial binding — every operator name replaced by its
///    instruction-side partner — and offers the text as add-prologue /
///    replace-output arguments for the instruction side.
///
/// Every proposal is an ordinary transform::Script: the search and the
/// advisor apply it through the verifying engine like any other step, so
/// synthesis can only ever *suggest*, never smuggle in an unverified
/// rewrite.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SYNTH_SYNTH_H
#define EXTRA_SYNTH_SYNTH_H

#include "isdl/Equiv.h"
#include "obs/Metrics.h"
#include "transform/Transform.h"

#include <map>
#include <string>
#include <vector>

namespace extra {
namespace synth {

/// One synthesized candidate: a short script applied atomically (an
/// allocate-temp and the augment that uses it stand or fall together).
struct Proposal {
  transform::Script Steps;
  std::string Rationale;
};

/// The naming convention for a temporary that saves one machine register
/// across a loop (the `temp <- di` idiom of the 8086 string analyses).
struct TempConvention {
  std::string Name;    ///< allocate-temp name argument.
  std::string Type;    ///< allocate-temp type argument.
  std::string Section; ///< allocate-temp section argument.
};

/// Synthesis vocabulary: naming conventions that cannot be derived from
/// the descriptions alone. analysis::Priors mines these from the recorded
/// derivation scripts; callers without a corpus can pass defaults.
struct Vocabulary {
  /// Saved-register name -> temp convention (keyed by the register the
  /// prologue reads, e.g. "di" -> {temp, bits:15:0, STATE}).
  std::map<std::string, TempConvention> Temps;
  /// Fresh-flag name palette for record-exit-cause.
  std::vector<std::string> Flags;
};

/// Pointer name for an index-to-pointer rewrite of a memory access with
/// base \p BaseName, given \p SiteCount base+index sites in the whole
/// description: a single site is simply "ptr"; with several, the name is
/// derived from the base's stem ("Src.Base" -> "sp", "A.Base" -> "pa").
std::string pointerNameFor(const std::string &BaseName, unsigned SiteCount);

/// index-to-pointer steps for every base+index memory access in
/// \p Current, with synthesized pointer names. One step per distinct
/// (base, index) pair, deterministic order.
std::vector<transform::Step>
proposeIndexToPointer(const isdl::Description &Current);

/// count-up-to-down steps for every `i <- 0 ... exit_when (i = n) ...
/// i <- i + 1` loop in \p Current. The counter name reuses the bound
/// (the rule's in-place branch), so no fresh name is needed.
std::vector<transform::Step>
proposeCountUpToDown(const isdl::Description &Current);

/// allocate-temp + record-exit-cause macros for every two-exit loop in
/// \p Current's entry routine, one per fresh flag name in \p Vocab.
std::vector<Proposal> proposeRecordExitCause(const isdl::Description &Current,
                                             const Vocabulary &Vocab);

/// Augment-code proposals for the *instruction* side: runs the common-form
/// match of \p Operator against \p Instruction, and when it fails inside
/// the entry bodies, prints the operator's unmatched statements through
/// the partial binding as add-prologue / replace-output arguments.
/// Operator names with no instruction partner abort the affected
/// proposal, except a saved-value assignment target, which becomes a
/// fresh temporary via \p Vocab.
std::vector<Proposal> proposeAugments(const isdl::Description &Operator,
                                      const isdl::Description &Instruction,
                                      const Vocabulary &Vocab);

/// All multi-step proposals for one side of a two-sided search state.
/// \p CurrentIsInstruction gates code synthesis: augments edit the
/// instruction side only. (Single-step name proposals are exposed above
/// and reach the searcher through analysis::candidateSteps.)
///
/// With \p Metrics installed (optional, non-owning), each generated
/// proposal increments `synth.proposal.<kind>`, where kind is the
/// proposal's leading rule family (record-exit-cause,
/// index-to-pointer-family, add-prologue, replace-output, ...). Whether
/// a proposal then survives atomic application is the caller's to
/// record (`synth.accept` / `synth.reject` in the searcher).
std::vector<Proposal> synthesizeProposals(const isdl::Description &Current,
                                          const isdl::Description &Other,
                                          bool CurrentIsInstruction,
                                          const Vocabulary &Vocab,
                                          obs::Metrics *Metrics = nullptr);

} // namespace synth
} // namespace extra

#endif // EXTRA_SYNTH_SYNTH_H
