//===- CodeSynth.cpp - Augment-code synthesis from divergences --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// The counterexample-guided half of synthesis: when the common-form match
/// of operator against instruction fails inside the entry bodies, the
/// operator's unmatched statements *are* the code the instruction is
/// missing. Printing them with every operator name replaced by its bound
/// instruction partner yields candidate add-prologue / replace-output
/// arguments — the same texts the 1982 user typed by hand.
///
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "isdl/Printer.h"
#include "isdl/Traverse.h"

#include <algorithm>

using namespace extra;
using namespace extra::synth;
using namespace extra::isdl;
using transform::Step;

namespace {

/// Greedily matches statements inside the two spans pairwise, committing
/// every binding a successful pair contributes. The loops the two sides
/// share (identical but for names) sit inside the spans whenever the
/// divergence is about surrounding prologue/epilogue code; aligning them
/// recovers bindings — loop flags, access routines — that the failed
/// prefix walk never reached.
void alignInterior(const StmtList &BodyA, const StmtList &BodyB,
                   const StmtSpan &SA, const StmtSpan &SB, NameBinding &B) {
  std::vector<bool> UsedB(BodyB.size(), false);
  for (size_t I = SA.Begin; I < SA.End && I < BodyA.size(); ++I)
    for (size_t J = SB.Begin; J < SB.End && J < BodyB.size(); ++J) {
      if (UsedB[J])
        continue;
      NameBinding Trial = B;
      if (matchStmt(*BodyA[I], *BodyB[J], Trial)) {
        B = std::move(Trial);
        UsedB[J] = true;
        break;
      }
    }
}

/// Prints statements [Begin, End) of \p Body with every variable and
/// routine name replaced by its B-side partner under \p B. Returns false
/// when any referenced name has no partner (the code would not survive
/// the augment rules' interface check).
bool printMapped(const StmtList &Body, size_t Begin, size_t End,
                 const NameBinding &B, std::string &Out) {
  StmtList Clones;
  for (size_t I = Begin; I < End; ++I)
    Clones.push_back(Body[I]->clone());

  std::vector<std::pair<std::string, std::string>> VarPairs, CallPairs;
  std::set<std::string> Vars = referencedVars(Clones);
  std::set<std::string> Calls = calledRoutines(Clones);
  for (const std::string &V : Vars) {
    std::string Partner = B.lookupA(V);
    if (Partner.empty())
      return false;
    VarPairs.emplace_back(V, Partner);
  }
  for (const std::string &C : Calls) {
    std::string Partner = B.lookupA(C);
    if (Partner.empty())
      return false;
    CallPairs.emplace_back(C, Partner);
  }

  // Two-phase rename through placeholders: the operator and instruction
  // namespaces may overlap (both sides can use an `r0`), so renaming
  // directly could alias two names into one.
  for (size_t I = 0; I < VarPairs.size(); ++I)
    renameVar(Clones, VarPairs[I].first, "\x01v" + std::to_string(I));
  for (size_t I = 0; I < CallPairs.size(); ++I)
    renameCall(Clones, CallPairs[I].first, "\x01c" + std::to_string(I));
  for (size_t I = 0; I < VarPairs.size(); ++I)
    renameVar(Clones, "\x01v" + std::to_string(I), VarPairs[I].second);
  for (size_t I = 0; I < CallPairs.size(); ++I)
    renameCall(Clones, "\x01c" + std::to_string(I), CallPairs[I].second);

  Out = printStmts(Clones);
  // Augment code arguments live in one-line Step argument maps.
  std::replace(Out.begin(), Out.end(), '\n', ' ');
  while (!Out.empty() && Out.back() == ' ')
    Out.pop_back();
  return !Out.empty();
}

/// True when \p S contains an output statement at any depth.
bool containsOutput(const Stmt &S) {
  bool Found = false;
  forEachStmt(S, [&](const Stmt &Inner) {
    if (isa<OutputStmt>(&Inner))
      Found = true;
  });
  return Found;
}

/// True when variable \p Var is mentioned by any of Body[Begin, End).
bool readInRange(const StmtList &Body, size_t Begin, size_t End,
                 const std::string &Var) {
  for (size_t I = Begin; I < End && I < Body.size(); ++I)
    if (mentionsVar(*Body[I], Var))
      return true;
  return false;
}

} // namespace

std::vector<Proposal> synth::proposeAugments(const Description &Operator,
                                             const Description &Instruction,
                                             const Vocabulary &Vocab) {
  MatchResult M = matchDescriptions(Operator, Instruction);
  if (M.Matched || !M.Divergence.Valid)
    return {};
  const DivergenceReport &R = M.Divergence;

  // The augment rules edit the instruction's entry routine; divergences
  // inside access routines are not code synthesis can bridge.
  const Routine *EntryA = Operator.entryRoutine();
  const Routine *EntryB = Instruction.entryRoutine();
  if (!EntryA || !EntryB || R.RoutineA != EntryA->Name ||
      R.RoutineB != EntryB->Name)
    return {};
  const StmtList &BodyA = EntryA->Body;
  if (R.SpanA.empty() || R.SpanA.End > BodyA.size())
    return {};

  NameBinding Binding = R.Partial;
  alignInterior(BodyA, EntryB->Body, R.SpanA, R.SpanB, Binding);

  // --- Prologue: leading saved-value assignments of the operator span.
  //
  // A statement `v <- rhs` whose value still matters later in the span
  // (the live-save filter — cmpc3's counterpart has a dead save that must
  // *not* be materialized) and whose rhs maps through the binding is a
  // value the instruction forgot to keep. When v itself has no partner,
  // it names a fresh temporary, using the convention mined for the saved
  // register (di -> temp, r1 -> rb, ...).
  transform::Script AllocSteps;
  std::vector<std::string> PrologueLines;
  NameBinding Extended = Binding; // Binding + fresh-temp pairs.
  size_t Cursor = R.SpanA.Begin;
  for (; Cursor < R.SpanA.End; ++Cursor) {
    const auto *Assign = dyn_cast<AssignStmt>(BodyA[Cursor].get());
    if (!Assign)
      break;
    const auto *Target = dyn_cast<VarRef>(Assign->getTarget());
    if (!Target)
      break;
    if (!readInRange(BodyA, Cursor + 1, R.SpanA.End, Target->getName()))
      break; // Dead save: materializing it would add unmatchable code.

    // The saved value must map as-is.
    bool ValueMaps = true;
    forEachExpr(*Assign->getValue(), [&](const Expr &E) {
      if (const auto *V = dyn_cast<VarRef>(&E))
        if (Extended.lookupA(V->getName()).empty())
          ValueMaps = false;
      if (const auto *C = dyn_cast<CallExpr>(&E))
        if (Extended.lookupA(C->getCallee()).empty())
          ValueMaps = false;
    });
    if (!ValueMaps)
      break;

    std::string TargetPartner = Extended.lookupA(Target->getName());
    if (TargetPartner.empty()) {
      // Fresh temporary named by the convention for the saved register.
      const auto *Rhs = dyn_cast<VarRef>(Assign->getValue());
      if (!Rhs)
        break;
      std::string Register = Binding.lookupA(Rhs->getName());
      auto Conv = Vocab.Temps.find(Register);
      if (Conv == Vocab.Temps.end())
        break;
      const TempConvention &T = Conv->second;
      if (Instruction.findDecl(T.Name) || Instruction.findRoutine(T.Name) ||
          transform::detail::isReferenced(Instruction, T.Name))
        break;
      if (!Extended.bind(Target->getName(), T.Name))
        break;
      AllocSteps.push_back(Step{"allocate-temp",
                                "",
                                {{"name", T.Name},
                                 {"type", T.Type},
                                 {"section", T.Section}}});
    }
    std::string Line;
    if (!printMapped(BodyA, Cursor, Cursor + 1, Extended, Line))
      break;
    PrologueLines.push_back(std::move(Line));
  }

  std::string PrologueCode;
  for (const std::string &L : PrologueLines) {
    if (!PrologueCode.empty())
      PrologueCode += ' ';
    PrologueCode += L;
  }

  // --- Epilogue: the span suffix from the first output-bearing statement.
  size_t EpilogueBegin = R.SpanA.End;
  for (size_t I = R.SpanA.Begin; I < R.SpanA.End; ++I)
    if (containsOutput(*BodyA[I])) {
      EpilogueBegin = I;
      break;
    }

  std::string EpiloguePlain, EpilogueWithTemps;
  bool HavePlain =
      EpilogueBegin < R.SpanA.End &&
      printMapped(BodyA, EpilogueBegin, R.SpanA.End, Binding, EpiloguePlain);
  bool HaveWithTemps =
      EpilogueBegin < R.SpanA.End && !PrologueCode.empty() &&
      printMapped(BodyA, EpilogueBegin, R.SpanA.End, Extended,
                  EpilogueWithTemps);

  std::vector<Proposal> Out;
  if (!PrologueCode.empty()) {
    Proposal P;
    P.Steps = AllocSteps;
    P.Steps.push_back(Step{"add-prologue", "", {{"code", PrologueCode}}});
    P.Rationale = "operator keeps a value the instruction drops; save it "
                  "in a prologue";
    Out.push_back(std::move(P));
  }
  if (HavePlain) {
    Proposal P;
    P.Steps.push_back(Step{"replace-output", "", {{"code", EpiloguePlain}}});
    P.Rationale = "replace raw machine-state outputs with the operator's "
                  "epilogue, names mapped through the binding";
    Out.push_back(std::move(P));
  }
  if (HaveWithTemps) {
    Proposal P;
    P.Steps = AllocSteps;
    P.Steps.push_back(Step{"add-prologue", "", {{"code", PrologueCode}}});
    P.Steps.push_back(
        Step{"replace-output", "", {{"code", EpilogueWithTemps}}});
    P.Rationale = "save the dropped value in a prologue and rebuild the "
                  "operator's epilogue from it";
    Out.push_back(std::move(P));
  }
  return Out;
}
