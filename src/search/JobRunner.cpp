//===- JobRunner.cpp - Contained execution of one discovery job -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/JobRunner.h"

#include "support/FaultInjection.h"

#include <chrono>
#include <thread>

using namespace extra;
using namespace extra::search;

namespace {

using Clock = std::chrono::steady_clock;

/// One contained attempt: discoverAndVerify under a catch-all, with an
/// optional watchdog thread that trips the search's cooperative cancel
/// flag when the case overshoots its time budget by half (plus fixed
/// slack for replay verification). The watchdog is a backstop: the
/// searcher polls its own deadline, but a single very long expansion (or
/// an injected hang) can starve those checks.
struct Attempt {
  DiscoveryResult Discovery;
  CaseOutcome Outcome = CaseOutcome::Faulted;
  FaultCategory Category = FaultCategory::None;
  std::string FaultMessage;
  double WallMs = 0;
};

Attempt runAttempt(const BatchCase &C, const SearchLimits &Limits,
                   bool Watchdog, std::atomic<bool> *ExternalCancel) {
  Attempt A;
  SearchLimits L = Limits;

  std::atomic<bool> LocalCancel{false};
  // The external flag (when given) doubles as the watchdog's target, so
  // a service shutdown and a watchdog trip stop the search through the
  // same cooperative path.
  std::atomic<bool> *Cancel = ExternalCancel ? ExternalCancel : &LocalCancel;
  std::atomic<bool> Done{false};
  std::atomic<bool> WatchdogFired{false};
  std::thread Monitor;
  if (ExternalCancel)
    L.Cancel = ExternalCancel;
  // The monitor thread doubles as the telemetry sampler: when the job
  // carries a ProgressPublisher, each 20ms tick diffs the published
  // expansion count and writes expansions/sec into the publisher's rate
  // slot (the searcher itself never reads a clock for telemetry). It
  // runs whenever there is a watchdog to arm or a publisher to sample.
  obs::ProgressPublisher *Progress = L.Progress;
  if (Watchdog || Progress) {
    if (Watchdog)
      L.Cancel = Cancel;
    uint64_t DeadlineMs = L.TimeBudgetMs + L.TimeBudgetMs / 2 + 1000;
    Monitor = std::thread([Cancel, &Done, &WatchdogFired, DeadlineMs,
                           Watchdog, Progress]() {
      Clock::time_point Deadline =
          Clock::now() + std::chrono::milliseconds(DeadlineMs);
      Clock::time_point WindowStart = Clock::now();
      uint64_t WindowExpanded = Progress ? Progress->expandedNow() : 0;
      bool Armed = Watchdog;
      while (!Done.load(std::memory_order_acquire)) {
        if (Armed && Clock::now() >= Deadline) {
          WatchdogFired.store(true, std::memory_order_release);
          Cancel->store(true, std::memory_order_release);
          Armed = false;
          if (!Progress)
            break;
        }
        if (Progress) {
          Clock::time_point Now = Clock::now();
          double ElapsedS =
              std::chrono::duration<double>(Now - WindowStart).count();
          // ~250ms windows: long enough to smooth the 20ms tick noise,
          // short enough to track a widening round kicking in.
          if (ElapsedS >= 0.25) {
            uint64_t Expanded = Progress->expandedNow();
            Progress->setRate(
                double(Expanded - WindowExpanded) / ElapsedS);
            WindowStart = Now;
            WindowExpanded = Expanded;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  Clock::time_point Start = Clock::now();
  bool Caught = false;
  try {
    A.Discovery = discoverAndVerify(C.OperatorId, C.InstructionId, L, C.M);
  } catch (const FaultError &FE) {
    Caught = true;
    A.Category = FE.fault().Category;
    A.FaultMessage = FE.fault().Message;
  } catch (const std::exception &E) {
    Caught = true;
    A.Category = FaultCategory::Internal;
    A.FaultMessage = E.what();
  } catch (...) {
    Caught = true;
    A.Category = FaultCategory::Internal;
    A.FaultMessage = "unknown exception";
  }
  A.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();

  Done.store(true, std::memory_order_release);
  if (Monitor.joinable())
    Monitor.join();

  // Classify. The lattice is ordered: a caught or recorded fault beats
  // a timeout beats plain exhaustion, and success levels need no tie
  // breaking (a found derivation cannot also have faulted).
  const SearchOutcome &O = A.Discovery.Outcome;
  bool ExternallyCancelled =
      ExternalCancel && ExternalCancel->load(std::memory_order_acquire);
  if (A.Discovery.Verified) {
    A.Outcome = CaseOutcome::Verified;
  } else if (O.Found) {
    A.Outcome = CaseOutcome::Discovered;
  } else if (Caught || O.SearchFault.isFault()) {
    A.Outcome = CaseOutcome::Faulted;
    if (!Caught) {
      A.Category = O.SearchFault.Category;
      A.FaultMessage = O.SearchFault.Message;
    }
  } else if (O.Stats.TimedOut || WatchdogFired.load() || ExternallyCancelled) {
    A.Outcome = CaseOutcome::TimedOut;
  } else {
    A.Outcome = CaseOutcome::Exhausted;
  }
  return A;
}

} // namespace

JobExecution search::executeJob(const BatchCase &C, const JobPolicy &Policy) {
  // Per-job limits: the trace label defaults to the case id, so all jobs
  // can share one sink and still be told apart in the postmortem.
  SearchLimits L = Policy.Limits;
  if (L.TraceLabel.empty())
    L.TraceLabel = C.Id;

  // The injection scope is the case id, so whether a site fires in this
  // job depends only on (seed, site, case, per-case counter) — never on
  // which worker ran it or in what order.
  Attempt Kept;
  bool Retried = false;
  {
    FaultScope Scope(C.Id);
    Kept = runAttempt(C, L, Policy.Watchdog, Policy.ExternalCancel);
  }
  bool Cancelled = Policy.ExternalCancel &&
                   Policy.ExternalCancel->load(std::memory_order_acquire);
  if (!Cancelled && Policy.DegradedRetry &&
      (Kept.Outcome == CaseOutcome::TimedOut ||
       Kept.Outcome == CaseOutcome::Faulted)) {
    // One automatic retry at half beam and half nodes: a cheaper probe
    // that often still lands the short derivations, under a distinct
    // injection scope so a deterministically injected first-attempt
    // fault does not deterministically recur.
    SearchLimits Degraded = L;
    Degraded.BeamWidth = std::max(1u, L.BeamWidth / 2);
    Degraded.MaxNodes = std::max<uint64_t>(1000, L.MaxNodes / 2);
    Retried = true;
    FaultScope Scope(C.Id + "#retry1");
    Attempt Again = runAttempt(C, Degraded, Policy.Watchdog,
                               Policy.ExternalCancel);
    Again.WallMs += Kept.WallMs;
    if (caseOutcomeRank(Again.Outcome) > caseOutcomeRank(Kept.Outcome))
      Kept = std::move(Again);
    else
      Kept.WallMs = Again.WallMs; // Total spent either way.
  }

  JobExecution E;
  E.Discovery = std::move(Kept.Discovery);
  E.Outcome = Kept.Outcome;
  E.Category = Kept.Category;
  E.FaultMessage = std::move(Kept.FaultMessage);
  E.Retried = Retried;
  E.WallMs = Kept.WallMs;
  // After the retry decision: a degraded second attempt reuses the same
  // publisher, so Done must not be raised between attempts.
  if (Policy.Limits.Progress)
    Policy.Limits.Progress->markDone();
  return E;
}

CheckpointRecord search::executionRecord(const BatchCase &C,
                                         const JobExecution &E) {
  CheckpointRecord R;
  R.Case = C.Id;
  R.Outcome = E.Outcome;
  R.Category = E.Category;
  R.FaultMessage = E.FaultMessage;
  const SearchOutcome &O = E.Discovery.Outcome;
  R.Found = O.Found;
  R.Verified = E.Discovery.Verified;
  R.Retried = E.Retried;
  if (O.Found) {
    R.OpSteps = O.OperatorScript.size();
    R.InstSteps = O.InstructionScript.size();
  } else if (O.Partial.Valid) {
    R.OpSteps = O.Partial.OperatorScript.size();
    R.InstSteps = O.Partial.InstructionScript.size();
  }
  R.Nodes = O.Stats.NodesExpanded;
  R.PartialDistance = (!O.Found && O.Partial.Valid)
                          ? static_cast<int64_t>(O.Partial.Distance)
                          : -1;
  R.WallMs = E.WallMs;
  return R;
}
