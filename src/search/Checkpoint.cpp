//===- Checkpoint.cpp - Typed case outcomes and batch checkpoints -*- C++ -===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/Checkpoint.h"

#include "obs/Trace.h"
#include "obs/TraceFile.h"
#include "support/VersionedFile.h"

#include <cstdlib>
#include <fstream>
#include <map>

using namespace extra;
using namespace extra::search;

const char *search::caseOutcomeName(CaseOutcome O) {
  switch (O) {
  case CaseOutcome::Verified:
    return "verified";
  case CaseOutcome::Discovered:
    return "discovered";
  case CaseOutcome::Exhausted:
    return "exhausted";
  case CaseOutcome::TimedOut:
    return "timed-out";
  case CaseOutcome::Faulted:
    return "faulted";
  }
  return "?";
}

std::optional<CaseOutcome> search::caseOutcomeFromName(std::string_view Name) {
  for (CaseOutcome O :
       {CaseOutcome::Verified, CaseOutcome::Discovered, CaseOutcome::Exhausted,
        CaseOutcome::TimedOut, CaseOutcome::Faulted})
    if (Name == caseOutcomeName(O))
      return O;
  return std::nullopt;
}

int search::caseOutcomeRank(CaseOutcome O) {
  switch (O) {
  case CaseOutcome::Verified:
    return 4;
  case CaseOutcome::Discovered:
    return 3;
  case CaseOutcome::Exhausted:
    return 2;
  case CaseOutcome::TimedOut:
    return 1;
  case CaseOutcome::Faulted:
    return 0;
  }
  return 0;
}

std::string CheckpointRecord::toJsonLine() const {
  std::string Out = "{\"case\":\"" + obs::jsonEscape(Case) + "\"";
  Out += ",\"outcome\":\"" + std::string(caseOutcomeName(Outcome)) + "\"";
  Out += ",\"fault_category\":\"" + std::string(faultCategoryName(Category)) +
         "\"";
  Out += ",\"fault_message\":\"" + obs::jsonEscape(FaultMessage) + "\"";
  Out += std::string(",\"found\":") + (Found ? "true" : "false");
  Out += std::string(",\"verified\":") + (Verified ? "true" : "false");
  Out += std::string(",\"retried\":") + (Retried ? "true" : "false");
  Out += ",\"op_steps\":" + std::to_string(OpSteps);
  Out += ",\"inst_steps\":" + std::to_string(InstSteps);
  Out += ",\"nodes\":" + std::to_string(Nodes);
  Out += ",\"partial_distance\":" + std::to_string(PartialDistance);
  Out += ",\"wall_ms\":" + std::to_string(WallMs);
  Out += "}";
  return Out;
}

std::optional<CheckpointRecord>
CheckpointRecord::fromJsonLine(std::string_view Line) {
  auto Fields = obs::parseJsonObjectLine(Line);
  if (!Fields)
    return std::nullopt;
  auto Get = [&](const char *Key) -> std::string {
    auto It = Fields->find(Key);
    return It == Fields->end() ? std::string() : It->second;
  };
  CheckpointRecord R;
  R.Case = Get("case");
  if (R.Case.empty())
    return std::nullopt;
  auto O = caseOutcomeFromName(Get("outcome"));
  if (!O)
    return std::nullopt;
  R.Outcome = *O;
  R.Category = faultCategoryFromName(Get("fault_category"));
  R.FaultMessage = Get("fault_message");
  R.Found = Get("found") == "true";
  R.Verified = Get("verified") == "true";
  R.Retried = Get("retried") == "true";
  R.OpSteps = std::strtoull(Get("op_steps").c_str(), nullptr, 10);
  R.InstSteps = std::strtoull(Get("inst_steps").c_str(), nullptr, 10);
  R.Nodes = std::strtoull(Get("nodes").c_str(), nullptr, 10);
  R.PartialDistance = std::strtoll(Get("partial_distance").c_str(), nullptr,
                                   10);
  R.WallMs = std::strtod(Get("wall_ms").c_str(), nullptr);
  return R;
}

std::string CheckpointRecord::reportLine() const {
  std::string Out = "  " + Case + ": " + caseOutcomeName(Outcome);
  std::string Detail;
  auto Append = [&Detail](const std::string &Part) {
    Detail += (Detail.empty() ? "" : ", ") + Part;
  };
  if (Found)
    Append("steps " + std::to_string(OpSteps) + "+" +
           std::to_string(InstSteps));
  else if (OpSteps + InstSteps > 0)
    Append("partial steps " + std::to_string(OpSteps) + "+" +
           std::to_string(InstSteps));
  if (PartialDistance >= 0)
    Append("partial distance " + std::to_string(PartialDistance));
  if (Nodes > 0)
    Append("nodes " + std::to_string(Nodes));
  if (Category != FaultCategory::None)
    Append(std::string(faultCategoryName(Category)) + ": " + FaultMessage);
  if (!Detail.empty())
    Out += " (" + Detail + ")";
  if (Retried)
    Out += " [retried]";
  return Out;
}

std::string search::versionHeaderLine(std::string_view Format,
                                      uint32_t Version) {
  return support::versionHeaderLine(Format, Version);
}

std::optional<std::pair<std::string, uint32_t>>
search::parseVersionHeader(std::string_view Line) {
  return support::parseVersionHeader(Line);
}

/// The checkpoint file format, as the shared versioned-file layer sees it.
static support::FileFormat checkpointFormat() {
  return {kCheckpointFormat, kCheckpointVersion, "checkpoint"};
}

bool search::appendCheckpoint(const std::string &Path,
                              const CheckpointRecord &R, std::string *Error) {
  auto Ok = support::appendVersionedLine(Path, checkpointFormat(),
                                         R.toJsonLine());
  if (!Ok) {
    if (Error)
      *Error = Ok.fault().Message;
    return false;
  }
  return true;
}

std::vector<CheckpointRecord> search::readCheckpoints(const std::string &Path,
                                                      Fault *F) {
  auto Lines = support::readVersionedLines(Path, checkpointFormat());
  if (!Lines) {
    if (F)
      *F = Lines.fault();
    return {};
  }
  // Later records win: a resumed run that re-ran a case (e.g. under a
  // different policy) supersedes the earlier line.
  std::vector<CheckpointRecord> Out;
  std::map<std::string, size_t> ByCase;
  for (const std::string &Line : *Lines) {
    auto R = CheckpointRecord::fromJsonLine(Line);
    if (!R)
      continue; // Torn trailing write from a killed run — skip.
    auto It = ByCase.find(R->Case);
    if (It == ByCase.end()) {
      ByCase[R->Case] = Out.size();
      Out.push_back(std::move(*R));
    } else {
      Out[It->second] = std::move(*R);
    }
  }
  return Out;
}

Expected<std::vector<CheckpointRecord>>
search::readCheckpointsChecked(const std::string &Path) {
  Fault F;
  std::vector<CheckpointRecord> Out = readCheckpoints(Path, &F);
  if (F.isFault())
    return F;
  return Out;
}
