//===- Searcher.cpp - Autonomous derivation-script discovery ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/Searcher.h"

#include "analysis/Advisor.h"
#include "analysis/DiffCheck.h"
#include "analysis/Priors.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "isdl/Intern.h"
#include "isdl/Traverse.h"
#include "search/Canon.h"
#include "support/StringUtil.h"
#include "synth/Synth.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>

using namespace extra;
using namespace extra::search;
using namespace extra::isdl;
using transform::Script;
using transform::Step;

//===----------------------------------------------------------------------===//
// Candidate enumeration
//===----------------------------------------------------------------------===//

namespace {

/// Simplification rules worth trying with no arguments that the advisor's
/// interactive pool leaves out (the advisor optimizes for few, plausible
/// suggestions; the searcher wants coverage).
const char *ExtraZeroArgRules[] = {
    "fold-not",  "fold-neg", "fold-add",  "fold-sub",
    "fold-mul",  "fold-div", "fold-and",  "fold-or",
    "fold-compare", "and-true", "or-true", "mul-zero",
    "neg-neg",   "add-zero", "sub-zero",  "sub-self",
    "mul-one",   "and-false", "or-false", "exit-when-false-elim",
};

/// Zero-arg rules that are worth retrying scoped to each non-entry
/// routine (the engine's default routine is the entry; flag pinning often
/// leaves foldable conditionals inside access routines, cf. the movsb
/// `fetch` cleanup).
const char *PerRoutineRules[] = {
    "if-false-elim", "if-true-elim", "if-not-elim", "fold-not",
    "not-not",       "empty-if-elim", "and-true",   "and-false",
    "or-false",      "or-true",       "exit-when-false-elim",
};

/// Simplification rules driven to a fixed point after pinning an operand
/// (the closure half of the pin-and-simplify macro move below). Every
/// rule here strictly shrinks the description or removes a `not`, so the
/// closure terminates.
const char *ClosureRules[] = {
    "fold-not",      "fold-neg",      "fold-add",
    "fold-sub",      "fold-mul",      "fold-div",
    "fold-and",      "fold-or",       "fold-compare",
    "not-not",       "and-true",      "and-false",
    "or-true",       "or-false",      "add-zero",
    "sub-zero",      "mul-one",       "mul-zero",
    "neg-neg",       "if-true-elim",  "if-false-elim",
    "if-not-elim",   "empty-if-elim", "exit-when-false-elim",
    "dead-loop-elim",
};

/// The entry routine's input statement, or null.
const InputStmt *entryInput(const Description &D) {
  const Routine *Entry = D.entryRoutine();
  if (!Entry)
    return nullptr;
  for (const StmtPtr &S : Entry->Body)
    if (const auto *In = dyn_cast<InputStmt>(S.get()))
      return In;
  return nullptr;
}

/// True when the entry routine contains an output statement at any depth.
bool hasOutput(const Description &D) {
  const Routine *Entry = D.entryRoutine();
  if (!Entry)
    return false;
  bool Found = false;
  forEachStmt(Entry->Body, [&](const Stmt &S) {
    if (isa<OutputStmt>(&S))
      Found = true;
  });
  return Found;
}

void permutations(size_t N, std::vector<std::string> &Out) {
  std::vector<size_t> Idx(N);
  for (size_t I = 0; I < N; ++I)
    Idx[I] = I;
  do {
    bool Identity = true;
    std::string Text;
    for (size_t I = 0; I < N; ++I) {
      Identity = Identity && Idx[I] == I;
      if (I)
        Text += ',';
      Text += std::to_string(Idx[I]);
    }
    if (!Identity)
      Out.push_back(Text);
  } while (std::next_permutation(Idx.begin(), Idx.end()));
}

} // namespace

std::vector<Step> search::enumerateCandidates(const Description &Current,
                                              const Description &Other,
                                              bool CurrentIsInstruction) {
  // The advisor's interactive pool is the base layer. Pinning proposals
  // are stripped on the operator side: every recorded operator script
  // gets by without fix-operand-value, and allowing it there lets the
  // search pin a loop count to zero on *both* sides and "discover" the
  // matching empty husks — verified, but with constraints no assembler
  // could use.
  std::vector<Step> Out = analysis::candidateSteps(Current);
  if (!CurrentIsInstruction)
    Out.erase(std::remove_if(Out.begin(), Out.end(),
                             [](const Step &S) {
                               return S.Rule == "fix-operand-value";
                             }),
              Out.end());

  for (const char *R : ExtraZeroArgRules)
    Out.push_back(Step{R, "", {}});

  // Re-scope cleanup rules to every non-entry routine.
  const Routine *Entry = Current.entryRoutine();
  for (const Routine *R : Current.routines()) {
    if (R == Entry)
      continue;
    for (const char *Rule : PerRoutineRules)
      Out.push_back(Step{Rule, R->Name, {}});
  }

  // Operand pinning over *every* input operand (the advisor pins flags
  // only; movc5/stosb-style derivations pin counts and fill bytes too).
  if (CurrentIsInstruction)
    if (const InputStmt *In = entryInput(Current))
      for (const std::string &Operand : In->getTargets())
        for (const char *Value : {"0", "1"})
          Out.push_back(Step{"fix-operand-value",
                             "",
                             {{"operand", Operand}, {"value", Value}}});

  // Input permutations: operand binding is positional, so operand order
  // is part of the interface. Arity stays tiny (<= 4 in the library), so
  // the full permutation group is affordable.
  if (const InputStmt *In = entryInput(Current)) {
    size_t N = In->getTargets().size();
    if (N >= 2 && N <= 4) {
      std::vector<std::string> Orders;
      permutations(N, Orders);
      for (const std::string &Order : Orders)
        Out.push_back(Step{"permute-inputs", "", {{"order", Order}}});
    }
  }

  // Dropping raw machine-state outputs, aimed: only proposed when the
  // other side computes no result.
  if (hasOutput(Current) && !hasOutput(Other))
    Out.push_back(Step{"replace-output", "", {{"code", "none"}}});

  // Occurrence-parameterized rewrites.
  for (const char *Occ : {"0", "1", "2"}) {
    Out.push_back(Step{"swap-relational-operands", "", {{"occurrence", Occ}}});
    Out.push_back(Step{"reverse-conditional", "", {{"occurrence", Occ}}});
    for (const char *Op : {"+", "*"})
      Out.push_back(
          Step{"swap-commutative", "", {{"op", Op}, {"occurrence", Occ}}});
  }

  return Out;
}

//===----------------------------------------------------------------------===//
// Beam search over two-sided states
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

struct Node {
  /// Copy-on-write handles to the two sides: a child shares its untouched
  /// side with its parent (a refcount bump, not a clone), and the handle
  /// payload caches the side's canonical fingerprint and feature vector.
  DescHandle Op, Inst;
  uint64_t FpOp = 0, FpInst = 0;
  Script OpScript, InstScript;
  constraint::ConstraintSet Constraints;
  unsigned Distance = 0;
  /// Beam rank: Distance + LengthLambda * total script length. Among
  /// states equally close to common form, the one that spent fewer steps
  /// getting there survives truncation — and the first goal reached rides
  /// the shortest script.
  double Score = 0;
  /// Provenance for trace events (filled only when tracing is on): the
  /// driving rule of the step burst that produced this node and the side
  /// it applied to (0 = operator, 1 = instruction).
  std::string ViaRule;
  int ViaSide = 0;
};

/// Shared mutable context of one searchDerivation call.
struct SearchContext {
  const SearchLimits &Limits;
  SearchStats Stats;
  Clock::time_point Deadline;
  analysis::DiffOptions VerifyOpts;

  /// The closest-to-common-form state seen so far (anytime result).
  /// Handles share the node's versions, so recording an improvement is a
  /// refcount bump, never a clone.
  struct BestLine {
    bool Valid = false;
    DescHandle Op, Inst;
    uint64_t FpOp = 0, FpInst = 0;
    unsigned Distance = 0;
    unsigned Depth = 0, Round = 0;
    Script OpScript, InstScript;
    std::string ViaRule;
    int ViaSide = 0;
  } Best;

  /// Candidate/proposal enumeration caches. Keyed by the *name-sensitive*
  /// structural identity from the interner (isdl::Interner::identity), not
  /// the rename-invariant fingerprint: enumerated steps carry concrete
  /// routine and operand names, and with score-aware re-opening two
  /// fingerprint-equal states can differ in fresh-name choices. Widening
  /// rounds re-expand the same early states, so these hit constantly.
  /// Bypassed in LegacyHotPath mode.
  std::unordered_map<uint64_t, std::shared_ptr<const std::vector<Step>>>
      CandCache;
  std::unordered_map<uint64_t,
                     std::shared_ptr<const std::vector<synth::Proposal>>>
      SynthCache;

  /// Differential-verification memo for deferred single-step checks,
  /// keyed by (before identity, after identity, step text). Sound because
  /// the verifier is deterministic — fixed seed, and the constraint set a
  /// single-step scratch engine hands the verifier is a pure function of
  /// (before, step). Widening rounds re-reach and re-verify the same
  /// rewrites; this answers them without re-running the trials. Bypassed
  /// in LegacyHotPath mode.
  std::unordered_map<uint64_t, bool> VerifyMemo;

  /// Representation-path helpers honoring the LegacyHotPath A/B flag:
  /// legacy re-walks the description per call, the COW path answers from
  /// the handle's per-version caches and the interner's memo.
  uint64_t fpOf(const DescHandle &H) const {
    return Limits.LegacyHotPath ? fingerprintLegacy(H.get()) : H.fingerprint();
  }
  unsigned distanceOf(const DescHandle &A, const DescHandle &B) const {
    return Limits.LegacyHotPath
               ? analysis::structuralDistance(A.get(), B.get())
               : DescHandle::distance(A, B);
  }

  /// The trace sink (the shared no-op sink when tracing is off, so call
  /// sites guard on enabled() only).
  obs::TraceSink &trace() const {
    return Limits.Trace ? *Limits.Trace : obs::TraceSink::noop();
  }
  /// The metrics registry, or null.
  obs::Metrics *met() const { return Limits.Metrics; }

  /// True once the wall-clock budget is spent or the external cancel
  /// flag is raised. This is the predicate the fine-grained checkpoints
  /// poll (candidate bursts, macro-move closures, differential trials) —
  /// a deadline can fire *inside* an expansion, not only between them.
  bool deadlinePassed() const {
    if (Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed))
      return true;
    return Clock::now() >= Deadline;
  }

  bool exhausted() {
    if (Stats.NodesExpanded >= Limits.MaxNodes) {
      Stats.BudgetExhausted = true;
      return true;
    }
    if (deadlinePassed()) {
      Stats.BudgetExhausted = true;
      Stats.TimedOut = true;
      return true;
    }
    return false;
  }

  /// Records \p N as the best line when it strictly improves on it.
  void noteBest(const Node &N, unsigned Depth, unsigned Round) {
    if (Best.Valid && N.Distance >= Best.Distance)
      return;
    Best.Valid = true;
    Best.Op = N.Op;
    Best.Inst = N.Inst;
    Best.FpOp = N.FpOp;
    Best.FpInst = N.FpInst;
    Best.Distance = N.Distance;
    Best.Depth = Depth;
    Best.Round = Round;
    Best.OpScript = N.OpScript;
    Best.InstScript = N.InstScript;
    Best.ViaRule = N.ViaRule;
    Best.ViaSide = N.ViaSide;
  }
};

/// The per-depth live-telemetry snapshot; consumed by the seqlock
/// publisher when SearchLimits::Progress is set.
obs::ProgressSnapshot progressSnapshot(const SearchContext &Ctx,
                                       unsigned Depth, unsigned Round,
                                       size_t FrontierSize) {
  obs::ProgressSnapshot S;
  S.Depth = Depth;
  S.Round = Round;
  S.Frontier = FrontierSize;
  S.Expanded = Ctx.Stats.NodesExpanded;
  S.Generated = Ctx.Stats.NodesGenerated;
  S.HashHits = Ctx.Stats.HashHits;
  S.MemoHits = Ctx.Stats.VerifyMemoHits;
  S.Reopened = Ctx.Stats.Reopened;
  if (Ctx.Best.Valid)
    S.BestDistance = Ctx.Best.Distance;
  return S;
}

/// Payload fragment shared by frontier/prune/goal events: the state's
/// canonical fingerprints and score breakdown.
obs::Payload statePayload(const Node &N, unsigned Depth, unsigned Round) {
  obs::Payload P;
  P.add("depth", Depth)
      .add("round", Round)
      .addHex("fp_op", N.FpOp)
      .addHex("fp_inst", N.FpInst)
      .add("score", N.Score)
      .add("distance", N.Distance)
      .add("steps_op", static_cast<uint64_t>(N.OpScript.size()))
      .add("steps_inst", static_cast<uint64_t>(N.InstScript.size()));
  if (!N.ViaRule.empty())
    P.add("rule", N.ViaRule)
        .add("side", N.ViaSide == 0 ? "operator" : "instruction");
  return P;
}

/// Applies cleanup rules to a fixed point, recording each applied step.
/// The closure list is re-ordered before every scan by the rule-bigram
/// priors mined from the recorded derivations (analysis::Priors): the
/// rule the 1982 user most often applied after the previous step is
/// tried first. Unseen successors keep the registration order, so the
/// scan stays deterministic and converges to the same fixed point.
/// Bounded as a backstop; in practice the closure converges in a handful
/// of steps.
void simplifyToFixpoint(transform::Engine &E, Script &Recorded,
                        const SearchContext *Ctx = nullptr) {
  const analysis::Priors &P = analysis::Priors::instance();
  const std::vector<std::string> Closure(std::begin(ClosureRules),
                                         std::end(ClosureRules));
  const unsigned MaxSteps = 24;
  for (unsigned Count = 0; Count < MaxSteps;) {
    // Deadline checkpoint: a macro-move closure runs up to MaxSteps full
    // rule applications (each with differential verification), long
    // enough to blow well past a deadline that is only checked between
    // beam expansions.
    if (Ctx && Ctx->deadlinePassed())
      return;
    std::vector<std::string> Ordered = Closure;
    P.orderBySuccessor(Recorded.empty() ? std::string() : Recorded.back().Rule,
                       Ordered);
    bool Progress = false;
    for (const std::string &Rule : Ordered) {
      Step S{Rule, "", {}};
      if (E.apply(S).Applied) {
        Recorded.push_back(std::move(S));
        ++Count;
        Progress = true;
        break;
      }
    }
    if (Progress)
      continue;
    // Snapshot names up front: Engine::apply rebuilds the description,
    // so Routine pointers do not survive even a failed attempt.
    std::vector<std::string> Names;
    {
      const Routine *Entry = E.current().entryRoutine();
      for (const Routine *R : E.current().routines())
        if (R != Entry)
          Names.push_back(R->Name);
    }
    for (const std::string &Name : Names) {
      for (const char *Rule : PerRoutineRules) {
        Step S{Rule, Name, {}};
        if (E.apply(S).Applied) {
          Recorded.push_back(std::move(S));
          ++Count;
          Progress = true;
          break;
        }
      }
      if (Progress)
        break;
    }
    if (!Progress)
      return;
  }
}

/// The pin-and-simplify macro move: after `fix-operand-value` succeeds,
/// chain the pinned operand's natural aftermath — constant propagation,
/// fold/branch cleanup to a fixed point, and dead-code removal — into
/// the same search child. Recorded derivations show progress comes in
/// exactly these bursts, and the intermediate states score *worse* on
/// the structural distance than their parent (pinning rf in stosb goes
/// 45 -> 46 -> 47 -> 46 before if-false-elim pays off at 17), so a
/// one-step-per-ply beam discards the whole valley. Every chained step
/// still runs through the engine's verifier and is recorded in the
/// script, so replay and differential checking see ordinary steps.
void pinAndSimplify(transform::Engine &E, const Step &Fix, Script &Recorded,
                    const SearchContext *Ctx = nullptr) {
  auto It = Fix.Args.find("operand");
  if (It == Fix.Args.end())
    return;
  const std::string &Pinned = It->second;

  Step Gcp{"global-constant-propagate", "", {{"var", Pinned}}};
  if (E.apply(Gcp).Applied)
    Recorded.push_back(std::move(Gcp));
  simplifyToFixpoint(E, Recorded, Ctx);
  if (Ctx && Ctx->deadlinePassed())
    return;

  Step DeadAssign{"dead-assign-elim", "", {{"var", Pinned}}};
  if (E.apply(DeadAssign).Applied) {
    Recorded.push_back(std::move(DeadAssign));
    Step DeadDecl{"dead-decl-elim", "", {{"var", Pinned}}};
    if (E.apply(DeadDecl).Applied)
      Recorded.push_back(std::move(DeadDecl));
    simplifyToFixpoint(E, Recorded, Ctx);
  }
}

/// Confirms a fingerprint-equal state and assembles the success outcome.
/// \p Span parents the trace events ("goal" on success, the match layer's
/// "match-divergence" on a fingerprint collision).
bool confirmGoal(const Node &N, SearchContext &Ctx, SearchOutcome &Out,
                 unsigned Depth, unsigned Round, uint64_t Span) {
  ++Ctx.Stats.GoalChecks;
  obs::TraceSink &T = Ctx.trace();
  MatchResult Match = matchDescriptions(*N.Op, *N.Inst, Ctx.met(), &T, Span);
  if (!Match.Matched) {
    if (Ctx.met())
      Ctx.met()->counter("search.goal.fingerprint-collision").add();
    return false; // Fingerprint collision; keep searching.
  }
  if (T.enabled())
    T.event("goal", Span, statePayload(N, Depth, Round));
  Out.Found = true;
  Out.OperatorScript = N.OpScript;
  Out.InstructionScript = N.InstScript;
  Out.Binding = Match.Binding;
  Out.Constraints = N.Constraints;
  analysis::deriveBindingConstraints(*N.Op, *N.Inst, Match.Binding,
                                     Out.Constraints);
  return true;
}

/// One beam round at a fixed width. Returns true when a derivation was
/// found (Out filled in); false on exhaustion of the beam or budgets.
/// \p RoundIdx and \p SearchSpan place the round in the trace.
bool beamRound(const DescHandle &Operator, const DescHandle &Instruction,
               unsigned Width, SearchContext &Ctx, SearchOutcome &Out,
               unsigned RoundIdx, uint64_t SearchSpan) {
  obs::TraceSink &T = Ctx.trace();
  obs::Payload RoundP;
  if (T.enabled())
    RoundP.add("round", RoundIdx).add("width", Width);
  obs::ScopedSpan RoundSpan(T, "round", SearchSpan, std::move(RoundP));

  Node Root;
  Root.Op = Operator;
  Root.Inst = Instruction;
  Root.FpOp = Ctx.fpOf(Root.Op);
  Root.FpInst = Ctx.fpOf(Root.Inst);
  Root.Distance = Ctx.distanceOf(Root.Op, Root.Inst);
  Root.Score = Root.Distance;
  Ctx.noteBest(Root, 0, RoundIdx);
  if (T.enabled())
    RoundSpan.event("frontier", statePayload(Root, 0, RoundIdx));
  if (Root.FpOp == Root.FpInst &&
      confirmGoal(Root, Ctx, Out, 0, RoundIdx, RoundSpan.id()))
    return true;

  // Score-aware transposition table: the best (shortest) total script
  // length that has reached each canonical pair state. Fingerprint-equal
  // states have equal structural distance, so comparing total script
  // length is exactly comparing beam score — a state re-reached strictly
  // cheaper re-opens instead of being pruned as a duplicate, keeping the
  // cheapest line to every canonical state (the scasb postmortem showed
  // the first-reached representative's continuation being score-cut while
  // the cheaper line was discarded as a duplicate).
  std::unordered_map<uint64_t, unsigned> Seen;
  Seen.emplace(pairKey(Root.FpOp, Root.FpInst), 0u);

  std::vector<Node> Frontier;
  Frontier.push_back(std::move(Root));

  const analysis::Priors &Priors = analysis::Priors::instance();

  for (unsigned Depth = 1; Depth <= Ctx.Limits.MaxDepth; ++Depth) {
    obs::Payload DepthP;
    if (T.enabled())
      DepthP.add("depth", Depth)
          .add("round", RoundIdx)
          .add("frontier", static_cast<uint64_t>(Frontier.size()));
    obs::ScopedSpan DepthSpan(T, "depth", RoundSpan.id(), std::move(DepthP));

    std::vector<Node> Children;
    bool Goal = false;
    for (Node &N : Frontier) {
      if (Ctx.exhausted())
        return false;
      ++Ctx.Stats.NodesExpanded;

      obs::Payload ExpandP;
      if (T.enabled())
        ExpandP.addHex("fp_op", N.FpOp)
            .addHex("fp_inst", N.FpInst)
            .add("score", N.Score);
      obs::ScopedSpan ExpandSpan(T, "expand", DepthSpan.id(),
                                 std::move(ExpandP));

      for (int Side = 0; Side < 2 && !Goal; ++Side) {
        const DescHandle &Cur = Side == 0 ? N.Op : N.Inst;
        const DescHandle &Oth = Side == 0 ? N.Inst : N.Op;

        // Verification deferred out of the engine for single-step
        // candidates: the step and its apply result, checked in MakeChild
        // only after the transposition lookup keeps the child.
        struct DeferredVerify {
          const Step &S;
          const transform::ApplyResult &R;
        };
        // Set by MakeChild when the deferred verifier rejected the child;
        // the caller must not retry the macro variant (it would fail the
        // same differential check).
        bool ChildVerifyRejected = false;

        // Turns a successfully applied candidate sequence into a beam
        // child; returns true when the child is the goal (Out filled).
        auto MakeChild = [&](transform::Engine &Scratch, Script AppliedSteps,
                             const DeferredVerify *DV) -> bool {
          // The engine's current version as a shared handle: no deep copy
          // leaves the engine, and the fingerprint computed here is cached
          // on the version for every later re-reach.
          DescHandle NewH = Scratch.currentHandle();
          uint64_t NewFp = Ctx.fpOf(NewH);
          uint64_t Key = Side == 0 ? pairKey(NewFp, N.FpInst)
                                   : pairKey(N.FpOp, NewFp);
          unsigned NewLen = static_cast<unsigned>(
              N.OpScript.size() + N.InstScript.size() + AppliedSteps.size());
          // Score-aware transposition check: fingerprint-equal states have
          // equal structural distance, so "strictly cheaper" reduces to a
          // strictly shorter total script. Equal-or-longer re-reaches are
          // pruned as before; strictly shorter ones re-open the state.
          auto SeenIt = Seen.find(Key);
          bool Known = SeenIt != Seen.end();
          if (Known && NewLen >= SeenIt->second) {
            ++Ctx.Stats.HashHits;
            if (Ctx.met())
              Ctx.met()->counter("search.prune.duplicate-fingerprint").add();
            if (T.enabled())
              T.event("prune", ExpandSpan.id(),
                      obs::Payload()
                          .add("reason", "duplicate-fingerprint")
                          .add("depth", Depth)
                          .add("round", RoundIdx)
                          .addHex("fp_op", Side == 0 ? NewFp : N.FpOp)
                          .addHex("fp_inst", Side == 0 ? N.FpInst : NewFp)
                          .add("rule", AppliedSteps.empty()
                                           ? std::string("?")
                                           : AppliedSteps.front().Rule)
                          .add("side",
                               Side == 0 ? "operator" : "instruction"));
            return false;
          }
          // Differential verification, deferred to after the transposition
          // lookup: a duplicate child never pays the trials (they decide
          // nothing — the child is discarded either way), and a rejected
          // child never touches the table, exactly as when the verifier
          // ran inside the engine. Only single-step candidates defer (DV
          // set); synthesized proposals verified inline, step by step.
          if (DV && Ctx.Limits.VerifyTrials > 0) {
            // The verifier is deterministic (fixed trial seed) and the
            // scratch engine's constraint set is a pure function of
            // (before, step), so the verdict for a (before, after, step)
            // triple never changes — memo it. Widening rounds re-derive
            // the same rewrites from re-expanded parents; the memo answers
            // those without re-running the trials. Keyed by interned
            // identities (name-sensitive, unlike the rename-invariant
            // fingerprints). Legacy A/B mode re-runs every check.
            bool Verdict;
            uint64_t VKey = 0;
            bool UseMemo = !Ctx.Limits.LegacyHotPath;
            auto MemoIt = Ctx.VerifyMemo.end();
            if (UseMemo) {
              Interner &I = Interner::local();
              VKey = pairKey(pairKey(I.identity(*Cur), I.identity(*NewH)),
                             std::hash<std::string>{}(DV->S.str()));
              MemoIt = Ctx.VerifyMemo.find(VKey);
            }
            if (UseMemo && MemoIt != Ctx.VerifyMemo.end()) {
              Verdict = MemoIt->second;
              ++Ctx.Stats.VerifyMemoHits;
              if (Ctx.met())
                Ctx.met()->counter("search.verify.memo_hit").add();
            } else {
              transform::StepVerifier Verify = analysis::makeStepVerifier(
                  Scratch.constraints(), Ctx.VerifyOpts);
              transform::StepObservation Obs{DV->S, *Cur, *NewH, DV->R.Effect,
                                             DV->R.Adapter};
              std::string Error;
              Verdict = Verify(Obs, Error);
              if (UseMemo)
                Ctx.VerifyMemo.emplace(VKey, Verdict);
            }
            if (!Verdict) {
              ChildVerifyRejected = true;
              ++Ctx.Stats.DeadEnds;
              if (Ctx.met())
                Ctx.met()->counter("search.prune.verify-reject").add();
              if (T.enabled())
                T.event("prune", ExpandSpan.id(),
                        obs::Payload()
                            .add("reason", "verify-reject")
                            .add("depth", Depth)
                            .add("round", RoundIdx)
                            .addHex("fp_op", N.FpOp)
                            .addHex("fp_inst", N.FpInst)
                            .add("rule", DV->S.Rule)
                            .add("side",
                                 Side == 0 ? "operator" : "instruction"));
              return false;
            }
          }
          if (!Known) {
            Seen.emplace(Key, NewLen);
          } else {
            SeenIt->second = NewLen;
            ++Ctx.Stats.Reopened;
            if (Ctx.met())
              Ctx.met()->counter("search.reopen.cheaper-line").add();
            if (T.enabled())
              T.event("reopen", ExpandSpan.id(),
                      obs::Payload()
                          .add("depth", Depth)
                          .add("round", RoundIdx)
                          .addHex("fp_op", Side == 0 ? NewFp : N.FpOp)
                          .addHex("fp_inst", Side == 0 ? N.FpInst : NewFp)
                          .add("steps", NewLen)
                          .add("rule", AppliedSteps.empty()
                                           ? std::string("?")
                                           : AppliedSteps.front().Rule)
                          .add("side",
                               Side == 0 ? "operator" : "instruction"));
          }
          ++Ctx.Stats.NodesGenerated;

          Node Child;
          // The untouched side is shared with the parent: a handle copy
          // in COW mode (its cached fingerprint and features ride along),
          // a deep copy in the legacy A/B mode.
          if (Side == 0) {
            Child.Op = std::move(NewH);
            Child.Inst = Ctx.Limits.LegacyHotPath
                             ? DescHandle(N.Inst.clone())
                             : N.Inst;
            Child.FpOp = NewFp;
            Child.FpInst = N.FpInst;
          } else {
            Child.Op = Ctx.Limits.LegacyHotPath ? DescHandle(N.Op.clone())
                                                : N.Op;
            Child.Inst = std::move(NewH);
            Child.FpOp = N.FpOp;
            Child.FpInst = NewFp;
          }
          Child.OpScript = N.OpScript;
          Child.InstScript = N.InstScript;
          {
            Script &Tail = Side == 0 ? Child.OpScript : Child.InstScript;
            Tail.insert(Tail.end(), AppliedSteps.begin(), AppliedSteps.end());
          }
          Child.Constraints = N.Constraints;
          for (const constraint::Constraint &C :
               Scratch.constraints().items())
            Child.Constraints.add(C);
          Child.Distance = Ctx.distanceOf(Child.Op, Child.Inst);
          Child.Score = Child.Distance +
                        Ctx.Limits.LengthLambda *
                            (Child.OpScript.size() + Child.InstScript.size());
          // Rule attribution before noteBest and unconditionally: the
          // best-line report carries it even with tracing off.
          if (!AppliedSteps.empty()) {
            Child.ViaRule = AppliedSteps.front().Rule;
            Child.ViaSide = Side;
          }
          Ctx.noteBest(Child, Depth, RoundIdx);

          if (Child.FpOp == Child.FpInst &&
              confirmGoal(Child, Ctx, Out, Depth, RoundIdx, ExpandSpan.id()))
            return true;
          Children.push_back(std::move(Child));
          return false;
        };

        // A fresh scratch engine per attempt; the engine checks the
        // rule's own applicability conditions, and the verifier hook
        // differentially tests every applied step on random inputs.
        // (The verifier closes over the engine's own constraint set, so
        // it is installed on the engine in place, never moved.)
        auto InitScratch = [&](transform::Engine &Scratch) {
          // Metrics only — no trace: a rule-apply event per attempted
          // candidate would swamp the trace with refusals; the searcher's
          // own prune/frontier events carry the interesting outcomes.
          Scratch.setMetrics(Ctx.met());
          // The legacy A/B mode reproduces the pre-COW cost model: every
          // attempt pays its own clone, no thread-local scratch reuse.
          if (Ctx.Limits.LegacyHotPath)
            Scratch.setScratchReuse(false);
          if (Ctx.Limits.VerifyTrials > 0)
            Scratch.setVerifier(analysis::makeStepVerifier(
                Scratch.constraints(), Ctx.VerifyOpts));
        };

        // Single-step candidates. Enumeration depends only on this side's
        // concrete text, the side flag, and whether the other side still
        // has an output, so the pool is cached across re-reaches and
        // widening rounds, keyed by name-sensitive structural identity
        // (the steps carry concrete routine/operand names, so the
        // rename-invariant fingerprint would be an unsound key).
        bool OthHasOutput = hasOutput(*Oth);
        std::shared_ptr<const std::vector<Step>> Cands;
        if (Ctx.Limits.LegacyHotPath) {
          Cands = std::make_shared<const std::vector<Step>>(
              enumerateCandidates(*Cur, *Oth,
                                  /*CurrentIsInstruction=*/Side == 1));
        } else {
          uint64_t CandKey =
              pairKey(Interner::local().identity(*Cur),
                      (Side == 1 ? 2u : 0u) | (OthHasOutput ? 1u : 0u));
          auto It = Ctx.CandCache.find(CandKey);
          if (It == Ctx.CandCache.end())
            It = Ctx.CandCache
                     .emplace(CandKey,
                              std::make_shared<const std::vector<Step>>(
                                  enumerateCandidates(
                                      *Cur, *Oth,
                                      /*CurrentIsInstruction=*/Side == 1)))
                     .first;
          Cands = It->second;
        }
        // Try in the order the recorded derivations make likeliest after
        // this side's previous rule. The pool is shared, so sort an index
        // over it rather than copying the steps.
        std::vector<const Step *> Ordered;
        Ordered.reserve(Cands->size());
        for (const Step &S : *Cands)
          Ordered.push_back(&S);
        {
          const Script &Prior = Side == 0 ? N.OpScript : N.InstScript;
          const std::string Prev =
              Prior.empty() ? std::string() : Prior.back().Rule;
          std::stable_sort(Ordered.begin(), Ordered.end(),
                           [&](const Step *A, const Step *B) {
                             return Priors.bigram(Prev, A->Rule) >
                                    Priors.bigram(Prev, B->Rule);
                           });
        }
        for (const Step *SP : Ordered) {
          const Step &S = *SP;
          ++Ctx.Stats.CandidatesTried;
          // In-expansion deadline checkpoint (every 8 candidates): a
          // single frontier node tries hundreds of candidates, each one
          // an engine apply plus differential trials — checking only
          // between expansions lets one node overshoot the budget by
          // orders of magnitude.
          if ((Ctx.Stats.CandidatesTried & 7) == 0 && Ctx.exhausted())
            return false;

          // fix-operand-value additionally spawns a pin-and-simplify
          // macro child (Variant 1); the plain child stays in the pool
          // so no single-step path is lost.
          int Variants = S.Rule == "fix-operand-value" ? 2 : 1;
          ChildVerifyRejected = false;
          for (int Variant = 0; Variant < Variants; ++Variant) {
            // COW scratch engine: shares the node's version until a rule
            // actually applies. The legacy A/B path pays the pre-COW
            // per-candidate construction clone.
            transform::Engine Scratch =
                Ctx.Limits.LegacyHotPath
                    ? transform::Engine(Cur.clone())
                    : transform::Engine(Cur);
            Scratch.setMetrics(Ctx.met());
            if (Ctx.Limits.LegacyHotPath)
              Scratch.setScratchReuse(false);
            // The plain variant defers differential verification into
            // MakeChild (after the transposition lookup); the macro
            // variant keeps applying steps through the engine, so it
            // verifies inline as each lands. The legacy A/B mode always
            // verifies inline — the pre-COW ordering paid the trials on
            // every applied child, duplicates included, before the table
            // could prune them. Survival is order-independent (a child
            // enters the beam iff it verifies and is not a duplicate),
            // so outcomes stay identical either way.
            bool InlineVerify = Variant == 1 || Ctx.Limits.LegacyHotPath;
            if (InlineVerify && Ctx.Limits.VerifyTrials > 0)
              Scratch.setVerifier(analysis::makeStepVerifier(
                  Scratch.constraints(), Ctx.VerifyOpts));
            transform::ApplyResult R = Scratch.apply(S);
            if (!R.Applied) {
              ++Ctx.Stats.DeadEnds;
              // A candidate that *applied* but failed the differential
              // verifier is a pruned state, not a mere refusal: the
              // rewrite exists, it just is not semantics-preserving here.
              if (startsWith(R.Reason, "step verification failed")) {
                if (Ctx.met())
                  Ctx.met()->counter("search.prune.verify-reject").add();
                if (T.enabled())
                  T.event("prune", ExpandSpan.id(),
                          obs::Payload()
                              .add("reason", "verify-reject")
                              .add("depth", Depth)
                              .add("round", RoundIdx)
                              .addHex("fp_op", N.FpOp)
                              .addHex("fp_inst", N.FpInst)
                              .add("rule", S.Rule)
                              .add("side", Side == 0 ? "operator"
                                                     : "instruction"));
              }
              break; // The macro variant would fail identically.
            }
            Script AppliedSteps{S};
            if (Variant == 1)
              pinAndSimplify(Scratch, S, AppliedSteps, &Ctx);
            DeferredVerify DV{S, R};
            if (MakeChild(Scratch, std::move(AppliedSteps),
                          InlineVerify ? nullptr : &DV)) {
              Goal = true;
              break;
            }
            if (ChildVerifyRejected)
              break; // The macro variant would fail the same check.
          }
          if (Goal)
            break;
        }
        if (Goal)
          break;

        // Synthesized multi-step proposals (src/synth): rule arguments
        // recovered from the divergence against the other side. Applied
        // atomically — a refused step discards the whole proposal — and
        // every applied step still passes the differential verifier, so
        // a synthesized candidate enters the beam only verified.
        // Synthesis reads both sides, so the cache key combines both
        // identities (again name-sensitive: proposals carry names).
        std::shared_ptr<const std::vector<synth::Proposal>> Props;
        if (Ctx.Limits.LegacyHotPath) {
          Props = std::make_shared<const std::vector<synth::Proposal>>(
              synth::synthesizeProposals(*Cur, *Oth,
                                         /*CurrentIsInstruction=*/Side == 1,
                                         Priors.vocabulary(), Ctx.met()));
        } else {
          Interner &I = Interner::local();
          uint64_t SynthKey = pairKey(
              pairKey(I.identity(*Cur), I.identity(*Oth)), Side == 1 ? 1 : 0);
          auto It = Ctx.SynthCache.find(SynthKey);
          if (It == Ctx.SynthCache.end())
            It = Ctx.SynthCache
                     .emplace(
                         SynthKey,
                         std::make_shared<const std::vector<synth::Proposal>>(
                             synth::synthesizeProposals(
                                 *Cur, *Oth,
                                 /*CurrentIsInstruction=*/Side == 1,
                                 Priors.vocabulary(), Ctx.met())))
                     .first;
          Props = It->second;
        }
        for (const synth::Proposal &Prop : *Props) {
          if (Prop.Steps.empty())
            continue;
          ++Ctx.Stats.CandidatesTried;
          if ((Ctx.Stats.CandidatesTried & 7) == 0 && Ctx.exhausted())
            return false;
          transform::Engine Scratch =
              Ctx.Limits.LegacyHotPath ? transform::Engine(Cur.clone())
                                       : transform::Engine(Cur);
          InitScratch(Scratch);
          Script AppliedSteps;
          bool AllApplied = true;
          bool Augmenting = false;
          for (const Step &S : Prop.Steps) {
            if (!Scratch.apply(S).Applied) {
              AllApplied = false;
              break;
            }
            Augmenting = Augmenting || S.Rule == "add-prologue" ||
                         S.Rule == "replace-output";
            AppliedSteps.push_back(S);
          }
          if (Ctx.met())
            Ctx.met()->counter(AllApplied ? "synth.accept" : "synth.reject")
                .add();
          if (!AllApplied) {
            ++Ctx.Stats.DeadEnds;
            continue;
          }
          // Augments leave debris the recorded sessions cleaned inline
          // (stripping outputs can empty an if arm); close over the
          // cleanup rules so the child lands on the tidy form.
          if (Augmenting)
            simplifyToFixpoint(Scratch, AppliedSteps, &Ctx);
          if (MakeChild(Scratch, std::move(AppliedSteps), nullptr)) {
            Goal = true;
            break;
          }
        }
      }
      if (Goal)
        return true;
    }

    if (Children.empty())
      return false;
    // Keep the Width best-scoring states; stable sort preserves
    // generation order among ties, keeping the search deterministic.
    std::stable_sort(Children.begin(), Children.end(),
                     [](const Node &A, const Node &B) {
                       return A.Score < B.Score;
                     });
    size_t Kept = std::min<size_t>(Width, Children.size());
    if (Ctx.met()) {
      Ctx.met()->histogram("search.beam.children").record(Children.size());
      Ctx.met()->histogram("search.beam.occupancy").record(Kept);
      if (Children.size() > Kept)
        Ctx.met()
            ->counter("search.prune.score-cutoff")
            .add(Children.size() - Kept);
    }
    if (T.enabled()) {
      // The truncation is where the beam commits: a "frontier" event per
      // survivor, a "prune" (score-cutoff) per loser carrying the cutoff
      // — the worst surviving score — so a postmortem can say by how
      // much a state missed.
      double Cutoff = Children[Kept - 1].Score;
      for (size_t I = 0; I < Children.size(); ++I) {
        obs::Payload P = statePayload(Children[I], Depth, RoundIdx);
        if (I >= Kept)
          P.add("reason", "score-cutoff").add("cutoff", Cutoff);
        T.event(I < Kept ? "frontier" : "prune", DepthSpan.id(),
                std::move(P));
      }
    }
    if (Children.size() > Kept)
      Children.resize(Kept);
    Frontier = std::move(Children);
    // Live telemetry: exactly one relaxed seqlock publish per depth,
    // after the beam committed — never inside the expansion loop.
    if (Ctx.Limits.Progress)
      Ctx.Limits.Progress->publish(progressSnapshot(Ctx, Depth, RoundIdx,
                                                    Frontier.size()));
  }
  return false;
}

} // namespace

SearchOutcome search::searchDerivation(const Description &Operator,
                                       const Description &Instruction,
                                       const SearchLimits &Limits) {
  SearchOutcome Out;
  SearchContext Ctx{Limits,
                    SearchStats(),
                    Clock::now() + std::chrono::milliseconds(
                                       Limits.TimeBudgetMs),
                    analysis::DiffOptions()};
  Ctx.VerifyOpts.Trials = Limits.VerifyTrials;
  Ctx.VerifyOpts.Metrics = Limits.Metrics;
  // Deadline enforcement inside differential verification: each per-node
  // verifier polls this once per trial, so a slow description cannot
  // ride a single verification far past the budget.
  Ctx.VerifyOpts.Stop = [&Ctx] { return Ctx.deadlinePassed(); };

  obs::TraceSink &T = Ctx.trace();
  obs::Payload SearchP;
  if (T.enabled()) {
    if (!Limits.TraceLabel.empty())
      SearchP.add("case", Limits.TraceLabel);
    SearchP.add("beam", Limits.BeamWidth)
        .add("max_depth", Limits.MaxDepth)
        .add("widenings", Limits.Widenings);
  }
  obs::ScopedSpan SearchSpan(T, "search", 0, std::move(SearchP));

  // One clone per side per search: every beam round shares the root
  // versions through these handles, and their fingerprints and feature
  // vectors are computed once here rather than once per round.
  DescHandle OperatorH(Operator.clone());
  DescHandle InstructionH(Instruction.clone());

  Clock::time_point Start = Clock::now();
  unsigned Width = std::max(1u, Limits.BeamWidth);
  unsigned LastWidth = Width;
  bool Found = false;
  for (unsigned Round = 0; Round <= Limits.Widenings; ++Round) {
    ++Ctx.Stats.Rounds;
    LastWidth = Width;
    // Fault containment: anything thrown below the engine's own
    // containment layer (proposal synthesis, a rule helper) becomes a
    // typed fault on the outcome — the search never rethrows, and the
    // best partial line survives the abort.
    try {
      Found = beamRound(OperatorH, InstructionH, Width, Ctx, Out, Round,
                        SearchSpan.id());
    } catch (const FaultError &FE) {
      Out.SearchFault = FE.fault();
      break;
    } catch (const std::exception &E) {
      Out.SearchFault = makeFault(FaultCategory::Internal, E.what());
      break;
    }
    if (Found || Ctx.Stats.BudgetExhausted)
      break;
    Width *= 2;
  }
  Ctx.Stats.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start)
          .count();

  if (!Found) {
    Out.Found = false;
    if (Out.SearchFault.isFault())
      Out.FailureReason = "search faulted: " + Out.SearchFault.str();
    else if (Ctx.Stats.TimedOut)
      Out.FailureReason = "search time budget exhausted (" +
                          std::to_string(Ctx.Stats.NodesExpanded) +
                          " nodes expanded)";
    else if (Ctx.Stats.BudgetExhausted)
      Out.FailureReason = "search budget exhausted (" +
                          std::to_string(Ctx.Stats.NodesExpanded) +
                          " nodes expanded)";
    else
      Out.FailureReason = "search space exhausted within depth " +
                          std::to_string(Limits.MaxDepth) +
                          " at beam width " + std::to_string(LastWidth);

    // Anytime result: surface the best line the beam reached, with a
    // live divergence report computed against the preserved state.
    if (Ctx.Best.Valid) {
      Out.Partial.Valid = true;
      Out.Partial.FpOp = Ctx.Best.FpOp;
      Out.Partial.FpInst = Ctx.Best.FpInst;
      Out.Partial.Distance = Ctx.Best.Distance;
      Out.Partial.Depth = Ctx.Best.Depth;
      Out.Partial.Round = Ctx.Best.Round;
      Out.Partial.OperatorScript = Ctx.Best.OpScript;
      Out.Partial.InstructionScript = Ctx.Best.InstScript;
      Out.Partial.ViaRule = Ctx.Best.ViaRule;
      Out.Partial.ViaSide = Ctx.Best.ViaSide;
      MatchResult M = matchDescriptions(*Ctx.Best.Op, *Ctx.Best.Inst);
      Out.Partial.Divergence = M.Divergence;
      if (T.enabled()) {
        obs::Payload P;
        P.add("distance", Out.Partial.Distance)
            .add("depth", Out.Partial.Depth)
            .add("round", Out.Partial.Round)
            .addHex("fp_op", Out.Partial.FpOp)
            .addHex("fp_inst", Out.Partial.FpInst)
            .add("steps_op",
                 static_cast<uint64_t>(Out.Partial.OperatorScript.size()))
            .add("steps_inst",
                 static_cast<uint64_t>(
                     Out.Partial.InstructionScript.size()));
        if (!Out.Partial.ViaRule.empty())
          P.add("rule", Out.Partial.ViaRule)
              .add("side",
                   Out.Partial.ViaSide == 0 ? "operator" : "instruction");
        if (Out.Partial.Divergence.Valid)
          P.add("routine_a", Out.Partial.Divergence.RoutineA)
              .add("routine_b", Out.Partial.Divergence.RoutineB)
              .add("detail", Out.Partial.Divergence.Detail);
        SearchSpan.event("search.partial", std::move(P));
      }
    }
  }
  if (T.enabled())
    SearchSpan.event("search-result",
                     obs::Payload()
                         .add("found", Found)
                         .add("nodes", Ctx.Stats.NodesExpanded)
                         .add("rounds", Ctx.Stats.Rounds)
                         .add("wall_ms", Ctx.Stats.WallMs)
                         .add("reason", Out.FailureReason));
  if (Ctx.met()) {
    Ctx.met()->counter(Found ? "search.found" : "search.failed").add();
    Ctx.met()->counter("search.nodes_expanded").add(Ctx.Stats.NodesExpanded);
    Ctx.met()->counter("search.hash_hits").add(Ctx.Stats.HashHits);
    if (Ctx.Stats.Reopened)
      Ctx.met()->counter("search.reopened").add(Ctx.Stats.Reopened);
  }
  Out.Stats = Ctx.Stats;
  // Final telemetry snapshot so watchers see end-of-search totals even
  // when the last depth was cut short by a budget or a goal.
  if (Limits.Progress)
    Limits.Progress->publish(progressSnapshot(
        Ctx, Ctx.Best.Valid ? Ctx.Best.Depth : 0, Ctx.Stats.Rounds, 0));
  return Out;
}

DiscoveryResult search::discoverAndVerify(const std::string &OperatorId,
                                          const std::string &InstructionId,
                                          const SearchLimits &Limits,
                                          analysis::Mode M) {
  DiscoveryResult Result;
  // loadChecked is the fault-typed (and fault-injectable) entry: a parse
  // or validation failure comes back as a typed Fault on the outcome
  // instead of tripping the library asserts in load().
  auto Operator = descriptions::loadChecked(OperatorId);
  if (!Operator) {
    Result.Outcome.SearchFault = Operator.fault();
    Result.Outcome.FailureReason = "cannot load description '" + OperatorId +
                                   "': " + Operator.fault().str();
    return Result;
  }
  auto Instruction = descriptions::loadChecked(InstructionId);
  if (!Instruction) {
    Result.Outcome.SearchFault = Instruction.fault();
    Result.Outcome.FailureReason = "cannot load description '" +
                                   InstructionId +
                                   "': " + Instruction.fault().str();
    return Result;
  }

  Result.Outcome = searchDerivation(**Operator, **Instruction, Limits);
  if (!Result.Outcome.Found)
    return Result;

  // Re-verify the discovered derivation through the full analysis driver:
  // per-step differential checks at full trial counts, the common-form
  // match, binding-derived constraints, and the end-to-end check of the
  // original operator against the augmented instruction.
  analysis::AnalysisCase Case;
  Case.Id = InstructionId + "/" + OperatorId;
  Case.OperatorId = OperatorId;
  Case.InstructionId = InstructionId;
  Case.OperatorScript = Result.Outcome.OperatorScript;
  Case.InstructionScript = Result.Outcome.InstructionScript;
  {
    obs::TraceSink &T =
        Limits.Trace ? *Limits.Trace : obs::TraceSink::noop();
    obs::Payload P;
    if (T.enabled())
      P.add("case", Limits.TraceLabel.empty() ? Case.Id : Limits.TraceLabel)
          .add("steps_op",
               static_cast<uint64_t>(Case.OperatorScript.size()))
          .add("steps_inst",
               static_cast<uint64_t>(Case.InstructionScript.size()));
    obs::ScopedSpan Replay(T, "replay-verify", 0, std::move(P));
    // The replay runs at full trial counts and can dwarf the search
    // itself; thread the external cancel flag into its differential
    // options so a watchdog deadline reaches inside it too.
    analysis::DiffOptions ReplayOpts;
    if (Limits.Cancel)
      ReplayOpts.Stop = [C = Limits.Cancel] {
        return C->load(std::memory_order_relaxed);
      };
    Result.Replay = analysis::runAnalysis(Case, M, ReplayOpts);
    Result.Verified = Result.Replay.Succeeded;
    if (T.enabled())
      Replay.event("replay-result",
                   obs::Payload().add("verified", Result.Verified));
  }
  if (Limits.Metrics)
    Limits.Metrics
        ->counter(Result.Verified ? "discovery.verified"
                                  : "discovery.replay-failed")
        .add();
  return Result;
}
