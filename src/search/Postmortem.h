//===- Postmortem.h - Why did the beam lose the recorded line? --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers, from a search trace, the question a failed discovery leaves
/// open: *where* did the beam lose the derivation the 1982 user found by
/// hand, and *why*? The recorded scripts are replayed through the
/// transform engine, capturing the rename-invariant canonical
/// fingerprint of every (operator-prefix, instruction-prefix) state — the
/// "recorded line". The trace's frontier/prune events (Searcher.cpp) are
/// then walked for the widest beam round:
///
///  * the first beam depth at which no surviving frontier state lies on
///    the recorded line is the *divergence depth*;
///  * the recorded step the last on-line state needed next is the
///    *needed rule*, reported with its rank in the priors-ordered
///    candidate pool at that state (or "not proposed" — the gap is in
///    enumeration, not ranking);
///  * the prune event that removed the on-line successor names the
///    mechanism: score-cutoff (with the margin), duplicate-fingerprint,
///    verify-reject, or never-generated.
///
/// This is ROADMAP item 1's diagnostic loop: instead of staring at a
/// failed scasb search, the postmortem says "depth 4, needed
/// fix-operand-value(zf,1), proposed at rank 31 of 44, pruned by
/// score-cutoff 1.8 above the bar".
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_POSTMORTEM_H
#define EXTRA_SEARCH_POSTMORTEM_H

#include "analysis/Analysis.h"
#include "obs/TraceFile.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace extra {
namespace search {

struct PostmortemOptions {
  /// Selects among several "search" spans in one trace by the span's
  /// "case" payload (exact match, then substring). Empty: the trace must
  /// contain exactly one search span.
  std::string CaseFilter;
};

/// The reconstructed story of one search against one recorded line.
struct PostmortemReport {
  bool Ok = false;   ///< False: the trace could not be analyzed (Error set).
  std::string Error;

  std::string Case;          ///< "case" label of the analyzed search span.
  unsigned RoundsTraced = 0; ///< Beam rounds the search ran.
  unsigned RoundAnalyzed = 0;///< Index of the analyzed (widest) round.
  bool GoalReached = false;  ///< The traced search itself found a goal.

  /// True when the recorded line fell out of the beam; the fields below
  /// are then valid. False: the line survived every traced depth (or the
  /// search succeeded on its own).
  bool Diverged = false;
  unsigned DivergenceDepth = 0;  ///< First depth with no on-line survivor.
  unsigned RecordedOpSteps = 0;  ///< Operator-script progress at the last
                                 ///< on-line state...
  unsigned RecordedInstSteps = 0;///< ...and instruction-script progress.

  std::string NeededRule;   ///< Recorded step the beam needed next.
  std::string NeededSide;   ///< "operator" or "instruction".
  /// 1-based rank of the exact needed step in the priors-ordered
  /// candidate pool at the last on-line state; -1 when the enumerator
  /// never proposes it (argument synthesis gap).
  int NeededRank = -1;
  /// 1-based rank of the needed step's *rule family* (first candidate
  /// with the same rule name); -1 when the rule is absent entirely.
  int NeededRuleRank = -1;
  int CandidatePool = 0;    ///< Candidate pool size at that state.

  /// How the on-line successor left the beam: "score-cutoff",
  /// "duplicate-fingerprint", "verify-reject", or "never-generated"
  /// (the candidate loop never produced the state at all).
  std::string PruneReason;
  double PrunedScore = 0; ///< Valid for score-cutoff prunes:
  double CutoffScore = 0; ///< the loser's score and the survival bar.

  /// reason -> count over every prune event of the analyzed round.
  std::map<std::string, uint64_t> PruneBreakdown;

  /// Multi-line human-readable rendering.
  std::string str() const;
};

/// Analyzes \p Trace (obs::readTrace of a searcher trace) against the
/// recorded derivation \p Recorded. Deterministic; never throws — a
/// malformed or unrelated trace yields Ok=false with Error set.
PostmortemReport postmortem(const std::vector<obs::TraceRecord> &Trace,
                            const analysis::AnalysisCase &Recorded,
                            const PostmortemOptions &Opts = {});

/// One `search.partial` event — the anytime result a failed search left
/// behind: the closest-to-common-form state it reached, the script
/// prefix that got there, and (when computed) where the state still
/// diverges. Needs no recorded script, so it covers the searches the
/// line-based postmortem cannot.
struct PartialCaseSummary {
  std::string Case;      ///< "case" label of the owning search span.
  unsigned Distance = 0; ///< Structural distance at the best state.
  unsigned Depth = 0;
  unsigned Round = 0;
  uint64_t FpOp = 0, FpInst = 0;
  uint64_t StepsOp = 0, StepsInst = 0;
  std::string RoutineA, RoutineB, Detail; ///< Divergence; may be empty.
};

/// All failed searches in one trace, closest-first.
struct PartialSummary {
  std::vector<PartialCaseSummary> Cases;
  /// Multi-line human-readable rendering ("no partial results traced"
  /// when empty).
  std::string str() const;
};

/// Collects every `search.partial` event in \p Trace, labeled with its
/// search's case and sorted by ascending distance (nearest miss first).
/// Deterministic; an event outside any search span is kept with an empty
/// case label rather than dropped.
PartialSummary summarizePartial(const std::vector<obs::TraceRecord> &Trace);

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_POSTMORTEM_H
