//===- JobRunner.h - Contained execution of one discovery job ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable job-execution layer factored out of BatchDriver: one
/// discovery pairing run to a typed CaseOutcome under full containment —
/// catch-all, watchdog cancel, deterministic fault-injection scopes, and
/// the degraded-retry policy. BatchDriver's worker pool and the
/// discovery service's WorkQueue workers (src/server) both execute jobs
/// through this layer, so a pairing behaves identically whether it ran
/// in a one-shot batch or was submitted to a long-running server.
///
/// Containment semantics (inherited verbatim from the PR 4 batch
/// driver):
///
///  * The attempt runs inside `FaultScope(case-id)` under a catch-all;
///    a watchdog thread raises the searcher's cooperative cancel flag
///    when the case overshoots 1.5x its time budget plus slack.
///  * A TimedOut/Faulted attempt is retried once at half beam width and
///    half node budget under scope `"<case-id>#retry1"`; the retry is
///    kept only when its outcome strictly outranks the first attempt's.
///  * An external cancel flag (the service's cooperative job cancel)
///    aborts the attempt like a deadline and suppresses the retry.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_JOBRUNNER_H
#define EXTRA_SEARCH_JOBRUNNER_H

#include "search/Checkpoint.h"
#include "search/Searcher.h"

#include <atomic>
#include <string>

namespace extra {
namespace search {

/// One pairing to discover, named by description-library ids (the
/// recorded derivation scripts are never consulted).
struct BatchCase {
  std::string Id; ///< Report label, conventionally "<inst-id>/<op-id>".
  std::string OperatorId;
  std::string InstructionId;
  analysis::Mode M = analysis::Mode::Base;
};

/// Execution policy for one job (a slice of BatchOptions).
struct JobPolicy {
  SearchLimits Limits;
  /// Per-case watchdog over the cooperative cancel flag; disable only in
  /// tests that want deterministic timing-free behavior.
  bool Watchdog = true;
  /// Retry a TimedOut/Faulted case once at half beam and half nodes.
  bool DegradedRetry = true;
  /// Cooperative cancel shared with the caller (optional, non-owning):
  /// the watchdog and the searcher both observe it, and the caller may
  /// set it to abort the job (service shutdown). A set flag also
  /// suppresses the degraded retry.
  std::atomic<bool> *ExternalCancel = nullptr;
};

/// The kept result of one contained job execution.
struct JobExecution {
  DiscoveryResult Discovery;
  CaseOutcome Outcome = CaseOutcome::Faulted;
  FaultCategory Category = FaultCategory::None;
  std::string FaultMessage;
  bool Retried = false; ///< The degraded retry ran (either attempt kept).
  /// Total wall time across both attempts.
  double WallMs = 0;
};

/// Runs \p C to completion under containment. Never throws for a
/// case-level failure: every execution lands on a typed CaseOutcome.
/// When Limits.TraceLabel is empty the case id is used, so all jobs can
/// share one trace sink and still be told apart in the postmortem.
JobExecution executeJob(const BatchCase &C, const JobPolicy &Policy);

/// Reduces an execution to its canonical checkpoint record (the
/// deterministic per-case report data).
CheckpointRecord executionRecord(const BatchCase &C, const JobExecution &E);

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_JOBRUNNER_H
