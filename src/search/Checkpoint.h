//===- Checkpoint.h - Typed case outcomes and batch checkpoints -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of resilient batch discovery. Every finished case is
/// reduced to a CheckpointRecord — the typed outcome, fault category,
/// script sizes, node count, and the best partial distance — and appended
/// to a JSONL checkpoint file, one complete line per case. A later run
/// started with --resume reads the file back, skips the recorded cases,
/// and reconstructs their report lines from the records alone, so an
/// interrupted batch and an uninterrupted one produce byte-identical
/// final reports.
///
/// The record is deliberately the *canonical* per-case report data: the
/// human-readable batch report is a pure function of the records (wall
/// times are carried for curiosity but excluded from the report text),
/// which is what makes kill/resume reproducible to the byte.
///
/// The reader is tolerant of torn writes: a run killed mid-append leaves
/// at most one malformed trailing line, which is skipped, not fatal.
///
/// Files carry a schema-version header record (`{"format":
/// "extra-checkpoint","version":1}`) as their first line. The header is
/// tolerated-if-absent — PR 4 files predate it and still load — but a
/// file stamped with a *higher* version than this build knows is
/// rejected with a typed Store fault instead of being silently
/// misparsed. The same header mechanism is reused by the discovery
/// service's MemoStore (src/server), which extends the record format.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_CHECKPOINT_H
#define EXTRA_SEARCH_CHECKPOINT_H

#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace search {

/// The typed outcome lattice of one batch case. Every case lands on
/// exactly one of these — a batch never loses a case to a crash or a
/// hang.
enum class CaseOutcome {
  Verified,   ///< Derivation found and survived the full replay.
  Discovered, ///< Derivation found; replay verification failed.
  Exhausted,  ///< Search completed without reaching common form.
  TimedOut,   ///< Wall-clock budget (or the watchdog) stopped the case.
  Faulted,    ///< A typed fault aborted the case.
};

/// Spelled name ("verified", "timed-out", ...), stable across versions —
/// it is the checkpoint wire format.
const char *caseOutcomeName(CaseOutcome O);

/// Parses a spelled outcome name; nullopt for unknown text.
std::optional<CaseOutcome> caseOutcomeFromName(std::string_view Name);

/// Preference order for the degraded-retry policy: higher is better.
/// Verified > Discovered > Exhausted > TimedOut > Faulted.
int caseOutcomeRank(CaseOutcome O);

/// Everything the batch report needs to know about one finished case —
/// and exactly what one checkpoint line carries.
struct CheckpointRecord {
  std::string Case;           ///< Batch case id.
  CaseOutcome Outcome = CaseOutcome::Exhausted;
  FaultCategory Category = FaultCategory::None;
  std::string FaultMessage;   ///< Empty unless a fault was recorded.
  bool Found = false;         ///< Search reached common form.
  bool Verified = false;      ///< Replay verification passed.
  bool Retried = false;       ///< The degraded retry ran (either kept).
  uint64_t OpSteps = 0;       ///< Operator-side script length (partial
                              ///< prefix when !Found).
  uint64_t InstSteps = 0;     ///< Instruction-side script length.
  uint64_t Nodes = 0;         ///< Nodes expanded by the kept attempt.
  /// Structural distance of the best partial line; -1 when the search
  /// succeeded or preserved no partial state.
  int64_t PartialDistance = -1;
  /// Case wall time. Informational only: excluded from the report text
  /// so resumed and uninterrupted runs render identically.
  double WallMs = 0;

  /// One complete JSON object line (no trailing newline).
  std::string toJsonLine() const;
  /// Parses a checkpoint line; nullopt on malformed or foreign input.
  static std::optional<CheckpointRecord> fromJsonLine(std::string_view Line);

  /// The deterministic per-case report line (no wall-clock content).
  std::string reportLine() const;
};

//===----------------------------------------------------------------------===//
// Schema-version headers (shared with the server MemoStore format)
//===----------------------------------------------------------------------===//

/// Format tag and highest version this build reads and writes.
inline constexpr const char *kCheckpointFormat = "extra-checkpoint";
inline constexpr uint32_t kCheckpointVersion = 1;

/// Renders a `{"format":"<fmt>","version":N}` header line (no trailing
/// newline).
std::string versionHeaderLine(std::string_view Format, uint32_t Version);

/// Parses a header line; nullopt when \p Line is not a version header
/// (records and torn lines are not headers).
std::optional<std::pair<std::string, uint32_t>>
parseVersionHeader(std::string_view Line);

/// Appends \p R to the checkpoint file at \p Path (open-append-close per
/// record, so a killed run loses at most the line in flight). Creates
/// the file on first use, stamping the schema-version header as the
/// first line. Returns false + \p Error when the file cannot be written.
bool appendCheckpoint(const std::string &Path, const CheckpointRecord &R,
                      std::string *Error = nullptr);

/// Reads every complete record from \p Path. A missing file reads as
/// empty; malformed lines (torn trailing writes) are skipped; an absent
/// version header is tolerated (PR 4 files). When two records name the
/// same case, the later one wins. A header naming a foreign format or a
/// version above kCheckpointVersion empties the result and fills \p F
/// (when given) with a typed Store fault.
std::vector<CheckpointRecord> readCheckpoints(const std::string &Path,
                                              Fault *F = nullptr);

/// Fault-typed variant of readCheckpoints for callers that must not
/// silently treat a future-format file as empty (CLI --resume, the
/// server MemoStore).
Expected<std::vector<CheckpointRecord>>
readCheckpointsChecked(const std::string &Path);

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_CHECKPOINT_H
