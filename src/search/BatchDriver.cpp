//===- BatchDriver.cpp - Parallel discovery over many cases -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"

#include "analysis/Derivations.h"
#include "support/FaultInjection.h"
#include "transform/Transform.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace extra;
using namespace extra::search;

namespace {
using Clock = std::chrono::steady_clock;
} // namespace

std::vector<BatchResult> search::runBatch(const std::vector<BatchCase> &Cases,
                                          const BatchOptions &Opts,
                                          BatchStats *Stats) {
  Clock::time_point Start = Clock::now();

  std::vector<BatchResult> Results(Cases.size());
  std::vector<char> Skip(Cases.size(), 0);
  for (size_t I = 0; I < Cases.size(); ++I)
    Results[I].Case = Cases[I];

  // Resume: satisfy already-recorded cases from the checkpoint file
  // before any worker starts. Idempotent — re-running a fully recorded
  // batch does no search work at all.
  if (Opts.Resume && !Opts.CheckpointPath.empty()) {
    std::vector<CheckpointRecord> Prior = readCheckpoints(Opts.CheckpointPath);
    for (size_t I = 0; I < Cases.size(); ++I)
      for (const CheckpointRecord &R : Prior)
        if (R.Case == Cases[I].Id) {
          Results[I].Record = R;
          Results[I].FromCheckpoint = true;
          Skip[I] = 1;
        }
  }

  unsigned Threads = Opts.Threads;
  if (Threads == 0)
    Threads = std::max(2u, std::thread::hardware_concurrency());
  if (Cases.size() < Threads)
    Threads = static_cast<unsigned>(Cases.size());

  // Force the lazily initialized globals (rule registry) into existence
  // before workers start; every later access is then read-only.
  (void)transform::Registry::instance();

  std::mutex CheckpointMu;
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (size_t I = Next.fetch_add(1); I < Cases.size();
         I = Next.fetch_add(1)) {
      if (Skip[I])
        continue;
      const BatchCase &C = Cases[I];
      // Containment, injection scopes, and the degraded retry all live
      // in the shared job-execution layer (JobRunner.cpp).
      JobPolicy Policy;
      Policy.Limits = Opts.Limits;
      Policy.Watchdog = Opts.Watchdog;
      Policy.DegradedRetry = Opts.DegradedRetry;
      JobExecution E = executeJob(C, Policy);

      Results[I].Record = executionRecord(C, E);
      Results[I].WallMs = E.WallMs;
      Results[I].Discovery = std::move(E.Discovery);

      if (!Opts.CheckpointPath.empty()) {
        std::lock_guard<std::mutex> Lock(CheckpointMu);
        appendCheckpoint(Opts.CheckpointPath, Results[I].Record);
      }
      if (Opts.Limits.Metrics)
        Opts.Limits.Metrics->histogram("batch.case_wall_ms")
            .record(static_cast<uint64_t>(Results[I].WallMs));
    }
  };

  if (Threads <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  if (Stats) {
    *Stats = BatchStats();
    Stats->Cases = static_cast<unsigned>(Cases.size());
    Stats->ThreadsUsed = std::max(1u, Threads);
    for (const BatchResult &R : Results) {
      Stats->Discovered += R.Record.Found ? 1 : 0;
      Stats->Verified += R.Record.Verified ? 1 : 0;
      switch (R.Record.Outcome) {
      case CaseOutcome::Verified:
      case CaseOutcome::Discovered:
        break;
      case CaseOutcome::Exhausted:
        ++Stats->Exhausted;
        break;
      case CaseOutcome::TimedOut:
        ++Stats->TimedOut;
        break;
      case CaseOutcome::Faulted:
        ++Stats->Faulted;
        break;
      }
      Stats->Retried += R.Record.Retried ? 1 : 0;
      Stats->Resumed += R.FromCheckpoint ? 1 : 0;
      Stats->NodesExpanded += R.Discovery.Outcome.Stats.NodesExpanded;
      Stats->HashHits += R.Discovery.Outcome.Stats.HashHits;
      Stats->DeadEnds += R.Discovery.Outcome.Stats.DeadEnds;
      Stats->CaseWallMs += R.WallMs;
      if (R.WallMs > Stats->SlowestCaseMs) {
        Stats->SlowestCaseMs = R.WallMs;
        Stats->SlowestCase = R.Case.Id;
      }
    }
    Stats->WallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
  }
  return Results;
}

std::string search::batchReportText(const std::vector<BatchResult> &Results) {
  unsigned Counts[5] = {0, 0, 0, 0, 0};
  std::string Out = "batch report (" + std::to_string(Results.size()) +
                    " cases)\n";
  for (const BatchResult &R : Results) {
    Out += R.Record.reportLine() + "\n";
    unsigned Idx = static_cast<unsigned>(R.Record.Outcome);
    if (Idx < 5)
      ++Counts[Idx];
  }
  Out += "summary:";
  for (CaseOutcome O :
       {CaseOutcome::Verified, CaseOutcome::Discovered, CaseOutcome::Exhausted,
        CaseOutcome::TimedOut, CaseOutcome::Faulted})
    Out += " " + std::string(caseOutcomeName(O)) + "=" +
           std::to_string(Counts[static_cast<unsigned>(O)]);
  Out += "\n";
  return Out;
}

std::vector<BatchCase> search::libraryCases() {
  std::vector<BatchCase> Out;
  auto FromCase = [&Out](const analysis::AnalysisCase &C) {
    BatchCase B;
    B.Id = C.Id;
    B.OperatorId = C.OperatorId;
    B.InstructionId = C.InstructionId;
    B.M = C.RequiresExtension ? analysis::Mode::Extension
                              : analysis::Mode::Base;
    Out.push_back(std::move(B));
  };
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    FromCase(C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    FromCase(C);
  FromCase(analysis::movc3SassignCase());
  return Out;
}
