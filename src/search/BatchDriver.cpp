//===- BatchDriver.cpp - Parallel discovery over many cases -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"

#include "analysis/Derivations.h"
#include "support/FaultInjection.h"
#include "transform/Transform.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace extra;
using namespace extra::search;

namespace {

using Clock = std::chrono::steady_clock;

/// One contained attempt at one case: discoverAndVerify under a
/// catch-all, with an optional watchdog thread that trips the search's
/// cooperative cancel flag when the case overshoots its time budget by
/// half (plus fixed slack for replay verification). The watchdog is a
/// backstop: the searcher polls its own deadline, but a single very long
/// expansion (or an injected hang) can starve those checks.
struct Attempt {
  DiscoveryResult Discovery;
  CaseOutcome Outcome = CaseOutcome::Faulted;
  FaultCategory Category = FaultCategory::None;
  std::string FaultMessage;
  double WallMs = 0;
};

Attempt runAttempt(const BatchCase &C, const SearchLimits &Limits,
                   bool Watchdog) {
  Attempt A;
  SearchLimits L = Limits;

  std::atomic<bool> Cancel{false};
  std::atomic<bool> Done{false};
  std::atomic<bool> WatchdogFired{false};
  std::thread Monitor;
  if (Watchdog) {
    L.Cancel = &Cancel;
    uint64_t DeadlineMs = L.TimeBudgetMs + L.TimeBudgetMs / 2 + 1000;
    Monitor = std::thread([&Cancel, &Done, &WatchdogFired, DeadlineMs]() {
      Clock::time_point Deadline =
          Clock::now() + std::chrono::milliseconds(DeadlineMs);
      while (!Done.load(std::memory_order_acquire)) {
        if (Clock::now() >= Deadline) {
          WatchdogFired.store(true, std::memory_order_release);
          Cancel.store(true, std::memory_order_release);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  Clock::time_point Start = Clock::now();
  bool Caught = false;
  try {
    A.Discovery = discoverAndVerify(C.OperatorId, C.InstructionId, L, C.M);
  } catch (const FaultError &FE) {
    Caught = true;
    A.Category = FE.fault().Category;
    A.FaultMessage = FE.fault().Message;
  } catch (const std::exception &E) {
    Caught = true;
    A.Category = FaultCategory::Internal;
    A.FaultMessage = E.what();
  } catch (...) {
    Caught = true;
    A.Category = FaultCategory::Internal;
    A.FaultMessage = "unknown exception";
  }
  A.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();

  Done.store(true, std::memory_order_release);
  if (Monitor.joinable())
    Monitor.join();

  // Classify. The lattice is ordered: a caught or recorded fault beats
  // a timeout beats plain exhaustion, and success levels need no tie
  // breaking (a found derivation cannot also have faulted).
  const SearchOutcome &O = A.Discovery.Outcome;
  if (A.Discovery.Verified) {
    A.Outcome = CaseOutcome::Verified;
  } else if (O.Found) {
    A.Outcome = CaseOutcome::Discovered;
  } else if (Caught || O.SearchFault.isFault()) {
    A.Outcome = CaseOutcome::Faulted;
    if (!Caught) {
      A.Category = O.SearchFault.Category;
      A.FaultMessage = O.SearchFault.Message;
    }
  } else if (O.Stats.TimedOut || WatchdogFired.load()) {
    A.Outcome = CaseOutcome::TimedOut;
  } else {
    A.Outcome = CaseOutcome::Exhausted;
  }
  return A;
}

/// Reduces a kept attempt to its canonical checkpoint record.
CheckpointRecord toRecord(const BatchCase &C, const Attempt &A,
                          bool Retried) {
  CheckpointRecord R;
  R.Case = C.Id;
  R.Outcome = A.Outcome;
  R.Category = A.Category;
  R.FaultMessage = A.FaultMessage;
  const SearchOutcome &O = A.Discovery.Outcome;
  R.Found = O.Found;
  R.Verified = A.Discovery.Verified;
  R.Retried = Retried;
  if (O.Found) {
    R.OpSteps = O.OperatorScript.size();
    R.InstSteps = O.InstructionScript.size();
  } else if (O.Partial.Valid) {
    R.OpSteps = O.Partial.OperatorScript.size();
    R.InstSteps = O.Partial.InstructionScript.size();
  }
  R.Nodes = O.Stats.NodesExpanded;
  R.PartialDistance = (!O.Found && O.Partial.Valid)
                          ? static_cast<int64_t>(O.Partial.Distance)
                          : -1;
  R.WallMs = A.WallMs;
  return R;
}

} // namespace

std::vector<BatchResult> search::runBatch(const std::vector<BatchCase> &Cases,
                                          const BatchOptions &Opts,
                                          BatchStats *Stats) {
  Clock::time_point Start = Clock::now();

  std::vector<BatchResult> Results(Cases.size());
  std::vector<char> Skip(Cases.size(), 0);
  for (size_t I = 0; I < Cases.size(); ++I)
    Results[I].Case = Cases[I];

  // Resume: satisfy already-recorded cases from the checkpoint file
  // before any worker starts. Idempotent — re-running a fully recorded
  // batch does no search work at all.
  if (Opts.Resume && !Opts.CheckpointPath.empty()) {
    std::vector<CheckpointRecord> Prior = readCheckpoints(Opts.CheckpointPath);
    for (size_t I = 0; I < Cases.size(); ++I)
      for (const CheckpointRecord &R : Prior)
        if (R.Case == Cases[I].Id) {
          Results[I].Record = R;
          Results[I].FromCheckpoint = true;
          Skip[I] = 1;
        }
  }

  unsigned Threads = Opts.Threads;
  if (Threads == 0)
    Threads = std::max(2u, std::thread::hardware_concurrency());
  if (Cases.size() < Threads)
    Threads = static_cast<unsigned>(Cases.size());

  // Force the lazily initialized globals (rule registry) into existence
  // before workers start; every later access is then read-only.
  (void)transform::Registry::instance();

  std::mutex CheckpointMu;
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (size_t I = Next.fetch_add(1); I < Cases.size();
         I = Next.fetch_add(1)) {
      if (Skip[I])
        continue;
      const BatchCase &C = Cases[I];
      // Per-case limits: the trace label is the case id, so all searches
      // can share one sink and still be told apart in the postmortem.
      SearchLimits L = Opts.Limits;
      if (L.TraceLabel.empty())
        L.TraceLabel = C.Id;

      // The injection scope is the case id, so whether a site fires in
      // this case depends only on (seed, site, case, per-case counter) —
      // never on which worker ran it or in what order.
      Attempt Kept;
      bool Retried = false;
      {
        FaultScope Scope(C.Id);
        Kept = runAttempt(C, L, Opts.Watchdog);
      }
      if (Opts.DegradedRetry && (Kept.Outcome == CaseOutcome::TimedOut ||
                                 Kept.Outcome == CaseOutcome::Faulted)) {
        // One automatic retry at half beam and half nodes: a cheaper
        // probe that often still lands the short derivations, under a
        // distinct injection scope so a deterministically injected
        // first-attempt fault does not deterministically recur.
        SearchLimits Degraded = L;
        Degraded.BeamWidth = std::max(1u, L.BeamWidth / 2);
        Degraded.MaxNodes = std::max<uint64_t>(1000, L.MaxNodes / 2);
        Retried = true;
        FaultScope Scope(C.Id + "#retry1");
        Attempt Again = runAttempt(C, Degraded, Opts.Watchdog);
        Again.WallMs += Kept.WallMs;
        if (caseOutcomeRank(Again.Outcome) > caseOutcomeRank(Kept.Outcome))
          Kept = std::move(Again);
        else
          Kept.WallMs = Again.WallMs; // Total spent either way.
      }

      Results[I].Record = toRecord(C, Kept, Retried);
      Results[I].WallMs = Kept.WallMs;
      Results[I].Discovery = std::move(Kept.Discovery);

      if (!Opts.CheckpointPath.empty()) {
        std::lock_guard<std::mutex> Lock(CheckpointMu);
        appendCheckpoint(Opts.CheckpointPath, Results[I].Record);
      }
      if (L.Metrics)
        L.Metrics->histogram("batch.case_wall_ms")
            .record(static_cast<uint64_t>(Results[I].WallMs));
    }
  };

  if (Threads <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  if (Stats) {
    *Stats = BatchStats();
    Stats->Cases = static_cast<unsigned>(Cases.size());
    Stats->ThreadsUsed = std::max(1u, Threads);
    for (const BatchResult &R : Results) {
      Stats->Discovered += R.Record.Found ? 1 : 0;
      Stats->Verified += R.Record.Verified ? 1 : 0;
      switch (R.Record.Outcome) {
      case CaseOutcome::Verified:
      case CaseOutcome::Discovered:
        break;
      case CaseOutcome::Exhausted:
        ++Stats->Exhausted;
        break;
      case CaseOutcome::TimedOut:
        ++Stats->TimedOut;
        break;
      case CaseOutcome::Faulted:
        ++Stats->Faulted;
        break;
      }
      Stats->Retried += R.Record.Retried ? 1 : 0;
      Stats->Resumed += R.FromCheckpoint ? 1 : 0;
      Stats->NodesExpanded += R.Discovery.Outcome.Stats.NodesExpanded;
      Stats->HashHits += R.Discovery.Outcome.Stats.HashHits;
      Stats->DeadEnds += R.Discovery.Outcome.Stats.DeadEnds;
      Stats->CaseWallMs += R.WallMs;
      if (R.WallMs > Stats->SlowestCaseMs) {
        Stats->SlowestCaseMs = R.WallMs;
        Stats->SlowestCase = R.Case.Id;
      }
    }
    Stats->WallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
  }
  return Results;
}

std::string search::batchReportText(const std::vector<BatchResult> &Results) {
  unsigned Counts[5] = {0, 0, 0, 0, 0};
  std::string Out = "batch report (" + std::to_string(Results.size()) +
                    " cases)\n";
  for (const BatchResult &R : Results) {
    Out += R.Record.reportLine() + "\n";
    unsigned Idx = static_cast<unsigned>(R.Record.Outcome);
    if (Idx < 5)
      ++Counts[Idx];
  }
  Out += "summary:";
  for (CaseOutcome O :
       {CaseOutcome::Verified, CaseOutcome::Discovered, CaseOutcome::Exhausted,
        CaseOutcome::TimedOut, CaseOutcome::Faulted})
    Out += " " + std::string(caseOutcomeName(O)) + "=" +
           std::to_string(Counts[static_cast<unsigned>(O)]);
  Out += "\n";
  return Out;
}

std::vector<BatchCase> search::libraryCases() {
  std::vector<BatchCase> Out;
  auto FromCase = [&Out](const analysis::AnalysisCase &C) {
    BatchCase B;
    B.Id = C.Id;
    B.OperatorId = C.OperatorId;
    B.InstructionId = C.InstructionId;
    B.M = C.RequiresExtension ? analysis::Mode::Extension
                              : analysis::Mode::Base;
    Out.push_back(std::move(B));
  };
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    FromCase(C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    FromCase(C);
  FromCase(analysis::movc3SassignCase());
  return Out;
}
