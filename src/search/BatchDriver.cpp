//===- BatchDriver.cpp - Parallel discovery over many cases -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"

#include "analysis/Derivations.h"
#include "transform/Transform.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace extra;
using namespace extra::search;

std::vector<BatchResult> search::runBatch(const std::vector<BatchCase> &Cases,
                                          const BatchOptions &Opts,
                                          BatchStats *Stats) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();

  std::vector<BatchResult> Results(Cases.size());
  for (size_t I = 0; I < Cases.size(); ++I)
    Results[I].Case = Cases[I];

  unsigned Threads = Opts.Threads;
  if (Threads == 0)
    Threads = std::max(2u, std::thread::hardware_concurrency());
  if (Cases.size() < Threads)
    Threads = static_cast<unsigned>(Cases.size());

  // Force the lazily initialized globals (rule registry) into existence
  // before workers start; every later access is then read-only.
  (void)transform::Registry::instance();

  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (size_t I = Next.fetch_add(1); I < Cases.size();
         I = Next.fetch_add(1)) {
      const BatchCase &C = Cases[I];
      // Per-case limits: the trace label is the case id, so all searches
      // can share one sink and still be told apart in the postmortem.
      SearchLimits L = Opts.Limits;
      if (L.TraceLabel.empty())
        L.TraceLabel = C.Id;
      Clock::time_point CaseStart = Clock::now();
      Results[I].Discovery =
          discoverAndVerify(C.OperatorId, C.InstructionId, L, C.M);
      Results[I].WallMs =
          std::chrono::duration<double, std::milli>(Clock::now() - CaseStart)
              .count();
      if (L.Metrics)
        L.Metrics->histogram("batch.case_wall_ms")
            .record(static_cast<uint64_t>(Results[I].WallMs));
    }
  };

  if (Threads <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  if (Stats) {
    *Stats = BatchStats();
    Stats->Cases = static_cast<unsigned>(Cases.size());
    Stats->ThreadsUsed = std::max(1u, Threads);
    for (const BatchResult &R : Results) {
      Stats->Discovered += R.Discovery.Outcome.Found ? 1 : 0;
      Stats->Verified += R.Discovery.Verified ? 1 : 0;
      Stats->NodesExpanded += R.Discovery.Outcome.Stats.NodesExpanded;
      Stats->HashHits += R.Discovery.Outcome.Stats.HashHits;
      Stats->DeadEnds += R.Discovery.Outcome.Stats.DeadEnds;
      Stats->CaseWallMs += R.WallMs;
      if (R.WallMs > Stats->SlowestCaseMs) {
        Stats->SlowestCaseMs = R.WallMs;
        Stats->SlowestCase = R.Case.Id;
      }
    }
    Stats->WallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
  }
  return Results;
}

std::vector<BatchCase> search::libraryCases() {
  std::vector<BatchCase> Out;
  auto FromCase = [&Out](const analysis::AnalysisCase &C) {
    BatchCase B;
    B.Id = C.Id;
    B.OperatorId = C.OperatorId;
    B.InstructionId = C.InstructionId;
    B.M = C.RequiresExtension ? analysis::Mode::Extension
                              : analysis::Mode::Base;
    Out.push_back(std::move(B));
  };
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    FromCase(C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    FromCase(C);
  FromCase(analysis::movc3SassignCase());
  return Out;
}
