//===- Postmortem.cpp - Why did the beam lose the recorded line? -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/Postmortem.h"

#include "analysis/Priors.h"
#include "descriptions/Descriptions.h"
#include "search/Canon.h"
#include "search/Searcher.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace extra;
using namespace extra::search;
using namespace extra::isdl;
using obs::TraceRecord;
using transform::Script;
using transform::Step;

namespace {

/// The recorded line replayed prefix by prefix: a cloned description and
/// canonical fingerprint per script prefix (index 0 = the unmodified
/// description).
struct LineReplay {
  bool Ok = false;
  std::string Error;
  std::vector<Description> Descs;
  std::vector<uint64_t> Fps;
};

LineReplay replayLine(const Description &Start, const Script &S,
                      const char *SideName) {
  LineReplay R;
  transform::Engine E(Start.clone());
  R.Descs.push_back(E.current().clone());
  R.Fps.push_back(fingerprint(E.current()));
  for (size_t I = 0; I < S.size(); ++I) {
    transform::ApplyResult A = E.apply(S[I]);
    if (!A.Applied) {
      R.Error = std::string("recorded ") + SideName + " step " +
                std::to_string(I + 1) + " (" + S[I].Rule +
                ") failed to replay: " + A.Reason;
      return R;
    }
    R.Descs.push_back(E.current().clone());
    R.Fps.push_back(fingerprint(E.current()));
  }
  R.Ok = true;
  return R;
}

/// First prefix index with the given fingerprint, or nullopt. Linear —
/// recorded scripts are at most a couple dozen steps.
std::optional<size_t> prefixOf(const std::vector<uint64_t> &Fps, uint64_t Fp) {
  for (size_t I = 0; I < Fps.size(); ++I)
    if (Fps[I] == Fp)
      return I;
  return std::nullopt;
}

bool sameStep(const Step &A, const Step &B) {
  return A.Rule == B.Rule && A.Routine == B.Routine && A.Args == B.Args;
}

} // namespace

PostmortemReport search::postmortem(const std::vector<TraceRecord> &Trace,
                                    const analysis::AnalysisCase &Recorded,
                                    const PostmortemOptions &Opts) {
  PostmortemReport Rep;

  // ----- Select the search span. ---------------------------------------
  std::map<uint64_t, uint64_t> ParentOf; // span id -> parent id
  std::vector<const TraceRecord *> Searches;
  for (const TraceRecord &R : Trace)
    if (R.K == TraceRecord::Kind::Span) {
      ParentOf[R.Id] = R.Parent;
      if (R.Name == "search")
        Searches.push_back(&R);
    }
  const TraceRecord *Search = nullptr;
  if (Opts.CaseFilter.empty()) {
    if (Searches.size() != 1) {
      Rep.Error = Searches.empty()
                      ? "trace contains no search span"
                      : "trace contains " + std::to_string(Searches.size()) +
                            " search spans; use a case filter";
      return Rep;
    }
    Search = Searches.front();
  } else {
    for (const TraceRecord *S : Searches)
      if (S->field("case") == Opts.CaseFilter)
        Search = S;
    if (!Search)
      for (const TraceRecord *S : Searches)
        if (S->field("case").find(Opts.CaseFilter) != std::string::npos)
          Search = S;
    if (!Search) {
      Rep.Error = "no search span matches case filter '" + Opts.CaseFilter +
                  "' (" + std::to_string(Searches.size()) + " searches traced)";
      return Rep;
    }
  }
  Rep.Case = Search->field("case");

  auto UnderSearch = [&](uint64_t SpanId) {
    for (uint64_t Id = SpanId; Id != 0;) {
      if (Id == Search->Id)
        return true;
      auto It = ParentOf.find(Id);
      if (It == ParentOf.end())
        return false;
      Id = It->second;
    }
    return false;
  };

  // ----- Collect this search's rounds and events. ----------------------
  std::set<unsigned> Rounds;
  std::vector<const TraceRecord *> Events;
  for (const TraceRecord &R : Trace) {
    if (R.K == TraceRecord::Kind::Span) {
      if (R.Name == "round" && UnderSearch(R.Id))
        Rounds.insert(static_cast<unsigned>(R.fieldU64("round")));
      continue;
    }
    if (!UnderSearch(R.Span))
      continue;
    Events.push_back(&R);
    if (R.Name == "goal")
      Rep.GoalReached = true;
  }
  if (Rounds.empty()) {
    Rep.Error = "search span has no round spans (truncated trace?)";
    return Rep;
  }
  Rep.RoundsTraced = static_cast<unsigned>(Rounds.size());
  Rep.RoundAnalyzed = *Rounds.rbegin();

  // ----- Replay the recorded line. -------------------------------------
  auto Operator = descriptions::load(Recorded.OperatorId);
  auto Instruction = descriptions::load(Recorded.InstructionId);
  if (!Operator || !Instruction) {
    Rep.Error = "cannot load descriptions '" + Recorded.OperatorId + "' / '" +
                Recorded.InstructionId + "'";
    return Rep;
  }
  LineReplay Op = replayLine(*Operator, Recorded.OperatorScript, "operator");
  if (!Op.Ok) {
    Rep.Error = Op.Error;
    return Rep;
  }
  LineReplay Inst =
      replayLine(*Instruction, Recorded.InstructionScript, "instruction");
  if (!Inst.Ok) {
    Rep.Error = Inst.Error;
    return Rep;
  }

  // ----- Walk the widest round's frontier, depth by depth. -------------
  auto OnLine = [&](const TraceRecord &R)
      -> std::optional<std::pair<size_t, size_t>> {
    auto I = prefixOf(Op.Fps, R.fieldU64("fp_op"));
    auto J = prefixOf(Inst.Fps, R.fieldU64("fp_inst"));
    if (I && J)
      return std::make_pair(*I, *J);
    return std::nullopt;
  };

  std::map<unsigned, std::vector<const TraceRecord *>> FrontierByDepth;
  std::vector<const TraceRecord *> Prunes;
  for (const TraceRecord *E : Events) {
    unsigned Round = static_cast<unsigned>(E->fieldU64("round"));
    if (Round != Rep.RoundAnalyzed)
      continue;
    if (E->Name == "frontier")
      FrontierByDepth[static_cast<unsigned>(E->fieldU64("depth"))]
          .push_back(E);
    else if (E->Name == "prune") {
      Prunes.push_back(E);
      ++Rep.PruneBreakdown[E->field("reason")];
    }
  }
  if (FrontierByDepth.empty()) {
    Rep.Error = "round " + std::to_string(Rep.RoundAnalyzed) +
                " has no frontier events (truncated trace?)";
    return Rep;
  }

  std::pair<size_t, size_t> Last{0, 0}; // deepest on-line progress (i, j)
  bool HaveOnLine = false;
  unsigned LastOnLineDepth = 0;
  unsigned Diverge = 0;
  for (const auto &[Depth, States] : FrontierByDepth) {
    bool Any = false;
    for (const TraceRecord *R : States)
      if (auto IJ = OnLine(*R)) {
        Any = true;
        if (!HaveOnLine || IJ->first + IJ->second >= Last.first + Last.second)
          Last = *IJ;
        HaveOnLine = true;
      }
    if (!Any) {
      Diverge = Depth;
      break;
    }
    LastOnLineDepth = Depth;
  }
  Rep.Ok = true;
  if (Rep.GoalReached || Diverge == 0) {
    Rep.Diverged = false; // The line held to the deepest traced frontier.
    return Rep;
  }
  if (!HaveOnLine) {
    // Even depth 0 missed: the traced search ran a different pairing.
    Rep.Ok = false;
    Rep.Error = "no traced frontier state lies on the recorded line — does "
                "the trace belong to case '" +
                Recorded.Id + "'?";
    return Rep;
  }
  (void)LastOnLineDepth;
  Rep.Diverged = true;
  Rep.DivergenceDepth = Diverge;
  Rep.RecordedOpSteps = static_cast<unsigned>(Last.first);
  Rep.RecordedInstSteps = static_cast<unsigned>(Last.second);

  // ----- Which recorded step was needed, and what became of it? --------
  size_t I = Last.first, J = Last.second;
  bool HasOpNext = I < Recorded.OperatorScript.size();
  bool HasInstNext = J < Recorded.InstructionScript.size();
  uint64_t OpChildOp = HasOpNext ? Op.Fps[I + 1] : 0;
  uint64_t InstChildInst = HasInstNext ? Inst.Fps[J + 1] : 0;

  const TraceRecord *Culprit = nullptr;
  bool NeededIsOp = false;
  for (const TraceRecord *P : Prunes) {
    uint64_t FpO = P->fieldU64("fp_op"), FpI = P->fieldU64("fp_inst");
    std::string Reason = P->field("reason");
    if (Reason == "verify-reject") {
      // verify-reject events carry the *parent* state plus the rule.
      if (FpO != Op.Fps[I] || FpI != Inst.Fps[J])
        continue;
      if (HasOpNext && P->field("rule") == Recorded.OperatorScript[I].Rule &&
          P->field("side") == "operator") {
        Culprit = P;
        NeededIsOp = true;
        break;
      }
      if (HasInstNext &&
          P->field("rule") == Recorded.InstructionScript[J].Rule &&
          P->field("side") == "instruction") {
        Culprit = P;
        NeededIsOp = false;
        break;
      }
      continue;
    }
    if (HasOpNext && FpO == OpChildOp && FpI == Inst.Fps[J]) {
      Culprit = P;
      NeededIsOp = true;
      break;
    }
    if (HasInstNext && FpO == Op.Fps[I] && FpI == InstChildInst) {
      Culprit = P;
      NeededIsOp = false;
      break;
    }
  }
  if (!Culprit)
    // Never generated: prefer the side that still has recorded work (the
    // instruction side when both do — the exotic moves live there).
    NeededIsOp = HasOpNext && !HasInstNext;

  const Step *Needed = nullptr;
  if (NeededIsOp && HasOpNext)
    Needed = &Recorded.OperatorScript[I];
  else if (!NeededIsOp && HasInstNext)
    Needed = &Recorded.InstructionScript[J];
  else if (HasOpNext)
    Needed = &Recorded.OperatorScript[I];
  if (!Needed) {
    // The full recorded state was in the beam yet no goal fired — worth
    // reporting as-is rather than failing.
    Rep.PruneReason = "recorded line complete in beam; no goal confirmed";
    return Rep;
  }
  Rep.NeededRule = Needed->str();
  Rep.NeededSide = NeededIsOp ? "operator" : "instruction";
  if (Culprit) {
    Rep.PruneReason = Culprit->field("reason");
    Rep.PrunedScore = Culprit->fieldDouble("score");
    Rep.CutoffScore = Culprit->fieldDouble("cutoff");
  } else {
    Rep.PruneReason = "never-generated";
  }

  // ----- Rank of the needed step in the candidate ordering. ------------
  const Description &Cur = NeededIsOp ? Op.Descs[I] : Inst.Descs[J];
  const Description &Oth = NeededIsOp ? Inst.Descs[J] : Op.Descs[I];
  std::vector<Step> Cands =
      enumerateCandidates(Cur, Oth, /*CurrentIsInstruction=*/!NeededIsOp);
  const Script &PrefixScript =
      NeededIsOp ? Recorded.OperatorScript : Recorded.InstructionScript;
  size_t Prefix = NeededIsOp ? I : J;
  const std::string Prev =
      Prefix == 0 ? std::string() : PrefixScript[Prefix - 1].Rule;
  const analysis::Priors &Priors = analysis::Priors::instance();
  std::stable_sort(Cands.begin(), Cands.end(),
                   [&](const Step &A, const Step &B) {
                     return Priors.bigram(Prev, A.Rule) >
                            Priors.bigram(Prev, B.Rule);
                   });
  Rep.CandidatePool = static_cast<int>(Cands.size());
  for (size_t K = 0; K < Cands.size(); ++K) {
    if (Rep.NeededRank < 0 && sameStep(Cands[K], *Needed))
      Rep.NeededRank = static_cast<int>(K + 1);
    if (Rep.NeededRuleRank < 0 && Cands[K].Rule == Needed->Rule)
      Rep.NeededRuleRank = static_cast<int>(K + 1);
  }
  return Rep;
}

PartialSummary
search::summarizePartial(const std::vector<TraceRecord> &Trace) {
  PartialSummary Sum;

  // Span id -> parent and span id -> case label, for attributing each
  // partial event to its search.
  std::map<uint64_t, uint64_t> ParentOf;
  std::map<uint64_t, std::string> SearchCase;
  for (const TraceRecord &R : Trace)
    if (R.K == TraceRecord::Kind::Span) {
      ParentOf[R.Id] = R.Parent;
      if (R.Name == "search")
        SearchCase[R.Id] = R.field("case");
    }
  auto CaseOf = [&](uint64_t SpanId) -> std::string {
    for (uint64_t Id = SpanId; Id != 0;) {
      auto C = SearchCase.find(Id);
      if (C != SearchCase.end())
        return C->second;
      auto It = ParentOf.find(Id);
      if (It == ParentOf.end())
        return std::string();
      Id = It->second;
    }
    return std::string();
  };

  for (const TraceRecord &R : Trace) {
    if (R.K != TraceRecord::Kind::Event || R.Name != "search.partial")
      continue;
    PartialCaseSummary P;
    P.Case = CaseOf(R.Span);
    P.Distance = static_cast<unsigned>(R.fieldU64("distance"));
    P.Depth = static_cast<unsigned>(R.fieldU64("depth"));
    P.Round = static_cast<unsigned>(R.fieldU64("round"));
    P.FpOp = R.fieldU64("fp_op");
    P.FpInst = R.fieldU64("fp_inst");
    P.StepsOp = R.fieldU64("steps_op");
    P.StepsInst = R.fieldU64("steps_inst");
    P.RoutineA = R.field("routine_a");
    P.RoutineB = R.field("routine_b");
    P.Detail = R.field("detail");
    Sum.Cases.push_back(std::move(P));
  }
  std::stable_sort(Sum.Cases.begin(), Sum.Cases.end(),
                   [](const PartialCaseSummary &A,
                      const PartialCaseSummary &B) {
                     return A.Distance < B.Distance;
                   });
  return Sum;
}

std::string PartialSummary::str() const {
  if (Cases.empty())
    return "no partial results traced\n";
  std::string S = "partial results (" + std::to_string(Cases.size()) +
                  " failed searches, nearest miss first)\n";
  for (const PartialCaseSummary &P : Cases) {
    S += "  ";
    S += P.Case.empty() ? "<unlabeled>" : P.Case;
    S += ": distance " + std::to_string(P.Distance) + " at depth " +
         std::to_string(P.Depth) + " (round " + std::to_string(P.Round) +
         "), script prefix " + std::to_string(P.StepsOp) + "+" +
         std::to_string(P.StepsInst) + "\n";
    if (!P.RoutineA.empty() || !P.RoutineB.empty()) {
      S += "    diverges at " +
           (P.RoutineA.empty() ? std::string("?") : P.RoutineA) + " vs " +
           (P.RoutineB.empty() ? std::string("?") : P.RoutineB);
      if (!P.Detail.empty())
        S += ": " + P.Detail;
      S += "\n";
    }
  }
  return S;
}

std::string PostmortemReport::str() const {
  std::string S;
  if (!Ok)
    return "postmortem failed: " + Error + "\n";
  S += "postmortem";
  if (!Case.empty())
    S += " for " + Case;
  S += " (round " + std::to_string(RoundAnalyzed) + " of " +
       std::to_string(RoundsTraced) + " traced)\n";
  if (GoalReached) {
    S += "  search reached a goal; nothing to diagnose\n";
    return S;
  }
  if (!Diverged) {
    S += "  recorded line survived every traced depth — the search "
         "stopped on budget or beam exhaustion, not by losing the line\n";
    for (const auto &[Reason, Count] : PruneBreakdown)
      S += "  prunes[" + Reason + "] = " + std::to_string(Count) + "\n";
    return S;
  }
  S += "  recorded line fell out of the beam at depth " +
       std::to_string(DivergenceDepth) + "\n";
  S += "  last on-line state: " + std::to_string(RecordedOpSteps) +
       " operator + " + std::to_string(RecordedInstSteps) +
       " instruction recorded steps applied\n";
  if (!NeededRule.empty()) {
    S += "  needed next (" + NeededSide + " side): " + NeededRule + "\n";
    if (NeededRank > 0)
      S += "  proposed at rank " + std::to_string(NeededRank) + " of " +
           std::to_string(CandidatePool) + " candidates\n";
    else if (NeededRuleRank > 0)
      S += "  rule family first at rank " + std::to_string(NeededRuleRank) +
           " of " + std::to_string(CandidatePool) +
           " candidates, but never with the recorded arguments "
           "(argument-synthesis gap)\n";
    else
      S += "  not in the " + std::to_string(CandidatePool) +
           "-candidate pool at all (enumeration gap)\n";
  }
  S += "  fate of the on-line successor: " + PruneReason;
  if (PruneReason == "score-cutoff")
    S += " (score " + std::to_string(PrunedScore) + " vs cutoff " +
         std::to_string(CutoffScore) + ")";
  S += "\n";
  for (const auto &[Reason, Count] : PruneBreakdown)
    S += "  prunes[" + Reason + "] = " + std::to_string(Count) + "\n";
  return S;
}
