//===- Canon.cpp - Canonical-form fingerprints for search -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/Canon.h"

#include "descriptions/Descriptions.h"
#include "isdl/Intern.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace extra;
using namespace extra::isdl;

namespace {

/// Streams canonical tokens into an FNV-1a accumulator. The token layout
/// mirrors the lockstep order of isdl::matchStmts/matchExpr so that two
/// matchable descriptions emit identical streams.
class Canonicalizer {
public:
  explicit Canonicalizer(const Description &D) : D(D) {}

  uint64_t run() {
    const Routine *Entry = D.entryRoutine();
    if (!Entry) {
      mix(Tag::NoEntry);
      return H;
    }
    nameId(Entry->Name);
    // Expand routines in first-mention order. Matching binds routines at
    // call sites; because both sides of a successful match mention bound
    // routines in the same lockstep order, first-mention expansion is
    // isomorphism-invariant (unlike alphabetical order, which depends on
    // the very names we are abstracting away).
    while (NextToExpand < Mentioned.size()) {
      const std::string Name = Mentioned[NextToExpand++];
      const Routine *R = D.findRoutine(Name);
      if (!R)
        continue;
      mix(Tag::RoutineBody);
      walk(R->Body);
      mix(Tag::End);
    }
    return H;
  }

private:
  enum class Tag : uint64_t {
    NoEntry = 1,
    RoutineBody,
    End,
    Assign,
    AssignToMem,
    If,
    Else,
    Repeat,
    ExitWhen,
    Input,
    Output,
    Constrain,
    Assert,
    IntLit,
    CharLit,
    VarRef,
    MemRef,
    Call,
    Unary,
    Binary,
    DeclaredVar,
    UndeclaredVar,
    RoutineName,
  };

  void mix(uint64_t V) {
    // FNV-1a over the value's bytes.
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFF;
      H *= 1099511628211ULL;
    }
  }
  void mix(Tag T) { mix(static_cast<uint64_t>(T)); }

  /// Canonical index of a name, assigned at first mention. The first
  /// mention also records what kind of thing the name is on this side
  /// (routine / declared variable / undeclared), because the matcher
  /// insists the two sides agree on that.
  void nameId(const std::string &Name) {
    auto [It, Inserted] = Ids.emplace(Name, Ids.size());
    if (Inserted) {
      Mentioned.push_back(Name);
      if (D.findRoutine(Name))
        mix(Tag::RoutineName);
      else
        mix(D.findDecl(Name) ? Tag::DeclaredVar : Tag::UndeclaredVar);
    }
    mix(It->second);
  }

  void walk(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      mix(Tag::IntLit);
      mix(static_cast<uint64_t>(cast<IntLit>(&E)->getValue()));
      return;
    case Expr::Kind::CharLit:
      mix(Tag::CharLit);
      mix(cast<CharLit>(&E)->getValue());
      return;
    case Expr::Kind::VarRef:
      mix(Tag::VarRef);
      nameId(cast<VarRef>(&E)->getName());
      return;
    case Expr::Kind::MemRef:
      mix(Tag::MemRef);
      walk(*cast<MemRef>(&E)->getAddress());
      return;
    case Expr::Kind::Call:
      mix(Tag::Call);
      nameId(cast<CallExpr>(&E)->getCallee());
      return;
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      mix(Tag::Unary);
      mix(static_cast<uint64_t>(U->getOp()));
      walk(*U->getOperand());
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      mix(Tag::Binary);
      mix(static_cast<uint64_t>(B->getOp()));
      walk(*B->getLHS());
      walk(*B->getRHS());
      return;
    }
    }
  }

  void walk(const Stmt &S) {
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      mix(isa<MemRef>(A->getTarget()) ? Tag::AssignToMem : Tag::Assign);
      walk(*A->getTarget());
      walk(*A->getValue());
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      mix(Tag::If);
      walk(*If->getCond());
      walk(If->getThen());
      mix(Tag::Else);
      walk(If->getElse());
      mix(Tag::End);
      return;
    }
    case Stmt::Kind::Repeat:
      mix(Tag::Repeat);
      walk(cast<RepeatStmt>(&S)->getBody());
      mix(Tag::End);
      return;
    case Stmt::Kind::ExitWhen:
      mix(Tag::ExitWhen);
      walk(*cast<ExitWhenStmt>(&S)->getCond());
      return;
    case Stmt::Kind::Input: {
      const auto *In = cast<InputStmt>(&S);
      mix(Tag::Input);
      mix(In->getTargets().size());
      for (const std::string &T : In->getTargets())
        nameId(T);
      return;
    }
    case Stmt::Kind::Output: {
      const auto *Out = cast<OutputStmt>(&S);
      mix(Tag::Output);
      mix(Out->getValues().size());
      for (const ExprPtr &V : Out->getValues())
        walk(*V);
      return;
    }
    case Stmt::Kind::Constrain: {
      const auto *C = cast<ConstrainStmt>(&S);
      mix(Tag::Constrain);
      for (char Ch : C->getTag())
        mix(static_cast<uint64_t>(Ch));
      walk(*C->getPred());
      return;
    }
    case Stmt::Kind::Assert:
      mix(Tag::Assert);
      walk(*cast<AssertStmt>(&S)->getPred());
      return;
    }
  }

  void walk(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts)
      walk(*S);
  }

  const Description &D;
  uint64_t H = 14695981039346656037ULL; // FNV offset basis.
  std::map<std::string, uint64_t> Ids;
  std::vector<std::string> Mentioned;
  size_t NextToExpand = 0;
};

} // namespace

uint64_t search::fingerprint(const Description &D) {
  return isdl::canonicalFingerprint(D);
}

uint64_t search::fingerprintLegacy(const Description &D) {
  return Canonicalizer(D).run();
}

uint64_t search::pairKey(uint64_t OperatorFp, uint64_t InstructionFp) {
  // Asymmetric mix (boost::hash_combine style) so (A, B) and (B, A) are
  // distinct states.
  uint64_t H = OperatorFp;
  H ^= InstructionFp + 0x9E3779B97F4A7C15ULL + (H << 12) + (H >> 4);
  return H;
}

Expected<std::string> search::pairingKeyHex(const std::string &OperatorId,
                                            const std::string &InstructionId,
                                            analysis::Mode M) {
  auto Op = descriptions::loadChecked(OperatorId);
  if (!Op)
    return Op.fault();
  auto Inst = descriptions::loadChecked(InstructionId);
  if (!Inst)
    return Inst.fault();
  uint64_t Key = pairKey(fingerprint(**Op), fingerprint(**Inst));
  // Extension mode changes what the analysis may conclude (relational
  // constraints), so the two modes are distinct cache lines.
  if (M == analysis::Mode::Extension)
    Key ^= 0x9e3779b97f4a7c15ull;
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(Key));
  return std::string(Buf);
}
