//===- BatchDriver.h - Parallel discovery over many cases -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs autonomous derivation searches for many operator/instruction
/// pairs concurrently. Descriptions are value types and every search is
/// self-contained, so cases are embarrassingly parallel: a std::thread
/// worker pool claims case indices from an atomic counter and writes
/// results into pre-sized slots. Results are bitwise independent of the
/// thread count and of scheduling — each search is deterministic and
/// shares no mutable state.
///
/// Resilience (the robustness layer):
///
///  * **Fault containment and degraded retry** live in the shared
///    job-execution layer (JobRunner.h): each case runs under a
///    catch-all with a watchdog thread and gets one degraded retry —
///    see executeJob for the exact semantics. The batch always
///    completes and reports every case.
///  * **Checkpoint/resume.** With a checkpoint path set, every finished
///    case appends one CheckpointRecord line; a resumed run skips the
///    recorded cases and reconstructs their report lines from the file,
///    byte-identically.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_BATCHDRIVER_H
#define EXTRA_SEARCH_BATCHDRIVER_H

#include "search/Checkpoint.h"
#include "search/JobRunner.h"
#include "search/Searcher.h"

#include <string>
#include <vector>

namespace extra {
namespace search {

/// Worker-pool configuration.
struct BatchOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency (at
  /// least 2 so the batch path is always exercised concurrently).
  unsigned Threads = 0;
  SearchLimits Limits;
  /// JSONL checkpoint file: one CheckpointRecord appended per finished
  /// case. Empty disables checkpointing.
  std::string CheckpointPath;
  /// Skip cases already recorded in CheckpointPath (idempotent resume).
  bool Resume = false;
  /// Retry a TimedOut/Faulted case once at half beam and half nodes.
  bool DegradedRetry = true;
  /// Per-case watchdog over the cooperative cancel flag; disable only in
  /// tests that want deterministic timing-free behavior.
  bool Watchdog = true;
};

/// The outcome of one batch entry.
struct BatchResult {
  BatchCase Case;
  DiscoveryResult Discovery;
  /// Wall time this case spent in discoverAndVerify (search + replay).
  /// Also recorded in the `batch.case_wall_ms` histogram when a metrics
  /// registry rides in BatchOptions::Limits.
  double WallMs = 0;
  /// The canonical per-case report data (always filled — from the live
  /// run, or from the checkpoint file on resume).
  CheckpointRecord Record;
  /// True when the case was skipped on resume and Record came from the
  /// checkpoint file (Discovery is then empty).
  bool FromCheckpoint = false;
};

/// Aggregated counters for one batch run.
struct BatchStats {
  unsigned Cases = 0;
  unsigned Discovered = 0; ///< Searches that reached common form.
  unsigned Verified = 0;   ///< Discoveries surviving the full replay.
  unsigned Exhausted = 0;  ///< Typed outcome counts (see CaseOutcome).
  unsigned TimedOut = 0;
  unsigned Faulted = 0;
  unsigned Retried = 0;    ///< Cases whose degraded retry ran.
  unsigned Resumed = 0;    ///< Cases satisfied from the checkpoint file.
  unsigned ThreadsUsed = 0;
  uint64_t NodesExpanded = 0;
  uint64_t HashHits = 0;
  uint64_t DeadEnds = 0;
  double WallMs = 0;        ///< Batch wall time (not the per-case sum).
  double CaseWallMs = 0;    ///< Sum of per-case wall times (CPU-ish cost).
  double SlowestCaseMs = 0; ///< Longest single case.
  std::string SlowestCase;  ///< Its id.
};

/// Runs every case, in parallel, and returns results in input order.
/// Never throws for a case-level failure: every case lands on a typed
/// CaseOutcome in its Record.
std::vector<BatchResult> runBatch(const std::vector<BatchCase> &Cases,
                                  const BatchOptions &Opts,
                                  BatchStats *Stats = nullptr);

/// The deterministic batch report: one Record::reportLine per case in
/// input order plus an outcome summary. A pure function of the records —
/// no wall-clock content — so a killed-and-resumed batch renders byte-
/// identically to an uninterrupted one.
std::string batchReportText(const std::vector<BatchResult> &Results);

/// All recorded analysis pairings (Table 2, the extended cases, and the
/// §4.3 movc3 case) as BatchCases — ids and modes only; the searcher
/// rediscovers the scripts from scratch.
std::vector<BatchCase> libraryCases();

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_BATCHDRIVER_H
