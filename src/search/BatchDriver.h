//===- BatchDriver.h - Parallel discovery over many cases -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs autonomous derivation searches for many operator/instruction
/// pairs concurrently. Descriptions are value types and every search is
/// self-contained, so cases are embarrassingly parallel: a std::thread
/// worker pool claims case indices from an atomic counter and writes
/// results into pre-sized slots. Results are bitwise independent of the
/// thread count and of scheduling — each search is deterministic and
/// shares no mutable state.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_BATCHDRIVER_H
#define EXTRA_SEARCH_BATCHDRIVER_H

#include "search/Searcher.h"

#include <string>
#include <vector>

namespace extra {
namespace search {

/// One pairing to discover, named by description-library ids (the
/// recorded derivation scripts are never consulted).
struct BatchCase {
  std::string Id; ///< Report label, conventionally "<inst-id>/<op-id>".
  std::string OperatorId;
  std::string InstructionId;
  analysis::Mode M = analysis::Mode::Base;
};

/// Worker-pool configuration.
struct BatchOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency (at
  /// least 2 so the batch path is always exercised concurrently).
  unsigned Threads = 0;
  SearchLimits Limits;
};

/// The outcome of one batch entry.
struct BatchResult {
  BatchCase Case;
  DiscoveryResult Discovery;
  /// Wall time this case spent in discoverAndVerify (search + replay).
  /// Also recorded in the `batch.case_wall_ms` histogram when a metrics
  /// registry rides in BatchOptions::Limits.
  double WallMs = 0;
};

/// Aggregated counters for one batch run.
struct BatchStats {
  unsigned Cases = 0;
  unsigned Discovered = 0; ///< Searches that reached common form.
  unsigned Verified = 0;   ///< Discoveries surviving the full replay.
  unsigned ThreadsUsed = 0;
  uint64_t NodesExpanded = 0;
  uint64_t HashHits = 0;
  uint64_t DeadEnds = 0;
  double WallMs = 0;        ///< Batch wall time (not the per-case sum).
  double CaseWallMs = 0;    ///< Sum of per-case wall times (CPU-ish cost).
  double SlowestCaseMs = 0; ///< Longest single case.
  std::string SlowestCase;  ///< Its id.
};

/// Runs every case, in parallel, and returns results in input order.
std::vector<BatchResult> runBatch(const std::vector<BatchCase> &Cases,
                                  const BatchOptions &Opts,
                                  BatchStats *Stats = nullptr);

/// All recorded analysis pairings (Table 2, the extended cases, and the
/// §4.3 movc3 case) as BatchCases — ids and modes only; the searcher
/// rediscovers the scripts from scratch.
std::vector<BatchCase> libraryCases();

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_BATCHDRIVER_H
