//===- Searcher.h - Autonomous derivation-script discovery ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline future work (§7): "methods should be developed to
/// structure the analysis and to help the user in deciding how the
/// analysis should proceed." Where analysis::suggestSteps ranks a single
/// next step for an interactive user, this module closes the loop: given
/// only an operator description, an instruction description, and budgets,
/// it searches the space of transform::Steps until the two sides reach
/// common form, emitting a verified derivation Script for each side plus
/// the uncovered constraints — no recorded script consulted.
///
/// The search is an iteratively *widening* beam search over two-sided
/// states (a step may apply to either the operator or the instruction
/// copy). Revisited states are pruned in O(1) through a *score-aware*
/// transposition table keyed by the rename-invariant canonical
/// fingerprint (Canon.h): detours that differ only in fresh-name choices
/// or step order collapse, but a state re-reached by a strictly shorter
/// script re-opens (fingerprint-equal states have equal structural
/// distance, so comparing total script length is comparing score) — the
/// cheapest line to each canonical state survives, not the first one.
/// Search states hold copy-on-write isdl::DescHandles: a child shares its
/// untouched side with its parent, fingerprints and feature vectors are
/// cached per description version, and the per-candidate scratch engine
/// clones only when a rule actually applies. Every applied candidate
/// passes the engine's applicability
/// checks and (optionally) a cheap per-node differential verification;
/// a discovered script is then re-verified end to end through
/// analysis::runAnalysis with full trial counts before being reported.
///
/// Hard wall-clock and node budgets bound every search: a search can
/// fail, but it can never hang.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_SEARCHER_H
#define EXTRA_SEARCH_SEARCHER_H

#include "analysis/Analysis.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "support/Error.h"
#include "transform/Transform.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace extra {
namespace search {

/// Budgets and shape knobs for one search. Defaults are sized so the
/// short Table-2 derivations are found in well under a second.
struct SearchLimits {
  /// Maximum total steps across both sides of a candidate derivation.
  unsigned MaxDepth = 20;
  /// States kept per depth level in the first round.
  unsigned BeamWidth = 8;
  /// Extra rounds with doubled beam width when a round fails (iterative
  /// widening; 0 = single round). Three widenings take the default beam
  /// 8 -> 16 -> 32 -> 64; the widest Table-2 pairing (locc/clu.search)
  /// needs 64.
  unsigned Widenings = 3;
  /// Hard cap on expanded states across all rounds.
  uint64_t MaxNodes = 60000;
  /// Hard wall-clock budget across all rounds, in milliseconds.
  uint64_t TimeBudgetMs = 60000;
  /// Differential trials per applied candidate step (0 disables per-node
  /// verification; the end-to-end replay still verifies fully).
  unsigned VerifyTrials = 3;
  /// Weight of accumulated script length in the beam score
  /// (score = structural distance + LengthLambda * steps-so-far). Small
  /// and positive: shorter derivations win ties without letting length
  /// dominate the distance signal. 0 restores pure-distance ranking.
  double LengthLambda = 0.125;

  /// Structured tracing (optional, non-owning). With an enabled sink
  /// the search emits a span hierarchy (search > round > depth >
  /// expand), a "frontier" event per kept state and a "prune" event per
  /// losing state — reason score-cutoff, duplicate-fingerprint, or
  /// verify-reject — each carrying the state's canonical fingerprints
  /// and score breakdown. This is the input to search::postmortem.
  /// Null (the default) costs one branch per site.
  obs::TraceSink *Trace = nullptr;
  /// Metrics registry (optional, non-owning): per-rule apply counters,
  /// apply/verify/match latencies, beam occupancy, prune reasons, and
  /// synth accept/reject rates land here when set.
  obs::Metrics *Metrics = nullptr;
  /// Label stamped on the root "search" span (conventionally the
  /// pairing id); lets one trace file carry many searches.
  std::string TraceLabel;
  /// Cooperative cancellation (optional, non-owning). When set, the
  /// search polls the flag at the same fine-grained points as the
  /// deadline — between frontier expansions, every few candidate
  /// attempts, inside macro-move closures, and per differential trial —
  /// and stops as if the time budget had expired. The batch driver's
  /// watchdog uses this to bound cases whose between-expansion deadline
  /// check is starved by one long expansion.
  std::atomic<bool> *Cancel = nullptr;
  /// Live progress publication (optional, non-owning). When set, the
  /// search publishes one lock-free ProgressSnapshot at the end of each
  /// beam depth — depth, frontier occupancy, expansion counts, best
  /// partial distance, hit rates — which the job watchdog samples for
  /// expansions/sec and the service's `watch` verb streams to clients.
  /// The hot-path cost is exactly one relaxed seqlock publish per depth;
  /// null (the default) costs one branch per depth.
  obs::ProgressPublisher *Progress = nullptr;
  /// Differential/benchmark mode: run the hot path the way the pre-COW
  /// searcher did — a deep copy of the untouched side per child, a fresh
  /// full-walk fingerprint per state (fingerprintLegacy), map-based
  /// structural distance, a cloned description per scratch engine, and no
  /// enumeration caches. Search *behavior* is identical (the differential
  /// suite asserts it); only the representation cost differs. This is the
  /// baseline side of the in-binary perf A/B gate, so the ≥3x CI check is
  /// machine-independent.
  bool LegacyHotPath = false;
};

/// Observability counters for one search (aggregated over widening
/// rounds).
struct SearchStats {
  uint64_t NodesExpanded = 0;   ///< States whose candidates were generated.
  uint64_t NodesGenerated = 0;  ///< Children that applied successfully.
  uint64_t CandidatesTried = 0; ///< Candidate steps attempted.
  uint64_t HashHits = 0;        ///< Transposition-table prunes.
  /// Per-node verifications answered by the deterministic verdict memo
  /// instead of fresh differential trials.
  uint64_t VerifyMemoHits = 0;
  /// States re-reached by a strictly shorter script and re-opened instead
  /// of pruned (the score-aware transposition table keeps the cheapest
  /// line to each canonical state).
  uint64_t Reopened = 0;
  uint64_t DeadEnds = 0;        ///< Candidates refused or failing verify.
  uint64_t GoalChecks = 0;      ///< Full common-form confirmations run.
  unsigned Rounds = 0;          ///< Beam rounds used (1 = no widening).
  double WallMs = 0;            ///< Total wall time.
  bool BudgetExhausted = false; ///< A hard budget stopped the search.
  /// True when the stopping budget was the wall clock (or an external
  /// cancellation), as opposed to the node cap. Implies BudgetExhausted.
  bool TimedOut = false;

  /// Fraction of generated-or-pruned children answered by the table.
  double hashHitRate() const {
    uint64_t Denom = NodesGenerated + HashHits;
    return Denom ? static_cast<double>(HashHits) / Denom : 0.0;
  }
  /// Expansion throughput; 0 when no time elapsed.
  double nodesPerSec() const {
    return WallMs > 0 ? NodesExpanded * 1000.0 / WallMs : 0.0;
  }
};

/// The best line a failed search reached: an *anytime* result. Even when
/// no derivation is found, the closest-to-common-form state the beam
/// visited — its fingerprints, structural distance, the script prefix
/// that reached it, and a live divergence report computed against that
/// state — is preserved so a postmortem can say where the search got
/// stuck without needing a recorded script.
struct PartialLine {
  bool Valid = false;
  uint64_t FpOp = 0, FpInst = 0;
  unsigned Distance = 0;      ///< Structural distance at the best state.
  unsigned Depth = 0;         ///< Beam depth where it was generated.
  unsigned Round = 0;         ///< Widening round where it was generated.
  transform::Script OperatorScript;
  transform::Script InstructionScript;
  /// Rule attribution of the step burst that produced the best state:
  /// the driving rule and the side it applied to (0 = operator, 1 =
  /// instruction). Empty/0 for the root state. Recorded unconditionally,
  /// not only when tracing.
  std::string ViaRule;
  int ViaSide = 0;
  /// Where the best state still diverges (matchDescriptions re-run on
  /// the preserved state at failure time).
  isdl::DivergenceReport Divergence;
};

/// The discovered derivation (or the reason there is none).
struct SearchOutcome {
  bool Found = false;
  std::string FailureReason;
  transform::Script OperatorScript;
  transform::Script InstructionScript;
  /// Binding of the discovered common form.
  isdl::NameBinding Binding;
  /// Constraints recorded by the discovered steps plus register-size
  /// ranges derived from the binding.
  constraint::ConstraintSet Constraints;
  SearchStats Stats;
  /// Typed fault that aborted the search (Category == None when the
  /// search ran to completion, found or not). Faults thrown below the
  /// engine's own containment (e.g. in proposal synthesis) land here
  /// instead of escaping the call.
  Fault SearchFault;
  /// Best partial line when !Found (anytime result).
  PartialLine Partial;
};

/// Searches for a derivation proving \p Operator equivalent to
/// \p Instruction. Deterministic: identical inputs and limits produce
/// identical outcomes, regardless of where or how often it runs.
SearchOutcome searchDerivation(const isdl::Description &Operator,
                               const isdl::Description &Instruction,
                               const SearchLimits &Limits = {});

/// A search outcome re-verified end to end: the discovered scripts are
/// replayed through analysis::runAnalysis (full differential trials,
/// binding-constraint derivation, end-to-end operator check).
struct DiscoveryResult {
  SearchOutcome Outcome;
  /// Valid when Outcome.Found: the full replay of the discovered
  /// derivation.
  analysis::AnalysisResult Replay;
  /// True when the replay succeeded — the discovered scripts are proven.
  bool Verified = false;
};

/// Searches by description-library ids and verifies the result through
/// the analysis driver. The recorded derivation library is never
/// consulted.
DiscoveryResult discoverAndVerify(const std::string &OperatorId,
                                  const std::string &InstructionId,
                                  const SearchLimits &Limits = {},
                                  analysis::Mode M = analysis::Mode::Base);

/// The widened candidate pool: analysis::candidateSteps plus
/// target-aware proposals (operand pinning over every input operand,
/// input permutations, output replacement, occurrence-parameterized
/// rewrites, and per-routine variants). \p Other is the description on
/// the opposite side of the search, used only to aim proposals.
/// \p CurrentIsInstruction gates operand pinning: fixing an operand is
/// an encoding condition on the *instruction* (the recorded sessions
/// never pin an operator operand — that would shrink the language
/// operation's domain instead of constraining the machine's, and it
/// opens degenerate routes that pin a loop count to zero on both sides
/// and match the empty husks).
std::vector<transform::Step>
enumerateCandidates(const isdl::Description &Current,
                    const isdl::Description &Other,
                    bool CurrentIsInstruction = true);

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_SEARCHER_H
