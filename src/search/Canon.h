//===- Canon.h - Canonical-form fingerprints for search ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rename-invariant structural hashing of descriptions, the memoization
/// backbone of the derivation searcher. The paper's common-form test
/// (isdl::matchDescriptions) walks two descriptions in lockstep and asks
/// whether they are identical except for names; `fingerprint` linearizes
/// exactly the structure that walk observes — entry routine first, then
/// every routine reachable through call sites, with names replaced by
/// first-mention indices — and hashes it.
///
/// Consequences the searcher relies on:
///
///  * two descriptions that reach common form have equal fingerprints, so
///    the goal test is an integer compare (confirmed by a full match only
///    on fingerprint equality);
///  * a search state revisited under different fresh names (`p0` vs `p1`)
///    hashes identically and is pruned by the transposition table in
///    O(1) instead of being re-expanded.
///
/// Unreachable routines and unreferenced declarations are deliberately
/// excluded: the common-form matcher never sees them, so states differing
/// only in dead text are interchangeable for search purposes.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SEARCH_CANON_H
#define EXTRA_SEARCH_CANON_H

#include "analysis/Analysis.h"
#include "isdl/AST.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace extra {
namespace search {

/// Rename-invariant structural hash of the match-relevant part of \p D
/// (the entry routine and everything reachable from it).
///
/// Guarantee: if `matchDescriptions(A, B).Matched` then
/// `fingerprint(A) == fingerprint(B)`. The converse holds modulo 64-bit
/// collisions, which the searcher tolerates (a collision can at worst
/// prune one reachable state).
///
/// Computed through the thread-local isdl::Interner: the description is
/// hash-consed into the arena and repeat fingerprints of structurally
/// identical descriptions are answered from a memo without re-walking.
/// Values are identical to fingerprintLegacy — MemoStore keys, registry
/// dedup keys and recorded traces stay valid.
uint64_t fingerprint(const isdl::Description &D);

/// The original map-based single-walk fingerprint, kept as the
/// differential oracle: `fingerprint(D) == fingerprintLegacy(D)` for every
/// description (tests/intern_test.cpp enforces this over the corpus).
uint64_t fingerprintLegacy(const isdl::Description &D);

/// Combines the two side fingerprints of a search state into one
/// transposition-table key. Not commutative: the operator and the
/// instruction side play different roles.
uint64_t pairKey(uint64_t OperatorFp, uint64_t InstructionFp);

/// The canonical identity of one (operator, instruction, mode) pairing,
/// rendered as a stable hex string — the cache key of the server's
/// MemoStore and the dedup key of the binding registry. Loads both
/// descriptions from the library (Store fault on unknown ids),
/// fingerprints them, combines with pairKey, and perturbs the key in
/// Extension mode (the two modes are distinct cache lines: Extension
/// changes what the analysis may conclude).
Expected<std::string> pairingKeyHex(const std::string &OperatorId,
                                    const std::string &InstructionId,
                                    analysis::Mode M);

} // namespace search
} // namespace extra

#endif // EXTRA_SEARCH_CANON_H
