//===- Constraint.h - Operand constraints from analysis ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraints uncovered while proving a language operator equivalent to
/// an exotic instruction. The paper's EXTRA handles exactly three simple
/// forms (§4.3): an operand constrained to a value, to a range, or offset
/// by a value (the IBM 370 `mvc` length-minus-one *coding constraint*,
/// §4.2). Relational constraints over several operands — the `movc3`
/// no-overlap condition — are beyond the 1982 system and are implemented
/// here as the paper's proposed extension; the analysis driver accepts
/// them only in extension mode.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_CONSTRAINT_CONSTRAINT_H
#define EXTRA_CONSTRAINT_CONSTRAINT_H

#include "isdl/AST.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace extra {
namespace constraint {

/// Constraint kinds. Value/Range/Offset are the paper's "simple"
/// constraints; Relational is the §7 future-work extension.
enum class ConstraintKind {
  Value,      ///< Operand must equal a specific value (fixed flag).
  Range,      ///< Operand must lie in [Lo, Hi] (register width bound).
  Offset,     ///< Coding constraint: encode operand as (operand + Delta).
  Relational, ///< Predicate over several operands (e.g. no-overlap).
};

/// One constraint attached to an operator/instruction binding.
class Constraint {
public:
  /// Operand \p Name must have value \p V at every use of the binding.
  static Constraint value(std::string Name, int64_t V, std::string Note = "");
  /// Operand \p Name must lie within [Lo, Hi].
  static Constraint range(std::string Name, int64_t Lo, int64_t Hi,
                          std::string Note = "");
  /// The compiler must encode \p Name as `Name + Delta` (a directive, not
  /// a run-time condition; `mvc` uses Delta = -1).
  static Constraint offset(std::string Name, int64_t Delta,
                           std::string Note = "");
  /// Predicate over several operands; \p Axiom names the source-language
  /// guarantee that discharges it (e.g. "pascal.no-overlap").
  static Constraint relational(isdl::ExprPtr Pred, std::string Axiom,
                               std::string Note = "");

  Constraint(const Constraint &O) { *this = O; }
  Constraint &operator=(const Constraint &O);
  Constraint(Constraint &&) = default;
  Constraint &operator=(Constraint &&) = default;

  ConstraintKind kind() const { return K; }
  const std::string &operand() const { return Operand; }
  int64_t valueOrDelta() const { return Value; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }
  const isdl::Expr *pred() const { return Pred.get(); }
  const std::string &axiom() const { return Axiom; }
  const std::string &note() const { return Note; }

  /// True for the simple forms representable by the 1982 system.
  bool isSimple() const { return K != ConstraintKind::Relational; }

  /// Renders e.g. "value: df = 0", "range: 0 <= Src.Length <= 65535",
  /// "offset: encode Length as Length - 1", "relational: ... [axiom]".
  std::string str() const;

private:
  Constraint() = default;

  ConstraintKind K = ConstraintKind::Value;
  std::string Operand;
  int64_t Value = 0;
  int64_t Lo = 0, Hi = 0;
  isdl::ExprPtr Pred;
  std::string Axiom;
  std::string Note;
};

/// Compile-time knowledge the code generator holds when it considers
/// using a binding at a particular program point.
struct CompileTimeFacts {
  /// Operand names with known constant values (from constant propagation
  /// in the compiler front end).
  std::map<std::string, int64_t> KnownValues;
  /// Known inclusive ranges for operands (e.g. a declared string's
  /// maximum length).
  std::map<std::string, std::pair<int64_t, int64_t>> KnownRanges;
  /// Source-language axioms that hold at this point (e.g.
  /// "pascal.no-overlap": Pascal strings never alias).
  std::set<std::string> Axioms;
};

/// Outcome of checking one constraint against facts.
enum class SatResult {
  Satisfied,   ///< Provably holds; the instruction can be emitted as-is.
  Satisfiable, ///< Holds if the compiler emits setup/rewrite code.
  Violated,    ///< Provably fails; the binding cannot be used here.
  Unknown,     ///< Cannot be decided from the facts.
};

/// Checks \p C against \p Facts.
///
/// Value constraints on instruction flags are Satisfiable (the compiler
/// can set the flag); Range constraints are Satisfied when the known
/// range fits, Satisfiable when a rewriting rule (e.g. chunked moves) is
/// allowed, Violated when a known value falls outside; Offset constraints
/// are directives and always Satisfiable; Relational constraints are
/// Satisfied exactly when their axiom is among \p Facts.Axioms.
SatResult check(const Constraint &C, const CompileTimeFacts &Facts,
                bool AllowRewriting = true);

/// An ordered collection of constraints with set-like deduplication.
class ConstraintSet {
public:
  void add(Constraint C);
  const std::vector<Constraint> &items() const { return Items; }
  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  /// True when any member is Relational (unrepresentable in base mode).
  bool hasRelational() const;

  /// Worst-case result over all members (Violated > Unknown > Satisfiable
  /// > Satisfied).
  SatResult checkAll(const CompileTimeFacts &Facts,
                     bool AllowRewriting = true) const;

  /// Drops constraints beyond the first \p N (supports engine undo).
  void truncate(size_t N);

  /// One constraint per line.
  std::string str() const;

private:
  std::vector<Constraint> Items;
};

} // namespace constraint
} // namespace extra

#endif // EXTRA_CONSTRAINT_CONSTRAINT_H
