//===- Constraint.cpp - Operand constraints from analysis -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "constraint/Constraint.h"

#include "isdl/Equiv.h"
#include "isdl/Printer.h"

using namespace extra;
using namespace extra::constraint;

Constraint Constraint::value(std::string Name, int64_t V, std::string Note) {
  Constraint C;
  C.K = ConstraintKind::Value;
  C.Operand = std::move(Name);
  C.Value = V;
  C.Note = std::move(Note);
  return C;
}

Constraint Constraint::range(std::string Name, int64_t Lo, int64_t Hi,
                             std::string Note) {
  assert(Lo <= Hi && "empty range constraint");
  Constraint C;
  C.K = ConstraintKind::Range;
  C.Operand = std::move(Name);
  C.Lo = Lo;
  C.Hi = Hi;
  C.Note = std::move(Note);
  return C;
}

Constraint Constraint::offset(std::string Name, int64_t Delta,
                              std::string Note) {
  Constraint C;
  C.K = ConstraintKind::Offset;
  C.Operand = std::move(Name);
  C.Value = Delta;
  C.Note = std::move(Note);
  return C;
}

Constraint Constraint::relational(isdl::ExprPtr Pred, std::string Axiom,
                                  std::string Note) {
  assert(Pred && "relational constraint needs a predicate");
  Constraint C;
  C.K = ConstraintKind::Relational;
  C.Pred = std::move(Pred);
  C.Axiom = std::move(Axiom);
  C.Note = std::move(Note);
  return C;
}

Constraint &Constraint::operator=(const Constraint &O) {
  if (this == &O)
    return *this;
  K = O.K;
  Operand = O.Operand;
  Value = O.Value;
  Lo = O.Lo;
  Hi = O.Hi;
  Pred = O.Pred ? O.Pred->clone() : nullptr;
  Axiom = O.Axiom;
  Note = O.Note;
  return *this;
}

std::string Constraint::str() const {
  std::string Out;
  switch (K) {
  case ConstraintKind::Value:
    Out = "value: " + Operand + " = " + std::to_string(Value);
    break;
  case ConstraintKind::Range:
    Out = "range: " + std::to_string(Lo) + " <= " + Operand +
          " <= " + std::to_string(Hi);
    break;
  case ConstraintKind::Offset:
    Out = "offset: encode " + Operand + " as " + Operand +
          (Value >= 0 ? " + " + std::to_string(Value)
                      : " - " + std::to_string(-Value));
    break;
  case ConstraintKind::Relational:
    Out = "relational: " + isdl::printExpr(*Pred) + " [axiom: " + Axiom + "]";
    break;
  }
  if (!Note.empty())
    Out += "  ! " + Note;
  return Out;
}

SatResult constraint::check(const Constraint &C, const CompileTimeFacts &Facts,
                            bool AllowRewriting) {
  switch (C.kind()) {
  case ConstraintKind::Value: {
    auto It = Facts.KnownValues.find(C.operand());
    if (It != Facts.KnownValues.end())
      return It->second == C.valueOrDelta() ? SatResult::Satisfied
                                            : SatResult::Violated;
    // The compiler can materialize the value (e.g. `cld` to clear df).
    return SatResult::Satisfiable;
  }
  case ConstraintKind::Range: {
    auto ItV = Facts.KnownValues.find(C.operand());
    if (ItV != Facts.KnownValues.end()) {
      if (ItV->second >= C.lo() && ItV->second <= C.hi())
        return SatResult::Satisfied;
      return AllowRewriting ? SatResult::Satisfiable : SatResult::Violated;
    }
    auto ItR = Facts.KnownRanges.find(C.operand());
    if (ItR != Facts.KnownRanges.end()) {
      if (ItR->second.first >= C.lo() && ItR->second.second <= C.hi())
        return SatResult::Satisfied;
      if (ItR->second.first > C.hi() || ItR->second.second < C.lo())
        return AllowRewriting ? SatResult::Satisfiable : SatResult::Violated;
    }
    // Unknown operand range: a rewriting rule (e.g. chunked moves, §6) can
    // always force the range when permitted.
    return AllowRewriting ? SatResult::Satisfiable : SatResult::Unknown;
  }
  case ConstraintKind::Offset:
    // A directive to the compiler; it can always comply.
    return SatResult::Satisfiable;
  case ConstraintKind::Relational:
    return Facts.Axioms.count(C.axiom()) ? SatResult::Satisfied
                                         : SatResult::Unknown;
  }
  return SatResult::Unknown;
}

void ConstraintSet::add(Constraint C) {
  for (const Constraint &Existing : Items)
    if (Existing.str() == C.str())
      return;
  Items.push_back(std::move(C));
}

void ConstraintSet::truncate(size_t N) {
  if (N < Items.size())
    Items.erase(Items.begin() + static_cast<long>(N), Items.end());
}

bool ConstraintSet::hasRelational() const {
  for (const Constraint &C : Items)
    if (C.kind() == ConstraintKind::Relational)
      return true;
  return false;
}

SatResult ConstraintSet::checkAll(const CompileTimeFacts &Facts,
                                  bool AllowRewriting) const {
  SatResult Worst = SatResult::Satisfied;
  auto Rank = [](SatResult R) {
    switch (R) {
    case SatResult::Satisfied:
      return 0;
    case SatResult::Satisfiable:
      return 1;
    case SatResult::Unknown:
      return 2;
    case SatResult::Violated:
      return 3;
    }
    return 3;
  };
  for (const Constraint &C : Items) {
    SatResult R = check(C, Facts, AllowRewriting);
    if (Rank(R) > Rank(Worst))
      Worst = R;
  }
  return Worst;
}

std::string ConstraintSet::str() const {
  std::string Out;
  for (const Constraint &C : Items) {
    Out += C.str();
    Out += '\n';
  }
  return Out;
}
