//===- Profile.h - Flame-graph rollups over JSONL traces --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rolls a PR 3 JSONL trace into flame-graph-style self/total-time
/// aggregates. Spans form a tree by id/parent; a span's *self* time is
/// its wall time minus the wall time of its direct children (clamped at
/// zero against clock skew), so summing self time over every span of a
/// tree reproduces the root's wall time exactly — the invariant the
/// profiler's accounting rests on.
///
/// Three rollups come out of one pass: per span label (`search`,
/// `round`, `depth`, `expand`, ...), per rule (from `rule-apply` events
/// carrying `dur_ns`; traces recorded before that field degrade to
/// counts), and per beam depth (from `depth` spans' `depth` payload).
/// `collapsed()` renders the classic semicolon-joined stack lines
/// consumable by standard flamegraph tooling.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_PROFILE_H
#define EXTRA_OBS_PROFILE_H

#include "obs/TraceFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace extra {
namespace obs {

/// One aggregate row: \p Key is a span label, rule name, or depth.
struct ProfileStat {
  std::string Key;
  uint64_t Count = 0;
  uint64_t TotalUs = 0; ///< Sum of wall time (inclusive of children).
  uint64_t SelfUs = 0;  ///< Sum of wall time minus direct children.
};

/// The rollup of one trace (possibly spanning several rotated files).
struct ProfileReport {
  /// Sum of the wall times of root spans (spans with no parent in the
  /// trace) — the denominator the self-time accounting must reproduce.
  uint64_t TracedWallUs = 0;
  uint64_t Spans = 0;
  uint64_t Events = 0;
  std::vector<ProfileStat> ByLabel; ///< Sorted by SelfUs, descending.
  std::vector<ProfileStat> ByRule;  ///< rule-apply events; Self==Total.
  std::vector<ProfileStat> ByDepth; ///< Keyed by the depth number.

  /// Sum of ByLabel self times; equals TracedWallUs up to clamping.
  uint64_t selfTotalUs() const;

  /// Human-readable tables.
  std::string str() const;
  /// Collapsed-stack lines (`a;b;c <self_us>`), one per distinct stack,
  /// sorted by path — feed to flamegraph.pl or speedscope.
  std::string collapsed() const;
};

/// Profiles a parsed trace. Works on any span/event mix; events other
/// than `rule-apply` only contribute to the event count.
ProfileReport profileTrace(const std::vector<TraceRecord> &Trace);

/// Full-fidelity collapsed stacks straight from the raw records: one
/// `parent;child;leaf <self_us>` line per distinct stack path. The
/// report's collapsed() collapses to labels only; this keeps the tree.
std::string collapsedStacks(const std::vector<TraceRecord> &Trace);

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_PROFILE_H
