//===- Profile.cpp - Flame-graph rollups over JSONL traces ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

using namespace extra;
using namespace extra::obs;

uint64_t ProfileReport::selfTotalUs() const {
  uint64_t Sum = 0;
  for (const ProfileStat &S : ByLabel)
    Sum += S.SelfUs;
  return Sum;
}

namespace {

struct SpanNode {
  const TraceRecord *Rec = nullptr;
  uint64_t ChildWallUs = 0;
};

void appendTable(std::string &Out, const char *Title,
                 const std::vector<ProfileStat> &Rows, uint64_t Denom) {
  if (Rows.empty())
    return;
  Out += Title;
  Out += "\n  ";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%-28s %10s %12s %12s %7s", "key", "count",
                "total_us", "self_us", "self%");
  Out += Buf;
  Out += '\n';
  for (const ProfileStat &S : Rows) {
    double Pct = Denom ? 100.0 * double(S.SelfUs) / double(Denom) : 0.0;
    std::snprintf(Buf, sizeof(Buf), "  %-28s %10llu %12llu %12llu %6.1f%%",
                  S.Key.c_str(), static_cast<unsigned long long>(S.Count),
                  static_cast<unsigned long long>(S.TotalUs),
                  static_cast<unsigned long long>(S.SelfUs), Pct);
    Out += Buf;
    Out += '\n';
  }
}

} // namespace

ProfileReport obs::profileTrace(const std::vector<TraceRecord> &Trace) {
  ProfileReport R;

  // Pass 1: index spans and charge each span's wall to its parent so
  // self time falls out in one subtraction.
  std::unordered_map<uint64_t, SpanNode> Spans;
  Spans.reserve(Trace.size());
  for (const TraceRecord &Rec : Trace)
    if (Rec.K == TraceRecord::Kind::Span && Rec.Id)
      Spans[Rec.Id].Rec = &Rec;
  for (const auto &[Id, Node] : Spans) {
    (void)Id;
    if (!Node.Rec->Parent)
      continue;
    auto It = Spans.find(Node.Rec->Parent);
    if (It != Spans.end())
      It->second.ChildWallUs += Node.Rec->WallUs;
  }

  std::map<std::string, ProfileStat> ByLabel;
  std::map<std::string, ProfileStat> ByRule;
  std::map<uint64_t, ProfileStat> ByDepth;

  for (const auto &[Id, Node] : Spans) {
    (void)Id;
    const TraceRecord &Rec = *Node.Rec;
    ++R.Spans;
    uint64_t Self = Rec.WallUs > Node.ChildWallUs
                        ? Rec.WallUs - Node.ChildWallUs
                        : 0;
    bool IsRoot = !Rec.Parent || !Spans.count(Rec.Parent);
    if (IsRoot)
      R.TracedWallUs += Rec.WallUs;

    ProfileStat &L = ByLabel[Rec.Name];
    L.Key = Rec.Name;
    ++L.Count;
    L.TotalUs += Rec.WallUs;
    L.SelfUs += Self;

    if (Rec.Name == "depth") {
      uint64_t D = Rec.fieldU64("depth");
      ProfileStat &DS = ByDepth[D];
      DS.Key = std::to_string(D);
      ++DS.Count;
      DS.TotalUs += Rec.WallUs;
      DS.SelfUs += Self;
    }
  }

  for (const TraceRecord &Rec : Trace) {
    if (Rec.K != TraceRecord::Kind::Event)
      continue;
    ++R.Events;
    if (Rec.Name != "rule-apply")
      continue;
    std::string Rule = Rec.field("rule");
    if (Rule.empty())
      Rule = "<unknown>";
    ProfileStat &RS = ByRule[Rule];
    RS.Key = Rule;
    ++RS.Count;
    // dur_ns is absent from traces recorded before the field existed;
    // those rows keep counts and report zero time.
    uint64_t Us = Rec.fieldU64("dur_ns") / 1000;
    RS.TotalUs += Us;
    RS.SelfUs += Us;
  }

  auto Flatten = [](auto &M, std::vector<ProfileStat> &Out) {
    Out.reserve(M.size());
    for (auto &[K, S] : M) {
      (void)K;
      Out.push_back(std::move(S));
    }
    std::stable_sort(Out.begin(), Out.end(),
                     [](const ProfileStat &A, const ProfileStat &B) {
                       return A.SelfUs > B.SelfUs;
                     });
  };
  Flatten(ByLabel, R.ByLabel);
  Flatten(ByRule, R.ByRule);
  R.ByDepth.reserve(ByDepth.size());
  for (auto &[D, S] : ByDepth) {
    (void)D;
    R.ByDepth.push_back(std::move(S)); // Depth order, not time order.
  }
  return R;
}

std::string ProfileReport::str() const {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "profile: %llu spans, %llu events, traced wall %llu us, "
                "self-time accounted %llu us\n",
                static_cast<unsigned long long>(Spans),
                static_cast<unsigned long long>(Events),
                static_cast<unsigned long long>(TracedWallUs),
                static_cast<unsigned long long>(selfTotalUs()));
  Out += Buf;
  appendTable(Out, "\nby span label (self-time order):", ByLabel,
              TracedWallUs);
  appendTable(Out, "\nby rule (rule-apply events):", ByRule, TracedWallUs);
  appendTable(Out, "\nby beam depth:", ByDepth, TracedWallUs);
  return Out;
}

namespace {

/// Recomputes the per-span self time and stack path for collapsed
/// output. Kept separate from profileTrace so the report stays small.
struct CollapsedBuilder {
  std::unordered_map<uint64_t, const TraceRecord *> ById;
  std::unordered_map<uint64_t, uint64_t> ChildWall;
  std::unordered_map<uint64_t, std::string> PathCache;

  const std::string &pathOf(const TraceRecord &Rec) {
    auto It = PathCache.find(Rec.Id);
    if (It != PathCache.end())
      return It->second;
    std::string Path;
    auto Parent = ById.find(Rec.Parent);
    if (Rec.Parent && Parent != ById.end()) {
      Path = pathOf(*Parent->second);
      Path += ';';
    }
    Path += Rec.Name.empty() ? "<anon>" : Rec.Name;
    return PathCache.emplace(Rec.Id, std::move(Path)).first->second;
  }
};

} // namespace

std::string ProfileReport::collapsed() const {
  // The report only keeps aggregates; collapsed stacks come from the
  // per-label rollup when the caller did not keep the raw trace. The
  // CLI path uses collapsedStacks() below on the raw records instead.
  std::string Out;
  for (const ProfileStat &S : ByLabel) {
    Out += S.Key.empty() ? "<anon>" : S.Key;
    Out += ' ';
    Out += std::to_string(S.SelfUs);
    Out += '\n';
  }
  return Out;
}

namespace extra {
namespace obs {

std::string collapsedStacks(const std::vector<TraceRecord> &Trace) {
  CollapsedBuilder B;
  for (const TraceRecord &Rec : Trace)
    if (Rec.K == TraceRecord::Kind::Span && Rec.Id)
      B.ById[Rec.Id] = &Rec;
  for (const auto &[Id, Rec] : B.ById) {
    (void)Id;
    if (Rec->Parent && B.ById.count(Rec->Parent))
      B.ChildWall[Rec->Parent] += Rec->WallUs;
  }
  std::map<std::string, uint64_t> Stacks;
  for (const auto &[Id, Rec] : B.ById) {
    uint64_t Children = 0;
    auto It = B.ChildWall.find(Id);
    if (It != B.ChildWall.end())
      Children = It->second;
    uint64_t Self = Rec->WallUs > Children ? Rec->WallUs - Children : 0;
    Stacks[B.pathOf(*Rec)] += Self;
  }
  std::string Out;
  for (const auto &[Path, Us] : Stacks) {
    Out += Path;
    Out += ' ';
    Out += std::to_string(Us);
    Out += '\n';
  }
  return Out;
}

} // namespace obs
} // namespace extra
