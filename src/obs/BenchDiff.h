//===- BenchDiff.h - Bench regression attribution ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins two generations of `BENCH_JSON` summaries (the committed
/// `BENCH_*.json` baseline and a fresh run) and names *what* moved:
/// which benchmark, and which metric — `ns_per_op` or any embedded
/// phase counter (`search.expansions_per_sec`, cache hit counts, ...).
/// This is what turns a one-ratio perf-smoke failure into an
/// attribution table.
///
/// A bench line is the one nested exception to the repo's flat-JSON
/// rule: `{"bench":..,"name":..,"iterations":..,"ns_per_op":..,
/// "counters":{...}}`. The parser here splits the counters object out
/// and runs the shared flat parser over both halves.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_BENCHDIFF_H
#define EXTRA_OBS_BENCHDIFF_H

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace extra {
namespace obs {

/// One parsed BENCH_JSON line.
struct BenchRecord {
  std::string Bench; ///< The emitting binary (e.g. "bench_search_discovery").
  std::string Name;  ///< The benchmark within it.
  uint64_t Iterations = 0;
  double NsPerOp = 0;
  std::map<std::string, double> Counters;

  std::string key() const { return Bench + "/" + Name; }
};

/// Parses one line; on failure returns nullopt and fills \p Error.
std::optional<BenchRecord> parseBenchLine(const std::string &Line,
                                          std::string *Error = nullptr);

/// Reads a whole summary file (one record per line, blanks skipped).
/// Any malformed line fails the read with its line number in \p Error.
std::optional<std::vector<BenchRecord>>
readBenchFile(std::istream &In, std::string *Error = nullptr);

/// One metric that moved between generations.
struct BenchDelta {
  std::string Key;    ///< bench/name.
  std::string Metric; ///< "ns_per_op" or a counter name.
  double Old = 0;
  double New = 0;
  /// New/Old (Old==0 reports infinity as 0-guarded ratio of 0).
  double ratio() const { return Old != 0 ? New / Old : 0; }
};

/// The joined comparison.
struct BenchDiffReport {
  /// Metrics whose relative change exceeds the threshold, worst first
  /// (by |log ratio|, so a 2x slowdown and a 0.5x speedup rank equal).
  std::vector<BenchDelta> Moved;
  /// Benchmarks present on only one side.
  std::vector<std::string> OnlyOld;
  std::vector<std::string> OnlyNew;
  unsigned Compared = 0; ///< Benchmarks present on both sides.

  bool anyMovement() const {
    return !Moved.empty() || !OnlyOld.empty() || !OnlyNew.empty();
  }
  /// The attribution table (empty-movement case says so explicitly).
  std::string str() const;
};

/// Diffs two generations. \p Threshold is the relative change that
/// counts as movement: 0.10 flags anything that moved more than 10%
/// in either direction.
BenchDiffReport diffBenches(const std::vector<BenchRecord> &Old,
                            const std::vector<BenchRecord> &New,
                            double Threshold = 0.10);

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_BENCHDIFF_H
