//===- Exposition.h - Prometheus-style metrics exposition -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the `obs::Metrics` registry as Prometheus text exposition
/// (version 0.0.4) so external scrapers can consume the discovery
/// service without speaking the line-JSON protocol. Metric names keep
/// the registry taxonomy under an `extra_` prefix with the characters
/// Prometheus rejects (dots, dashes) folded to underscores; the
/// original registry name rides along as a `name` label so nothing is
/// lost in the folding. Histograms are exposed summary-style: `_count`,
/// `_sum`, and `quantile`-labelled samples from the log2-bucket
/// estimates.
///
/// `validateExposition` is the other half of the contract: a strict
/// line-grammar check used by tests and the obs-smoke CI job to assert
/// that what the server serves actually parses.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_EXPOSITION_H
#define EXTRA_OBS_EXPOSITION_H

#include <map>
#include <string>

namespace extra {
namespace obs {

class Metrics;

/// Folds a registry metric name into the Prometheus identifier charset:
/// `extra_` prefix, `[a-zA-Z0-9_:]` body, everything else becomes '_'.
std::string prometheusName(const std::string &Name);

/// The full registry as Prometheus text exposition. Deterministic:
/// sorted by name, counters first, then histogram summaries.
std::string prometheusText(const Metrics &M);

/// Strictly parses a text exposition: every line is a comment (`# ...`)
/// or `name{labels} value`. On success returns true and fills \p
/// Samples with `name{labels}` -> value. On failure returns false and
/// sets \p Error to `line N: <reason>`.
bool validateExposition(const std::string &Text,
                        std::map<std::string, double> &Samples,
                        std::string *Error);

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_EXPOSITION_H
