//===- TraceFile.cpp - Reading JSONL traces back ------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceFile.h"

#include "obs/Trace.h"

#include <cstdlib>
#include <fstream>
#include <iterator>

using namespace extra;
using namespace extra::obs;

std::string TraceRecord::field(const std::string &Key) const {
  auto It = Fields.find(Key);
  return It == Fields.end() ? std::string() : It->second;
}

uint64_t TraceRecord::fieldU64(const std::string &Key,
                               uint64_t Default) const {
  auto It = Fields.find(Key);
  if (It == Fields.end() || It->second.empty())
    return Default;
  return std::strtoull(It->second.c_str(), nullptr, 0);
}

double TraceRecord::fieldDouble(const std::string &Key,
                                double Default) const {
  auto It = Fields.find(Key);
  if (It == Fields.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

namespace {

void skipSpace(std::string_view S, size_t &I) {
  while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
    ++I;
}

/// Parses a JSON string literal at S[I] (positioned on '"'); advances I
/// past the closing quote. Returns false on malformed input.
bool parseString(std::string_view S, size_t &I, std::string &Out) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  Out.clear();
  while (I < S.size()) {
    char C = S[I];
    if (C == '"') {
      ++I;
      return true;
    }
    if (C == '\\') {
      if (I + 1 >= S.size())
        return false;
      char E = S[I + 1];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (I + 5 >= S.size())
          return false;
        unsigned Code = static_cast<unsigned>(
            std::strtoul(std::string(S.substr(I + 2, 4)).c_str(), nullptr,
                         16));
        // The sink only escapes control characters, so one byte suffices.
        Out += static_cast<char>(Code & 0xFF);
        I += 4;
        break;
      }
      default:
        return false;
      }
      I += 2;
      continue;
    }
    Out += C;
    ++I;
  }
  return false;
}

/// Parses a bare JSON scalar (number, true, false, null) as literal text.
bool parseScalar(std::string_view S, size_t &I, std::string &Out) {
  size_t Start = I;
  while (I < S.size() && S[I] != ',' && S[I] != '}' && S[I] != ' ' &&
         S[I] != '\t')
    ++I;
  if (I == Start)
    return false;
  Out = std::string(S.substr(Start, I - Start));
  return true;
}

} // namespace

std::optional<std::map<std::string, std::string>>
obs::parseJsonObjectLine(std::string_view Line) {
  std::map<std::string, std::string> Out;
  size_t I = 0;
  skipSpace(Line, I);
  if (I >= Line.size() || Line[I] != '{')
    return std::nullopt;
  ++I;
  skipSpace(Line, I);
  if (I < Line.size() && Line[I] == '}')
    return Out; // Empty object.
  while (true) {
    skipSpace(Line, I);
    std::string Key;
    if (!parseString(Line, I, Key))
      return std::nullopt;
    skipSpace(Line, I);
    if (I >= Line.size() || Line[I] != ':')
      return std::nullopt;
    ++I;
    skipSpace(Line, I);
    std::string Value;
    if (I < Line.size() && Line[I] == '"') {
      if (!parseString(Line, I, Value))
        return std::nullopt;
    } else {
      if (!parseScalar(Line, I, Value))
        return std::nullopt;
    }
    Out[Key] = std::move(Value);
    skipSpace(Line, I);
    if (I >= Line.size())
      return std::nullopt;
    if (Line[I] == '}')
      return Out;
    if (Line[I] != ',')
      return std::nullopt;
    ++I;
  }
}

std::optional<std::vector<TraceRecord>> obs::readTrace(std::istream &In,
                                                       std::string *Error) {
  std::vector<TraceRecord> Out;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    auto Obj = parseJsonObjectLine(Line);
    if (!Obj) {
      if (Error)
        *Error = "malformed trace line " + std::to_string(LineNo);
      return std::nullopt;
    }
    TraceRecord R;
    auto Take = [&](const char *Key, uint64_t &Slot) {
      auto It = Obj->find(Key);
      if (It != Obj->end()) {
        Slot = std::strtoull(It->second.c_str(), nullptr, 0);
        Obj->erase(It);
      }
    };
    auto Type = Obj->find("t");
    if (Type == Obj->end()) {
      if (Error)
        *Error = "trace line " + std::to_string(LineNo) + " has no \"t\"";
      return std::nullopt;
    }
    R.K = Type->second == "span" ? TraceRecord::Kind::Span
                                 : TraceRecord::Kind::Event;
    Obj->erase(Type);
    Take("seq", R.Seq);
    Take("ts_us", R.TsUs);
    Take("id", R.Id);
    Take("parent", R.Parent);
    Take("wall_us", R.WallUs);
    Take("cpu_us", R.CpuUs);
    Take("span", R.Span);
    auto NameIt = Obj->find("name");
    if (NameIt != Obj->end()) {
      R.Name = NameIt->second;
      Obj->erase(NameIt);
    }
    R.Fields = std::move(*Obj);
    Out.push_back(std::move(R));
  }
  return Out;
}

std::optional<std::vector<TraceRecord>>
obs::readTraceSet(const std::string &Path, std::string *Error) {
  // Rotation keeps generations contiguous (.1 .. .N), so probe upward
  // until the first gap to find the oldest file.
  unsigned Highest = 0;
  for (unsigned I = 1;; ++I) {
    std::ifstream Probe(rotatedTraceName(Path, I));
    if (!Probe.good())
      break;
    Highest = I;
  }

  std::vector<TraceRecord> All;
  for (unsigned I = Highest;; --I) {
    std::string Name = rotatedTraceName(Path, I);
    std::ifstream In(Name);
    if (!In.good()) {
      if (Error)
        *Error = "cannot open trace file " + Name;
      return std::nullopt;
    }
    std::string Why;
    auto Part = readTrace(In, &Why);
    if (!Part) {
      if (Error)
        *Error = Name + ": " + Why;
      return std::nullopt;
    }
    All.insert(All.end(), std::make_move_iterator(Part->begin()),
               std::make_move_iterator(Part->end()));
    if (I == 0)
      break;
  }
  return All;
}
