//===- Metrics.cpp - Counters and histograms for the pipeline ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Trace.h"

#include <bit>
#include <cstdio>

using namespace extra;
using namespace extra::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

unsigned bucketOf(uint64_t Sample) {
  return Sample == 0 ? 0 : 64 - std::countl_zero(Sample);
}

/// Upper bound of bucket \p B (inclusive).
uint64_t bucketUpper(unsigned B) {
  return B == 0 ? 0 : (B >= 64 ? UINT64_MAX : (uint64_t(1) << B) - 1);
}

void atomicMin(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (V < Cur &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

void atomicMax(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

} // namespace

void Histogram::record(uint64_t Sample) {
  Buckets[bucketOf(Sample)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  atomicMin(Min, Sample);
  atomicMax(Max, Sample);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  uint64_t Counts[NumBuckets];
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Counts[B] = Buckets[B].load(std::memory_order_relaxed);
    S.Count += Counts[B];
  }
  // Count is derived from the buckets, not the Count member, so the
  // percentile walk is internally consistent under concurrent record().
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Max = Max.load(std::memory_order_relaxed);
  uint64_t MinV = Min.load(std::memory_order_relaxed);
  S.Min = MinV == UINT64_MAX ? 0 : MinV;
  if (S.Count == 0)
    return S;

  auto Percentile = [&](double Q) {
    uint64_t Target = static_cast<uint64_t>(Q * double(S.Count - 1)) + 1;
    uint64_t Seen = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      Seen += Counts[B];
      if (Seen >= Target)
        return std::min(bucketUpper(B), S.Max);
    }
    return S.Max;
  };
  S.P50 = Percentile(0.50);
  S.P90 = Percentile(0.90);
  S.P99 = Percentile(0.99);
  return S;
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

Counter &Metrics::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Histogram &Metrics::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

std::vector<std::pair<std::string, uint64_t>> Metrics::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, C->value());
  return Out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Metrics::histograms() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, Histogram::Snapshot>> Out;
  Out.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    Out.emplace_back(Name, H->snapshot());
  return Out;
}

std::string Metrics::json() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : counters()) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + jsonEscape(Name) + "\":" + std::to_string(Value);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, S] : histograms()) {
    if (!First)
      Out += ',';
    First = false;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
                  "\"mean\":%.3f,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu}",
                  static_cast<unsigned long long>(S.Count),
                  static_cast<unsigned long long>(S.Sum),
                  static_cast<unsigned long long>(S.Min),
                  static_cast<unsigned long long>(S.Max), S.mean(),
                  static_cast<unsigned long long>(S.P50),
                  static_cast<unsigned long long>(S.P90),
                  static_cast<unsigned long long>(S.P99));
    Out += '"' + jsonEscape(Name) + "\":" + Buf;
  }
  Out += "}}";
  return Out;
}
