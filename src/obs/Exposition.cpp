//===- Exposition.cpp - Prometheus-style metrics exposition -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/Exposition.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace extra;
using namespace extra::obs;

std::string obs::prometheusName(const std::string &Name) {
  std::string Out = "extra_";
  Out.reserve(Out.size() + Name.size());
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  return Out;
}

namespace {

void appendSample(std::string &Out, const std::string &Prom,
                  const std::string &Labels, double Value) {
  char Buf[64];
  // %.17g round-trips doubles; counters stay integral in practice.
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  Out += Prom;
  Out += Labels;
  Out += ' ';
  Out += Buf;
  Out += '\n';
}

std::string nameLabel(const std::string &Name) {
  return "{name=\"" + jsonEscape(Name) + "\"}";
}

} // namespace

std::string obs::prometheusText(const Metrics &M) {
  std::string Out;
  for (const auto &[Name, Value] : M.counters()) {
    std::string Prom = prometheusName(Name);
    Out += "# TYPE " + Prom + " counter\n";
    appendSample(Out, Prom, nameLabel(Name), double(Value));
  }
  for (const auto &[Name, S] : M.histograms()) {
    std::string Prom = prometheusName(Name);
    std::string Label = jsonEscape(Name);
    Out += "# TYPE " + Prom + " summary\n";
    appendSample(Out, Prom,
                 "{name=\"" + Label + "\",quantile=\"0.5\"}", double(S.P50));
    appendSample(Out, Prom,
                 "{name=\"" + Label + "\",quantile=\"0.9\"}", double(S.P90));
    appendSample(Out, Prom,
                 "{name=\"" + Label + "\",quantile=\"0.99\"}", double(S.P99));
    appendSample(Out, Prom + "_count", nameLabel(Name), double(S.Count));
    appendSample(Out, Prom + "_sum", nameLabel(Name), double(S.Sum));
  }
  return Out;
}

namespace {

bool isNameStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == ':';
}
bool isNameChar(char C) {
  return isNameStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

bool fail(std::string *Error, size_t LineNo, const std::string &Why) {
  if (Error)
    *Error = "line " + std::to_string(LineNo) + ": " + Why;
  return false;
}

} // namespace

bool obs::validateExposition(const std::string &Text,
                             std::map<std::string, double> &Samples,
                             std::string *Error) {
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    size_t I = 0;
    if (!isNameStart(Line[I]))
      return fail(Error, LineNo, "sample does not start with a metric name");
    while (I < Line.size() && isNameChar(Line[I]))
      ++I;
    std::string Key = Line.substr(0, I);

    if (I < Line.size() && Line[I] == '{') {
      size_t Close = Line.find('}', I);
      if (Close == std::string::npos)
        return fail(Error, LineNo, "unterminated label set");
      // Labels must be key="value" pairs; a quote audit is enough to
      // catch truncated output without re-implementing the grammar.
      std::string Labels = Line.substr(I, Close - I + 1);
      size_t Quotes = 0;
      for (char C : Labels)
        if (C == '"')
          ++Quotes;
      if (Quotes == 0 || Quotes % 2 != 0)
        return fail(Error, LineNo, "malformed label set " + Labels);
      Key += Labels;
      I = Close + 1;
    }

    if (I >= Line.size() || Line[I] != ' ')
      return fail(Error, LineNo, "expected space before sample value");
    ++I;
    const char *Start = Line.c_str() + I;
    char *ValEnd = nullptr;
    double Value = std::strtod(Start, &ValEnd);
    if (ValEnd == Start || *ValEnd != '\0')
      return fail(Error, LineNo,
                  "unparseable sample value '" + Line.substr(I) + "'");
    Samples[Key] = Value;
  }
  if (Samples.empty())
    return fail(Error, LineNo, "exposition contains no samples");
  return true;
}
