//===- BenchDiff.cpp - Bench regression attribution -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"

#include "obs/TraceFile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace extra;
using namespace extra::obs;

namespace {

bool fail(std::string *Error, const std::string &Why) {
  if (Error)
    *Error = Why;
  return false;
}

} // namespace

std::optional<BenchRecord> obs::parseBenchLine(const std::string &Line,
                                               std::string *Error) {
  // Split the nested counters object out so the flat parser can handle
  // both halves. Counter values are plain numbers, so the first '}'
  // after the opening brace closes the object.
  std::string Outer = Line;
  std::string Inner;
  size_t CPos = Outer.find("\"counters\":{");
  if (CPos != std::string::npos) {
    size_t Open = Outer.find('{', CPos);
    size_t Close = Outer.find('}', Open);
    if (Close == std::string::npos) {
      fail(Error, "unterminated counters object");
      return std::nullopt;
    }
    Inner = Outer.substr(Open, Close - Open + 1);
    // Remove `,"counters":{...}` (or the leading form) from the outer
    // object, keeping it valid flat JSON.
    size_t EraseBegin = CPos > 0 && Outer[CPos - 1] == ',' ? CPos - 1 : CPos;
    size_t EraseEnd = Close + 1;
    if (EraseBegin == CPos && EraseEnd < Outer.size() &&
        Outer[EraseEnd] == ',')
      ++EraseEnd;
    Outer.erase(EraseBegin, EraseEnd - EraseBegin);
  }

  auto Obj = parseJsonObjectLine(Outer);
  if (!Obj) {
    fail(Error, "not a flat JSON object");
    return std::nullopt;
  }
  BenchRecord R;
  auto Require = [&](const char *Key, std::string &Out) {
    auto It = Obj->find(Key);
    if (It == Obj->end() || It->second.empty())
      return false;
    Out = It->second;
    return true;
  };
  std::string Iter, Ns;
  if (!Require("bench", R.Bench) || !Require("name", R.Name) ||
      !Require("iterations", Iter) || !Require("ns_per_op", Ns)) {
    fail(Error, "missing required key (bench/name/iterations/ns_per_op)");
    return std::nullopt;
  }
  R.Iterations = std::strtoull(Iter.c_str(), nullptr, 10);
  R.NsPerOp = std::strtod(Ns.c_str(), nullptr);

  if (!Inner.empty()) {
    auto Counters = parseJsonObjectLine(Inner);
    if (!Counters) {
      fail(Error, "malformed counters object");
      return std::nullopt;
    }
    for (const auto &[K, V] : *Counters)
      R.Counters[K] = std::strtod(V.c_str(), nullptr);
  }
  return R;
}

std::optional<std::vector<BenchRecord>> obs::readBenchFile(std::istream &In,
                                                           std::string *Error) {
  std::vector<BenchRecord> Out;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string Why;
    auto R = parseBenchLine(Line, &Why);
    if (!R) {
      fail(Error, "line " + std::to_string(LineNo) + ": " + Why);
      return std::nullopt;
    }
    Out.push_back(std::move(*R));
  }
  return Out;
}

BenchDiffReport obs::diffBenches(const std::vector<BenchRecord> &Old,
                                 const std::vector<BenchRecord> &New,
                                 double Threshold) {
  BenchDiffReport Rep;
  std::map<std::string, const BenchRecord *> OldByKey, NewByKey;
  for (const BenchRecord &R : Old)
    OldByKey[R.key()] = &R;
  for (const BenchRecord &R : New)
    NewByKey[R.key()] = &R;

  for (const auto &[Key, R] : OldByKey) {
    (void)R;
    if (!NewByKey.count(Key))
      Rep.OnlyOld.push_back(Key);
  }
  for (const auto &[Key, R] : NewByKey) {
    (void)R;
    if (!OldByKey.count(Key))
      Rep.OnlyNew.push_back(Key);
  }

  auto Consider = [&](const std::string &Key, const std::string &Metric,
                      double OldV, double NewV) {
    if (OldV == 0 && NewV == 0)
      return;
    double Rel = OldV != 0 ? std::fabs(NewV - OldV) / std::fabs(OldV) : 1.0;
    if (Rel <= Threshold)
      return;
    Rep.Moved.push_back({Key, Metric, OldV, NewV});
  };

  for (const auto &[Key, OldR] : OldByKey) {
    auto It = NewByKey.find(Key);
    if (It == NewByKey.end())
      continue;
    const BenchRecord &NewR = *It->second;
    ++Rep.Compared;
    Consider(Key, "ns_per_op", OldR->NsPerOp, NewR.NsPerOp);
    for (const auto &[CName, OldV] : OldR->Counters) {
      auto CIt = NewR.Counters.find(CName);
      if (CIt != NewR.Counters.end())
        Consider(Key, CName, OldV, CIt->second);
    }
  }

  std::stable_sort(Rep.Moved.begin(), Rep.Moved.end(),
                   [](const BenchDelta &A, const BenchDelta &B) {
                     auto Mag = [](const BenchDelta &D) {
                       double R = D.ratio();
                       return R > 0 ? std::fabs(std::log(R)) : 1e9;
                     };
                     return Mag(A) > Mag(B);
                   });
  return Rep;
}

std::string BenchDiffReport::str() const {
  std::string Out;
  char Buf[256];
  if (!anyMovement()) {
    std::snprintf(Buf, sizeof(Buf),
                  "benchdiff: no movement across %u compared benchmarks\n",
                  Compared);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "benchdiff: %zu metric(s) moved across %u compared "
                "benchmark(s)\n",
                Moved.size(), Compared);
  Out += Buf;
  if (!Moved.empty()) {
    std::snprintf(Buf, sizeof(Buf), "  %-44s %-32s %14s %14s %8s\n",
                  "benchmark", "metric", "old", "new", "ratio");
    Out += Buf;
    for (const BenchDelta &D : Moved) {
      std::snprintf(Buf, sizeof(Buf), "  %-44s %-32s %14.3f %14.3f %7.2fx\n",
                    D.Key.c_str(), D.Metric.c_str(), D.Old, D.New, D.ratio());
      Out += Buf;
    }
  }
  for (const std::string &K : OnlyOld)
    Out += "  only in old: " + K + "\n";
  for (const std::string &K : OnlyNew)
    Out += "  only in new: " + K + "\n";
  return Out;
}
