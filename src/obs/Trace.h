//===- Trace.h - Structured tracing for the EXTRA pipeline ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing: scoped spans and typed events
/// serialized as JSONL, one record per line. A span measures a region
/// (wall and thread-CPU time, id + parent id); an event is a point
/// observation attached to a span. Both carry a typed key-value payload.
///
/// The contract instrumented code relies on:
///
///  * `TraceSink::enabled()` is a plain bool read — no virtual call — so
///    the hot path of disabled tracing is one branch. Instrumentation
///    sites hold a `TraceSink *` that is null (or the shared no-op sink)
///    when tracing is off and guard every payload construction behind
///    `enabled()`.
///  * Sinks are thread-safe: the search batch driver shares one sink
///    across its worker pool. Records from different threads interleave
///    at line granularity; span ids are process-unique within a sink.
///  * Records are append-only and each line is complete JSON, so a trace
///    truncated by a crash is still parseable up to the last line
///    (obs::readTrace in TraceFile.h is the reading half).
///
/// Record schema (all times in microseconds; `ts_us` is relative to sink
/// creation, `seq` is a per-sink monotonic sequence number):
///
///   {"t":"span","seq":N,"id":I,"parent":P,"name":"...","ts_us":T,
///    "wall_us":W,"cpu_us":C, ...payload}
///   {"t":"event","seq":N,"span":I,"name":"...","ts_us":T, ...payload}
///
/// Spans are emitted when they *end* (the record carries the start
/// timestamp), so parents usually appear after their children; readers
/// must key on ids, not line order.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_TRACE_H
#define EXTRA_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace extra {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(std::string_view S);

/// A typed key-value payload for spans and events. Values are rendered
/// into JSON immediately on add(), so a Payload is cheap to move and the
/// sink never re-inspects types. Only build one behind an `enabled()`
/// check.
class Payload {
public:
  Payload &add(std::string_view Key, std::string_view Value);
  Payload &add(std::string_view Key, const char *Value) {
    return add(Key, std::string_view(Value));
  }
  Payload &add(std::string_view Key, uint64_t Value);
  Payload &add(std::string_view Key, int64_t Value);
  Payload &add(std::string_view Key, unsigned Value) {
    return add(Key, static_cast<uint64_t>(Value));
  }
  Payload &add(std::string_view Key, int Value) {
    return add(Key, static_cast<int64_t>(Value));
  }
  Payload &add(std::string_view Key, double Value);
  Payload &add(std::string_view Key, bool Value);
  /// Renders \p Value as "0x<hex>" — 64-bit fingerprints do not survive
  /// a round-trip through JSON number parsers that use doubles.
  Payload &addHex(std::string_view Key, uint64_t Value);

  /// The rendered fragment: `,"k":v,"k2":v2` (leading comma), or empty.
  const std::string &rendered() const { return Text; }

private:
  Payload &raw(std::string_view Key, std::string_view JsonValue);
  std::string Text;
};

/// Abstract sink for spans and events. `enabled()` is a non-virtual flag
/// read so disabled instrumentation costs one branch; the emitting
/// methods are virtual and only reached when enabled.
class TraceSink {
public:
  virtual ~TraceSink();

  /// True when this sink records anything. Instrumentation must guard
  /// payload construction behind this.
  bool enabled() const { return On; }

  /// Opens a span under \p Parent (0 = root). Returns the new span id,
  /// or 0 when disabled. The payload is attached to the span record
  /// emitted by endSpan.
  virtual uint64_t beginSpan(std::string_view Name, uint64_t Parent = 0,
                             Payload P = Payload()) = 0;
  /// Closes a span (no-op for id 0 or unknown ids).
  virtual void endSpan(uint64_t Id) = 0;
  /// Emits a point event attached to \p Span (0 = top level).
  virtual void event(std::string_view Name, uint64_t Span,
                     Payload P = Payload()) = 0;

  /// The shared disabled sink: enabled() is false, every method is a
  /// no-op. Instrumented code may default to this instead of null.
  static TraceSink &noop();

protected:
  explicit TraceSink(bool Enabled) : On(Enabled) {}

private:
  bool On;
};

/// Writes one JSON object per record to an ostream. Thread-safe; the
/// stream must outlive the sink. Subclasses may redirect the rendered
/// lines elsewhere by overriding emit() (see RotatingTraceSink).
class JsonlTraceSink : public TraceSink {
public:
  explicit JsonlTraceSink(std::ostream &OS);
  ~JsonlTraceSink() override;

  uint64_t beginSpan(std::string_view Name, uint64_t Parent,
                     Payload P) override;
  void endSpan(uint64_t Id) override;
  void event(std::string_view Name, uint64_t Span, Payload P) override;

  /// Records emitted so far (spans are counted when they end).
  uint64_t recordCount() const;

protected:
  /// For subclasses that own their output and override emit().
  JsonlTraceSink();

  /// Writes one complete record line (newline included). Called with the
  /// sink mutex held, so implementations need no locking of their own.
  virtual void emit(const std::string &Line);

  /// Drains still-open spans through endSpan. Subclass destructors MUST
  /// call this before their output stream dies — by the time the base
  /// destructor runs, the override of emit() is gone.
  void closeOpenSpans();

private:
  struct OpenSpan {
    std::string Name;
    uint64_t Parent = 0;
    uint64_t StartTsUs = 0;
    uint64_t StartCpuUs = 0;
    Payload P;
  };

  uint64_t nowUs() const;

  mutable std::mutex Mu;
  std::ostream *OS = nullptr;
  std::map<uint64_t, OpenSpan> Open;
  uint64_t NextId = 1;
  uint64_t Seq = 0;
  uint64_t Emitted = 0;
  std::chrono::steady_clock::time_point Epoch;
};

/// A file-owning JSONL sink with size-capped rotation, so a week of
/// persistent-server tracing cannot fill the disk. When the active file
/// (`trace.jsonl`) would exceed MaxBytes, it is shifted to
/// `trace.1.jsonl` (older generations move to `.2`, `.3`, ... and the
/// oldest beyond MaxRotated is deleted) and a fresh active file is
/// opened. Rotation happens at line granularity — every record line
/// lands whole in exactly one file, and `seq` stays monotonic across
/// the set — so obs::readTraceSet can reassemble the full trace.
class RotatingTraceSink final : public JsonlTraceSink {
public:
  struct Options {
    /// Rotation threshold for the active file. 0 disables rotation (the
    /// off switch): the file grows without bound, as before.
    uint64_t MaxBytes = DefaultMaxBytes;
    /// Rotated generations kept (`.1` .. `.N`); older ones are deleted.
    unsigned MaxRotated = DefaultMaxRotated;
  };
  /// Defaults documented in DESIGN.md §11: 64 MiB per file, 4 rotated
  /// generations -> at most ~320 MiB of trace on disk per sink.
  static constexpr uint64_t DefaultMaxBytes = 64ull << 20;
  static constexpr unsigned DefaultMaxRotated = 4;

  explicit RotatingTraceSink(std::string Path);
  RotatingTraceSink(std::string Path, Options Opts);
  ~RotatingTraceSink() override;

  /// False when the active file could not be opened.
  bool ok() const;
  /// Rotations performed so far.
  uint64_t rotations() const { return Rotations; }

private:
  void emit(const std::string &Line) override;
  void rotate();

  std::string Path;
  Options Opts;
  std::unique_ptr<std::ofstream> Out;
  uint64_t Bytes = 0;
  uint64_t Rotations = 0;
};

/// The name of rotated generation \p Index for \p Path: the index is
/// inserted before the extension (`trace.jsonl` -> `trace.1.jsonl`).
/// Index 0 returns \p Path itself.
std::string rotatedTraceName(const std::string &Path, unsigned Index);

/// RAII span: begins on construction, ends on destruction. Safe to use
/// on a disabled sink (id stays 0 and nothing is emitted).
class ScopedSpan {
public:
  ScopedSpan(TraceSink &Sink, std::string_view Name, uint64_t Parent = 0,
             Payload P = Payload())
      : Sink(Sink),
        Id(Sink.enabled() ? Sink.beginSpan(Name, Parent, std::move(P)) : 0) {}
  ~ScopedSpan() {
    if (Id)
      Sink.endSpan(Id);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  uint64_t id() const { return Id; }
  void event(std::string_view Name, Payload P = Payload()) {
    if (Sink.enabled())
      Sink.event(Name, Id, std::move(P));
  }

private:
  TraceSink &Sink;
  uint64_t Id;
};

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_TRACE_H
