//===- Trace.cpp - Structured tracing for the EXTRA pipeline ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

using namespace extra;
using namespace extra::obs;

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Payload
//===----------------------------------------------------------------------===//

Payload &Payload::raw(std::string_view Key, std::string_view JsonValue) {
  Text += ",\"";
  Text += jsonEscape(Key);
  Text += "\":";
  Text += JsonValue;
  return *this;
}

Payload &Payload::add(std::string_view Key, std::string_view Value) {
  std::string Quoted;
  Quoted.reserve(Value.size() + 2);
  Quoted += '"';
  Quoted += jsonEscape(Value);
  Quoted += '"';
  return raw(Key, Quoted);
}

Payload &Payload::add(std::string_view Key, uint64_t Value) {
  return raw(Key, std::to_string(Value));
}

Payload &Payload::add(std::string_view Key, int64_t Value) {
  return raw(Key, std::to_string(Value));
}

Payload &Payload::add(std::string_view Key, double Value) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return raw(Key, Buf);
}

Payload &Payload::add(std::string_view Key, bool Value) {
  return raw(Key, Value ? "true" : "false");
}

Payload &Payload::addHex(std::string_view Key, uint64_t Value) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%016" PRIx64 "\"", Value);
  return raw(Key, Buf);
}

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

TraceSink::~TraceSink() = default;

namespace {

class NoopSink final : public TraceSink {
public:
  NoopSink() : TraceSink(/*Enabled=*/false) {}
  uint64_t beginSpan(std::string_view, uint64_t, Payload) override {
    return 0;
  }
  void endSpan(uint64_t) override {}
  void event(std::string_view, uint64_t, Payload) override {}
};

/// Thread CPU time in microseconds (0 where unavailable).
uint64_t threadCpuUs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec Ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts) == 0)
    return static_cast<uint64_t>(Ts.tv_sec) * 1000000 +
           static_cast<uint64_t>(Ts.tv_nsec) / 1000;
#endif
  return 0;
}

} // namespace

TraceSink &TraceSink::noop() {
  static NoopSink Sink;
  return Sink;
}

//===----------------------------------------------------------------------===//
// JsonlTraceSink
//===----------------------------------------------------------------------===//

JsonlTraceSink::JsonlTraceSink(std::ostream &OS)
    : TraceSink(/*Enabled=*/true), OS(&OS),
      Epoch(std::chrono::steady_clock::now()) {}

JsonlTraceSink::JsonlTraceSink()
    : TraceSink(/*Enabled=*/true), Epoch(std::chrono::steady_clock::now()) {}

JsonlTraceSink::~JsonlTraceSink() { closeOpenSpans(); }

void JsonlTraceSink::closeOpenSpans() {
  // Spans still open when the sink dies (e.g. an exception unwound past
  // the instrumented region) are closed so the trace stays complete.
  std::unique_lock<std::mutex> Lock(Mu);
  while (!Open.empty()) {
    uint64_t Id = Open.begin()->first;
    Lock.unlock();
    endSpan(Id);
    Lock.lock();
  }
}

void JsonlTraceSink::emit(const std::string &Line) {
  if (OS)
    *OS << Line;
}

uint64_t JsonlTraceSink::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

uint64_t JsonlTraceSink::recordCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Emitted;
}

uint64_t JsonlTraceSink::beginSpan(std::string_view Name, uint64_t Parent,
                                   Payload P) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Id = NextId++;
  Open[Id] = OpenSpan{std::string(Name), Parent, nowUs(), threadCpuUs(),
                      std::move(P)};
  return Id;
}

void JsonlTraceSink::endSpan(uint64_t Id) {
  if (Id == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Open.find(Id);
  if (It == Open.end())
    return;
  const OpenSpan &S = It->second;
  uint64_t End = nowUs();
  uint64_t Cpu = threadCpuUs();
  std::ostringstream Line;
  Line << "{\"t\":\"span\",\"seq\":" << ++Seq << ",\"id\":" << Id
       << ",\"parent\":" << S.Parent << ",\"name\":\"" << jsonEscape(S.Name)
       << "\",\"ts_us\":" << S.StartTsUs
       << ",\"wall_us\":" << (End >= S.StartTsUs ? End - S.StartTsUs : 0)
       << ",\"cpu_us\":" << (Cpu >= S.StartCpuUs ? Cpu - S.StartCpuUs : 0)
       << S.P.rendered() << "}\n";
  emit(Line.str());
  ++Emitted;
  Open.erase(It);
}

void JsonlTraceSink::event(std::string_view Name, uint64_t Span, Payload P) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream Line;
  Line << "{\"t\":\"event\",\"seq\":" << ++Seq << ",\"span\":" << Span
       << ",\"name\":\"" << jsonEscape(Name) << "\",\"ts_us\":" << nowUs()
       << P.rendered() << "}\n";
  emit(Line.str());
  ++Emitted;
}

//===----------------------------------------------------------------------===//
// RotatingTraceSink
//===----------------------------------------------------------------------===//

std::string obs::rotatedTraceName(const std::string &Path, unsigned Index) {
  if (Index == 0)
    return Path;
  size_t Dot = Path.rfind('.');
  size_t Slash = Path.rfind('/');
  if (Dot == std::string::npos ||
      (Slash != std::string::npos && Dot < Slash))
    return Path + "." + std::to_string(Index);
  return Path.substr(0, Dot) + "." + std::to_string(Index) +
         Path.substr(Dot);
}

RotatingTraceSink::RotatingTraceSink(std::string Path)
    : RotatingTraceSink(std::move(Path), Options()) {}

RotatingTraceSink::RotatingTraceSink(std::string Path, Options Opts)
    : Path(std::move(Path)), Opts(Opts),
      Out(std::make_unique<std::ofstream>(this->Path,
                                          std::ios::out | std::ios::trunc)) {}

RotatingTraceSink::~RotatingTraceSink() {
  // Drain before Out dies: the base destructor would dispatch emit() to
  // the base (stream-less) implementation and drop the final spans.
  closeOpenSpans();
}

bool RotatingTraceSink::ok() const { return Out && Out->good(); }

void RotatingTraceSink::emit(const std::string &Line) {
  if (!Out || !Out->is_open())
    return;
  if (Opts.MaxBytes > 0 && Bytes > 0 && Bytes + Line.size() > Opts.MaxBytes)
    rotate();
  *Out << Line;
  Bytes += Line.size();
}

void RotatingTraceSink::rotate() {
  Out->close();
  std::remove(rotatedTraceName(Path, Opts.MaxRotated).c_str());
  for (unsigned I = Opts.MaxRotated; I > 1; --I)
    std::rename(rotatedTraceName(Path, I - 1).c_str(),
                rotatedTraceName(Path, I).c_str());
  if (Opts.MaxRotated > 0)
    std::rename(Path.c_str(), rotatedTraceName(Path, 1).c_str());
  else
    std::remove(Path.c_str());
  Out->open(Path, std::ios::out | std::ios::trunc);
  Bytes = 0;
  ++Rotations;
}
