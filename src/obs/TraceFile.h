//===- TraceFile.h - Reading JSONL traces back --------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of obs::JsonlTraceSink: parses a JSONL trace back
/// into typed records for postmortem analysis and tests. The parser
/// accepts exactly the flat-object JSON the sink writes (string, number,
/// and boolean values; no nesting) — it is a trace reader, not a general
/// JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_TRACEFILE_H
#define EXTRA_OBS_TRACEFILE_H

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace obs {

/// One parsed trace line.
struct TraceRecord {
  enum class Kind { Span, Event };
  Kind K = Kind::Event;
  uint64_t Seq = 0;
  std::string Name;
  uint64_t TsUs = 0;
  // Span fields.
  uint64_t Id = 0;
  uint64_t Parent = 0;
  uint64_t WallUs = 0;
  uint64_t CpuUs = 0;
  // Event field: the owning span.
  uint64_t Span = 0;
  /// Every other key, with string values unescaped and numbers/bools in
  /// their literal spelling.
  std::map<std::string, std::string> Fields;

  /// A payload field as text; empty when absent.
  std::string field(const std::string &Key) const;
  /// A payload field as an unsigned integer (decimal or 0x-hex; the
  /// sink's addHex renders fingerprints as "0x..." strings).
  uint64_t fieldU64(const std::string &Key, uint64_t Default = 0) const;
  /// A payload field as a double.
  double fieldDouble(const std::string &Key, double Default = 0) const;
};

/// Parses one flat JSON object line into key -> value text. Returns
/// nullopt on malformed input.
std::optional<std::map<std::string, std::string>>
parseJsonObjectLine(std::string_view Line);

/// Reads a whole JSONL trace. Blank lines are skipped; a malformed line
/// fails the read (filled into \p Error with its line number).
std::optional<std::vector<TraceRecord>> readTrace(std::istream &In,
                                                  std::string *Error = nullptr);

/// Reads a trace that may have been split by RotatingTraceSink: loads
/// `<base>.N` generations oldest-first (highest index down to `.1`),
/// then the active file, and concatenates the records. A plain
/// un-rotated file reads identically to readTrace. Fails when the
/// active file is missing or any present file is malformed (\p Error
/// names the file).
std::optional<std::vector<TraceRecord>>
readTraceSet(const std::string &Path, std::string *Error = nullptr);

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_TRACEFILE_H
