//===- Progress.h - Lock-free live progress publication ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-telemetry half of a running search: the searcher publishes a
/// small snapshot of its beam state once per depth, and samplers (the
/// job watchdog thread, the service's `watch` streaming loop) read it
/// without ever blocking the search.
///
/// The publication is a seqlock: a version counter goes odd while the
/// writer stores the fields and even (release) when the snapshot is
/// consistent; readers retry until they see the same even version on
/// both sides of their field loads. The writer never waits, never
/// allocates, and never takes a lock — the hot-path cost is one relaxed
/// store per field once per *depth*, which is noise next to the
/// thousands of candidate applications a depth performs. There is
/// exactly one writer (the searching thread); `setRate` and `markDone`
/// write dedicated slots and may be called from other threads.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_PROGRESS_H
#define EXTRA_OBS_PROGRESS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>

namespace extra {
namespace obs {

/// One consistent view of a running search, as published at the end of a
/// beam depth. `BestDistance` is UINT64_MAX until a best line exists.
struct ProgressSnapshot {
  uint64_t Seq = 0; ///< Publication count (0 = nothing published yet).
  uint64_t Depth = 0;
  uint64_t Round = 0;
  uint64_t Frontier = 0; ///< Beam occupancy after truncation.
  uint64_t Expanded = 0;
  uint64_t Generated = 0;
  uint64_t HashHits = 0;  ///< Transposition-table prunes.
  uint64_t MemoHits = 0;  ///< Verification-memo answers.
  uint64_t Reopened = 0;  ///< Cheaper-line re-opens.
  uint64_t BestDistance = UINT64_MAX;
  /// Expansions per second, computed by the watchdog sampler from
  /// Expanded deltas (0 until the first sample interval elapses).
  double ExpansionsPerSec = 0;
  bool Done = false;

  /// Fraction of generated-or-pruned children answered by the table.
  double hashHitRate() const {
    uint64_t Denom = Generated + HashHits;
    return Denom ? static_cast<double>(HashHits) / Denom : 0.0;
  }
};

/// Single-writer seqlock publisher. The searcher holds a non-owning
/// pointer (SearchLimits::Progress, null when nobody watches); the
/// service's WorkQueue owns one per job so watchers can attach before
/// the job is claimed.
class ProgressPublisher {
public:
  /// Publishes a consistent snapshot (writer thread only). Seq, rate,
  /// and Done are managed internally; the caller fills the beam fields.
  void publish(const ProgressSnapshot &S) {
    uint64_t V = Version.load(std::memory_order_relaxed);
    Version.store(V + 1, std::memory_order_relaxed);
    // The odd version must be visible before any field store.
    std::atomic_thread_fence(std::memory_order_release);
    Field[0].store(S.Depth, std::memory_order_relaxed);
    Field[1].store(S.Round, std::memory_order_relaxed);
    Field[2].store(S.Frontier, std::memory_order_relaxed);
    Field[3].store(S.Expanded, std::memory_order_relaxed);
    Field[4].store(S.Generated, std::memory_order_relaxed);
    Field[5].store(S.HashHits, std::memory_order_relaxed);
    Field[6].store(S.MemoHits, std::memory_order_relaxed);
    Field[7].store(S.Reopened, std::memory_order_relaxed);
    Field[8].store(S.BestDistance, std::memory_order_relaxed);
    Seq.fetch_add(1, std::memory_order_relaxed);
    Version.store(V + 2, std::memory_order_release);
  }

  /// A consistent snapshot, or nullopt when nothing was published yet.
  /// Retries while a publish is in flight (bounded in practice: the
  /// writer's critical section is nine relaxed stores).
  std::optional<ProgressSnapshot> read() const {
    for (;;) {
      uint64_t V1 = Version.load(std::memory_order_acquire);
      if (V1 == 0)
        return std::nullopt;
      if (V1 & 1)
        continue; // A publish is in flight.
      ProgressSnapshot S;
      S.Depth = Field[0].load(std::memory_order_relaxed);
      S.Round = Field[1].load(std::memory_order_relaxed);
      S.Frontier = Field[2].load(std::memory_order_relaxed);
      S.Expanded = Field[3].load(std::memory_order_relaxed);
      S.Generated = Field[4].load(std::memory_order_relaxed);
      S.HashHits = Field[5].load(std::memory_order_relaxed);
      S.MemoHits = Field[6].load(std::memory_order_relaxed);
      S.Reopened = Field[7].load(std::memory_order_relaxed);
      S.BestDistance = Field[8].load(std::memory_order_relaxed);
      S.Seq = Seq.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (Version.load(std::memory_order_relaxed) == V1) {
        S.ExpansionsPerSec =
            std::bit_cast<double>(RateBits.load(std::memory_order_relaxed));
        S.Done = DoneFlag.load(std::memory_order_acquire);
        return S;
      }
    }
  }

  /// The running expansion count without snapshot consistency — what
  /// the watchdog sampler diffs to compute the rate.
  uint64_t expandedNow() const {
    return Field[3].load(std::memory_order_relaxed);
  }

  /// Publication count so far (ticks can dedupe on it).
  uint64_t seq() const { return Seq.load(std::memory_order_relaxed); }

  /// Writes the sampled expansions/sec (any thread).
  void setRate(double PerSec) {
    RateBits.store(std::bit_cast<uint64_t>(PerSec),
                   std::memory_order_relaxed);
  }

  /// Marks the job finished; late readers see Done on every snapshot.
  void markDone() { DoneFlag.store(true, std::memory_order_release); }
  bool done() const { return DoneFlag.load(std::memory_order_acquire); }

private:
  std::atomic<uint64_t> Version{0};
  std::atomic<uint64_t> Field[9] = {};
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> RateBits{0};
  std::atomic<bool> DoneFlag{false};
};

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_PROGRESS_H
