//===- Metrics.h - Counters and histograms for the pipeline -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-light metrics registry: named monotonic counters and
/// log2-bucketed histograms, shared safely across the search batch
/// driver's worker threads. Instrumentation sites hold a `Metrics *`
/// that is null when metrics are off, so the disabled hot path is one
/// branch and no clock reads.
///
/// Naming convention (dots separate, dynamic components last):
///
///   rule.apply.<rule>            per-rule successful applications
///   rule.refuse.<rule>           per-rule applicability refusals
///   transform.apply_ns           latency of one Engine::apply
///   transform.scratch.reuse      COW applies served by the thread-local
///                                scratch working copy (clone-free)
///   transform.scratch.clone      COW applies that had to clone
///   verify.pass / verify.fail    differential step verifications
///   verify.ns                    latency of one differential check
///   match.attempt / match.success / match.fail.<cause>
///   search.prune.<reason>        score-cutoff | duplicate-fingerprint |
///                                verify-reject
///   search.verify.memo_hit       verifications answered by the
///                                deterministic verdict memo
///   search.reopen.cheaper-line   transposition re-opens by a strictly
///                                shorter script
///   search.beam.children         children generated per depth
///   search.beam.occupancy        frontier size after truncation
///   synth.proposal.<kind>        proposals generated per kind
///   synth.accept / synth.reject  proposals surviving atomic application
///   batch.case_wall_ms           per-pairing discovery wall time
///   server.cache.hit / server.cache.miss
///                                discovery-service submit consults of
///                                the cross-run memo store
///   server.job_wall_ms           per-job wall time on a service worker
///   server.store.put_fault       memo appends lost to store faults
///   server.progress.watchers     `watch` subscriptions accepted
///   server.progress.ticks        progress tick lines pushed to watchers
///   server.progress.disconnects  watchers that vanished mid-stream
///   server.net.accepted          connections given a handler thread
///   server.net.rejected          connections refused at the cap (typed
///                                overloaded reply, no thread)
///   server.net.read_timeout      peers evicted stalling mid-request
///   server.net.write_timeout     peers evicted not draining responses
///   server.net.oversized_line    request lines over the byte cap
///   server.net.evicted           total slow/abusive-peer evictions
///   server.admission.enqueued    new jobs admitted to the work queue
///   server.admission.rejected    submits refused by the backlog bound
///   server.admission.draining    submits refused while draining
///   server.admission.rid_dedup   retried submits coalesced by request
///                                id (the double-enqueue that didn't)
///   server.admission.rid_evict   request ids aged out of the dedup
///                                window
///
/// Adding a counter is one line at the instrumentation site:
/// `if (M) M->counter("my.metric").add();` — registration is implicit
/// and the returned reference is stable for the registry's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_OBS_METRICS_H
#define EXTRA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace obs {

/// A monotonic counter. add() is lock-free.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A log2-bucketed histogram of non-negative integer samples (latencies
/// in ns, sizes, scores scaled to integers). record() is lock-free;
/// bucket B holds samples in [2^(B-1), 2^B) with bucket 0 holding 0.
class Histogram {
public:
  void record(uint64_t Sample);

  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0;
    uint64_t Max = 0;
    /// Upper-bound estimates from the bucket boundaries.
    uint64_t P50 = 0;
    uint64_t P90 = 0;
    uint64_t P99 = 0;

    double mean() const { return Count ? double(Sum) / double(Count) : 0.0; }
  };
  Snapshot snapshot() const;

private:
  static constexpr unsigned NumBuckets = 65;
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// The registry. counter()/histogram() create on first use and return
/// references that stay valid for the registry's lifetime (values are
/// heap-allocated; the name maps are guarded by a mutex taken only on
/// lookup, not on add()/record()).
class Metrics {
public:
  Counter &counter(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// All counters, sorted by name. Zero-valued counters are included.
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  /// All histogram snapshots, sorted by name.
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms() const;

  /// One JSON object:
  ///   {"counters":{"a.b":1,...},
  ///    "histograms":{"x":{"count":..,"sum":..,"min":..,"max":..,
  ///                       "mean":..,"p50":..,"p90":..,"p99":..},...}}
  std::string json() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

} // namespace obs
} // namespace extra

#endif // EXTRA_OBS_METRICS_H
