//===- RegistryBuilder.cpp - Import discovery artifacts ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "registry/RegistryBuilder.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "obs/TraceFile.h"
#include "search/Canon.h"
#include "search/Checkpoint.h"
#include "transform/ScriptIO.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sstream>

using namespace extra;
using namespace extra::registry;

namespace {

/// Cheap replay budget: the derivations were verified at full strength
/// when recorded/discovered; the import replay is a smoke check that the
/// scripts still apply against this build's descriptions.
analysis::DiffOptions importDiffOptions() {
  analysis::DiffOptions Opts;
  Opts.Trials = 4;
  return Opts;
}

} // namespace

bool RegistryBuilder::admitCase(const analysis::AnalysisCase &Case,
                                const std::string &Source) {
  analysis::Mode M = Case.RequiresExtension ? analysis::Mode::Extension
                                            : analysis::Mode::Base;
  auto Key = search::pairingKeyHex(Case.OperatorId, Case.InstructionId, M);
  if (!Key) {
    Notes.push_back({Case.Id, Key.fault().Message});
    return false;
  }
  auto Op = descriptions::loadChecked(Case.OperatorId);
  auto Inst = descriptions::loadChecked(Case.InstructionId);
  if (!Op || !Inst) {
    Notes.push_back({Case.Id, "descriptions unavailable"});
    return false;
  }

  auto T0 = std::chrono::steady_clock::now();
  analysis::AnalysisResult R = analysis::runAnalysis(Case, M,
                                                     importDiffOptions());
  double WallMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - T0)
          .count();
  if (!R.Succeeded) {
    Notes.push_back({Case.Id, "replay failed: " + R.FailureReason});
    return false;
  }

  RegistryEntry E;
  E.Key = *Key;
  E.AnalysisId = Case.Id;
  E.OperatorId = Case.OperatorId;
  E.InstructionId = Case.InstructionId;
  E.M = M;
  E.FpOp = search::fingerprint(**Op);
  E.FpInst = search::fingerprint(**Inst);
  E.Machine = machineOfInstruction(Case.InstructionId);
  E.Mnemonic = mnemonicOfInstruction(Case.InstructionId);
  E.Op = opKindOfOperator(Case.OperatorId);
  E.Constraints = R.Constraints.str();
  E.OpScript = transform::printScript(Case.OperatorScript);
  E.InstScript = transform::printScript(Case.InstructionScript);
  E.Binding = R.Binding.str();
  E.Source = Source;
  E.WallMs = WallMs;
  Reg.upsert(std::move(E));
  return true;
}

Expected<unsigned> RegistryBuilder::addRecordedCases() {
  unsigned Admitted = 0;
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    if (admitCase(C, "recorded"))
      ++Admitted;
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    if (admitCase(C, "recorded"))
      ++Admitted;
  if (admitCase(analysis::movc3SassignCase(), "recorded"))
    ++Admitted;
  return Admitted;
}

Expected<unsigned> RegistryBuilder::importScriptsDir(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return makeFault(FaultCategory::Store,
                     "cannot open scripts directory '" + Dir + "'");
  std::vector<std::string> Stems;
  const std::string OpSuffix = ".operator.script";
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.size() > OpSuffix.size() &&
        Name.compare(Name.size() - OpSuffix.size(), OpSuffix.size(),
                     OpSuffix) == 0)
      Stems.push_back(Name.substr(0, Name.size() - OpSuffix.size()));
  }
  ::closedir(D);
  std::sort(Stems.begin(), Stems.end()); // Deterministic import order.

  auto Slurp = [](const std::string &Path, bool &Ok) {
    std::ifstream F(Path);
    Ok = F.good();
    std::ostringstream Out;
    Out << F.rdbuf();
    return Out.str();
  };

  unsigned Admitted = 0;
  for (const std::string &Stem : Stems) {
    // The export-script naming scheme encodes the case id's '/' as '_'.
    std::string CaseId = Stem;
    std::replace(CaseId.begin(), CaseId.end(), '_', '/');
    const analysis::AnalysisCase *Known = analysis::findCase(CaseId);
    if (!Known) {
      Notes.push_back({CaseId, "no recorded derivation for this script"});
      continue;
    }
    bool OpOk = false, InstOk = false;
    std::string OpText = Slurp(Dir + "/" + Stem + OpSuffix, OpOk);
    std::string InstText =
        Slurp(Dir + "/" + Stem + ".instruction.script", InstOk);
    if (!OpOk || !InstOk) {
      Notes.push_back({CaseId, "script file pair incomplete"});
      continue;
    }
    DiagnosticEngine OpDiags, InstDiags;
    auto OpScript = transform::parseScript(OpText, OpDiags);
    auto InstScript = transform::parseScript(InstText, InstDiags);
    if (!OpScript || !InstScript) {
      Notes.push_back({CaseId, "script parse failed: " +
                                   (OpScript ? InstDiags.str()
                                             : OpDiags.str())});
      continue;
    }
    // Replay the *file's* scripts (not the built-in ones) so a stale or
    // hand-edited file is verified on its own terms.
    analysis::AnalysisCase Case = *Known;
    Case.OperatorScript = std::move(*OpScript);
    Case.InstructionScript = std::move(*InstScript);
    if (admitCase(Case, "scripts"))
      ++Admitted;
  }
  return Admitted;
}

Expected<unsigned> RegistryBuilder::importMemoFile(const std::string &Path) {
  // Lock-free read of the server's format: the registry export must work
  // while a server holds the store's sidecar lock, and a read takes no
  // lock by design (torn trailing lines are skipped like everywhere
  // else). The format constants are restated here rather than linking
  // the server library: the registry sits below the server in the
  // layering (the server links the registry for its export verb).
  support::FileFormat MemoFormat{"extra-memo", 1, "memo store"};
  auto Lines = support::readVersionedLines(Path, MemoFormat);
  if (!Lines)
    return Lines.fault();

  unsigned Admitted = 0;
  for (const std::string &Line : *Lines) {
    auto Fields = obs::parseJsonObjectLine(Line);
    if (!Fields)
      continue; // Torn trailing write.
    auto Get = [&](const char *Key) -> std::string {
      auto It = Fields->find(Key);
      return It == Fields->end() ? std::string() : It->second;
    };
    std::string CaseId = Get("case");
    if (Get("key").empty() || CaseId.empty())
      continue; // A plain checkpoint line, not a memo entry.
    if (Get("outcome") != "verified") {
      Notes.push_back({CaseId, "memo entry not verified (" + Get("outcome") +
                                   "); skipped"});
      continue;
    }
    auto M = analysis::modeFromName(Get("mode"));
    if (!M) {
      Notes.push_back({CaseId, "memo entry has unknown mode"});
      continue;
    }
    std::string OperatorId = Get("operator");
    std::string InstructionId = Get("instruction");
    // Canonical fingerprints are recomputed from the descriptions (a
    // verified memo entry carries none — its fp fields are the partial
    // frontier of failed searches). Unknown ids mean the store came from
    // a build with descriptions this one lacks: note and skip.
    auto Op = descriptions::loadChecked(OperatorId);
    auto Inst = descriptions::loadChecked(InstructionId);
    if (!Op || !Inst) {
      Notes.push_back({CaseId, "descriptions unknown to this build"});
      continue;
    }
    RegistryEntry E;
    E.Key = Get("key");
    E.AnalysisId = CaseId;
    E.OperatorId = OperatorId;
    E.InstructionId = InstructionId;
    E.M = *M;
    E.FpOp = search::fingerprint(**Op);
    E.FpInst = search::fingerprint(**Inst);
    E.Machine = machineOfInstruction(InstructionId);
    E.Mnemonic = mnemonicOfInstruction(InstructionId);
    E.Op = opKindOfOperator(OperatorId);
    // Server-verified payload, trusted verbatim.
    E.Constraints = Get("constraints");
    E.OpScript = Get("op_script");
    E.InstScript = Get("inst_script");
    E.Binding = Get("binding");
    E.Source = "memo";
    E.BeamWidth = static_cast<unsigned>(
        std::strtoul(Get("beam").c_str(), nullptr, 10));
    E.MaxDepth = static_cast<unsigned>(
        std::strtoul(Get("depth").c_str(), nullptr, 10));
    E.Widenings = static_cast<unsigned>(
        std::strtoul(Get("widenings").c_str(), nullptr, 10));
    E.MaxNodes = std::strtoull(Get("max_nodes").c_str(), nullptr, 10);
    E.TimeBudgetMs =
        std::strtoull(Get("time_budget_ms").c_str(), nullptr, 10);
    E.WallMs = std::strtod(Get("wall_ms").c_str(), nullptr);
    Reg.upsert(std::move(E));
    ++Admitted;
  }
  return Admitted;
}

Expected<unsigned> RegistryBuilder::importCheckpoint(const std::string &Path) {
  auto Records = search::readCheckpointsChecked(Path);
  if (!Records)
    return Records.fault();
  unsigned Admitted = 0;
  for (const search::CheckpointRecord &R : *Records) {
    if (R.Outcome != search::CaseOutcome::Verified)
      continue;
    // Checkpoint records carry no scripts; replay the library derivation
    // for the case id to regenerate the payload.
    const analysis::AnalysisCase *Case = analysis::findCase(R.Case);
    if (!Case) {
      Notes.push_back({R.Case, "no recorded derivation for this case id"});
      continue;
    }
    if (admitCase(*Case, "checkpoint"))
      ++Admitted;
  }
  return Admitted;
}
