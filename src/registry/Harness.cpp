//===- Harness.cpp - Differential execution of registry bindings *- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "registry/Harness.h"

#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <cstdio>
#include <set>
#include <sstream>

using namespace extra;
using namespace extra::registry;
using codegen::CodeGenResult;
using codegen::Program;
using codegen::Target;
using codegen::Value;

const char *registry::machineName(MachineKind MK) {
  switch (MK) {
  case MachineKind::I8086:
    return "i8086";
  case MachineKind::Vax:
    return "vax";
  case MachineKind::Ibm370:
    return "ibm370";
  }
  return "?";
}

std::optional<MachineKind> registry::machineFromName(const std::string &Name) {
  if (Name == "i8086")
    return MachineKind::I8086;
  if (Name == "vax")
    return MachineKind::Vax;
  if (Name == "ibm370")
    return MachineKind::Ibm370;
  return std::nullopt;
}

std::vector<MachineKind> registry::allMachines() {
  return {MachineKind::I8086, MachineKind::Vax, MachineKind::Ibm370};
}

Program registry::demoProgram() {
  // The front end compiled something like:
  //   var buf: array of char;  s: string[16];
  //   buf := s;  i := index(buf, 'r');  eq := (buf = s);  clear(scratch);
  Program P;
  P.Ops.push_back(codegen::strMove(Value::literal(300), Value::literal(100),
                                   Value::literal(16)));
  P.Ops.push_back(codegen::strIndex("i", Value::literal(300),
                                    Value::literal(16), Value::literal('r')));
  P.Ops.push_back(codegen::strEqual("eq", Value::literal(100),
                                    Value::literal(300), Value::literal(16)));
  P.Ops.push_back(codegen::blockClear(Value::literal(400), Value::literal(8)));
  P.Facts.Axioms.insert("pascal.no-overlap");
  return P;
}

interp::Memory registry::demoMemory() {
  interp::Memory M;
  interp::storeBytes(M, 100, "characteristic!!");
  for (int I = 0; I < 8; ++I)
    M[400 + I] = 0xEE;
  return M;
}

namespace {

std::unique_ptr<Target> makeBootstrap(MachineKind MK) {
  switch (MK) {
  case MachineKind::I8086:
    return codegen::makeI8086Target();
  case MachineKind::Vax:
    return codegen::makeVaxTarget();
  case MachineKind::Ibm370:
    return codegen::makeIbm370Target();
  }
  return nullptr;
}

sim::SimResult runOn(MachineKind MK, const std::vector<std::string> &Asm,
                     const interp::Memory &Mem) {
  switch (MK) {
  case MachineKind::I8086:
    return sim::run8086(Asm, Mem);
  case MachineKind::Vax:
    return sim::runVax(Asm, Mem);
  case MachineKind::Ibm370:
    return sim::run370(Asm, Mem);
  }
  return {};
}

SideReport compileAndRun(MachineKind MK, Target &T, const Program &P,
                         const interp::Memory &Mem) {
  SideReport Side;
  CodeGenResult Code = T.generate(P);
  Side.Asm = codegen::peephole(Code.Asm);
  Side.Exotic = Code.ExoticCount;
  Side.Decomposed = Code.DecomposedCount;
  Side.CodeSize = sim::codeSize(Side.Asm, ';');
  sim::SimResult S = runOn(MK, Side.Asm, Mem);
  Side.Ok = S.Ok;
  Side.Error = S.Error;
  Side.Instructions = S.Instructions;
  Side.MicroOps = S.MicroOps;
  Side.Mem = std::move(S.Mem);
  Side.Regs = std::move(S.Regs);
  return Side;
}

int64_t regOr0(const std::map<std::string, int64_t> &Regs,
               const std::string &Name) {
  auto It = Regs.find(Name);
  return It == Regs.end() ? 0 : It->second;
}

/// First observed state difference, or empty. Memory is compared over
/// the union of touched addresses (absent = 0); registers only over the
/// program's result symbols.
std::string compareStates(const Program &P, const SideReport &A,
                          const SideReport &B) {
  std::set<uint64_t> Addrs;
  for (const auto &[Addr, V] : A.Mem)
    Addrs.insert(Addr);
  for (const auto &[Addr, V] : B.Mem)
    Addrs.insert(Addr);
  for (uint64_t Addr : Addrs) {
    auto AIt = A.Mem.find(Addr);
    auto BIt = B.Mem.find(Addr);
    uint8_t AV = AIt == A.Mem.end() ? 0 : AIt->second;
    uint8_t BV = BIt == B.Mem.end() ? 0 : BIt->second;
    if (AV != BV) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf),
                    "memory[%llu]: registry=0x%02x baseline=0x%02x",
                    static_cast<unsigned long long>(Addr), AV, BV);
      return Buf;
    }
  }
  for (const codegen::HLOp &O : P.Ops) {
    if (O.Result.empty())
      continue;
    int64_t AV = regOr0(A.Regs, O.Result);
    int64_t BV = regOr0(B.Regs, O.Result);
    if (AV != BV)
      return "result '" + O.Result + "': registry=" + std::to_string(AV) +
             " baseline=" + std::to_string(BV);
  }
  return std::string();
}

} // namespace

DifferentialReport registry::runDifferential(MachineKind MK, const Registry &R,
                                             const codegen::Program &P,
                                             const interp::Memory &Mem,
                                             std::vector<CompileNote> *Notes) {
  DifferentialReport Rep;
  Rep.Machine = MK;

  std::unique_ptr<Target> WithReg = makeBootstrap(MK);
  WithReg->clearBindings(); // The hand table is bootstrap-only here.
  Rep.BindingsLoaded =
      loadRegistryBindings(R, machineName(MK), *WithReg, Notes);
  Rep.WithRegistry = compileAndRun(MK, *WithReg, P, Mem);

  std::unique_ptr<Target> Bare = makeBootstrap(MK);
  Bare->clearBindings();
  Rep.Baseline = compileAndRun(MK, *Bare, P, Mem);

  if (Rep.WithRegistry.Ok && Rep.Baseline.Ok) {
    Rep.Divergence = compareStates(P, Rep.WithRegistry, Rep.Baseline);
    Rep.StatesMatch = Rep.Divergence.empty();
  } else {
    Rep.Divergence = !Rep.WithRegistry.Ok
                         ? "registry side failed: " + Rep.WithRegistry.Error
                         : "baseline side failed: " + Rep.Baseline.Error;
  }
  return Rep;
}

std::string registry::formatReport(const DifferentialReport &R) {
  std::ostringstream Out;
  Out << "== " << machineName(R.Machine) << " (" << R.BindingsLoaded
      << " registry bindings) ==\n";
  auto Side = [&](const char *Tag, const SideReport &S) {
    Out << "  " << Tag << ": ";
    if (!S.Ok) {
      Out << "FAILED: " << S.Error << "\n";
      return;
    }
    Out << S.Instructions << " dispatches, " << S.MicroOps
        << " byte ops, " << S.CodeSize << " lines ("
        << S.Exotic << " exotic, " << S.Decomposed << " decomposed)\n";
  };
  Side("registry  ", R.WithRegistry);
  Side("decomposed", R.Baseline);
  if (R.WithRegistry.Ok && R.Baseline.Ok) {
    Out << "  states: "
        << (R.StatesMatch ? "identical" : "DIVERGED: " + R.Divergence)
        << "\n";
    if (R.StatesMatch && R.Baseline.Instructions)
      Out << "  dispatch ratio: "
          << static_cast<double>(R.WithRegistry.Instructions) /
                 static_cast<double>(R.Baseline.Instructions)
          << "x\n";
  } else {
    Out << "  " << R.Divergence << "\n";
  }
  return Out.str();
}
