//===- Registry.h - The deployable binding registry -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deployment format that closes the paper's §6 loop: a discovered,
/// verified operator/instruction binding leaves the discovery pipeline
/// (MemoStore, checkpoint, recorded corpus) as one registry entry —
/// pairing key, canonical fingerprints, constraint set, derivation
/// scripts, and provenance — and re-enters a production code generator
/// through the BindingCompiler, which lowers entries back into live
/// `codegen::InstructionBinding`s at target-load time. "Once found, the
/// instruction sequences are hard-wired" into the generator; the registry
/// is the wire.
///
/// Serialization is the repo-wide versioned JSONL scheme (one
/// `extra-registry` v1 header line, tolerated-if-absent on read, foreign
/// and future versions rejected with typed Store faults, torn tails
/// skipped, later-records-win by pairing key) via support/VersionedFile.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_REGISTRY_REGISTRY_H
#define EXTRA_REGISTRY_REGISTRY_H

#include "analysis/Analysis.h"
#include "support/Error.h"
#include "support/VersionedFile.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace registry {

/// Format tag and highest version this build reads and writes.
inline constexpr const char *kRegistryFormat = "extra-registry";
inline constexpr uint32_t kRegistryVersion = 1;

/// The registry file format, as the shared versioned-file layer sees it.
support::FileFormat registryFileFormat();

/// One deployable binding: everything a production code generator needs
/// to reconstruct the `InstructionBinding`, plus the provenance to audit
/// where it came from.
struct RegistryEntry {
  //===--- Identity -------------------------------------------------------===//
  std::string Key;           ///< Canonical pairing key ("0x%016llx").
  std::string AnalysisId;    ///< e.g. "i8086.scasb/rigel.index".
  std::string OperatorId;    ///< Description library id.
  std::string InstructionId; ///< Description library id.
  analysis::Mode M = analysis::Mode::Base;
  uint64_t FpOp = 0;         ///< Canonical fingerprint, operator side.
  uint64_t FpInst = 0;       ///< Canonical fingerprint, instruction side.

  //===--- Code generation ------------------------------------------------===//
  std::string Machine;     ///< "i8086" / "vax" / "ibm370" (instruction id
                           ///< prefix).
  std::string Mnemonic;    ///< "scasb" (instruction id suffix).
  std::string Op;          ///< codegen::opKindName text; empty when the
                           ///< operator maps to no code-generator OpKind
                           ///< (the entry still round-trips).
  std::string Constraints; ///< ConstraintSet::str() text.
  std::string OpScript;    ///< transform::printScript text, operator side.
  std::string InstScript;  ///< Instruction side.
  std::string Binding;     ///< isdl::NameBinding text ("name <-> reg").

  //===--- Provenance -----------------------------------------------------===//
  std::string Source; ///< "recorded" / "scripts" / "memo" / "checkpoint".
  unsigned BeamWidth = 0; ///< Discovery budgets (0 for replayed sources).
  unsigned MaxDepth = 0;
  unsigned Widenings = 0;
  uint64_t MaxNodes = 0;
  uint64_t TimeBudgetMs = 0;
  double WallMs = 0; ///< Discovery (or verification replay) wall time.

  /// One complete JSON object line (no trailing newline).
  std::string toJsonLine() const;
  /// Parses a registry line; nullopt on malformed or foreign input.
  static std::optional<RegistryEntry> fromJsonLine(std::string_view Line);
};

/// The machine name encoded in an instruction id ("i8086.scasb" ->
/// "i8086"); empty when the id has no dot.
std::string machineOfInstruction(const std::string &InstructionId);

/// The mnemonic encoded in an instruction id ("i8086.scasb" -> "scasb").
std::string mnemonicOfInstruction(const std::string &InstructionId);

/// The code-generator operator kind implemented by a library operator
/// ("rigel.index" -> "StrIndex"); empty for operators outside the
/// OpKind vocabulary (e.g. "rigel.span").
std::string opKindOfOperator(const std::string &OperatorId);

/// An in-memory registry: entries deduplicated by pairing key,
/// later-records-win, with versioned load/save.
class Registry {
public:
  /// Inserts or replaces the entry with \p E's key (later records win).
  void upsert(RegistryEntry E);

  /// Entry by pairing key; null when absent.
  const RegistryEntry *find(const std::string &Key) const;

  /// All entries in key order (deterministic for save and display).
  std::vector<const RegistryEntry *> entries() const;

  size_t size() const { return ByKey.size(); }
  bool empty() const { return ByKey.empty(); }

  /// Reads a registry file. A missing file reads as empty; torn lines
  /// are skipped; an absent header is tolerated; foreign and future
  /// headers are typed Store faults.
  static Expected<Registry> load(const std::string &Path);

  /// Writes header + every entry (key order) through a temp file +
  /// rename.
  Expected<bool> save(const std::string &Path) const;

  /// Appends one entry to a registry file (open-append-close, header
  /// stamped on first use) without loading it — the durable export path.
  static Expected<bool> appendEntry(const std::string &Path,
                                    const RegistryEntry &E);

private:
  std::map<std::string, RegistryEntry> ByKey;
};

} // namespace registry
} // namespace extra

#endif // EXTRA_REGISTRY_REGISTRY_H
