//===- RegistryBuilder.h - Import discovery artifacts -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a binding registry from the discovery pipeline's artifacts:
///
///  * the recorded derivation corpus built into the binary
///    (analysis/Derivations.cpp — Table 2, the extended cases, §4.3);
///  * the shipped `scripts/` directory (extra-cli export-script text);
///  * a MemoStore file written by the discovery server;
///  * a batch checkpoint file.
///
/// Every imported pairing is *re-verified* by replaying its derivation
/// through `analysis::runAnalysis` before it is admitted — except memo
/// imports, whose entries were verified by the server when stored and
/// carry the rendered constraint/binding text verbatim. Imports
/// deduplicate by canonical pairing key, later sources winning, so
/// `build --from-scripts --from-memo` layers a live store over the
/// shipped corpus.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_REGISTRY_REGISTRYBUILDER_H
#define EXTRA_REGISTRY_REGISTRYBUILDER_H

#include "registry/Registry.h"

#include <string>
#include <vector>

namespace extra {
namespace registry {

/// One case the builder looked at and did not admit, with the reason —
/// the import paths never fail wholesale over one bad pairing.
struct BuildNote {
  std::string CaseId;
  std::string Detail;
};

class RegistryBuilder {
public:
  /// Imports every built-in recorded derivation, replaying each analysis
  /// (cheap differential budget) to regenerate constraints and binding.
  /// Returns the number of entries admitted.
  Expected<unsigned> addRecordedCases();

  /// Imports `<dir>/<case>.operator.script` + `.instruction.script`
  /// pairs (case id encoded with '/' as '_'), verifying each pair by
  /// substituting the parsed scripts into the library case and replaying.
  Expected<unsigned> importScriptsDir(const std::string &Dir);

  /// Imports verified entries from a memo-store file. The file is read
  /// lock-free (no MemoStore::open, no sidecar lock), so a live server's
  /// store can be exported under it; stored constraint/binding text is
  /// trusted as server-verified. Faults on foreign/future headers.
  Expected<unsigned> importMemoFile(const std::string &Path);

  /// Imports Verified records from a batch checkpoint file. Checkpoint
  /// records carry no scripts, so the library derivation for each case id
  /// is replayed to regenerate the payload.
  Expected<unsigned> importCheckpoint(const std::string &Path);

  Registry &registry() { return Reg; }
  const Registry &registry() const { return Reg; }
  const std::vector<BuildNote> &notes() const { return Notes; }

private:
  /// Replays \p Case and admits it as \p Source; notes and returns false
  /// when the replay fails or identity derivation faults.
  bool admitCase(const analysis::AnalysisCase &Case, const std::string &Source);

  Registry Reg;
  std::vector<BuildNote> Notes;
};

} // namespace registry
} // namespace extra

#endif // EXTRA_REGISTRY_REGISTRYBUILDER_H
