//===- Registry.cpp - The deployable binding registry -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "registry/Registry.h"

#include "obs/Trace.h"
#include "obs/TraceFile.h"

#include <cstdio>
#include <cstdlib>

using namespace extra;
using namespace extra::registry;

support::FileFormat registry::registryFileFormat() {
  return {kRegistryFormat, kRegistryVersion, "binding registry"};
}

std::string registry::machineOfInstruction(const std::string &InstructionId) {
  auto Dot = InstructionId.find('.');
  return Dot == std::string::npos ? std::string()
                                  : InstructionId.substr(0, Dot);
}

std::string registry::mnemonicOfInstruction(const std::string &InstructionId) {
  auto Dot = InstructionId.find('.');
  return Dot == std::string::npos ? InstructionId
                                  : InstructionId.substr(Dot + 1);
}

std::string registry::opKindOfOperator(const std::string &OperatorId) {
  auto Dot = OperatorId.find('.');
  std::string Tail =
      Dot == std::string::npos ? OperatorId : OperatorId.substr(Dot + 1);
  // The operator library names map onto the code generator's five OpKinds
  // (codegen/IR.h). "span" and future library growth fall outside the
  // vocabulary: such entries stay in the registry (the format carries
  // them) but the BindingCompiler skips them with a note.
  if (Tail == "index" || Tail == "search")
    return "StrIndex";
  if (Tail == "smove" || Tail == "move" || Tail == "sassign")
    return "StrMove";
  if (Tail == "sequal")
    return "StrEqual";
  if (Tail == "copy")
    return "BlockCopy";
  if (Tail == "clear")
    return "BlockClear";
  return std::string();
}

std::string RegistryEntry::toJsonLine() const {
  auto Hex = [](uint64_t V) {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                  static_cast<unsigned long long>(V));
    return std::string(Buf);
  };
  std::string Out = "{";
  Out += "\"key\":\"" + obs::jsonEscape(Key) + "\"";
  Out += ",\"case\":\"" + obs::jsonEscape(AnalysisId) + "\"";
  Out += ",\"operator\":\"" + obs::jsonEscape(OperatorId) + "\"";
  Out += ",\"instruction\":\"" + obs::jsonEscape(InstructionId) + "\"";
  Out += ",\"mode\":\"" + std::string(analysis::modeName(M)) + "\"";
  Out += ",\"fp_op\":\"" + Hex(FpOp) + "\"";
  Out += ",\"fp_inst\":\"" + Hex(FpInst) + "\"";
  Out += ",\"machine\":\"" + obs::jsonEscape(Machine) + "\"";
  Out += ",\"mnemonic\":\"" + obs::jsonEscape(Mnemonic) + "\"";
  Out += ",\"op\":\"" + obs::jsonEscape(Op) + "\"";
  Out += ",\"constraints\":\"" + obs::jsonEscape(Constraints) + "\"";
  Out += ",\"op_script\":\"" + obs::jsonEscape(OpScript) + "\"";
  Out += ",\"inst_script\":\"" + obs::jsonEscape(InstScript) + "\"";
  Out += ",\"binding\":\"" + obs::jsonEscape(Binding) + "\"";
  Out += ",\"source\":\"" + obs::jsonEscape(Source) + "\"";
  Out += ",\"beam\":" + std::to_string(BeamWidth);
  Out += ",\"depth\":" + std::to_string(MaxDepth);
  Out += ",\"widenings\":" + std::to_string(Widenings);
  Out += ",\"max_nodes\":" + std::to_string(MaxNodes);
  Out += ",\"time_budget_ms\":" + std::to_string(TimeBudgetMs);
  char WallBuf[32];
  std::snprintf(WallBuf, sizeof(WallBuf), "%.3f", WallMs);
  Out += ",\"wall_ms\":" + std::string(WallBuf);
  Out += "}";
  return Out;
}

std::optional<RegistryEntry>
RegistryEntry::fromJsonLine(std::string_view Line) {
  auto Fields = obs::parseJsonObjectLine(Line);
  if (!Fields)
    return std::nullopt;
  auto Get = [&](const char *Key) -> std::string {
    auto It = Fields->find(Key);
    return It == Fields->end() ? std::string() : It->second;
  };
  RegistryEntry E;
  E.Key = Get("key");
  E.AnalysisId = Get("case");
  if (E.Key.empty() || E.AnalysisId.empty())
    return std::nullopt; // Torn line or a foreign record.
  E.OperatorId = Get("operator");
  E.InstructionId = Get("instruction");
  auto M = analysis::modeFromName(Get("mode"));
  if (!M)
    return std::nullopt;
  E.M = *M;
  E.FpOp = std::strtoull(Get("fp_op").c_str(), nullptr, 16);
  E.FpInst = std::strtoull(Get("fp_inst").c_str(), nullptr, 16);
  E.Machine = Get("machine");
  E.Mnemonic = Get("mnemonic");
  E.Op = Get("op");
  E.Constraints = Get("constraints");
  E.OpScript = Get("op_script");
  E.InstScript = Get("inst_script");
  E.Binding = Get("binding");
  E.Source = Get("source");
  E.BeamWidth =
      static_cast<unsigned>(std::strtoul(Get("beam").c_str(), nullptr, 10));
  E.MaxDepth =
      static_cast<unsigned>(std::strtoul(Get("depth").c_str(), nullptr, 10));
  E.Widenings = static_cast<unsigned>(
      std::strtoul(Get("widenings").c_str(), nullptr, 10));
  E.MaxNodes = std::strtoull(Get("max_nodes").c_str(), nullptr, 10);
  E.TimeBudgetMs = std::strtoull(Get("time_budget_ms").c_str(), nullptr, 10);
  E.WallMs = std::strtod(Get("wall_ms").c_str(), nullptr);
  return E;
}

void Registry::upsert(RegistryEntry E) {
  std::string Key = E.Key;
  ByKey[std::move(Key)] = std::move(E);
}

const RegistryEntry *Registry::find(const std::string &Key) const {
  auto It = ByKey.find(Key);
  return It == ByKey.end() ? nullptr : &It->second;
}

std::vector<const RegistryEntry *> Registry::entries() const {
  std::vector<const RegistryEntry *> Out;
  Out.reserve(ByKey.size());
  for (const auto &[Key, E] : ByKey)
    Out.push_back(&E);
  return Out;
}

Expected<Registry> Registry::load(const std::string &Path) {
  auto Lines = support::readVersionedLines(Path, registryFileFormat());
  if (!Lines)
    return Lines.fault();
  Registry R;
  for (const std::string &Line : *Lines) {
    auto E = RegistryEntry::fromJsonLine(Line);
    if (!E)
      continue; // Torn trailing write — skip, like every store reader.
    R.upsert(std::move(*E));
  }
  return R;
}

Expected<bool> Registry::save(const std::string &Path) const {
  std::vector<std::string> Lines;
  Lines.reserve(ByKey.size());
  for (const auto &[Key, E] : ByKey)
    Lines.push_back(E.toJsonLine());
  return support::writeVersionedFile(Path, registryFileFormat(), Lines);
}

Expected<bool> Registry::appendEntry(const std::string &Path,
                                     const RegistryEntry &E) {
  return support::appendVersionedLine(Path, registryFileFormat(),
                                      E.toJsonLine());
}
