//===- BindingCompiler.cpp - Lower registry entries to bindings -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "registry/BindingCompiler.h"

#include "isdl/Parser.h"
#include "support/Diagnostics.h"
#include "transform/ScriptIO.h"

#include <cstdlib>
#include <memory>
#include <set>

using namespace extra;
using namespace extra::registry;
using codegen::CodeGenContext;
using codegen::HLOp;
using codegen::OpKind;
using codegen::Value;
using constraint::CompileTimeFacts;
using constraint::Constraint;
using constraint::ConstraintKind;
using constraint::ConstraintSet;

namespace {

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

std::optional<OpKind> opKindFromName(const std::string &Name) {
  if (Name == "StrIndex")
    return OpKind::StrIndex;
  if (Name == "StrMove")
    return OpKind::StrMove;
  if (Name == "StrEqual")
    return OpKind::StrEqual;
  if (Name == "BlockCopy")
    return OpKind::BlockCopy;
  if (Name == "BlockClear")
    return OpKind::BlockClear;
  return std::nullopt;
}

Fault parseFault(std::string Message) {
  return makeFault(FaultCategory::Parse, std::move(Message));
}

Fault lowerFault(std::string Message) {
  return makeFault(FaultCategory::Validate, std::move(Message));
}

//===----------------------------------------------------------------------===//
// Machine dialects (kernel knowledge: operand-convention vocabulary)
//===----------------------------------------------------------------------===//

struct Dialect {
  const char *Mov;     ///< Register load / register move mnemonic.
  const char *Jmp;     ///< Unconditional branch.
  const char *Sub;     ///< Register subtract (for address-difference arms).
  const char *Inc;     ///< Register increment (for index-bias epilogues).
  const char *SaveReg; ///< Scratch register for the initial-address save.
  int64_t WordMax;     ///< Word width: ranges at/above it are trivial.
};

const Dialect *dialectFor(const std::string &Machine) {
  static const Dialect I8086{"mov", "jmp", "sub", "inc", "bx", 0xFFFF};
  static const Dialect Vax{"movl", "brb", "subl", "incl", "r4", 0xFFFFFFFFLL};
  static const Dialect Ibm370{"la", "j", "sr", "ahi", "r5", 0xFFFFFF};
  if (Machine == "i8086")
    return &I8086;
  if (Machine == "vax")
    return &Vax;
  if (Machine == "ibm370")
    return &Ibm370;
  return nullptr;
}

/// 8086 status-flag operands: pinning one becomes setup code, not a
/// register load.
bool isI8086Flag(const std::string &Name) {
  return Name == "rf" || Name == "rfz" || Name == "df" || Name == "zf";
}

//===----------------------------------------------------------------------===//
// The augment plan parsed from the instruction derivation script
//===----------------------------------------------------------------------===//

struct OutputArm {
  enum class Kind { Const, RegMinusSave } K = Kind::Const;
  int64_t Lit = 0;
  std::string Reg; ///< Carrier register of a RegMinusSave arm.
};

struct OutputSpec {
  enum class Cond { Flag, RegZero } CondKind = Cond::Flag;
  std::string CondReg; ///< "zf" (Flag) or the tested register (RegZero).
  OutputArm Then, Else;

  /// The register holding the interesting result, when an arm computes
  /// an address difference; the other arm then assigns into it too.
  std::string carrier() const {
    if (Then.K == OutputArm::Kind::RegMinusSave)
      return Then.Reg;
    if (Else.K == OutputArm::Kind::RegMinusSave)
      return Else.Reg;
    return std::string();
  }
};

struct AugmentPlan {
  /// fix-operand-value pins in script order.
  std::vector<std::pair<std::string, int64_t>> Pins;
  std::string SaveName; ///< allocate-temp name the prologue writes.
  std::string SaveSrc;  ///< Register saved by the prologue; empty = none.
  std::optional<OutputSpec> Output;
};

Expected<OutputArm> parseOutputArm(const std::string &Text,
                                   const std::string &SaveName) {
  std::string T = trimmed(Text);
  OutputArm Arm;
  size_t Minus = T.find(" - ");
  if (Minus != std::string::npos) {
    Arm.K = OutputArm::Kind::RegMinusSave;
    Arm.Reg = trimmed(T.substr(0, Minus));
    std::string Rhs = trimmed(T.substr(Minus + 3));
    if (Rhs != SaveName)
      return parseFault("output arm '" + T +
                        "' subtracts something other than the prologue "
                        "save ('" +
                        SaveName + "')");
    return Arm;
  }
  char *End = nullptr;
  Arm.Lit = std::strtoll(T.c_str(), &End, 10);
  if (End == T.c_str() || *End != '\0')
    return parseFault("output arm '" + T + "' is neither a literal nor an "
                      "address difference");
  return Arm;
}

/// Parses `if <cond> then output (<a>); else output (<b>); end_if;`.
Expected<OutputSpec> parseOutputSpec(const std::string &Code,
                                     const std::string &SaveName) {
  const std::string ThenMark = " then output (";
  const std::string ElseMark = "); else output (";
  const std::string EndMark = "); end_if;";
  if (!startsWith(Code, "if "))
    return parseFault("unsupported replace-output code: '" + Code + "'");
  size_t ThenAt = Code.find(ThenMark);
  size_t ElseAt = Code.find(ElseMark);
  size_t EndAt = Code.rfind(EndMark);
  if (ThenAt == std::string::npos || ElseAt == std::string::npos ||
      EndAt == std::string::npos || !(ThenAt < ElseAt && ElseAt < EndAt))
    return parseFault("unsupported replace-output code: '" + Code + "'");

  OutputSpec Spec;
  std::string Cond = trimmed(Code.substr(3, ThenAt - 3));
  size_t EqZero = Cond.find(" = 0");
  if (EqZero != std::string::npos && EqZero + 4 == Cond.size()) {
    Spec.CondKind = OutputSpec::Cond::RegZero;
    Spec.CondReg = trimmed(Cond.substr(0, EqZero));
  } else if (Cond.find(' ') == std::string::npos) {
    Spec.CondKind = OutputSpec::Cond::Flag;
    Spec.CondReg = Cond;
  } else {
    return parseFault("unsupported output condition: '" + Cond + "'");
  }

  auto Then = parseOutputArm(
      Code.substr(ThenAt + ThenMark.size(), ElseAt - ThenAt - ThenMark.size()),
      SaveName);
  if (!Then)
    return Then.fault();
  auto Else = parseOutputArm(
      Code.substr(ElseAt + ElseMark.size(), EndAt - ElseAt - ElseMark.size()),
      SaveName);
  if (!Else)
    return Else.fault();
  Spec.Then = *Then;
  Spec.Else = *Else;
  return Spec;
}

Expected<AugmentPlan> parseAugments(const std::string &InstScriptText) {
  DiagnosticEngine Diags;
  auto Script = transform::parseScript(InstScriptText, Diags);
  if (!Script)
    return parseFault("instruction script failed to parse: " + Diags.str());

  AugmentPlan Plan;
  for (const transform::Step &S : *Script) {
    auto Arg = [&](const char *Key) -> std::string {
      auto It = S.Args.find(Key);
      return It == S.Args.end() ? std::string() : It->second;
    };
    if (S.Rule == "fix-operand-value") {
      Plan.Pins.emplace_back(Arg("operand"),
                             std::strtoll(Arg("value").c_str(), nullptr, 10));
    } else if (S.Rule == "allocate-temp") {
      Plan.SaveName = Arg("name");
    } else if (S.Rule == "add-prologue") {
      // "temp <- di;" — the initial-address save.
      std::string Code = Arg("code");
      size_t Arrow = Code.find("<-");
      if (Arrow == std::string::npos)
        return parseFault("unsupported prologue code: '" + Code + "'");
      std::string Dst = trimmed(Code.substr(0, Arrow));
      std::string Src = trimmed(Code.substr(Arrow + 2));
      if (!Src.empty() && Src.back() == ';')
        Src = trimmed(Src.substr(0, Src.size() - 1));
      if (Plan.SaveName.empty())
        Plan.SaveName = Dst;
      if (Dst != Plan.SaveName)
        return parseFault("prologue writes '" + Dst +
                          "', not the allocated temp '" + Plan.SaveName + "'");
      Plan.SaveSrc = Src;
    } else if (S.Rule == "replace-output") {
      std::string Code = Arg("code");
      if (Code == "none")
        continue;
      auto Spec = parseOutputSpec(Code, Plan.SaveName);
      if (!Spec)
        return Spec.fault();
      Plan.Output = *Spec;
    }
    // permute-inputs: the kernel's operand->register map already encodes
    // the permuted order. note-relational-constraint and the
    // simplification rules shape the description, not the emitted code.
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Kernels: per-(machine, mnemonic, operator kind) operand conventions
//===----------------------------------------------------------------------===//

struct KernelSpec {
  const char *Machine;
  const char *Mnemonic;
  OpKind Op;
  /// Dedicated-register loads in emission order: {register, arg index}.
  std::vector<std::pair<const char *, int>> Loads;
  const char *Core;        ///< Core instruction text (sans repeat prefix).
  const char *CoreComment; ///< Emitted after the core line.
  std::vector<const char *> Clobbers;
  const char *R0After = nullptr; ///< setRegister("r0", ...) value, or null.
  int CarrierBias = 0;           ///< locc leaves r1 AT the match: +1.
  /// Pin-name aliases for pins whose operand name is not the register
  /// (movc5's fill byte travels in r2).
  std::vector<std::pair<const char *, const char *>> PinAlias;
  bool MvcStyle = false; ///< Length encoded into the core text, not a reg.
  enum class Rewrite { None, VaxLiteralChunks, MvcChunks } RewriteKind =
      Rewrite::None;
};

const std::vector<KernelSpec> &kernelTable() {
  using K = KernelSpec;
  static const std::vector<KernelSpec> Table = {
      {"i8086", "scasb", OpKind::StrIndex,
       {{"di", 0}, {"cx", 1}, {"al", 2}},
       "scasb", "search string",
       {"di", "cx", "si", "bx"}},
      {"i8086", "movsb", OpKind::StrMove,
       {{"si", 1}, {"di", 0}, {"cx", 2}},
       "movsb", "block move",
       {"si", "di", "cx"}},
      {"i8086", "cmpsb", OpKind::StrEqual,
       {{"si", 0}, {"di", 1}, {"cx", 2}},
       "cmpsb", "compare while equal",
       {"si", "di", "cx"}},
      {"i8086", "stosb", OpKind::BlockClear,
       {{"di", 0}, {"cx", 1}},
       "stosb", "block clear",
       {"di", "cx"}},
      {"vax", "locc", OpKind::StrIndex,
       {{"r1", 0}, {"r0", 1}, {"r2", 2}},
       "locc r2, r0, r1", "locate character",
       {"r1", "r4"}, "", /*CarrierBias=*/1},
      {"vax", "movc3", OpKind::BlockCopy,
       {{"r0", 2}, {"r1", 1}, {"r3", 0}},
       "movc3 r0, r1, r3", "overlap-safe block move",
       {"r1", "r3"}, "0", 0, {}, false, K::Rewrite::VaxLiteralChunks},
      {"vax", "movc3", OpKind::StrMove,
       {{"r0", 2}, {"r1", 1}, {"r3", 0}},
       "movc3 r0, r1, r3", "string assignment (no overlap by axiom)",
       {"r1", "r3"}, "0", 0, {}, false, K::Rewrite::VaxLiteralChunks},
      {"vax", "cmpc3", OpKind::StrEqual,
       {{"r0", 2}, {"r1", 0}, {"r3", 1}},
       "cmpc3 r0, r1, r3", "compare characters",
       {"r1", "r3"}, ""},
      {"vax", "movc5", OpKind::BlockClear,
       {{"r4", 1}, {"r5", 0}},
       "movc5 r0, r1, r2, r4, r5", "block clear",
       {"r4", "r5", "r3"}, "0", 0, {{"fill", "r2"}}},
      {"ibm370", "mvc", OpKind::StrMove,
       {{"r1", 0}, {"r2", 1}},
       "mvc (r1), (r2)", "storage-to-storage move",
       {}, nullptr, 0, {}, /*MvcStyle=*/true, K::Rewrite::MvcChunks},
  };
  return Table;
}

const KernelSpec *findKernel(const std::string &Machine,
                             const std::string &Mnemonic, OpKind Op) {
  for (const KernelSpec &K : kernelTable())
    if (Machine == K.Machine && Mnemonic == K.Mnemonic && Op == K.Op)
      return &K;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// The lowered binding: everything the closures need, precomputed
//===----------------------------------------------------------------------===//

struct Lowered {
  KernelSpec Spec;
  AugmentPlan Plan;
  std::string Machine;
  const Dialect *D = nullptr;
  /// 8086 flag pins.
  std::optional<int64_t> PinZf, PinDf;
  bool RepPrefix = false; ///< rf pinned to 1.
  std::optional<int64_t> PinRfz;
  /// Pins that are plain register loads (after aliasing), script order.
  std::vector<std::pair<std::string, int64_t>> RegPins;
  /// From the constraint set:
  int64_t ChunkLimit = 0;  ///< Max hi over narrow ranges (0 = none).
  int64_t OffsetDelta = 0; ///< Encoded-length delta (mvc: -1).
  std::string Axiom;       ///< Relational constraint's axiom, if any.
};

std::optional<int64_t> literalOf(const Value &V,
                                 const CompileTimeFacts &Facts) {
  if (V.isLiteral())
    return V.Lit;
  auto It = Facts.KnownValues.find(V.Name);
  if (It == Facts.KnownValues.end())
    return std::nullopt;
  return It->second;
}

void emitOutput(const Lowered &L, const OutputSpec &S, const HLOp &O,
                CodeGenContext &Ctx) {
  const Dialect &D = *L.D;
  std::string Carrier = S.carrier();
  auto EmitArm = [&](const OutputArm &A) {
    if (A.K == OutputArm::Kind::RegMinusSave) {
      Ctx.emit(std::string("  ") + D.Sub + " " + A.Reg + ", " + D.SaveReg +
               "   ; offset from saved initial address");
      for (int I = 0; I < L.Spec.CarrierBias; ++I)
        Ctx.emit(std::string("  ") + D.Inc + " " + A.Reg +
                 "   ; 1-based index");
    } else {
      std::string Dst = Carrier.empty() ? O.Result : Carrier;
      Ctx.emit(std::string("  ") + D.Mov + " " + Dst + ", " +
               std::to_string(A.Lit));
    }
  };
  if (S.CondKind == OutputSpec::Cond::Flag) {
    // Fall through into the then-arm; branch away when the flag is clear.
    std::string Alt = Ctx.freshLabel("nf");
    std::string Done = Ctx.freshLabel("done");
    Ctx.emit("  jnz " + Alt + "          ; " + S.CondReg +
             " clear: take else arm");
    EmitArm(S.Then);
    Ctx.emit(std::string("  ") + D.Jmp + " " + Done);
    Ctx.emit(Alt + ":");
    EmitArm(S.Else);
    Ctx.emit(Done + ":");
  } else {
    // Fall through into the else-arm; branch away when the register is 0.
    std::string ThenL = Ctx.freshLabel("zr");
    std::string Done = Ctx.freshLabel("done");
    if (L.Machine == "vax") {
      Ctx.emit("  tstl " + S.CondReg);
      Ctx.emit("  beql " + ThenL + "          ; " + S.CondReg + " = 0");
    } else if (L.Machine == "i8086") {
      Ctx.emit("  cmp " + S.CondReg + ", 0");
      Ctx.emit("  jz " + ThenL + "          ; " + S.CondReg + " = 0");
    } else {
      Ctx.emit("  chi " + S.CondReg + ", 0");
      Ctx.emit("  je " + ThenL + "          ; " + S.CondReg + " = 0");
    }
    EmitArm(S.Else);
    Ctx.emit(std::string("  ") + D.Jmp + " " + Done);
    Ctx.emit(ThenL + ":");
    EmitArm(S.Then);
    Ctx.emit(Done + ":");
  }
  if (!Carrier.empty())
    Ctx.emit(std::string("  ") + D.Mov + " " + O.Result + ", " + Carrier +
             "   ; final result");
}

void emitLowered(const Lowered &L, const HLOp &O,
                 const CompileTimeFacts &Facts, CodeGenContext &Ctx) {
  const Dialect &D = *L.D;
  const bool I86 = L.Machine == "i8086";
  auto ArgLoads = [&] {
    for (const auto &[Reg, Arg] : L.Spec.Loads)
      Ctx.load(Reg, O.Args[static_cast<size_t>(Arg)], D.Mov);
  };
  auto RegPinLoads = [&] {
    for (const auto &[Reg, V] : L.RegPins)
      Ctx.load(Reg, Value::literal(V), D.Mov);
  };
  // The hand translations load the VAX instruction's pinned operands
  // first (movc5's zero source) but the 8086's last (stosb's fill byte);
  // either order is sound — we keep the per-machine convention.
  if (I86) {
    ArgLoads();
    RegPinLoads();
  } else {
    RegPinLoads();
    ArgLoads();
  }

  if (!L.Plan.SaveSrc.empty())
    Ctx.emit(std::string("  ") + D.Mov + " " + D.SaveReg + ", " +
             L.Plan.SaveSrc + "   ; save initial address");

  if (I86 && L.PinZf) {
    if (*L.PinZf == 0) {
      Ctx.emit("  mov si, 0");
      Ctx.emit("  cmp si, 1         ; reset zero flag zf");
    } else {
      Ctx.emit("  cmp ax, ax        ; set zero flag zf");
    }
  }
  if (I86 && L.PinDf && *L.PinDf == 0)
    Ctx.emit("  cld               ; reset direction flag df");

  if (L.Spec.MvcStyle) {
    // Reached only when the length provably fits the encodable range: a
    // literal (constant propagation has already run), or a fact-known
    // symbol.
    const Value &LenV = O.Args[2];
    int64_t Len =
        LenV.isLiteral() ? LenV.Lit : Facts.KnownValues.at(LenV.Name);
    Ctx.emit(std::string("  ") + L.Spec.Core + ", " +
             std::to_string(Len + L.OffsetDelta) +
             "   ; encoded length (coding constraint: count " +
             (L.OffsetDelta < 0 ? "- " + std::to_string(-L.OffsetDelta)
                                : "+ " + std::to_string(L.OffsetDelta)) +
             ")");
  } else {
    std::string Core = "  ";
    if (L.RepPrefix)
      Core += !L.PinRfz ? "rep " : (*L.PinRfz ? "repe " : "repne ");
    Core += L.Spec.Core;
    Core += std::string("   ; ") + L.Spec.CoreComment;
    Ctx.emit(Core);
  }

  if (L.Plan.Output)
    emitOutput(L, *L.Plan.Output, O, Ctx);

  for (const char *Reg : L.Spec.Clobbers)
    Ctx.clobberRegister(Reg);
  if (L.Spec.R0After)
    Ctx.setRegister("r0", L.Spec.R0After);
  if (!O.Result.empty())
    Ctx.setRegister(O.Result, "");
}

bool rewriteVaxChunks(const Lowered &L, const HLOp &O,
                      const CompileTimeFacts &Facts, CodeGenContext &Ctx) {
  // §6's exact rewriting-rule example: forward chunks of at most the
  // range bound. Forward copying is only sound when the operands cannot
  // overlap: either the language axiom vouches, or all three operands
  // are literals the compiler can check disjoint.
  if (!L.Axiom.empty() && !Facts.Axioms.count(L.Axiom))
    return false;
  auto Len = literalOf(O.Args[2], Facts);
  auto Dst = literalOf(O.Args[0], Facts);
  auto Src = literalOf(O.Args[1], Facts);
  if (!Len || !Dst || !Src || *Len <= 0)
    return false;
  if (L.Axiom.empty()) {
    bool Disjoint = *Src + *Len <= *Dst || *Dst + *Len <= *Src;
    if (!Disjoint)
      return false;
  }
  int64_t Done = 0;
  while (Done < *Len) {
    int64_t Chunk = std::min<int64_t>(*Len - Done, L.ChunkLimit);
    Ctx.emit("  movl r0, " + std::to_string(Chunk));
    Ctx.emit("  movl r1, " + std::to_string(*Src + Done));
    Ctx.emit("  movl r3, " + std::to_string(*Dst + Done));
    Ctx.emit("  movc3 r0, r1, r3  ; " + std::to_string(Chunk) +
             "-byte substring");
    Done += Chunk;
  }
  Ctx.clobberRegister("r1");
  Ctx.clobberRegister("r3");
  Ctx.setRegister("r0", "0");
  return true;
}

bool rewriteMvcChunks(const Lowered &L, const HLOp &O,
                      const CompileTimeFacts &Facts, CodeGenContext &Ctx) {
  // A literal length beyond the encodable range becomes consecutive
  // substring moves; the chunker advances both addresses between
  // chunks, so it works on symbolic addresses (unlike the VAX literal
  // chunker). A symbolic length cannot be chunked at compile time.
  auto Len = literalOf(O.Args[2], Facts);
  if (!Len || *Len <= 0)
    return false;
  Ctx.load("r1", O.Args[0], L.D->Mov);
  Ctx.load("r2", O.Args[1], L.D->Mov);
  int64_t Remaining = *Len;
  while (Remaining > 0) {
    int64_t Chunk = Remaining > L.ChunkLimit ? L.ChunkLimit : Remaining;
    Ctx.emit(std::string("  ") + L.Spec.Core + ", " +
             std::to_string(Chunk + L.OffsetDelta) + "   ; " +
             std::to_string(Chunk) + "-byte chunk");
    Remaining -= Chunk;
    if (Remaining > 0) {
      Ctx.emit("  ahi r1, " + std::to_string(Chunk));
      Ctx.emit("  ahi r2, " + std::to_string(Chunk));
      Ctx.clobberRegister("r1");
      Ctx.clobberRegister("r2");
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Constraint text parsing
//===----------------------------------------------------------------------===//

Expected<ConstraintSet>
registry::parseConstraintText(const std::string &Text) {
  ConstraintSet Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    Line = trimmed(Line);
    if (Line.empty())
      continue;
    std::string Note;
    size_t Bang = Line.find("  ! ");
    if (Bang != std::string::npos) {
      Note = Line.substr(Bang + 4);
      Line = trimmed(Line.substr(0, Bang));
    }
    if (startsWith(Line, "value: ")) {
      std::string Rest = Line.substr(7);
      size_t Eq = Rest.find(" = ");
      if (Eq == std::string::npos)
        return parseFault("malformed value constraint: '" + Line + "'");
      Out.add(Constraint::value(
          Rest.substr(0, Eq),
          std::strtoll(Rest.c_str() + Eq + 3, nullptr, 10), Note));
    } else if (startsWith(Line, "range: ")) {
      std::string Rest = Line.substr(7);
      size_t Le1 = Rest.find(" <= ");
      size_t Le2 = Le1 == std::string::npos ? Le1 : Rest.find(" <= ", Le1 + 4);
      if (Le2 == std::string::npos)
        return parseFault("malformed range constraint: '" + Line + "'");
      Out.add(Constraint::range(
          Rest.substr(Le1 + 4, Le2 - Le1 - 4),
          std::strtoll(Rest.c_str(), nullptr, 10),
          std::strtoll(Rest.c_str() + Le2 + 4, nullptr, 10), Note));
    } else if (startsWith(Line, "offset: ")) {
      // "encode NAME as NAME + K" / "... - K".
      std::string Rest = Line.substr(8);
      if (!startsWith(Rest, "encode "))
        return parseFault("malformed offset constraint: '" + Line + "'");
      size_t As = Rest.find(" as ");
      if (As == std::string::npos)
        return parseFault("malformed offset constraint: '" + Line + "'");
      std::string Name = Rest.substr(7, As - 7);
      std::string Tail = Rest.substr(As + 4);
      size_t Plus = Tail.rfind(" + ");
      size_t Minus = Tail.rfind(" - ");
      int64_t Delta = 0;
      if (Plus != std::string::npos && (Minus == std::string::npos ||
                                        Plus > Minus))
        Delta = std::strtoll(Tail.c_str() + Plus + 3, nullptr, 10);
      else if (Minus != std::string::npos)
        Delta = -std::strtoll(Tail.c_str() + Minus + 3, nullptr, 10);
      else
        return parseFault("malformed offset constraint: '" + Line + "'");
      Out.add(Constraint::offset(Name, Delta, Note));
    } else if (startsWith(Line, "relational: ")) {
      std::string Rest = Line.substr(12);
      size_t Ax = Rest.rfind(" [axiom: ");
      if (Ax == std::string::npos || Rest.back() != ']')
        return parseFault("malformed relational constraint: '" + Line + "'");
      std::string PredText = Rest.substr(0, Ax);
      std::string Axiom = Rest.substr(Ax + 9, Rest.size() - Ax - 10);
      DiagnosticEngine Diags;
      isdl::ExprPtr Pred = isdl::parseExpr(PredText, Diags);
      if (!Pred || Diags.hasErrors())
        return parseFault("relational predicate failed to re-parse: " +
                          Diags.str());
      Out.add(Constraint::relational(std::move(Pred), Axiom, Note));
    } else {
      return parseFault("unrecognized constraint rendering: '" + Line + "'");
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

Expected<codegen::InstructionBinding>
registry::compileBinding(const RegistryEntry &E) {
  std::string OpName = E.Op.empty() ? opKindOfOperator(E.OperatorId) : E.Op;
  auto Kind = opKindFromName(OpName);
  if (!Kind)
    return lowerFault("operator '" + E.OperatorId +
                      "' maps to no code-generator operator kind");
  const Dialect *D = dialectFor(E.Machine);
  if (!D)
    return lowerFault("unknown machine '" + E.Machine + "'");
  const KernelSpec *Spec = findKernel(E.Machine, E.Mnemonic, *Kind);
  if (!Spec)
    return lowerFault("no kernel for " + E.Machine + "." + E.Mnemonic +
                      " as " + OpName);

  auto CS = parseConstraintText(E.Constraints);
  if (!CS)
    return CS.fault();
  auto Plan = parseAugments(E.InstScript);
  if (!Plan)
    return Plan.fault();

  auto L = std::make_shared<Lowered>();
  L->Spec = *Spec;
  L->Plan = *Plan;
  L->Machine = E.Machine;
  L->D = D;

  // Classify pins: 8086 status flags become setup code and the repeat
  // prefix; everything else is a pinned register load (aliased through
  // the kernel when the operand name is not the register).
  for (const auto &[Name, V] : Plan->Pins) {
    if (E.Machine == "i8086" && isI8086Flag(Name)) {
      if (Name == "rf")
        L->RepPrefix = V == 1;
      else if (Name == "rfz")
        L->PinRfz = V;
      else if (Name == "df")
        L->PinDf = V;
      else
        L->PinZf = V;
      continue;
    }
    std::string Reg = Name;
    for (const auto &[From, To] : Spec->PinAlias)
      if (Name == From)
        Reg = To;
    L->RegPins.emplace_back(Reg, V);
  }

  if (Plan->Output && Plan->Output->CondKind == OutputSpec::Cond::Flag &&
      E.Machine != "i8086")
    return lowerFault("flag-conditional output is only lowerable on i8086");
  if (Plan->Output && !Plan->Output->carrier().empty() &&
      Plan->SaveSrc.empty())
    return lowerFault("address-difference output without a prologue save");

  // Derive the rewriting parameters from the constraint set itself: the
  // chunk size is the narrow range's bound, the encoded-length delta is
  // the offset constraint, the overlap guard is the relational axiom.
  for (const Constraint &C : CS->items()) {
    switch (C.kind()) {
    case ConstraintKind::Range:
      if (C.hi() < D->WordMax && C.hi() > L->ChunkLimit)
        L->ChunkLimit = C.hi();
      break;
    case ConstraintKind::Offset:
      L->OffsetDelta = C.valueOrDelta();
      break;
    case ConstraintKind::Relational:
      L->Axiom = C.axiom();
      break;
    case ConstraintKind::Value:
      break;
    }
  }

  codegen::InstructionBinding B;
  B.Op = *Kind;
  B.Mnemonic = E.Mnemonic;
  B.AnalysisId = E.AnalysisId;
  B.Constraints = CS.take();
  B.Emit = [L](const HLOp &O, const CompileTimeFacts &Facts,
               CodeGenContext &Ctx) { emitLowered(*L, O, Facts, Ctx); };
  if (L->ChunkLimit > 0) {
    if (Spec->RewriteKind == KernelSpec::Rewrite::VaxLiteralChunks)
      B.RewriteEmit = [L](const HLOp &O, const CompileTimeFacts &Facts,
                          CodeGenContext &Ctx) {
        return rewriteVaxChunks(*L, O, Facts, Ctx);
      };
    else if (Spec->RewriteKind == KernelSpec::Rewrite::MvcChunks)
      B.RewriteEmit = [L](const HLOp &O, const CompileTimeFacts &Facts,
                          CodeGenContext &Ctx) {
        return rewriteMvcChunks(*L, O, Facts, Ctx);
      };
  }
  return B;
}

unsigned registry::loadRegistryBindings(const Registry &R,
                                        const std::string &Machine,
                                        codegen::Target &T,
                                        std::vector<CompileNote> *Notes) {
  unsigned Registered = 0;
  std::set<std::pair<std::string, std::string>> Bound;
  for (const codegen::InstructionBinding &B : T.bindings())
    Bound.emplace(codegen::opKindName(B.Op), B.Mnemonic);
  for (const RegistryEntry *E : R.entries()) {
    if (E->Machine != Machine)
      continue;
    auto B = compileBinding(*E);
    if (!B) {
      if (Notes)
        Notes->push_back({E->AnalysisId, B.fault().Message});
      continue;
    }
    auto Key = std::make_pair(std::string(codegen::opKindName(B->Op)),
                              B->Mnemonic);
    if (!Bound.insert(Key).second) {
      if (Notes)
        Notes->push_back({E->AnalysisId, "equivalent binding already "
                                         "loaded (" +
                                             Key.first + " via " +
                                             Key.second + ")"});
      continue;
    }
    T.addBinding(B.take());
    ++Registered;
  }
  return Registered;
}
