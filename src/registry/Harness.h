//===- Harness.h - Differential execution of registry bindings --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves a registry *executable*: compiles a frontend program twice per
/// target — once with the registry's bindings loaded (the hand-built
/// bootstrap table cleared first), once decomposition-only — runs both
/// through the matching simulator, and asserts the final memory and
/// result symbols are state-identical while reporting the §1 cost
/// deltas (instruction dispatches, byte operations, code size).
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_REGISTRY_HARNESS_H
#define EXTRA_REGISTRY_HARNESS_H

#include "registry/BindingCompiler.h"
#include "sim/SimCommon.h"

#include <optional>

namespace extra {
namespace registry {

enum class MachineKind { I8086, Vax, Ibm370 };

/// "i8086" / "vax" / "ibm370" — matches RegistryEntry::Machine.
const char *machineName(MachineKind MK);
std::optional<MachineKind> machineFromName(const std::string &Name);
std::vector<MachineKind> allMachines();

/// The shared end-to-end demo program (the retargeting example): a
/// string move, an index, an equality compare, and a block clear over
/// the memory image `demoMemory()` builds. Results land in the virtual
/// symbols "i" and "eq".
codegen::Program demoProgram();
interp::Memory demoMemory();

/// One compiled-and-executed side of a differential run.
struct SideReport {
  bool Ok = false;
  std::string Error;
  uint64_t Instructions = 0; ///< Simulator dispatch count.
  uint64_t MicroOps = 0;     ///< Per-byte data operations.
  unsigned CodeSize = 0;     ///< Emitted instruction lines.
  unsigned Exotic = 0;       ///< Ops implemented by exotic instructions.
  unsigned Decomposed = 0;   ///< Ops decomposed to primitive loops.
  std::vector<std::string> Asm;
  interp::Memory Mem;
  std::map<std::string, int64_t> Regs;
};

struct DifferentialReport {
  MachineKind Machine = MachineKind::I8086;
  unsigned BindingsLoaded = 0;
  SideReport WithRegistry; ///< Registry bindings on.
  SideReport Baseline;     ///< Decomposition-only.
  bool StatesMatch = false;
  std::string Divergence; ///< First observed difference, when !StatesMatch.

  /// The acceptance bar: same states, strictly fewer dispatches, and the
  /// registry actually supplied exotic emissions.
  bool passes() const {
    return WithRegistry.Ok && Baseline.Ok && StatesMatch &&
           WithRegistry.Exotic > 0 &&
           WithRegistry.Instructions < Baseline.Instructions;
  }
};

/// Compiles \p P twice on \p MK (registry bindings vs decomposition-only),
/// runs both on the machine's simulator over \p Mem, and compares final
/// memory plus every HLOp result symbol. Scratch machine registers are
/// excluded from the comparison — the two translations legitimately use
/// different ones. Compile notes for unlowerable entries go to \p Notes.
DifferentialReport runDifferential(MachineKind MK, const Registry &R,
                                   const codegen::Program &P,
                                   const interp::Memory &Mem,
                                   std::vector<CompileNote> *Notes = nullptr);

/// Human-readable summary (one block per report) for the CLI.
std::string formatReport(const DifferentialReport &R);

} // namespace registry
} // namespace extra

#endif // EXTRA_REGISTRY_HARNESS_H
