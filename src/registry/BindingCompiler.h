//===- BindingCompiler.h - Lower registry entries to bindings ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a RegistryEntry into a live `codegen::InstructionBinding` at
/// target-load time, replacing the hand-built tables of
/// I8086Target.cpp / VaxTarget.cpp / Ibm370Target.cpp as the production
/// source of bindings (the hand tables remain the bootstrap).
///
/// What is derived from the entry, and what is kernel knowledge, is the
/// §9 contract (DESIGN.md):
///
///  * the *constraint set* is parsed back from the entry's rendered
///    constraint text — value pins, narrow ranges, offset deltas, and
///    relational predicates (re-parsed with the ISDL expression parser)
///    all behave under `ConstraintSet::checkAll` exactly as the
///    bootstrap tables' analysis-produced sets do;
///  * the *augment structure* is parsed from the entry's instruction
///    derivation script: `fix-operand-value` pins become flag setup or
///    pinned register loads, `add-prologue "t <- r;"` becomes the
///    initial-address save, and `replace-output "if C then output (A);
///    else output (B); end_if;"` becomes the branchy epilogue;
///  * the *kernel* — which dedicated register carries which operand,
///    the core instruction syntax, what the instruction clobbers, and
///    per-machine dialect (mov/branch mnemonics, how to force zf) — is
///    a small per-(machine, mnemonic, operator-kind) table here. This
///    mirrors the paper's division of labor: EXTRA discovers *that* and
///    *under which constraints* an instruction implements an operator;
///    the machine's operand conventions come from its description.
///
/// Rewriting rules (§6 chunked uses) are synthesized for move/copy
/// entries whose constraint set carries a narrow range: the chunk size
/// is the range's upper bound and the encoded-length delta comes from
/// the offset constraint, so `mvc` chunks at 256 and `movc3` at 65535
/// without either number appearing in this file.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_REGISTRY_BINDINGCOMPILER_H
#define EXTRA_REGISTRY_BINDINGCOMPILER_H

#include "codegen/Target.h"
#include "registry/Registry.h"

#include <string>
#include <vector>

namespace extra {
namespace registry {

/// Parses the rendered constraint text (`ConstraintSet::str()` output,
/// one constraint per line, optional "  ! note" suffixes) back into a
/// live set. Relational predicates go through the ISDL expression
/// parser. Faults (Parse) on lines outside the four renderings.
Expected<constraint::ConstraintSet>
parseConstraintText(const std::string &Text);

/// Lowers one entry. Faults when the entry is outside the kernel
/// vocabulary (unknown machine/mnemonic/operator-kind triple, operator
/// with no code-generator kind, or an augment script the lowerer cannot
/// interpret) — such entries are data, not errors, at the registry
/// level; the caller decides whether to skip or report.
Expected<codegen::InstructionBinding> compileBinding(const RegistryEntry &E);

/// One entry the loader could not lower, with the reason.
struct CompileNote {
  std::string CaseId;
  std::string Detail;
};

/// Compiles every entry whose Machine matches and registers the result
/// on \p T (key order; an entry whose (operator kind, mnemonic) is
/// already bound is skipped — the two-language pairings of one
/// instruction lower identically). Returns the number registered.
unsigned loadRegistryBindings(const Registry &R, const std::string &Machine,
                              codegen::Target &T,
                              std::vector<CompileNote> *Notes = nullptr);

} // namespace registry
} // namespace extra

#endif // EXTRA_REGISTRY_BINDINGCOMPILER_H
