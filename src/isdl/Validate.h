//===- Validate.h - Description well-formedness checks ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic checks enforcing the paper's restrictions on descriptions
/// (§3): every referenced name is declared, calls name real routines,
/// `exit_when` appears only inside `repeat`, routines return by assigning
/// their own name, and there is exactly one entry routine. Aliasing cannot
/// arise because the language has no reference parameters; validation
/// rejects a routine assigning another routine's name, which would be the
/// one remaining backdoor.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_VALIDATE_H
#define EXTRA_ISDL_VALIDATE_H

#include "isdl/AST.h"

namespace extra {
namespace isdl {

/// Checks \p D for well-formedness, reporting problems to \p Diags.
/// \returns true when no errors were found.
bool validate(const Description &D, DiagnosticEngine &Diags);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_VALIDATE_H
