//===- AST.cpp - ISDL AST implementation ------------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/AST.h"

using namespace extra;
using namespace extra::isdl;

std::string TypeRef::str() const {
  switch (K) {
  case Kind::None:
    return "";
  case Kind::Integer:
    return "integer";
  case Kind::Character:
    return "character";
  case Kind::Bits:
    if (isFlag())
      return "<>";
    return "<" + std::to_string(Hi) + ":" + std::to_string(Lo) + ">";
  }
  return "";
}

bool isdl::isRelational(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

BinaryOp isdl::negateRelational(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return BinaryOp::Ne;
  case BinaryOp::Ne:
    return BinaryOp::Eq;
  case BinaryOp::Lt:
    return BinaryOp::Ge;
  case BinaryOp::Le:
    return BinaryOp::Gt;
  case BinaryOp::Gt:
    return BinaryOp::Le;
  case BinaryOp::Ge:
    return BinaryOp::Lt;
  default:
    assert(false && "negateRelational on non-relational operator");
    return Op;
  }
}

BinaryOp isdl::swapRelational(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return BinaryOp::Eq;
  case BinaryOp::Ne:
    return BinaryOp::Ne;
  case BinaryOp::Lt:
    return BinaryOp::Gt;
  case BinaryOp::Le:
    return BinaryOp::Ge;
  case BinaryOp::Gt:
    return BinaryOp::Lt;
  case BinaryOp::Ge:
    return BinaryOp::Le;
  default:
    assert(false && "swapRelational on non-relational operator");
    return Op;
  }
}

const char *isdl::spelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Eq:
    return "=";
  case BinaryOp::Ne:
    return "<>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  }
  return "?";
}

const char *isdl::spelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "not";
  case UnaryOp::Neg:
    return "-";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

ExprPtr Expr::clone() const {
  ExprPtr Out;
  switch (K) {
  case Kind::IntLit:
    Out = std::make_unique<IntLit>(cast<IntLit>(this)->getValue());
    break;
  case Kind::CharLit:
    Out = std::make_unique<CharLit>(cast<CharLit>(this)->getValue());
    break;
  case Kind::VarRef:
    Out = std::make_unique<VarRef>(cast<VarRef>(this)->getName());
    break;
  case Kind::MemRef:
    Out = std::make_unique<MemRef>(cast<MemRef>(this)->getAddress()->clone());
    break;
  case Kind::Call:
    Out = std::make_unique<CallExpr>(cast<CallExpr>(this)->getCallee());
    break;
  case Kind::Unary: {
    const auto *U = cast<UnaryExpr>(this);
    Out = std::make_unique<UnaryExpr>(U->getOp(), U->getOperand()->clone());
    break;
  }
  case Kind::Binary: {
    const auto *B = cast<BinaryExpr>(this);
    Out = std::make_unique<BinaryExpr>(B->getOp(), B->getLHS()->clone(),
                                       B->getRHS()->clone());
    break;
  }
  }
  Out->setLoc(getLoc());
  return Out;
}

StmtList isdl::cloneStmts(const StmtList &Stmts) {
  StmtList Out;
  Out.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Out.push_back(S->clone());
  return Out;
}

StmtPtr Stmt::clone() const {
  StmtPtr Out;
  switch (K) {
  case Kind::Assign: {
    const auto *A = cast<AssignStmt>(this);
    Out = std::make_unique<AssignStmt>(A->getTarget()->clone(),
                                       A->getValue()->clone());
    break;
  }
  case Kind::If: {
    const auto *I = cast<IfStmt>(this);
    Out = std::make_unique<IfStmt>(I->getCond()->clone(),
                                   cloneStmts(I->getThen()),
                                   cloneStmts(I->getElse()));
    break;
  }
  case Kind::Repeat:
    Out = std::make_unique<RepeatStmt>(
        cloneStmts(cast<RepeatStmt>(this)->getBody()));
    break;
  case Kind::ExitWhen:
    Out = std::make_unique<ExitWhenStmt>(
        cast<ExitWhenStmt>(this)->getCond()->clone());
    break;
  case Kind::Input:
    Out = std::make_unique<InputStmt>(cast<InputStmt>(this)->getTargets());
    break;
  case Kind::Output: {
    const auto *O = cast<OutputStmt>(this);
    std::vector<ExprPtr> Values;
    Values.reserve(O->getValues().size());
    for (const ExprPtr &V : O->getValues())
      Values.push_back(V->clone());
    Out = std::make_unique<OutputStmt>(std::move(Values));
    break;
  }
  case Kind::Constrain: {
    const auto *C = cast<ConstrainStmt>(this);
    Out = std::make_unique<ConstrainStmt>(C->getTag(), C->getPred()->clone());
    break;
  }
  case Kind::Assert:
    Out = std::make_unique<AssertStmt>(cast<AssertStmt>(this)->getPred()->clone());
    break;
  }
  Out->setLoc(getLoc());
  return Out;
}

Routine Routine::clone() const {
  Routine Out;
  Out.Name = Name;
  Out.ResultType = ResultType;
  Out.Body = cloneStmts(Body);
  Out.Comment = Comment;
  Out.Loc = Loc;
  return Out;
}

SectionItem SectionItem::clone() const {
  if (K == Kind::Decl)
    return SectionItem::decl(D);
  return SectionItem::routine(R->clone());
}

Section Section::clone() const {
  Section Out;
  Out.Name = Name;
  Out.Items.reserve(Items.size());
  for (const SectionItem &I : Items)
    Out.Items.push_back(I.clone());
  return Out;
}

Description Description::clone() const {
  Description Out(Name);
  Out.Sections.reserve(Sections.size());
  for (const Section &S : Sections)
    Out.Sections.push_back(S.clone());
  return Out;
}

//===----------------------------------------------------------------------===//
// Description lookups
//===----------------------------------------------------------------------===//

Routine *Description::findRoutine(const std::string &RName) {
  for (Section &S : Sections)
    for (SectionItem &I : S.Items)
      if (I.K == SectionItem::Kind::Routine && I.R->Name == RName)
        return I.R.get();
  return nullptr;
}

const Routine *Description::findRoutine(const std::string &RName) const {
  return const_cast<Description *>(this)->findRoutine(RName);
}

Decl *Description::findDecl(const std::string &DName) {
  for (Section &S : Sections)
    for (SectionItem &I : S.Items)
      if (I.K == SectionItem::Kind::Decl && I.D.Name == DName)
        return &I.D;
  return nullptr;
}

const Decl *Description::findDecl(const std::string &DName) const {
  return const_cast<Description *>(this)->findDecl(DName);
}

static bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

Routine *Description::entryRoutine() {
  Routine *Last = nullptr;
  for (Section &S : Sections)
    for (SectionItem &I : S.Items) {
      if (I.K != SectionItem::Kind::Routine)
        continue;
      Last = I.R.get();
      if (endsWith(I.R->Name, ".execute") || endsWith(I.R->Name, ".operation"))
        return I.R.get();
    }
  return Last;
}

const Routine *Description::entryRoutine() const {
  return const_cast<Description *>(this)->entryRoutine();
}

std::vector<Routine *> Description::routines() {
  std::vector<Routine *> Out;
  for (Section &S : Sections)
    for (SectionItem &I : S.Items)
      if (I.K == SectionItem::Kind::Routine)
        Out.push_back(I.R.get());
  return Out;
}

std::vector<const Routine *> Description::routines() const {
  std::vector<const Routine *> Out;
  for (const Section &S : Sections)
    for (const SectionItem &I : S.Items)
      if (I.K == SectionItem::Kind::Routine)
        Out.push_back(I.R.get());
  return Out;
}

std::vector<const Decl *> Description::decls() const {
  std::vector<const Decl *> Out;
  for (const Section &S : Sections)
    for (const SectionItem &I : S.Items)
      if (I.K == SectionItem::Kind::Decl)
        Out.push_back(&I.D);
  return Out;
}

Section *Description::findSection(const std::string &SName) {
  for (Section &S : Sections)
    if (S.Name == SName)
      return &S;
  return nullptr;
}

Decl &Description::addDecl(const std::string &SectionName, Decl D) {
  Section *S = findSection(SectionName);
  if (!S) {
    Sections.push_back(Section{SectionName, {}});
    S = &Sections.back();
  }
  S->Items.push_back(SectionItem::decl(std::move(D)));
  return S->Items.back().D;
}

bool Description::removeDecl(const std::string &DName) {
  for (Section &S : Sections)
    for (size_t I = 0; I < S.Items.size(); ++I)
      if (S.Items[I].K == SectionItem::Kind::Decl && S.Items[I].D.Name == DName) {
        S.Items.erase(S.Items.begin() + static_cast<long>(I));
        return true;
      }
  return false;
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

ExprPtr isdl::intLit(int64_t V) { return std::make_unique<IntLit>(V); }
ExprPtr isdl::charLit(uint8_t V) { return std::make_unique<CharLit>(V); }
ExprPtr isdl::varRef(std::string Name) {
  return std::make_unique<VarRef>(std::move(Name));
}
ExprPtr isdl::memRef(ExprPtr Address) {
  return std::make_unique<MemRef>(std::move(Address));
}
ExprPtr isdl::call(std::string Callee) {
  return std::make_unique<CallExpr>(std::move(Callee));
}
ExprPtr isdl::unary(UnaryOp Op, ExprPtr E) {
  return std::make_unique<UnaryExpr>(Op, std::move(E));
}
ExprPtr isdl::binary(BinaryOp Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}

StmtPtr isdl::assign(std::string Var, ExprPtr Value) {
  return std::make_unique<AssignStmt>(varRef(std::move(Var)), std::move(Value));
}
StmtPtr isdl::assignMem(ExprPtr Address, ExprPtr Value) {
  return std::make_unique<AssignStmt>(memRef(std::move(Address)),
                                      std::move(Value));
}
StmtPtr isdl::ifStmt(ExprPtr Cond, StmtList Then, StmtList Else) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}
StmtPtr isdl::repeatStmt(StmtList Body) {
  return std::make_unique<RepeatStmt>(std::move(Body));
}
StmtPtr isdl::exitWhen(ExprPtr Cond) {
  return std::make_unique<ExitWhenStmt>(std::move(Cond));
}
StmtPtr isdl::inputStmt(std::vector<std::string> Targets) {
  return std::make_unique<InputStmt>(std::move(Targets));
}
StmtPtr isdl::outputStmt(std::vector<ExprPtr> Values) {
  return std::make_unique<OutputStmt>(std::move(Values));
}
