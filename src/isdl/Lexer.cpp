//===- Lexer.cpp - Tokenizer for the ISDL notation --------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace extra;
using namespace extra::isdl;

const char *isdl::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Int:
    return "integer";
  case TokKind::CharLit:
    return "character literal";
  case TokKind::ColonEq:
    return "':='";
  case TokKind::Arrow:
    return "'<-'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Less:
    return "'<'";
  case TokKind::Greater:
    return "'>'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::LessGreater:
    return "'<>'";
  case TokKind::Eq:
    return "'='";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::StarStar:
    return "'**'";
  case TokKind::KwBegin:
    return "'begin'";
  case TokKind::KwEnd:
    return "'end'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwEndIf:
    return "'end_if'";
  case TokKind::KwRepeat:
    return "'repeat'";
  case TokKind::KwEndRepeat:
    return "'end_repeat'";
  case TokKind::KwExitWhen:
    return "'exit_when'";
  case TokKind::KwInput:
    return "'input'";
  case TokKind::KwOutput:
    return "'output'";
  case TokKind::KwConstrain:
    return "'constrain'";
  case TokKind::KwAssert:
    return "'assert'";
  case TokKind::KwNot:
    return "'not'";
  case TokKind::KwAnd:
    return "'and'";
  case TokKind::KwOr:
    return "'or'";
  }
  return "token";
}

static TokKind keywordKind(const std::string &Text) {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"begin", TokKind::KwBegin},
      {"end", TokKind::KwEnd},
      {"if", TokKind::KwIf},
      {"then", TokKind::KwThen},
      {"else", TokKind::KwElse},
      {"end_if", TokKind::KwEndIf},
      {"repeat", TokKind::KwRepeat},
      {"end_repeat", TokKind::KwEndRepeat},
      {"exit_when", TokKind::KwExitWhen},
      {"input", TokKind::KwInput},
      {"output", TokKind::KwOutput},
      {"constrain", TokKind::KwConstrain},
      {"assert", TokKind::KwAssert},
      {"not", TokKind::KwNot},
      {"and", TokKind::KwAnd},
      {"or", TokKind::KwOr},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokKind::Ident : It->second;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokKind::Eof);
    Out.push_back(std::move(T));
    if (Done)
      return Out;
  }
}

Token Lexer::next() {
  // Skip whitespace and `!` comments.
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '!') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    break;
  }

  Token T;
  T.Loc = loc();
  if (Pos >= Source.size()) {
    T.Kind = TokKind::Eof;
    return T;
  }

  char C = advance();

  // UTF-8 left arrow U+2190 (0xE2 0x86 0x90) as assignment.
  if (static_cast<unsigned char>(C) == 0xE2 &&
      static_cast<unsigned char>(peek()) == 0x86 &&
      static_cast<unsigned char>(peek(1)) == 0x90) {
    advance();
    advance();
    T.Kind = TokKind::Arrow;
    return T;
  }

  if (isIdentStart(C)) {
    std::string Text(1, C);
    while (isIdentChar(peek()))
      Text.push_back(advance());
    // A trailing dot belongs to punctuation, not the identifier.
    while (!Text.empty() && Text.back() == '.') {
      Text.pop_back();
      --Pos;
      --Col;
    }
    T.Kind = keywordKind(Text);
    if (T.Kind == TokKind::Ident)
      T.Text = std::move(Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    T.Kind = TokKind::Int;
    T.IntValue = Value;
    return T;
  }

  switch (C) {
  case '\'': {
    char V = peek();
    if (V == '\0' || V == '\n') {
      Diags.error(T.Loc, "unterminated character literal");
      T.Kind = TokKind::CharLit;
      T.IntValue = 0;
      return T;
    }
    advance();
    if (!match('\''))
      Diags.error(T.Loc, "expected closing quote in character literal");
    T.Kind = TokKind::CharLit;
    T.IntValue = static_cast<unsigned char>(V);
    return T;
  }
  case ':':
    T.Kind = match('=') ? TokKind::ColonEq : TokKind::Colon;
    return T;
  case '<':
    if (match('-'))
      T.Kind = TokKind::Arrow;
    else if (match('='))
      T.Kind = TokKind::LessEq;
    else if (match('>'))
      T.Kind = TokKind::LessGreater;
    else
      T.Kind = TokKind::Less;
    return T;
  case '>':
    T.Kind = match('=') ? TokKind::GreaterEq : TokKind::Greater;
    return T;
  case '=':
    T.Kind = TokKind::Eq;
    return T;
  case '(':
    T.Kind = TokKind::LParen;
    return T;
  case ')':
    T.Kind = TokKind::RParen;
    return T;
  case '[':
    T.Kind = TokKind::LBracket;
    return T;
  case ']':
    T.Kind = TokKind::RBracket;
    return T;
  case ',':
    T.Kind = TokKind::Comma;
    return T;
  case ';':
    T.Kind = TokKind::Semi;
    return T;
  case '+':
    T.Kind = TokKind::Plus;
    return T;
  case '-':
    T.Kind = TokKind::Minus;
    return T;
  case '*':
    T.Kind = match('*') ? TokKind::StarStar : TokKind::Star;
    return T;
  case '/':
    T.Kind = TokKind::Slash;
    return T;
  default:
    Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}
